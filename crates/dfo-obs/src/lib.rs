//! Unified telemetry for the DFOGraph workspace.
//!
//! Three pieces, designed so the engine's hot paths stay hot:
//!
//! * [`registry`] — a lock-cheap metrics [`Registry`] (counters, gauges,
//!   fixed-bucket histograms, labeled by rank/job/phase). The engine's
//!   existing atomic stats surfaces feed it through pull
//!   [sources](Registry::register_source) sampled only when someone
//!   scrapes, so enabling metrics costs nothing per edge.
//! * [`trace`] — span tracing into a bounded per-rank [`FlightRecorder`],
//!   flushed as one merged Chrome `trace_event` / JSONL timeline
//!   (`DFO_TRACE=<path>`, Perfetto-loadable).
//! * [`Telemetry`] — the handle the engine threads through `NodeCtx` and
//!   the network endpoint: a shared registry, an optional tracer, and the
//!   label context (`rank`, `graph`, …) instrument points attach to their
//!   series.
//!
//! `dfo-service` builds its scrape endpoint on [`Snapshot::to_prometheus`]
//! and [`Snapshot::to_json`]; [`json`] holds the minimal parser tests and
//! examples use to validate the rendered output.

pub mod json;
pub mod registry;
pub mod trace;

pub use registry::{
    FamilySnap, HistogramSnap, LabelSet, MetricKind, ObsCounter, ObsGauge, ObsHistogram, Registry,
    SampleBuf, SampleValue, SeriesSnap, Snapshot, Source, DURATION_BUCKETS,
};
pub use trace::{
    chrome_trace_json, current_tid, decode_spans, encode_spans, jsonl_trace, parse_trace,
    write_trace_file, FlightRecorder, Span, SpanRecord, TraceEvent,
};

use std::sync::Arc;

/// The telemetry context one engine component runs under: a shared metrics
/// [`Registry`], an optional span tracer, and the base labels (e.g.
/// `rank`, `graph`) its series carry. Cloning is cheap (two `Arc`s and a
/// small label vec); a [`Telemetry::disabled`] handle behaves identically
/// but records into a registry nobody scrapes and no tracer.
#[derive(Clone)]
pub struct Telemetry {
    /// The metrics registry instrument points feed.
    pub registry: Arc<Registry>,
    /// Span recorder; `None` disables tracing entirely.
    pub tracer: Option<Arc<FlightRecorder>>,
    /// Base labels attached to every series this context creates.
    pub labels: Vec<(String, String)>,
}

impl Telemetry {
    /// A context around an existing registry, tracing off, no base labels.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self { registry, tracer: None, labels: Vec::new() }
    }

    /// A no-op context: fresh private registry, no tracer. The uniform
    /// default, so instrumented code never branches on "telemetry?".
    pub fn disabled() -> Self {
        Self::new(Registry::new())
    }

    /// Returns the context with a span tracer attached.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<FlightRecorder>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Returns the context with `(key, value)` appended to its base labels.
    #[must_use]
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// Base labels plus `extra`, in the borrowed form the registry takes.
    pub fn labels_with<'a>(&'a self, extra: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut v: Vec<(&str, &str)> =
            self.labels.iter().map(|(k, x)| (k.as_str(), x.as_str())).collect();
        v.extend_from_slice(extra);
        v
    }

    /// Creates/fetches a counter under this context's base labels.
    pub fn counter(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Arc<ObsCounter> {
        self.registry.counter(name, help, &self.labels_with(extra))
    }

    /// Creates/fetches a gauge under this context's base labels.
    pub fn gauge(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Arc<ObsGauge> {
        self.registry.gauge(name, help, &self.labels_with(extra))
    }

    /// Creates/fetches a duration histogram ([`DURATION_BUCKETS`]) under
    /// this context's base labels.
    pub fn duration_histogram(
        &self,
        name: &str,
        help: &str,
        extra: &[(&str, &str)],
    ) -> Arc<ObsHistogram> {
        self.registry.histogram(name, help, &self.labels_with(extra), DURATION_BUCKETS)
    }

    /// Opens a span if tracing is on; `None` costs one branch.
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str) -> Option<Span> {
        self.tracer.as_ref().map(|t| t.span(name, cat))
    }

    /// Whether a tracer is attached.
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_still_counts() {
        let t = Telemetry::disabled();
        assert!(!t.is_tracing());
        assert!(t.span("x", "y").is_none());
        t.counter("c_total", "", &[]).inc();
        assert_eq!(t.registry.snapshot().get("c_total", &[]).unwrap().as_counter(), Some(1));
    }

    #[test]
    fn base_labels_compose_with_extras() {
        let t = Telemetry::new(Registry::new()).with_label("rank", "2");
        t.counter("c_total", "", &[("phase", "pass")]).add(5);
        let snap = t.registry.snapshot();
        assert_eq!(
            snap.get("c_total", &[("rank", "2"), ("phase", "pass")]).unwrap().as_counter(),
            Some(5)
        );
    }

    #[test]
    fn tracer_attaches() {
        let fr = FlightRecorder::new(8);
        let t = Telemetry::disabled().with_tracer(fr.clone());
        assert!(t.is_tracing());
        drop(t.span("s", "c"));
        assert_eq!(fr.len(), 1);
    }
}
