//! A lock-cheap metrics registry: counters, gauges, and fixed-bucket
//! histograms, labeled, snapshottable, and renderable as Prometheus text
//! exposition or JSON.
//!
//! Two feeding modes keep the hot paths cheap:
//!
//! * **Owned handles** ([`ObsCounter`], [`ObsGauge`], [`ObsHistogram`]) are
//!   `Arc`-shared atomics handed out once by [`Registry::counter`] /
//!   [`Registry::gauge`] / [`Registry::histogram`]; updating one is a relaxed
//!   atomic op, no registry lock touched.
//! * **Pull sources** ([`Registry::register_source`]) are closures invoked
//!   only at [`Registry::snapshot`] time. The engine's existing stats
//!   surfaces (`DiskStats`, `ChunkCacheStats`, `NetStats`, …) already keep
//!   atomic counters, so a source simply reads them — zero cost until
//!   someone actually scrapes.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, Cursor, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dfo_types::codec::{read_str, read_u32, read_u64, write_str, write_u32, write_u64};

/// Sorted `key=value` label pairs identifying one series within a family.
pub type LabelSet = Vec<(String, String)>;

/// Normalizes a borrowed label slice into the owned, sorted form used as a
/// series key.
fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels.iter().map(|(k, x)| (k.to_string(), x.to_string())).collect();
    v.sort();
    v
}

/// What kind of metric a family holds; every series in a family shares it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrary `f64` that can go up and down.
    Gauge,
    /// Fixed-bucket distribution of `f64` observations.
    Histogram,
}

impl MetricKind {
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter handle. Cloning the `Arc` and calling
/// [`ObsCounter::add`] is the entire hot-path cost: one relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct ObsCounter(AtomicU64);

impl ObsCounter {
    /// Adds `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable `f64` stored as atomic bits.
#[derive(Debug, Default)]
pub struct ObsGauge(AtomicU64);

impl ObsGauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Atomically adds `v` to an `f64` stored as bits in an `AtomicU64`.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Default duration buckets in seconds: a 1–2.5–5 decade ladder from 10 µs
/// to 10 s, wide enough for a chunk decode and a whole supervised run alike.
pub const DURATION_BUCKETS: &[f64] = &[
    10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
    250e-3, 500e-3, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket histogram handle. One relaxed `fetch_add` per observation
/// (plus a CAS loop for the running sum); bucket bounds are fixed at
/// creation, so there is no resizing and no lock.
#[derive(Debug)]
pub struct ObsHistogram {
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl ObsHistogram {
    fn new(bounds: &[f64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_by(|x, y| x.partial_cmp(y).expect("histogram bounds must not be NaN"));
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Self { bounds: b, buckets, sum_bits: AtomicU64::new(0) }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
    }

    /// Records a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnap {
        HistogramSnap {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A frozen copy of one histogram's buckets, taken by
/// [`ObsHistogram::snapshot`] or carried inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnap {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`,
    /// the last entry being the `+Inf` overflow bucket. Non-cumulative.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnap {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// within the bucket that crosses it — the standard fixed-bucket
    /// estimator. Returns `None` when the histogram is empty. Observations
    /// in the overflow bucket clamp to the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) >= target && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = match self.bounds.get(i) {
                    Some(&b) => b,
                    // overflow bucket: clamp to the largest finite bound
                    None => return Some(*self.bounds.last().unwrap_or(&0.0)),
                };
                let frac = (target - prev as f64) / c as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(*self.bounds.last().unwrap_or(&0.0))
    }

    /// Adds another snapshot's counts into this one. Bounds must match;
    /// mismatched bounds keep the larger-count operand wholesale (the only
    /// sane fallback when two registries disagree on a family's buckets).
    pub fn merge_from(&mut self, other: &HistogramSnap) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
            self.sum += other.sum;
        } else if other.count() > self.count() {
            *self = other.clone();
        }
    }
}

/// One sampled value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram distribution.
    Histogram(HistogramSnap),
}

impl SampleValue {
    fn kind(&self) -> MetricKind {
        match self {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }

    /// Counter payload, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge payload, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram payload, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnap> {
        match self {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// One labeled series inside a [`FamilySnap`].
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnap {
    /// Sorted label pairs.
    pub labels: LabelSet,
    /// The sampled value.
    pub value: SampleValue,
}

/// All series of one metric family inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnap {
    /// Family kind (shared by every series).
    pub kind: MetricKind,
    /// Help text rendered as the Prometheus `# HELP` line.
    pub help: String,
    /// The series, sorted by label set.
    pub series: Vec<SeriesSnap>,
}

/// A consistent point-in-time copy of everything a [`Registry`] knows,
/// including pull-source samples. Snapshots render to Prometheus text or
/// JSON, serialize to a compact binary form for cross-rank aggregation, and
/// merge ([`Snapshot::merge_from`]) so rank 0 can fold peer snapshots into
/// one cluster-wide view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Families keyed by metric name.
    pub families: BTreeMap<String, FamilySnap>,
}

/// Sample sink handed to pull sources during [`Registry::snapshot`].
#[derive(Default)]
pub struct SampleBuf {
    snap: Snapshot,
}

impl SampleBuf {
    /// Emits a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.snap.push(name, MetricKind::Counter, help, label_set(labels), SampleValue::Counter(v));
    }

    /// Emits a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.snap.push(name, MetricKind::Gauge, help, label_set(labels), SampleValue::Gauge(v));
    }
}

/// A pull-model collector: called with a [`SampleBuf`] at snapshot time.
pub type Source = Box<dyn Fn(&mut SampleBuf) + Send + Sync>;

enum Handle {
    Counter(Arc<ObsCounter>),
    Gauge(Arc<ObsGauge>),
    Histogram(Arc<ObsHistogram>),
}

impl Handle {
    fn sample(&self) -> SampleValue {
        match self {
            Handle::Counter(c) => SampleValue::Counter(c.get()),
            Handle::Gauge(g) => SampleValue::Gauge(g.get()),
            Handle::Histogram(h) => SampleValue::Histogram(h.snapshot()),
        }
    }
}

struct OwnedFamily {
    kind: MetricKind,
    help: String,
    series: BTreeMap<LabelSet, Handle>,
}

#[derive(Default)]
struct Inner {
    families: BTreeMap<String, OwnedFamily>,
    sources: Vec<Source>,
}

/// The metrics registry. Cheap to share (`Arc`), cheap to feed (handles are
/// plain atomics; the registry mutex is touched only at handle creation and
/// snapshot time). See the [module docs](self) for the feeding model.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty shared registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn handle(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
        kind: MetricKind,
    ) -> Handle {
        let mut inner = self.inner.lock();
        let fam = inner.families.entry(name.to_string()).or_insert_with(|| OwnedFamily {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric family {name:?} registered as {:?}, requested as {kind:?}",
            fam.kind
        );
        let h = fam.series.entry(label_set(labels)).or_insert_with(make);
        match h {
            Handle::Counter(c) => Handle::Counter(c.clone()),
            Handle::Gauge(g) => Handle::Gauge(g.clone()),
            Handle::Histogram(x) => Handle::Histogram(x.clone()),
        }
    }

    /// Returns the counter for `(name, labels)`, creating it on first use.
    ///
    /// # Panics
    /// If `name` was already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<ObsCounter> {
        match self.handle(
            name,
            help,
            labels,
            || Handle::Counter(Arc::new(ObsCounter::default())),
            MetricKind::Counter,
        ) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Returns the gauge for `(name, labels)`, creating it on first use.
    ///
    /// # Panics
    /// If `name` was already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<ObsGauge> {
        match self.handle(
            name,
            help,
            labels,
            || Handle::Gauge(Arc::new(ObsGauge::default())),
            MetricKind::Gauge,
        ) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Returns the histogram for `(name, labels)`, creating it with the
    /// given bucket bounds on first use (later calls reuse the existing
    /// bounds; pass [`DURATION_BUCKETS`] for timings).
    ///
    /// # Panics
    /// If `name` was already registered with a different kind.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<ObsHistogram> {
        match self.handle(
            name,
            help,
            labels,
            || Handle::Histogram(Arc::new(ObsHistogram::new(bounds))),
            MetricKind::Histogram,
        ) {
            Handle::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Registers a pull source invoked at every [`Registry::snapshot`].
    /// Sources should read pre-existing atomic stats — they run with the
    /// registry lock held, so they must not call back into the registry.
    pub fn register_source(&self, src: Source) {
        self.inner.lock().sources.push(src);
    }

    /// Takes a consistent snapshot: owned handles are sampled, then every
    /// pull source runs. Source samples for an existing series merge into
    /// it (counters and gauges add).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        let mut buf = SampleBuf::default();
        for (name, fam) in &inner.families {
            for (labels, h) in &fam.series {
                buf.snap.push(name, fam.kind, &fam.help, labels.clone(), h.sample());
            }
        }
        for src in &inner.sources {
            src(&mut buf);
        }
        buf.snap
    }
}

impl Snapshot {
    fn push(
        &mut self,
        name: &str,
        kind: MetricKind,
        help: &str,
        labels: LabelSet,
        value: SampleValue,
    ) {
        debug_assert_eq!(value.kind(), kind);
        let fam = self.families.entry(name.to_string()).or_insert_with(|| FamilySnap {
            kind,
            help: help.to_string(),
            series: Vec::new(),
        });
        match fam.series.iter_mut().find(|s| s.labels == labels) {
            Some(existing) => merge_value(&mut existing.value, &value),
            None => {
                fam.series.push(SeriesSnap { labels, value });
                fam.series.sort_by(|a, b| a.labels.cmp(&b.labels));
            }
        }
    }

    /// Looks up one series' value by family name and (unordered) labels.
    pub fn get(&self, family: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let key = label_set(labels);
        self.families.get(family)?.series.iter().find(|s| s.labels == key).map(|s| &s.value)
    }

    /// All series of a family, or an empty slice if the family is absent.
    pub fn series(&self, family: &str) -> &[SeriesSnap] {
        self.families.get(family).map(|f| f.series.as_slice()).unwrap_or(&[])
    }

    /// Folds another snapshot into this one: series with identical labels
    /// add (counters, gauges, histogram buckets); new series are inserted.
    /// Used by rank 0 to aggregate peer snapshots — per-rank labels keep
    /// distinct series distinct, so in practice this is a union.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for (name, fam) in &other.families {
            for s in &fam.series {
                self.push(name, fam.kind, &fam.help, s.labels.clone(), s.value.clone());
            }
        }
    }

    /// Renders [Prometheus text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
    /// `# HELP` / `# TYPE` headers and one line per sample, histograms as
    /// cumulative `_bucket{le=…}` plus `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            if !fam.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", fam.help));
            }
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.prom_type()));
            for s in &fam.series {
                match &s.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&format!("{name}{} {v}\n", prom_labels(&s.labels, None)));
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&format!("{name}{} {}\n", prom_labels(&s.labels, None), v));
                    }
                    SampleValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, &c) in h.counts.iter().enumerate() {
                            cum += c;
                            let le = match h.bounds.get(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                prom_labels(&s.labels, Some(&le))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            prom_labels(&s.labels, None),
                            h.sum
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {cum}\n",
                            prom_labels(&s.labels, None)
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object:
    /// `{"family": {"kind": "...", "series": [{"labels": {...}, ...}]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first_fam = true;
        for (name, fam) in &self.families {
            if !first_fam {
                out.push(',');
            }
            first_fam = false;
            out.push_str(&format!(
                "{}:{{\"kind\":{},\"series\":[",
                json_str(name),
                json_str(fam.kind.prom_type())
            ));
            for (i, s) in fam.series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (j, (k, v)) in s.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
                }
                out.push_str("},");
                match &s.value {
                    SampleValue::Counter(v) => out.push_str(&format!("\"value\":{v}")),
                    SampleValue::Gauge(v) => out.push_str(&format!("\"value\":{}", json_num(*v))),
                    SampleValue::Histogram(h) => {
                        out.push_str(&format!(
                            "\"sum\":{},\"count\":{},\"buckets\":[",
                            json_num(h.sum),
                            h.count()
                        ));
                        for (j, &c) in h.counts.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            let le = match h.bounds.get(j) {
                                Some(b) => json_num(*b),
                                None => "\"+Inf\"".to_string(),
                            };
                            out.push_str(&format!("{{\"le\":{le},\"n\":{c}}}"));
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Serializes the snapshot to the compact binary form understood by
    /// [`Snapshot::decode`] — the wire format ranks use to ship snapshots
    /// to rank 0 over `exchange_bytes`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::new();
        let enc = |w: &mut Vec<u8>| -> io::Result<()> {
            write_u32(w, SNAPSHOT_MAGIC)?;
            write_u32(w, self.families.len() as u32)?;
            for (name, fam) in &self.families {
                write_str(w, name)?;
                w.push(match fam.kind {
                    MetricKind::Counter => 0,
                    MetricKind::Gauge => 1,
                    MetricKind::Histogram => 2,
                });
                write_str(w, &fam.help)?;
                write_u32(w, fam.series.len() as u32)?;
                for s in &fam.series {
                    write_u32(w, s.labels.len() as u32)?;
                    for (k, v) in &s.labels {
                        write_str(w, k)?;
                        write_str(w, v)?;
                    }
                    match &s.value {
                        SampleValue::Counter(v) => write_u64(w, *v)?,
                        SampleValue::Gauge(v) => write_u64(w, v.to_bits())?,
                        SampleValue::Histogram(h) => {
                            write_u32(w, h.bounds.len() as u32)?;
                            for b in &h.bounds {
                                write_u64(w, b.to_bits())?;
                            }
                            for c in &h.counts {
                                write_u64(w, *c)?;
                            }
                            write_u64(w, h.sum.to_bits())?;
                        }
                    }
                }
            }
            Ok(())
        };
        enc(&mut w).expect("writing to a Vec cannot fail");
        w
    }

    /// Parses a snapshot encoded by [`Snapshot::encode`].
    pub fn decode(bytes: &[u8]) -> dfo_types::Result<Snapshot> {
        let mut r = Cursor::new(bytes);
        decode_inner(&mut r)
            .map_err(|e| dfo_types::DfoError::Corrupt(format!("metrics snapshot: {e}")))
    }
}

const SNAPSHOT_MAGIC: u32 = 0x4446_4f4d; // "DFOM"

fn decode_inner<R: Read>(r: &mut R) -> io::Result<Snapshot> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if read_u32(r)? != SNAPSHOT_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut snap = Snapshot::default();
    let nfam = read_u32(r)?;
    for _ in 0..nfam {
        let name = read_str(r)?;
        let mut kind_b = [0u8; 1];
        r.read_exact(&mut kind_b)?;
        let kind = match kind_b[0] {
            0 => MetricKind::Counter,
            1 => MetricKind::Gauge,
            2 => MetricKind::Histogram,
            k => return Err(bad(&format!("unknown metric kind {k}"))),
        };
        let help = read_str(r)?;
        let nseries = read_u32(r)?;
        for _ in 0..nseries {
            let nlabels = read_u32(r)?;
            let mut labels = LabelSet::new();
            for _ in 0..nlabels {
                let k = read_str(r)?;
                let v = read_str(r)?;
                labels.push((k, v));
            }
            let value = match kind {
                MetricKind::Counter => SampleValue::Counter(read_u64(r)?),
                MetricKind::Gauge => SampleValue::Gauge(f64::from_bits(read_u64(r)?)),
                MetricKind::Histogram => {
                    let nb = read_u32(r)? as usize;
                    if nb > 1 << 16 {
                        return Err(bad("implausible bucket count"));
                    }
                    let mut bounds = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        bounds.push(f64::from_bits(read_u64(r)?));
                    }
                    let mut counts = Vec::with_capacity(nb + 1);
                    for _ in 0..=nb {
                        counts.push(read_u64(r)?);
                    }
                    let sum = f64::from_bits(read_u64(r)?);
                    SampleValue::Histogram(HistogramSnap { bounds, counts, sum })
                }
            };
            snap.push(&name, kind, &help, labels, value);
        }
    }
    Ok(snap)
}

fn merge_value(into: &mut SampleValue, from: &SampleValue) {
    match (into, from) {
        (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
        (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a += b,
        (SampleValue::Histogram(a), SampleValue::Histogram(b)) => a.merge_from(b),
        // kind clash across merged snapshots: keep the existing value
        _ => {}
    }
}

/// Renders `{k="v",…}` with Prometheus label-value escaping, optionally
/// appending an `le` label (histogram buckets).
fn prom_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", prom_escape(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// JSON string literal with escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite-float JSON literal (`NaN`/`±Inf` degrade to `0`, which JSON
/// cannot represent).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("dfo_test_total", "test counter", &[("rank", "0")]);
        c.add(41);
        c.inc();
        let g = reg.gauge("dfo_test_gauge", "test gauge", &[]);
        g.set(2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.get("dfo_test_total", &[("rank", "0")]).unwrap().as_counter(), Some(42));
        assert_eq!(snap.get("dfo_test_gauge", &[]).unwrap().as_gauge(), Some(2.5));
    }

    #[test]
    fn handles_are_shared_per_label_set() {
        let reg = Registry::new();
        let a = reg.counter("c", "", &[("rank", "0"), ("phase", "x")]);
        // same labels, different order: same handle
        let b = reg.counter("c", "", &[("phase", "x"), ("rank", "0")]);
        a.add(1);
        b.add(1);
        assert_eq!(a.get(), 2);
        let other = reg.counter("c", "", &[("rank", "1"), ("phase", "x")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("clash", "", &[]);
        reg.gauge("clash", "", &[]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = ObsHistogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 2, 1, 1]);
        assert_eq!(s.count(), 5);
        assert!((s.sum - 106.6).abs() < 1e-9);
        let p50 = s.quantile(0.5).unwrap();
        assert!(p50 > 1.0 && p50 <= 2.0, "{p50}");
        // overflow observations clamp to the top finite bound
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert!(s.quantile(0.0).is_some());
        assert_eq!(HistogramSnap { bounds: vec![], counts: vec![0], sum: 0.0 }.quantile(0.5), None);
    }

    #[test]
    fn sources_feed_snapshots_without_hot_path_cost() {
        let reg = Registry::new();
        let shared = Arc::new(AtomicU64::new(7));
        let rd = shared.clone();
        reg.register_source(Box::new(move |buf| {
            buf.counter(
                "dfo_src_total",
                "from a source",
                &[("rank", "1")],
                rd.load(Ordering::Relaxed),
            );
        }));
        assert_eq!(
            reg.snapshot().get("dfo_src_total", &[("rank", "1")]).unwrap().as_counter(),
            Some(7)
        );
        shared.store(9, Ordering::Relaxed);
        assert_eq!(
            reg.snapshot().get("dfo_src_total", &[("rank", "1")]).unwrap().as_counter(),
            Some(9)
        );
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("dfo_c_total", "a counter", &[("rank", "0")]).add(3);
        reg.histogram("dfo_h_seconds", "a histogram", &[], &[0.1, 1.0]).observe(0.5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE dfo_c_total counter"), "{text}");
        assert!(text.contains("dfo_c_total{rank=\"0\"} 3"), "{text}");
        assert!(text.contains("# TYPE dfo_h_seconds histogram"), "{text}");
        assert!(text.contains("dfo_h_seconds_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("dfo_h_seconds_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("dfo_h_seconds_count 1"), "{text}");
    }

    #[test]
    fn snapshot_binary_roundtrip() {
        let reg = Registry::new();
        reg.counter("dfo_c_total", "c", &[("rank", "0")]).add(5);
        reg.gauge("dfo_g", "g", &[("rank", "0"), ("peer", "1")]).set(-1.25);
        reg.histogram("dfo_h_seconds", "h", &[("rank", "0")], DURATION_BUCKETS).observe(0.003);
        let snap = reg.snapshot();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(snap, decoded);
        assert!(Snapshot::decode(b"garbage").is_err());
    }

    #[test]
    fn merge_sums_matching_series_and_unions_the_rest() {
        let r0 = Registry::new();
        r0.counter("dfo_c_total", "c", &[("rank", "0")]).add(2);
        let r1 = Registry::new();
        r1.counter("dfo_c_total", "c", &[("rank", "1")]).add(3);
        r1.counter("dfo_c_total", "c", &[("rank", "0")]).add(10);
        let mut merged = r0.snapshot();
        merged.merge_from(&r1.snapshot());
        assert_eq!(merged.get("dfo_c_total", &[("rank", "0")]).unwrap().as_counter(), Some(12));
        assert_eq!(merged.get("dfo_c_total", &[("rank", "1")]).unwrap().as_counter(), Some(3));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let reg = Registry::new();
        reg.counter("dfo_c_total", "c", &[("job", "pr\"1")]).add(1);
        reg.histogram("dfo_h_seconds", "h", &[], &[0.5]).observe(0.1);
        let j = reg.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"pr\\\"1\""), "{j}");
        assert!(j.contains("\"buckets\""), "{j}");
    }
}
