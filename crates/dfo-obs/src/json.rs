//! A minimal recursive-descent JSON parser used to validate trace files and
//! metric snapshots in tests and examples — no serialization framework, same
//! spirit as the workspace's hand-rolled binary codecs.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (strings arrive as valid UTF-8)
                let tail = &b[*pos..];
                let s = std::str::from_utf8(tail).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null, "e": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn own_renderings_parse_back() {
        assert!(parse(&crate::registry::json_str("quote\" slash\\ tab\t")).is_ok());
        let v = parse(r#"{"dur": 12.345}"#).unwrap();
        assert_eq!(v.get("dur").unwrap().as_f64(), Some(12.345));
    }
}
