//! Span tracing: a bounded per-rank flight recorder plus trace-file formats.
//!
//! Every instrumented operation (a `Process` call, a pipeline phase, a
//! collective, a chunk load, a checkpoint commit) opens a [`Span`] guard;
//! dropping it records one [`SpanRecord`] into the rank's
//! [`FlightRecorder`] — a fixed-capacity ring buffer that overwrites its
//! oldest entries, so a long run keeps the *recent* timeline at a bounded
//! memory cost.
//!
//! Recorded spans serialize to a compact binary form
//! ([`encode_spans`]/[`decode_spans`]) so peer ranks can ship them to
//! rank 0, which writes one merged timeline per run: Chrome `trace_event`
//! JSON (loadable in Perfetto / `chrome://tracing`, one process per rank)
//! or JSONL when the target path ends in `.jsonl`. [`parse_trace`] reads
//! both formats back for tests and CI validation.

use std::borrow::Cow;
use std::io::{self, Cursor, Read};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dfo_types::codec::{read_str, read_u32, read_u64, write_str, write_u32, write_u64};
use dfo_types::{DfoError, Result};
use parking_lot::Mutex;

use crate::json::{self, JsonValue};
use crate::registry::json_str;

/// Process-unique thread id for trace attribution. Assigned densely in
/// first-use order (stable within a process; Chrome's viewer only needs
/// distinctness per `pid`).
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One completed span: a named, categorized interval on one thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `phase1_generate`). Borrowed `'static` strings on
    /// the recording path; owned strings after a decode.
    pub name: Cow<'static, str>,
    /// Coarse category (`phase`, `call`, `net`, `storage`, `ckpt`).
    pub cat: Cow<'static, str>,
    /// Recording thread ([`current_tid`]).
    pub tid: u64,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    buf: std::collections::VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded in-memory span buffer for one rank. Recording takes one short
/// mutex acquisition per *completed span* — spans are coarse (phases,
/// collectives, chunk loads), so this is far off any per-edge hot path.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<Ring>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(Ring { buf: std::collections::VecDeque::new(), dropped: 0 }),
        })
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span guard; the span is recorded when the guard drops.
    pub fn span(self: &Arc<Self>, name: &'static str, cat: &'static str) -> Span {
        Span { rec: self.clone(), name, cat, start_ns: self.now_ns() }
    }

    /// Records a completed span, evicting the oldest if full.
    pub fn record(&self, span: SpanRecord) {
        let mut inner = self.inner.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(span);
    }

    /// Copies out the retained spans, oldest first (in recording order).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted so far to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Discards all retained spans (eviction count included).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.dropped = 0;
    }
}

/// RAII guard for an in-progress span; records into its [`FlightRecorder`]
/// on drop.
pub struct Span {
    rec: Arc<FlightRecorder>,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = self.rec.now_ns();
        self.rec.record(SpanRecord {
            name: Cow::Borrowed(self.name),
            cat: Cow::Borrowed(self.cat),
            tid: current_tid(),
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
        });
    }
}

const SPANS_MAGIC: u32 = 0x4446_4f54; // "DFOT"

/// Serializes spans to the compact binary wire form ranks use to ship
/// their timelines to rank 0.
pub fn encode_spans(spans: &[SpanRecord]) -> Vec<u8> {
    let mut w = Vec::new();
    write_u32(&mut w, SPANS_MAGIC).expect("vec write");
    write_u32(&mut w, spans.len() as u32).expect("vec write");
    for s in spans {
        write_str(&mut w, &s.name).expect("vec write");
        write_str(&mut w, &s.cat).expect("vec write");
        write_u64(&mut w, s.tid).expect("vec write");
        write_u64(&mut w, s.start_ns).expect("vec write");
        write_u64(&mut w, s.dur_ns).expect("vec write");
    }
    w
}

/// Parses spans encoded by [`encode_spans`].
pub fn decode_spans(bytes: &[u8]) -> Result<Vec<SpanRecord>> {
    let mut r = Cursor::new(bytes);
    decode_spans_inner(&mut r).map_err(|e| DfoError::Corrupt(format!("span buffer: {e}")))
}

fn decode_spans_inner<R: Read>(r: &mut R) -> io::Result<Vec<SpanRecord>> {
    if read_u32(r)? != SPANS_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad span-buffer magic"));
    }
    let n = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(SpanRecord {
            name: Cow::Owned(read_str(r)?),
            cat: Cow::Owned(read_str(r)?),
            tid: read_u64(r)?,
            start_ns: read_u64(r)?,
            dur_ns: read_u64(r)?,
        });
    }
    Ok(out)
}

/// Fractional microseconds (`ns / 1000` with 3 decimals) — the unit Chrome
/// `trace_event` timestamps use.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn event_json(pid: usize, s: &SpanRecord) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}}}",
        json_str(&s.name),
        json_str(&s.cat),
        pid,
        s.tid,
        fmt_us(s.start_ns),
        fmt_us(s.dur_ns),
    )
}

/// Renders `(rank, spans)` pairs as one Chrome `trace_event` JSON document
/// (`"ph":"X"` complete events, `pid` = rank) loadable in Perfetto or
/// `chrome://tracing`.
pub fn chrome_trace_json(ranks: &[(usize, Vec<SpanRecord>)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (rank, spans) in ranks {
        for s in spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&event_json(*rank, s));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders `(rank, spans)` pairs as JSONL: one Chrome-style event object
/// per line, no enclosing array.
pub fn jsonl_trace(ranks: &[(usize, Vec<SpanRecord>)]) -> String {
    let mut out = String::new();
    for (rank, spans) in ranks {
        for s in spans {
            out.push_str(&event_json(*rank, s));
            out.push('\n');
        }
    }
    out
}

/// Writes a merged trace file, creating parent directories. The format
/// follows the extension: `.jsonl` gets [`jsonl_trace`], anything else the
/// Chrome `trace_event` document.
pub fn write_trace_file(path: &Path, ranks: &[(usize, Vec<SpanRecord>)]) -> Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| DfoError::Io {
                context: format!("creating trace dir {}", parent.display()),
                source: e,
            })?;
        }
    }
    let body = if path.extension().is_some_and(|e| e == "jsonl") {
        jsonl_trace(ranks)
    } else {
        chrome_trace_json(ranks)
    };
    std::fs::write(path, body).map_err(|e| DfoError::Io {
        context: format!("writing trace file {}", path.display()),
        source: e,
    })
}

/// One event read back from a trace file by [`parse_trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Originating rank (`pid` in the Chrome format).
    pub pid: u64,
    /// Originating thread within the rank.
    pub tid: u64,
    /// Start timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl TraceEvent {
    /// End timestamp in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }
}

fn event_from_json(v: &JsonValue) -> Result<TraceEvent> {
    let field =
        |k: &str| v.get(k).ok_or_else(|| DfoError::Corrupt(format!("trace event missing {k:?}")));
    let num = |k: &str| -> Result<f64> {
        field(k)?
            .as_f64()
            .ok_or_else(|| DfoError::Corrupt(format!("trace event {k:?} not a number")))
    };
    let s = |k: &str| -> Result<String> { Ok(field(k)?.as_str().unwrap_or_default().to_string()) };
    Ok(TraceEvent {
        name: s("name")?,
        cat: s("cat")?,
        pid: num("pid")? as u64,
        tid: num("tid")? as u64,
        ts_ns: (num("ts")? * 1000.0).round() as u64,
        dur_ns: (num("dur")? * 1000.0).round() as u64,
    })
}

/// Parses a trace produced by [`write_trace_file`] (either format,
/// auto-detected) back into events, for tests and CI validation.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>> {
    // One JSON document (the Chrome trace_event wrapper) parses whole;
    // JSONL does not, because line two starts a fresh document. A one-line
    // JSONL file also parses whole but lacks the traceEvents wrapper.
    if let Ok(doc) = json::parse(text) {
        match doc.get("traceEvents") {
            Some(events) => {
                let events = events
                    .as_array()
                    .ok_or_else(|| DfoError::Corrupt("traceEvents is not an array".into()))?;
                events.iter().map(event_from_json).collect()
            }
            None => Ok(vec![event_from_json(&doc)?]),
        }
    } else {
        // JSONL: one event object per non-empty line
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(|l| json::parse(l).map_err(DfoError::Corrupt).and_then(|v| event_from_json(&v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(name: &'static str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord { name: Cow::Borrowed(name), cat: Cow::Borrowed("t"), tid: 1, start_ns, dur_ns }
    }

    #[test]
    fn span_guard_records_on_drop() {
        let fr = FlightRecorder::new(16);
        {
            let _outer = fr.span("outer", "test");
            let _inner = fr.span("inner", "test");
        }
        let spans = fr.snapshot();
        assert_eq!(spans.len(), 2);
        // inner drops first, so it is recorded first
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert!(spans[1].start_ns <= spans[0].start_ns);
        assert!(spans[1].start_ns + spans[1].dur_ns >= spans[0].start_ns + spans[0].dur_ns);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(rec("s", i, 1));
        }
        let spans = fr.snapshot();
        assert_eq!(spans.iter().map(|s| s.start_ns).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(fr.dropped(), 2);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
    }

    // Overwrite-oldest semantics hold for any capacity and load: the
    // recorder retains exactly the most recent `min(n, cap)` spans in
    // order, and reports every older one as dropped.
    proptest! {
        #[test]
        fn ring_property(cap in 1usize..12, n in 0usize..40) {
            let fr = FlightRecorder::new(cap);
            for i in 0..n as u64 {
                fr.record(rec("s", i, 0));
            }
            let spans = fr.snapshot();
            let kept = n.min(cap);
            prop_assert_eq!(spans.len(), kept);
            prop_assert_eq!(fr.dropped(), (n - kept) as u64);
            for (j, s) in spans.iter().enumerate() {
                prop_assert_eq!(s.start_ns, (n - kept + j) as u64);
            }
        }
    }

    #[test]
    fn binary_roundtrip() {
        let spans = vec![rec("a", 5, 10), rec("b", 20, 1)];
        let decoded = decode_spans(&encode_spans(&spans)).unwrap();
        assert_eq!(decoded, spans);
        assert!(decode_spans(b"junk").is_err());
    }

    #[test]
    fn chrome_roundtrip() {
        let ranks = vec![(0, vec![rec("phase1_generate", 1500, 2500)]), (1, vec![rec("b", 0, 1)])];
        let events = parse_trace(&chrome_trace_json(&ranks)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "phase1_generate");
        assert_eq!(events[0].pid, 0);
        assert_eq!(events[0].ts_ns, 1500);
        assert_eq!(events[0].dur_ns, 2500);
        assert_eq!(events[1].pid, 1);
    }

    #[test]
    fn jsonl_roundtrip() {
        let ranks = vec![(3, vec![rec("x", 1, 2), rec("y", 3, 4)])];
        let text = jsonl_trace(&ranks);
        assert_eq!(text.lines().count(), 2);
        let events = parse_trace(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].name, "y");
        assert_eq!(events[1].pid, 3);
        assert_eq!(events[1].ts_ns, 3);
    }

    #[test]
    fn trace_file_format_follows_extension() {
        let dir = tempfile::tempdir().unwrap();
        let ranks = vec![(0, vec![rec("s", 0, 1)])];
        let chrome = dir.path().join("t.trace.json");
        write_trace_file(&chrome, &ranks).unwrap();
        let body = std::fs::read_to_string(&chrome).unwrap();
        assert!(body.contains("traceEvents"));
        assert_eq!(parse_trace(&body).unwrap().len(), 1);
        let jsonl = dir.path().join("t.jsonl");
        write_trace_file(&jsonl, &ranks).unwrap();
        let body = std::fs::read_to_string(&jsonl).unwrap();
        assert!(!body.contains("traceEvents"));
        assert_eq!(parse_trace(&body).unwrap().len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("{\"noTraceEvents\":[]}").is_err());
        assert!(parse_trace("not json at all").is_err());
    }

    #[test]
    fn tids_are_distinct_across_threads() {
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
        assert_eq!(a, current_tid());
    }
}
