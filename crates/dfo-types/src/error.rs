//! Error type shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, DfoError>;

/// Errors surfaced by the DFOGraph substrates and engine.
#[derive(Debug)]
pub enum DfoError {
    /// Underlying I/O failure, annotated with the operation context.
    Io { context: String, source: std::io::Error },
    /// A persisted structure failed validation when read back.
    Corrupt(String),
    /// Invalid configuration detected at startup.
    Config(String),
    /// The cluster network was shut down while an operation was pending.
    NetClosed(String),
    /// Mesh bootstrap failed: a peer could not be dialed, timed out, or
    /// presented a bad handshake.
    Handshake(String),
    /// Recovery was requested but no committed checkpoint exists.
    NoCheckpoint(String),
    /// A node program panicked (a bug in user code, not a mesh failure):
    /// deterministic, so never retried by supervised recovery.
    Panic(String),
    /// The job was cancelled cooperatively: every rank observed the cancel
    /// token at the same `Process`-call boundary and unwound together, so
    /// on-disk array state is the consistent state of the last committed
    /// call. Never retried.
    Cancelled(String),
    /// A remote peer spoke the job-control protocol wrong: bad magic,
    /// unsupported wire version, an undecodable message, or a reply that
    /// does not fit the request. Deterministic (resending the same bytes
    /// replays it), so never retried.
    Protocol(String),
    /// A supervised run (or its supervisor) recovered from mesh failures
    /// until the restart budget ran out; `last` is the failure that broke
    /// the camel's back.
    RestartsExhausted {
        /// Recoveries attempted before giving up.
        attempts: u32,
        /// The final underlying failure.
        last: Box<DfoError>,
    },
}

impl DfoError {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        DfoError::Io { context: context.into(), source }
    }

    /// Whether a fresh attempt could plausibly succeed: mesh failures
    /// (`NetClosed`, `Handshake`) are environmental and transient, and an
    /// exhausted restart budget is retryable when its underlying failure
    /// is. Deterministic failures (panics, corruption, bad config,
    /// cooperative cancellation) are not — retrying replays the bug.
    pub fn is_retryable(&self) -> bool {
        match self {
            DfoError::NetClosed(_) | DfoError::Handshake(_) => true,
            DfoError::RestartsExhausted { last, .. } => last.is_retryable(),
            _ => false,
        }
    }
}

impl fmt::Display for DfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfoError::Io { context, source } => write!(f, "I/O error during {context}: {source}"),
            DfoError::Corrupt(m) => write!(f, "corrupt on-disk structure: {m}"),
            DfoError::Config(m) => write!(f, "invalid configuration: {m}"),
            DfoError::NetClosed(m) => write!(f, "network closed: {m}"),
            DfoError::Handshake(m) => write!(f, "cluster bootstrap failed: {m}"),
            DfoError::NoCheckpoint(m) => write!(f, "no checkpoint available: {m}"),
            DfoError::Panic(m) => write!(f, "node program panicked: {m}"),
            DfoError::Cancelled(m) => write!(f, "job cancelled: {m}"),
            DfoError::Protocol(m) => write!(f, "job-control protocol violation: {m}"),
            DfoError::RestartsExhausted { attempts, last } => {
                write!(f, "restart budget exhausted after {attempts} recoveries: {last}")
            }
        }
    }
}

impl std::error::Error for DfoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DfoError::Io { source, .. } => Some(source),
            DfoError::RestartsExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DfoError {
    fn from(e: std::io::Error) -> Self {
        DfoError::Io { context: "<unspecified>".into(), source: e }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = DfoError::io("writing chunk p0_b3", std::io::Error::other("disk full"));
        let s = e.to_string();
        assert!(s.contains("p0_b3"));
        assert!(s.contains("disk full"));
    }

    #[test]
    fn restarts_exhausted_chains_source() {
        let e = DfoError::RestartsExhausted {
            attempts: 3,
            last: Box::new(DfoError::NetClosed("peer gone".into())),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("peer gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryability_follows_failure_class() {
        assert!(DfoError::NetClosed("peer gone".into()).is_retryable());
        assert!(DfoError::Handshake("timed out".into()).is_retryable());
        assert!(!DfoError::Panic("bug".into()).is_retryable());
        assert!(!DfoError::Corrupt("bad crc".into()).is_retryable());
        assert!(!DfoError::Cancelled("user".into()).is_retryable());
        let retryable = DfoError::RestartsExhausted {
            attempts: 2,
            last: Box::new(DfoError::NetClosed("peer gone".into())),
        };
        assert!(retryable.is_retryable());
        let deterministic = DfoError::RestartsExhausted {
            attempts: 2,
            last: Box::new(DfoError::Panic("bug".into())),
        };
        assert!(!deterministic.is_retryable());
    }

    #[test]
    fn from_io_error() {
        let e: DfoError = std::io::Error::new(std::io::ErrorKind::NotFound, "x").into();
        assert!(matches!(e, DfoError::Io { .. }));
    }
}
