//! Identifier types for vertices, cluster ranks, partitions and batches.
//!
//! DFOGraph assigns vertices continuous numeric IDs and partitions them into
//! `P` contiguous ranges (one per node); inside each node vertices are split
//! further into fixed-size *batches* (the last batch may be short). Ranges
//! are half-open `[start, end)`.

/// Global vertex identifier. 64-bit so that graphs beyond 4 B vertices (the
/// paper evaluates KRON-38 with 2.7e11 vertices) are representable.
pub type VertexId = u64;

/// Rank of a node in the (simulated) cluster, `0..P`.
pub type Rank = usize;

/// Inter-node partition index; equals the owning rank in DFOGraph.
pub type PartitionId = usize;

/// Intra-node batch index, local to one node.
pub type BatchId = usize;

/// A half-open range of vertex IDs `[start, end)`.
///
/// Both inter-node partitions and intra-node batches are `VertexRange`s:
/// DFOGraph's two-level *column-oriented* partitioning keys every edge chunk
/// by (source partition, destination batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VertexRange {
    pub start: VertexId,
    pub end: VertexId,
}

impl VertexRange {
    /// Creates a range; `start` may equal `end` (empty range).
    #[inline]
    pub fn new(start: VertexId, end: VertexId) -> Self {
        debug_assert!(start <= end, "range start {start} > end {end}");
        Self { start, end }
    }

    /// Number of vertices in the range.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `v` falls inside the range.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// Offset of `v` from the start of the range.
    ///
    /// On-disk structures (CSR/DCSR, dispatch graphs, filter lists) store
    /// 32-bit *local* indices relative to their partition to halve the space
    /// against naive 64-bit global IDs.
    #[inline]
    pub fn local(&self, v: VertexId) -> u32 {
        debug_assert!(self.contains(v));
        (v - self.start) as u32
    }

    /// Inverse of [`VertexRange::local`].
    #[inline]
    pub fn global(&self, local: u32) -> VertexId {
        self.start + local as VertexId
    }

    /// Iterates over the vertices of the range.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }

    /// Intersection with another range (possibly empty).
    pub fn intersect(&self, other: &VertexRange) -> VertexRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end).max(start);
        VertexRange { start, end }
    }
}

/// Splits `range` into batches of `batch_size` vertices; the last batch may
/// contain fewer vertices (paper §2.2, footnote 3).
pub fn split_into_batches(range: VertexRange, batch_size: u64) -> Vec<VertexRange> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut out = Vec::with_capacity(range.len().div_ceil(batch_size) as usize);
    let mut s = range.start;
    while s < range.end {
        let e = (s + batch_size).min(range.end);
        out.push(VertexRange::new(s, e));
        s = e;
    }
    if out.is_empty() {
        out.push(range); // keep at least one (empty) batch for empty partitions
    }
    out
}

/// Locates which range of a sorted, disjoint, contiguous list contains `v`.
pub fn find_range(ranges: &[VertexRange], v: VertexId) -> Option<usize> {
    if ranges.is_empty() {
        return None;
    }
    let idx = ranges.partition_point(|r| r.end <= v);
    if idx < ranges.len() && ranges[idx].contains(v) {
        Some(idx)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = VertexRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert_eq!(r.local(13), 3);
        assert_eq!(r.global(3), 13);
    }

    #[test]
    fn empty_range() {
        let r = VertexRange::new(5, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.contains(5));
    }

    #[test]
    fn split_exact_and_ragged() {
        let bs = split_into_batches(VertexRange::new(0, 10), 5);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[1], VertexRange::new(5, 10));
        let bs = split_into_batches(VertexRange::new(0, 11), 5);
        assert_eq!(bs.len(), 3);
        assert_eq!(bs[2].len(), 1);
    }

    #[test]
    fn split_empty_partition_keeps_one_batch() {
        let bs = split_into_batches(VertexRange::new(7, 7), 4);
        assert_eq!(bs.len(), 1);
        assert!(bs[0].is_empty());
    }

    #[test]
    fn find_range_hits_and_misses() {
        let rs = vec![VertexRange::new(0, 4), VertexRange::new(4, 4), VertexRange::new(4, 9)];
        assert_eq!(find_range(&rs, 0), Some(0));
        assert_eq!(find_range(&rs, 3), Some(0));
        assert_eq!(find_range(&rs, 4), Some(2));
        assert_eq!(find_range(&rs, 8), Some(2));
        assert_eq!(find_range(&rs, 9), None);
    }

    #[test]
    fn intersect() {
        let a = VertexRange::new(0, 10);
        let b = VertexRange::new(5, 15);
        assert_eq!(a.intersect(&b), VertexRange::new(5, 10));
        let c = VertexRange::new(20, 30);
        assert!(a.intersect(&c).is_empty());
    }
}
