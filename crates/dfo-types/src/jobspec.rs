//! The job vocabulary and its versioned wire codec.
//!
//! [`JobSpec`] / [`JobStatus`] are the messages a remote client exchanges
//! with a resident service daemon, so they live here in the foundation
//! crate — below both the algorithm registry and the service — as plain
//! data with an explicit binary encoding.
//!
//! ## Wire format
//!
//! Every encoded message starts with a version byte
//! ([`JOB_WIRE_VERSION`]), followed by tagged fields:
//!
//! ```text
//! [ version: u8 ] ( [ field_id: u8 ][ len: u32 LE ][ payload: len bytes ] )*
//! ```
//!
//! Decoders **skip fields with unknown ids**, so a newer sender can add
//! fields without breaking an older receiver; the version byte is only
//! rejected when it is `0` (corrupt) — a higher version than
//! [`JOB_WIRE_VERSION`] still decodes through the skip rule. Absent fields
//! take their `Default` value, which keeps old encodings of a message
//! decodable forever. Both properties are locked in by tests.

use crate::codec::{read_str, read_u32, read_u64, write_str, write_u32, write_u64};
use crate::error::{DfoError, Result};
use std::collections::BTreeMap;
use std::io::{Cursor, Read, Write};

/// Current version byte stamped on every encoded job message.
pub const JOB_WIRE_VERSION: u8 = 1;

/// Integer parameters an algorithm reads by key (`iters`, `root`, …).
/// A sorted map so encodings are canonical and comparisons deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobParams {
    map: BTreeMap<String, u64>,
}

impl JobParams {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert: `JobParams::new().with("iters", 10)`.
    #[must_use]
    pub fn with(mut self, key: &str, value: u64) -> Self {
        self.map.insert(key.to_string(), value);
        self
    }

    pub fn set(&mut self, key: &str, value: u64) {
        self.map.insert(key.to_string(), value);
    }

    pub fn get(&self, key: &str) -> Option<u64> {
        self.map.get(key).copied()
    }

    /// The value of `key`, or `default` when absent.
    pub fn get_or(&self, key: &str, default: u64) -> u64 {
        self.get(key).unwrap_or(default)
    }

    /// Key/value pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u32(&mut out, self.map.len() as u32).expect("vec write");
        for (k, v) in &self.map {
            write_str(&mut out, k).expect("vec write");
            write_u64(&mut out, *v).expect("vec write");
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Cursor::new(bytes);
        let n = read_u32(&mut c).map_err(|e| corrupt("params count", &e))?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = read_str(&mut c).map_err(|e| corrupt("params key", &e))?;
            let v = read_u64(&mut c).map_err(|e| corrupt("params value", &e))?;
            map.insert(k, v);
        }
        Ok(Self { map })
    }
}

fn corrupt(what: &str, e: &dyn std::fmt::Display) -> DfoError {
    DfoError::Protocol(format!("decoding {what}: {e}"))
}

/// Writes one `[id][len][payload]` field.
fn write_field<W: Write>(w: &mut W, id: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[id])?;
    write_u32(w, payload.len() as u32)?;
    w.write_all(payload)
}

/// Iterates the tagged fields of `bytes` (everything after the version
/// byte), calling `f` with each `(id, payload)`. Unknown ids are simply
/// passed through to `f`, which ignores them — the forward-compatibility
/// rule of the format.
fn for_each_field(bytes: &[u8], mut f: impl FnMut(u8, &[u8]) -> Result<()>) -> Result<()> {
    let mut c = Cursor::new(bytes);
    loop {
        let mut id = [0u8; 1];
        match c.read(&mut id) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) => return Err(corrupt("field id", &e)),
        }
        let len = read_u32(&mut c).map_err(|e| corrupt("field length", &e))? as usize;
        let pos = c.position() as usize;
        let rest = &bytes[pos..];
        if len > rest.len() {
            return Err(DfoError::Protocol(format!(
                "field {} claims {len} bytes, {} remain",
                id[0],
                rest.len()
            )));
        }
        f(id[0], &rest[..len])?;
        c.set_position((pos + len) as u64);
    }
}

/// Checks and strips the leading version byte.
fn split_version<'a>(what: &str, bytes: &'a [u8]) -> Result<&'a [u8]> {
    match bytes.first() {
        None => Err(DfoError::Protocol(format!("empty {what} message"))),
        Some(0) => Err(DfoError::Protocol(format!("{what} wire version 0"))),
        // any version >= 1 decodes: unknown fields are skipped below
        Some(_) => Ok(&bytes[1..]),
    }
}

fn u64_field(what: &str, payload: &[u8]) -> Result<u64> {
    read_u64(&mut Cursor::new(payload)).map_err(|e| corrupt(what, &e))
}

fn str_field(what: &str, payload: &[u8]) -> Result<String> {
    String::from_utf8(payload.to_vec()).map_err(|e| corrupt(what, &e))
}

/// What to run: a catalog graph by name, a registered algorithm by name,
/// and the algorithm's integer parameters. Deliberately plain data — no
/// process-local state — so a transport layer can ship it between
/// processes unchanged; [`JobSpec::encode`] / [`JobSpec::decode`] are that
/// transport's wire form.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Catalog name of the graph the service loaded.
    pub graph: String,
    /// Registry name of the algorithm.
    pub algorithm: String,
    /// Parameters the algorithm reads by key (`iters`, `root`, …).
    pub params: JobParams,
    /// Overrides the admission-control footprint estimate (bytes per node).
    /// `None` lets the service derive one — from its learned footprint
    /// history for this `(algorithm, graph)` when it has any, else from the
    /// algorithm's static per-vertex state hint.
    pub mem_estimate: Option<u64>,
    /// Bounded retry policy: how many times a *retryable* failure
    /// ([`DfoError::is_retryable`] — a mesh death or bootstrap handshake
    /// failure, the errors checkpoint-restart exists for) is re-executed
    /// before surfacing. Non-retryable errors (corruption, config, panics,
    /// cancellation) surface immediately. Defaults to 0.
    pub max_retries: u32,
    /// Scheduling priority: higher runs earlier. Equal priorities fall back
    /// to per-client fair share, then submission order; queued jobs age so
    /// a low priority is a preference, not starvation. Defaults to 0.
    pub priority: i32,
    /// Who submitted this job, for per-client fair-share scheduling. The
    /// remote client library stamps its connection's id here; empty (the
    /// default) means "anonymous", which is itself one fair-share bucket.
    pub client_id: String,
}

// field ids of the JobSpec encoding; never reuse a retired id
const F_GRAPH: u8 = 1;
const F_ALGORITHM: u8 = 2;
const F_PARAMS: u8 = 3;
const F_MEM_ESTIMATE: u8 = 4;
const F_MAX_RETRIES: u8 = 5;
const F_PRIORITY: u8 = 6;
const F_CLIENT_ID: u8 = 7;

impl JobSpec {
    pub fn new(graph: impl Into<String>, algorithm: impl Into<String>) -> Self {
        Self {
            graph: graph.into(),
            algorithm: algorithm.into(),
            params: JobParams::new(),
            mem_estimate: None,
            max_retries: 0,
            priority: 0,
            client_id: String::new(),
        }
    }

    #[must_use]
    pub fn with_param(mut self, key: &str, value: u64) -> Self {
        self.params.set(key, value);
        self
    }

    #[must_use]
    pub fn with_mem_estimate(mut self, bytes: u64) -> Self {
        self.mem_estimate = Some(bytes);
        self
    }

    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the scheduling priority (higher runs earlier; default 0).
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fair-share client id (the remote client stamps its own).
    #[must_use]
    pub fn with_client_id(mut self, client_id: impl Into<String>) -> Self {
        self.client_id = client_id.into();
        self
    }

    /// Encodes the spec in the versioned tagged-field wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![JOB_WIRE_VERSION];
        write_field(&mut out, F_GRAPH, self.graph.as_bytes()).expect("vec write");
        write_field(&mut out, F_ALGORITHM, self.algorithm.as_bytes()).expect("vec write");
        write_field(&mut out, F_PARAMS, &self.params.encode()).expect("vec write");
        if let Some(est) = self.mem_estimate {
            write_field(&mut out, F_MEM_ESTIMATE, &est.to_le_bytes()).expect("vec write");
        }
        if self.max_retries != 0 {
            write_field(&mut out, F_MAX_RETRIES, &self.max_retries.to_le_bytes())
                .expect("vec write");
        }
        if self.priority != 0 {
            write_field(&mut out, F_PRIORITY, &self.priority.to_le_bytes()).expect("vec write");
        }
        if !self.client_id.is_empty() {
            write_field(&mut out, F_CLIENT_ID, self.client_id.as_bytes()).expect("vec write");
        }
        out
    }

    /// Decodes a spec encoded by any version of [`JobSpec::encode`]. Fields
    /// with unknown ids are skipped; `graph` and `algorithm` must be
    /// present.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let fields = split_version("JobSpec", bytes)?;
        let mut spec = JobSpec::new("", "");
        for_each_field(fields, |id, payload| {
            match id {
                F_GRAPH => spec.graph = str_field("graph", payload)?,
                F_ALGORITHM => spec.algorithm = str_field("algorithm", payload)?,
                F_PARAMS => spec.params = JobParams::decode(payload)?,
                F_MEM_ESTIMATE => spec.mem_estimate = Some(u64_field("mem_estimate", payload)?),
                F_MAX_RETRIES => {
                    spec.max_retries = u64_field("max_retries", &pad8(payload)?)? as u32
                }
                F_PRIORITY => spec.priority = u64_field("priority", &pad8(payload)?)? as u32 as i32,
                F_CLIENT_ID => spec.client_id = str_field("client_id", payload)?,
                _ => {} // unknown field from a newer sender: skip
            }
            Ok(())
        })?;
        if spec.graph.is_empty() || spec.algorithm.is_empty() {
            return Err(DfoError::Protocol(
                "JobSpec missing required graph/algorithm fields".into(),
            ));
        }
        Ok(spec)
    }
}

/// Little-endian zero-extension of a ≤ 8-byte integer payload.
fn pad8(payload: &[u8]) -> Result<[u8; 8]> {
    if payload.len() > 8 {
        return Err(DfoError::Protocol(format!("integer field of {} bytes", payload.len())));
    }
    let mut b = [0u8; 8];
    b[..payload.len()].copy_from_slice(payload);
    Ok(b)
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted to the queue; not yet running (waiting for budget or for
    /// the scheduler to pick it).
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobPhase {
    /// Whether the job can no longer change phase.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed | JobPhase::Cancelled)
    }

    fn to_wire(self) -> u8 {
        match self {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Done => 2,
            JobPhase::Failed => 3,
            JobPhase::Cancelled => 4,
        }
    }

    fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            0 => JobPhase::Queued,
            1 => JobPhase::Running,
            2 => JobPhase::Done,
            3 => JobPhase::Failed,
            4 => JobPhase::Cancelled,
            other => return Err(DfoError::Protocol(format!("unknown job phase {other}"))),
        })
    }
}

/// A point-in-time snapshot of one job's lifecycle.
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub id: u64,
    pub phase: JobPhase,
    pub graph: String,
    pub algorithm: String,
    /// The admission-control footprint this job charges against
    /// `mem_budget` while running (bytes per node).
    pub mem_estimate: u64,
    /// Retryable failures absorbed so far under the spec's `max_retries`
    /// budget (live — a running job being re-executed counts up here).
    pub retries: u32,
    /// Scheduling priority the job was submitted with.
    pub priority: i32,
    /// Fair-share client the job is accounted to.
    pub client_id: String,
}

// field ids of the JobStatus encoding
const S_ID: u8 = 1;
const S_PHASE: u8 = 2;
const S_GRAPH: u8 = 3;
const S_ALGORITHM: u8 = 4;
const S_MEM_ESTIMATE: u8 = 5;
const S_RETRIES: u8 = 6;
const S_PRIORITY: u8 = 7;
const S_CLIENT_ID: u8 = 8;

impl JobStatus {
    /// Encodes the status in the versioned tagged-field wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![JOB_WIRE_VERSION];
        write_field(&mut out, S_ID, &self.id.to_le_bytes()).expect("vec write");
        write_field(&mut out, S_PHASE, &[self.phase.to_wire()]).expect("vec write");
        write_field(&mut out, S_GRAPH, self.graph.as_bytes()).expect("vec write");
        write_field(&mut out, S_ALGORITHM, self.algorithm.as_bytes()).expect("vec write");
        write_field(&mut out, S_MEM_ESTIMATE, &self.mem_estimate.to_le_bytes()).expect("vec write");
        write_field(&mut out, S_RETRIES, &self.retries.to_le_bytes()).expect("vec write");
        write_field(&mut out, S_PRIORITY, &self.priority.to_le_bytes()).expect("vec write");
        write_field(&mut out, S_CLIENT_ID, self.client_id.as_bytes()).expect("vec write");
        out
    }

    /// Decodes a status; unknown fields are skipped.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let fields = split_version("JobStatus", bytes)?;
        let mut st = JobStatus {
            id: 0,
            phase: JobPhase::Queued,
            graph: String::new(),
            algorithm: String::new(),
            mem_estimate: 0,
            retries: 0,
            priority: 0,
            client_id: String::new(),
        };
        for_each_field(fields, |id, payload| {
            match id {
                S_ID => st.id = u64_field("id", payload)?,
                S_PHASE => {
                    st.phase = JobPhase::from_wire(
                        *payload
                            .first()
                            .ok_or_else(|| DfoError::Protocol("empty phase field".into()))?,
                    )?
                }
                S_GRAPH => st.graph = str_field("graph", payload)?,
                S_ALGORITHM => st.algorithm = str_field("algorithm", payload)?,
                S_MEM_ESTIMATE => st.mem_estimate = u64_field("mem_estimate", payload)?,
                S_RETRIES => st.retries = u64_field("retries", &pad8(payload)?)? as u32,
                S_PRIORITY => st.priority = u64_field("priority", &pad8(payload)?)? as u32 as i32,
                S_CLIENT_ID => st.client_id = str_field("client_id", payload)?,
                _ => {}
            }
            Ok(())
        })?;
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::new("web", "pagerank")
            .with_param("iters", 10)
            .with_param("root", 3)
            .with_mem_estimate(1 << 20)
            .with_max_retries(2)
            .with_priority(-5)
            .with_client_id("analytics")
    }

    #[test]
    fn jobspec_roundtrip() {
        let s = spec();
        assert_eq!(JobSpec::decode(&s.encode()).unwrap(), s);
        // defaults encode compactly and still roundtrip
        let d = JobSpec::new("g", "wcc");
        assert_eq!(JobSpec::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn jobspec_negative_priority_survives() {
        let s = JobSpec::new("g", "bfs").with_priority(i32::MIN);
        assert_eq!(JobSpec::decode(&s.encode()).unwrap().priority, i32::MIN);
    }

    #[test]
    fn decode_skips_unknown_fields() {
        // a "future" sender appends a field id we do not know
        let mut bytes = spec().encode();
        write_field(&mut bytes, 200, b"from the future").unwrap();
        assert_eq!(JobSpec::decode(&bytes).unwrap(), spec());
    }

    #[test]
    fn decode_tolerates_newer_version_byte() {
        let mut bytes = spec().encode();
        bytes[0] = JOB_WIRE_VERSION + 7;
        assert_eq!(JobSpec::decode(&bytes).unwrap(), spec());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(JobSpec::decode(&[]).is_err());
        assert!(JobSpec::decode(&[0]).is_err()); // version 0
                                                 // truncated field payload
        let mut bytes = spec().encode();
        bytes.truncate(bytes.len() - 1);
        assert!(JobSpec::decode(&bytes).is_err());
        // missing required fields
        assert!(JobSpec::decode(&[JOB_WIRE_VERSION]).is_err());
    }

    #[test]
    fn jobstatus_roundtrip() {
        let st = JobStatus {
            id: 42,
            phase: JobPhase::Cancelled,
            graph: "web".into(),
            algorithm: "sssp".into(),
            mem_estimate: 12345,
            retries: 3,
            priority: 9,
            client_id: "c1".into(),
        };
        let back = JobStatus::decode(&st.encode()).unwrap();
        assert_eq!(back.id, 42);
        assert_eq!(back.phase, JobPhase::Cancelled);
        assert_eq!(back.graph, "web");
        assert_eq!(back.algorithm, "sssp");
        assert_eq!(back.mem_estimate, 12345);
        assert_eq!(back.retries, 3);
        assert_eq!(back.priority, 9);
        assert_eq!(back.client_id, "c1");
    }

    #[test]
    fn phase_terminality() {
        assert!(!JobPhase::Queued.is_terminal());
        assert!(!JobPhase::Running.is_terminal());
        assert!(JobPhase::Done.is_terminal());
        assert!(JobPhase::Failed.is_terminal());
        assert!(JobPhase::Cancelled.is_terminal());
    }
}
