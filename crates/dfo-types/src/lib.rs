//! Shared foundation types for the DFOGraph workspace.
//!
//! This crate deliberately has no heavy dependencies: it defines the vertex
//! identifier types, the [`Pod`] plain-old-data contract used for vertex and
//! edge attributes and messages, the binary codec used by every on-disk
//! format, the engine configuration, error types, and the byte-accounting
//! statistics shared by the storage and network substrates.

pub mod codec;
pub mod config;
pub mod error;
pub mod ids;
pub mod jobspec;
pub mod pod;
pub mod stats;

pub use codec::{read_exact_or_eof, read_u32, read_u64, write_u32, write_u64};
pub use config::{
    BatchPolicy, CrashPoint, CrashPos, DispatchKind, EngineConfig, EngineConfigBuilder, ReprKind,
};
pub use error::{DfoError, Result};
pub use ids::{BatchId, PartitionId, Rank, VertexId, VertexRange};
pub use jobspec::{JobParams, JobPhase, JobSpec, JobStatus, JOB_WIRE_VERSION};
pub use pod::{
    bytes_of, pod_from_bytes, pod_size, pod_zeroed, slice_as_bytes, vec_from_bytes, Pod,
};
pub use stats::{Counter, PhaseStats, RecoveryStats, TrafficRecorder, TrafficSample};
