//! Minimal little-endian binary codec used by every on-disk format.
//!
//! All DFOGraph file formats (edge chunks, dispatch graphs, filter lists,
//! checkpoint metadata, message files) frame their contents with explicit
//! little-endian integers written through these helpers, so the formats stay
//! readable without any serialization framework.

use std::io::{self, Read, Write};

/// Writes a `u64` little-endian.
#[inline]
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u32` little-endian.
#[inline]
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64` little-endian.
#[inline]
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a `u32` little-endian.
#[inline]
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Fills `buf` completely, or returns `Ok(false)` if the stream was already
/// at EOF. A partial fill followed by EOF is an error (truncated file).
pub fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("truncated record: got {filled} of {} bytes", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes a length-prefixed byte string.
pub fn write_bytes<W: Write>(w: &mut W, b: &[u8]) -> io::Result<()> {
    write_u64(w, b.len() as u64)?;
    w.write_all(b)
}

/// Reads a length-prefixed byte string written by [`write_bytes`].
pub fn read_bytes<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let len = read_u64(r)? as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_bytes(w, s.as_bytes())
}

/// Reads a string written by [`write_str`].
pub fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let b = read_bytes(r)?;
    String::from_utf8(b).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_ints() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX - 1).unwrap();
        write_u32(&mut buf, 0xabcd_1234).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_u64(&mut c).unwrap(), u64::MAX - 1);
        assert_eq!(read_u32(&mut c).unwrap(), 0xabcd_1234);
    }

    #[test]
    fn roundtrip_strings() {
        let mut buf = Vec::new();
        write_str(&mut buf, "dispatch/p3_b7.dcsr").unwrap();
        write_str(&mut buf, "").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_str(&mut c).unwrap(), "dispatch/p3_b7.dcsr");
        assert_eq!(read_str(&mut c).unwrap(), "");
    }

    #[test]
    fn eof_detection() {
        let data = vec![1u8, 2, 3, 4];
        let mut c = Cursor::new(data);
        let mut buf = [0u8; 4];
        assert!(read_exact_or_eof(&mut c, &mut buf).unwrap());
        assert_eq!(buf, [1, 2, 3, 4]);
        assert!(!read_exact_or_eof(&mut c, &mut buf).unwrap());
    }

    #[test]
    fn truncated_record_is_error() {
        let data = vec![1u8, 2, 3];
        let mut c = Cursor::new(data);
        let mut buf = [0u8; 4];
        assert!(read_exact_or_eof(&mut c, &mut buf).is_err());
    }
}
