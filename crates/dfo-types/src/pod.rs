//! Plain-old-data contract for vertex attributes, edge attributes and
//! messages.
//!
//! Everything DFOGraph persists — vertex array blocks, edge chunk payloads,
//! on-disk message files, network frames — is a flat sequence of fixed-size
//! values. The [`Pod`] trait marks types that can be round-tripped through
//! raw bytes. We deliberately avoid pulling in `bytemuck`/`zerocopy`: the set
//! of types we need is small and the unsafe surface is concentrated in this
//! one module.

/// Marker for types that may be serialized by copying their bytes.
///
/// # Safety
///
/// Implementors must be `#[repr(C)]`-compatible value types with no padding
/// requirements beyond what the byte copy preserves; the all-zero byte
/// pattern must be a valid value (used by [`pod_zeroed`] to initialize fresh
/// vertex arrays); and every byte pattern *produced by serializing a valid
/// value* must deserialize to a valid value. DFOGraph only ever deserializes
/// bytes it previously serialized (on-disk formats are private to the
/// system), so types like `bool` — where not every arbitrary byte is valid —
/// are still safe under this contract.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl Pod for bool {}
unsafe impl Pod for () {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}
unsafe impl<A: Pod, B: Pod> Pod for (A, B) {}

/// Views a value as its raw bytes.
#[inline]
pub fn bytes_of<T: Pod>(v: &T) -> &[u8] {
    // SAFETY: `T: Pod` guarantees the representation is a plain byte block.
    unsafe { std::slice::from_raw_parts(v as *const T as *const u8, std::mem::size_of::<T>()) }
}

/// Reconstructs a value from bytes previously produced by [`bytes_of`].
///
/// Uses an unaligned read so byte buffers need no particular alignment.
#[inline]
pub fn pod_from_bytes<T: Pod>(b: &[u8]) -> T {
    assert!(
        b.len() >= std::mem::size_of::<T>(),
        "buffer too short for {}: {} < {}",
        std::any::type_name::<T>(),
        b.len(),
        std::mem::size_of::<T>()
    );
    // SAFETY: length checked above; Pod contract covers validity.
    unsafe { (b.as_ptr() as *const T).read_unaligned() }
}

/// Views a slice of Pod values as raw bytes (zero copy).
#[inline]
pub fn slice_as_bytes<T: Pod>(s: &[T]) -> &[u8] {
    let len = std::mem::size_of_val(s);
    // SAFETY: same representation argument as `bytes_of`.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, len) }
}

/// Copies a byte buffer produced by [`slice_as_bytes`] back into an owned,
/// properly aligned `Vec<T>`.
pub fn vec_from_bytes<T: Pod>(b: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return Vec::new();
    }
    assert!(
        b.len().is_multiple_of(size),
        "byte length {} not a multiple of size_of::<{}>() = {}",
        b.len(),
        std::any::type_name::<T>(),
        size
    );
    let n = b.len() / size;
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: capacity reserved above; copy fills exactly `n` elements whose
    // byte representation came from valid `T`s (Pod contract).
    unsafe {
        std::ptr::copy_nonoverlapping(b.as_ptr(), out.as_mut_ptr() as *mut u8, b.len());
        out.set_len(n);
    }
    out
}

/// Size in bytes of one `T`, as `u64` (convenient for I/O arithmetic).
#[inline]
pub fn pod_size<T: Pod>() -> u64 {
    std::mem::size_of::<T>() as u64
}

/// The all-zero value of `T` — the initial content of a fresh vertex array.
#[inline]
pub fn pod_zeroed<T: Pod>() -> T {
    // SAFETY: the Pod contract requires the all-zero pattern to be valid.
    unsafe { std::mem::MaybeUninit::<T>::zeroed().assume_init() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let x: u64 = 0xdead_beef_cafe_f00d;
        assert_eq!(pod_from_bytes::<u64>(bytes_of(&x)), x);
        let f: f64 = -1234.5678;
        assert_eq!(pod_from_bytes::<f64>(bytes_of(&f)), f);
        let b = true;
        assert!(pod_from_bytes::<bool>(bytes_of(&b)));
    }

    #[test]
    fn roundtrip_slices() {
        let v: Vec<u32> = (0..1000).collect();
        let bytes = slice_as_bytes(&v);
        assert_eq!(bytes.len(), 4000);
        let back: Vec<u32> = vec_from_bytes(bytes);
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_arrays_and_tuples() {
        let v: [f32; 4] = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pod_from_bytes::<[f32; 4]>(bytes_of(&v)), v);
        let t: (u32, f32) = (7, 2.5);
        assert_eq!(pod_from_bytes::<(u32, f32)>(bytes_of(&t)), t);
    }

    #[test]
    fn zst_edge_data() {
        let v: Vec<()> = vec![(); 10];
        let bytes = slice_as_bytes(&v);
        assert!(bytes.is_empty());
        let back: Vec<()> = vec_from_bytes(bytes);
        assert!(back.is_empty());
    }

    #[test]
    fn unaligned_read() {
        let v: Vec<u64> = vec![1, 2, 3];
        let mut bytes = vec![0u8; 1];
        bytes.extend_from_slice(slice_as_bytes(&v));
        // read from offset 1: deliberately unaligned
        let x: u64 = pod_from_bytes(&bytes[1..9]);
        assert_eq!(x, 1);
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn short_buffer_panics() {
        let _ = pod_from_bytes::<u64>(&[0u8; 4]);
    }
}
