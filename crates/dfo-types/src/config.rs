//! Engine and cluster configuration.
//!
//! Defaults follow the paper: CSR inflate ratio 32 (§4.1), seek-cost
//! parameter γ = 1024 (§4.1), filter skip threshold `|L|/|M| ≥ 2` (§4.3),
//! inter-node balance weight α = 2P − 1 (§2.2).

use crate::ids::Rank;

/// How intra-node vertex batch sizes are chosen (paper §2.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchPolicy {
    /// Fixed number of vertices per batch.
    FixedVertices(u64),
    /// Fully-out-of-core rule: pick the largest batch such that
    /// `batch_bytes × threads ≤ mem_budget / 2`, where `batch_bytes` is the
    /// per-batch footprint of the widest registered vertex array.
    FullyOutOfCore { widest_vertex_bytes: u64 },
    /// Semi-out-of-core rule of thumb: at least `1.5 × threads` batches per
    /// partition (the engine rounds to whole batches).
    SemiOutOfCore,
}

/// Where inside a `Process` call's commit sequence a [`CrashPoint`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrashPos {
    /// Before any array of the call has committed (the historical
    /// `DFO_CRASH_AT` behaviour): the whole call is lost.
    #[default]
    Pre,
    /// After the first array of the call has committed but before the rest
    /// (and before the per-call commit record is written) — the torn-call
    /// window the commit record exists to close.
    Mid,
}

/// A deterministic fault-injection point: abort this process at a precise
/// position of the `call`-th `Process` call's commit sequence (counting
/// `ProcessVertices` and `ProcessEdges` commits on this rank from 0),
/// optionally only on one rank and only at one mesh epoch. Kill tests use
/// schedules of these to die at *precise commit boundaries* instead of
/// relying on timing; see [`EngineConfig::apply_env_overrides`] for the
/// `DFO_CRASH_AT` syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Zero-based index of the `Process` call whose commit is interrupted.
    pub call: u64,
    /// Restrict the crash to one rank; `None` crashes every rank that
    /// reaches the call (useful only in single-rank setups).
    pub rank: Option<Rank>,
    /// Position within the call's commit sequence.
    pub pos: CrashPos,
    /// Restrict the crash to one mesh epoch; `None` fires in any epoch.
    /// Since relaunched ranks resume their call counter from zero, an
    /// epoch qualifier is how a schedule injects a *second* kill into an
    /// already-recovered run.
    pub epoch: Option<u64>,
}

impl CrashPoint {
    /// A plain pre-commit crash at `call` on every rank, any epoch — the
    /// historical single-point behaviour.
    pub fn at(call: u64) -> Self {
        CrashPoint { call, rank: None, pos: CrashPos::Pre, epoch: None }
    }

    /// Parses one `DFO_CRASH_AT` point: `<call>[.pre|.mid][:<rank>][@<epoch>]`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let (s, epoch) = match s.rsplit_once('@') {
            Some((rest, e)) => (rest, Some(e.trim().parse().ok()?)),
            None => (s, None),
        };
        let (s, rank) = match s.split_once(':') {
            Some((rest, r)) => (rest, Some(r.trim().parse().ok()?)),
            None => (s, None),
        };
        let (s, pos) = match s.split_once('.') {
            Some((rest, p)) => (
                rest,
                match p.trim() {
                    "pre" => CrashPos::Pre,
                    "mid" => CrashPos::Mid,
                    _ => return None,
                },
            ),
            None => (s, CrashPos::Pre),
        };
        Some(CrashPoint { call: s.trim().parse().ok()?, rank, pos, epoch })
    }

    /// Parses a comma-separated schedule of points; `None` if any point is
    /// malformed (an empty string parses to an empty schedule).
    pub fn parse_schedule(s: &str) -> Option<Vec<Self>> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(CrashPoint::parse)
            .collect::<Option<Vec<_>>>()
    }

    /// Renders the point back into its `DFO_CRASH_AT` grammar (the inverse
    /// of [`CrashPoint::parse`]); supervisors use it to forward schedules
    /// to relaunched ranks.
    pub fn render(&self) -> String {
        let mut s = self.call.to_string();
        if self.pos == CrashPos::Mid {
            s.push_str(".mid");
        }
        if let Some(r) = self.rank {
            s.push_str(&format!(":{r}"));
        }
        if let Some(e) = self.epoch {
            s.push_str(&format!("@{e}"));
        }
        s
    }

    /// Renders a schedule as a comma-separated `DFO_CRASH_AT` value.
    pub fn render_schedule(points: &[Self]) -> String {
        points.iter().map(CrashPoint::render).collect::<Vec<_>>().join(",")
    }
}

/// Forces a particular intra-node message dispatching strategy (§4.2);
/// `None` in [`EngineConfig::dispatch_override`] keeps the adaptive choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// One scan of the incoming messages appends to every destination batch
    /// file (low CPU, high latency — batches start only after the scan).
    Push,
    /// Each batch scans the messages and extracts what it needs (high CPU,
    /// low latency for the first batches).
    Pull,
    /// Batches read the undispatched message buffer directly.
    None,
}

/// Forces a particular edge-chunk representation at access time (§4.1);
/// `None` keeps the adaptive cost-model choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReprKind {
    Csr,
    Dcsr,
}

/// Full configuration of a DFOGraph cluster run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of (simulated) nodes `P`.
    pub nodes: usize,
    /// Worker threads per node (`T` in the paper; 12 on i3en.3xlarge).
    pub threads_per_node: usize,
    /// Memory budget per node in bytes; drives the fully-out-of-core batch
    /// sizing rule and the page-cache capacity.
    pub mem_budget: u64,
    /// Intra-node batch size policy.
    pub batch_policy: BatchPolicy,
    /// Build CSR for a chunk when `|V_src| / |E_chunk| ≤ csr_inflate_ratio`.
    pub csr_inflate_ratio: f64,
    /// Seek-vs-scan cost parameter γ: one CSR seek costs as much as scanning
    /// γ DCSR entries.
    pub gamma: u64,
    /// Skip filtering to node j when `|L_ij| / |M_i| ≥ filter_skip_ratio`.
    pub filter_skip_ratio: f64,
    /// Inter-node balance weight; `None` means the default `2P − 1`.
    pub alpha: Option<u64>,
    /// Simulated sequential disk bandwidth per node, bytes/s (`None` =
    /// unthrottled). The paper's testbed: 2 GB/s NVMe.
    pub disk_bw: Option<u64>,
    /// Simulated network bandwidth per node (each direction), bytes/s
    /// (`None` = unthrottled). The paper's testbed: 25 Gbps.
    pub net_bw: Option<u64>,
    /// Page size of the storage substrate page cache.
    pub page_size: usize,
    /// Enables copy-on-write checkpointing of vertex arrays (§3.2).
    pub checkpointing: bool,
    /// Number of checkpoints retained (typically 1 or 2, §3.2).
    pub checkpoints_kept: usize,
    /// Disables intra-node batching (Table 6 ablation): one batch per
    /// partition, vertex arrays accessed through a bounded page cache.
    pub batching_enabled: bool,
    /// Disables inter-node message filtering (§4.3 ablation).
    pub filtering_enabled: bool,
    /// Forces a dispatch strategy instead of the adaptive choice.
    pub dispatch_override: Option<DispatchKind>,
    /// Forces an edge representation instead of the adaptive choice.
    pub repr_override: Option<ReprKind>,
    /// Records disk/network traffic time series (Figure 5); off by default
    /// because sampling adds a lock per transfer.
    pub record_traffic: bool,
    /// Memory budget in bytes for the decoded edge-chunk cache shared
    /// across `ProcessEdges` calls (bytes, not entries). `0` — the default —
    /// disables the subsystem entirely: no cache is allocated and no
    /// prefetch threads are spawned, preserving the fully-out-of-core
    /// behaviour. Overridable with the `DFO_CHUNK_CACHE` environment
    /// variable (see [`EngineConfig::apply_env_overrides`]).
    pub chunk_cache_bytes: u64,
    /// Read-ahead depth of the phase-4 chunk prefetcher: how many vertex
    /// batches ahead of the processing frontier background threads may load
    /// and decode edge chunks. Only active when `chunk_cache_bytes > 0`;
    /// `0` disables read-ahead while keeping the cache.
    pub prefetch_depth: usize,
    /// Write preprocessed edge chunks and dispatching graphs through the
    /// checksummed LZ4 block framing (GraphMP-style), shrinking cold reads
    /// and preprocessing output at a small decode cost. On by default;
    /// `false` reproduces the uncompressed on-disk layout byte-for-byte.
    /// Readers auto-detect the format, so flipping this only affects newly
    /// preprocessed data. While on, the §4.1 CSR seek mode is bypassed for
    /// full chunk loads (positioned reads need the uncompressed layout).
    /// Overridable with the `DFO_COMPRESS` environment variable (see
    /// [`EngineConfig::apply_env_overrides`]).
    pub compress_chunks: bool,
    /// Peer socket addresses (`host:port`, one per rank, index = rank) for
    /// the multi-process TCP transport used by `run_distributed`; `None`
    /// keeps the in-process channel transport. See
    /// [`EngineConfig::apply_env_overrides`] for the `DFO_PEERS` override.
    pub peers: Option<Vec<String>>,
    /// Seconds each rank waits for the full TCP mesh at bootstrap.
    pub connect_timeout_secs: u64,
    /// Mesh epoch this rank bootstraps at (§3.2 checkpoint-restart): the
    /// TCP handshake carries it and connections from a different epoch are
    /// rejected, so sockets of a dead incarnation can never join the
    /// rebuilt mesh. Supervised ranks bump it by one per recovery;
    /// relaunched processes receive theirs via the `DFO_EPOCH` override.
    pub epoch: u64,
    /// How many mesh failures a supervised run may recover from before
    /// giving up (`Cluster::run_supervised`; 0 = fail on the first one,
    /// the old fail-stop behaviour). `DFO_MAX_RESTARTS` overrides.
    pub max_restarts: u32,
    /// Deterministic fault injection: a schedule of points at which this
    /// process aborts inside a `Process`-call commit sequence. Empty (the
    /// default) injects nothing. `DFO_CRASH_AT` overrides with a
    /// comma-separated `<call>[.pre|.mid][:<rank>][@<epoch>]` list.
    pub crash_schedule: Vec<CrashPoint>,
    /// Path of the supervisor-published epoch file: an atomically-rewritten
    /// decimal mesh epoch that is the single authority under overlapping
    /// failures. Supervised ranks re-read it between recovery attempts so
    /// every relaunch converges on the same epoch regardless of how many
    /// ranks died in the window. `None` (the default, and the value for
    /// unsupervised runs) keeps the local bump-by-one scheme.
    /// `DFO_EPOCH_FILE` overrides (empty value disables).
    pub epoch_file: Option<String>,
    /// Span-trace output path. When set, every rank records pipeline-phase
    /// / collective / storage spans into a bounded flight recorder and the
    /// run ends by writing one merged timeline here — Chrome `trace_event`
    /// JSON (Perfetto-loadable) unless the path ends in `.jsonl`. `None`
    /// (the default) disables tracing entirely. `DFO_TRACE` overrides
    /// (empty value disables).
    pub trace_path: Option<String>,
    /// Per-rank flight-recorder capacity in spans; when a run records more,
    /// the oldest spans are overwritten (the trace keeps the recent
    /// timeline at bounded memory).
    pub trace_capacity: usize,
    /// `host:port` bind address for the metrics scrape endpoint
    /// (`dfo-service`): Prometheus text at `GET /metrics`, a JSON snapshot
    /// at `GET /metrics.json`. Port `0` binds an ephemeral port (the
    /// service reports the actual one). `None` (the default) serves
    /// nothing. `DFO_METRICS_ADDR` overrides (empty value disables).
    pub metrics_addr: Option<String>,
    /// `host:port` bind address of the rank-0 **job-control listener** in
    /// daemon mode (`dfo-service`): remote `DfoClient`s connect here to
    /// submit [`crate::JobSpec`]s to the resident mesh. Port `0` binds an
    /// ephemeral port. `None` (the default) serves no remote clients.
    /// `DFO_CONTROL_ADDR` overrides (empty value disables). Only rank 0
    /// reads it.
    pub control_addr: Option<String>,
}

impl EngineConfig {
    /// Starts a validated [`EngineConfigBuilder`] from the same defaults as
    /// [`EngineConfig::for_test`]`(1)`. The builder is the recommended way
    /// to construct a config for service deployments: unlike mutating the
    /// struct directly, [`EngineConfigBuilder::build`] enforces the
    /// cross-field invariants (a positive memory budget, prefetch only with
    /// a chunk cache, well-formed peer addresses) before any cluster is
    /// created.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { cfg: EngineConfig::for_test(1), prefetch_depth_set: false }
    }

    /// A small-footprint configuration suitable for tests: `nodes` ranks,
    /// two worker threads each, unthrottled I/O, checkpointing off.
    pub fn for_test(nodes: usize) -> Self {
        Self {
            nodes,
            threads_per_node: 2,
            mem_budget: 64 << 20,
            batch_policy: BatchPolicy::FixedVertices(64),
            csr_inflate_ratio: 32.0,
            gamma: 1024,
            filter_skip_ratio: 2.0,
            alpha: None,
            disk_bw: None,
            net_bw: None,
            page_size: 4096,
            checkpointing: false,
            checkpoints_kept: 1,
            batching_enabled: true,
            filtering_enabled: true,
            dispatch_override: None,
            repr_override: None,
            record_traffic: false,
            chunk_cache_bytes: 0,
            prefetch_depth: 2,
            compress_chunks: true,
            peers: None,
            connect_timeout_secs: 30,
            epoch: 0,
            max_restarts: 0,
            crash_schedule: Vec::new(),
            epoch_file: None,
            trace_path: None,
            trace_capacity: 1 << 16,
            metrics_addr: None,
            control_addr: None,
        }
    }

    /// Rank of this process from the `DFO_RANK` environment variable (the
    /// conventional way a launcher differentiates otherwise-identical
    /// worker processes).
    pub fn env_rank() -> Option<Rank> {
        std::env::var("DFO_RANK").ok()?.trim().parse().ok()
    }

    /// Applies every `DFO_*` environment override and returns the updated
    /// config — **the single place the workspace reads engine environment
    /// variables** (only [`EngineConfig::env_rank`] sits outside it, because
    /// a rank identifies a process, not a configuration). Builder-style:
    ///
    /// ```
    /// use dfo_types::EngineConfig;
    /// let cfg = EngineConfig::for_test(2).from_env_overrides();
    /// ```
    ///
    /// Recognized variables:
    ///
    /// * `DFO_PEERS` — comma-separated `host:port` list (one per rank, in
    ///   rank order); switches the config to the TCP transport and sets the
    ///   node count to match.
    /// * `DFO_CHUNK_CACHE` — chunk-cache budget in bytes (optional
    ///   `K`/`M`/`G` suffix).
    /// * `DFO_COMPRESS` — `1`/`true`/`on` or `0`/`false`/`off`: toggles
    ///   chunk compression.
    /// * `DFO_EPOCH` — mesh bootstrap epoch (a supervisor passes it to
    ///   relaunched ranks).
    /// * `DFO_MAX_RESTARTS` — bounds supervised recoveries.
    /// * `DFO_CRASH_AT` — comma-separated crash schedule, each point
    ///   `<call>[.pre|.mid][:<rank>][@<epoch>]`: abort at that
    ///   `Process`-call commit, `pre` (default) before any array commits,
    ///   `mid` between the first and second array commit; optional rank and
    ///   mesh-epoch qualifiers (empty value disables).
    /// * `DFO_EPOCH_FILE=<path>` — supervisor-published epoch file re-read
    ///   between recovery attempts (empty value disables).
    /// * `DFO_TRACE=<path>` — span-trace output path (Chrome `trace_event`
    ///   JSON, or JSONL when the path ends in `.jsonl`); empty disables.
    /// * `DFO_METRICS_ADDR=<host:port>` — bind address of the service
    ///   metrics scrape endpoint; empty disables.
    /// * `DFO_CONTROL_ADDR=<host:port>` — bind address of the rank-0
    ///   job-control listener in daemon mode; empty disables.
    ///
    /// A value that fails to parse warns on stderr and keeps the configured
    /// value rather than silently changing behaviour.
    #[must_use]
    pub fn from_env_overrides(mut self) -> Self {
        self.apply_env_overrides();
        self
    }

    /// In-place form of [`EngineConfig::from_env_overrides`], kept for
    /// callers that already hold a `&mut EngineConfig`.
    pub fn apply_env_overrides(&mut self) {
        if let Ok(s) = std::env::var("DFO_PEERS") {
            let peers: Vec<String> =
                s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect();
            if !peers.is_empty() {
                self.nodes = peers.len();
                self.peers = Some(peers);
            }
        }
        if let Ok(s) = std::env::var("DFO_CHUNK_CACHE") {
            match parse_byte_size(&s) {
                Some(bytes) => self.chunk_cache_bytes = bytes,
                // warn rather than silently leave the cache off: the user
                // explicitly asked for it
                None => eprintln!(
                    "DFO_CHUNK_CACHE={s:?} is not a byte size (use e.g. 67108864 or 64M); \
                     keeping chunk_cache_bytes = {}",
                    self.chunk_cache_bytes
                ),
            }
        }
        if let Ok(s) = std::env::var("DFO_COMPRESS") {
            match parse_bool(&s) {
                Some(on) => self.compress_chunks = on,
                None => eprintln!(
                    "DFO_COMPRESS={s:?} is not a boolean (use 1/0, true/false, on/off); \
                     keeping compress_chunks = {}",
                    self.compress_chunks
                ),
            }
        }
        if let Ok(s) = std::env::var("DFO_EPOCH") {
            match s.trim().parse::<u64>() {
                Ok(e) => self.epoch = e,
                Err(_) => {
                    eprintln!("DFO_EPOCH={s:?} is not an integer; keeping epoch = {}", self.epoch)
                }
            }
        }
        if let Ok(s) = std::env::var("DFO_MAX_RESTARTS") {
            match s.trim().parse::<u32>() {
                Ok(n) => self.max_restarts = n,
                Err(_) => eprintln!(
                    "DFO_MAX_RESTARTS={s:?} is not an integer; keeping max_restarts = {}",
                    self.max_restarts
                ),
            }
        }
        if let Ok(s) = std::env::var("DFO_CRASH_AT") {
            if s.trim().is_empty() {
                self.crash_schedule.clear(); // explicit disable (supervisor relaunch)
            } else {
                match CrashPoint::parse_schedule(&s) {
                    Some(sched) => self.crash_schedule = sched,
                    None => eprintln!(
                        "DFO_CRASH_AT={s:?} is not a comma-separated \
                         <call>[.pre|.mid][:<rank>][@<epoch>] list; keeping crash_schedule = {:?}",
                        self.crash_schedule
                    ),
                }
            }
        }
        if let Ok(s) = std::env::var("DFO_EPOCH_FILE") {
            let s = s.trim();
            self.epoch_file = if s.is_empty() { None } else { Some(s.to_string()) };
        }
        if let Ok(s) = std::env::var("DFO_TRACE") {
            let s = s.trim();
            self.trace_path = if s.is_empty() { None } else { Some(s.to_string()) };
        }
        if let Ok(s) = std::env::var("DFO_METRICS_ADDR") {
            let s = s.trim();
            self.metrics_addr = if s.is_empty() { None } else { Some(s.to_string()) };
        }
        if let Ok(s) = std::env::var("DFO_CONTROL_ADDR") {
            let s = s.trim();
            self.control_addr = if s.is_empty() { None } else { Some(s.to_string()) };
        }
    }

    /// Effective α: configured value or the paper default `2P − 1`.
    pub fn effective_alpha(&self) -> u64 {
        self.alpha.unwrap_or(2 * self.nodes as u64 - 1)
    }

    /// Sanity-checks invariants; called once at cluster start.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        if self.threads_per_node == 0 {
            return Err("threads_per_node must be positive".into());
        }
        if self.csr_inflate_ratio <= 0.0 {
            return Err("csr_inflate_ratio must be positive".into());
        }
        if self.filter_skip_ratio <= 0.0 {
            return Err("filter_skip_ratio must be positive".into());
        }
        if !self.page_size.is_power_of_two() {
            return Err(format!("page_size {} must be a power of two", self.page_size));
        }
        if self.checkpointing && self.checkpoints_kept == 0 {
            return Err("checkpoints_kept must be ≥ 1 when checkpointing".into());
        }
        if self.trace_path.is_some() && self.trace_capacity == 0 {
            return Err("trace_capacity must be ≥ 1 when trace_path is set".into());
        }
        if let Some(peers) = &self.peers {
            if peers.len() != self.nodes {
                return Err(format!(
                    "peer list has {} addresses for {} nodes (need one per rank)",
                    peers.len(),
                    self.nodes
                ));
            }
            if peers.iter().any(|a| a.is_empty()) {
                return Err("peer list contains an empty address".into());
            }
        }
        Ok(())
    }

    /// Round-robin send order for node `i`: `i+1, …, P−1, 0, …, i−1` (§4.4).
    pub fn send_order(&self, i: Rank) -> Vec<Rank> {
        (1..self.nodes).map(|d| (i + d) % self.nodes).collect()
    }

    /// Receive/process order for node `i`: `i−1, …, 0, P−1, …, i+1` (§4.5) —
    /// the mirror of [`EngineConfig::send_order`], so that every (sender,
    /// receiver) pair agrees on when their transfer happens.
    pub fn recv_order(&self, i: Rank) -> Vec<Rank> {
        (1..self.nodes).map(|d| (i + self.nodes - d) % self.nodes).collect()
    }
}

/// Validating builder for [`EngineConfig`], started with
/// [`EngineConfig::builder`].
///
/// Every setter returns `self` so configs chain fluently; [`Self::build`]
/// runs [`EngineConfig::validate`] plus the stricter service-facing checks
/// that a hand-mutated struct never got:
///
/// * `mem_budget` must be positive — admission control and the
///   fully-out-of-core batch-sizing rule both divide by it;
/// * an explicitly requested `prefetch_depth > 0` without any
///   `chunk_cache_bytes` is rejected (read-ahead decodes into the cache;
///   without one it would be silently dead);
/// * every peer address must look like `host:port` with a numeric port.
///
/// ```
/// use dfo_types::EngineConfig;
/// let cfg = EngineConfig::builder()
///     .nodes(4)
///     .threads_per_node(8)
///     .mem_budget(2 << 30)
///     .chunk_cache_bytes(256 << 20)
///     .prefetch_depth(2)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.nodes, 4);
/// ```
#[derive(Clone, Debug)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
    /// Whether the caller explicitly asked for read-ahead: only then is
    /// "prefetch without a cache" a contradiction worth rejecting (the
    /// defaults carry a harmless latent depth for when a cache is enabled).
    prefetch_depth_set: bool,
}

impl EngineConfigBuilder {
    /// Number of (simulated or real) ranks `P`.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Worker threads per node.
    pub fn threads_per_node(mut self, threads: usize) -> Self {
        self.cfg.threads_per_node = threads;
        self
    }

    /// Memory budget per node in bytes (must be positive).
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.cfg.mem_budget = bytes;
        self
    }

    /// Intra-node batch sizing policy.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.cfg.batch_policy = policy;
        self
    }

    /// Byte budget of the decoded-chunk cache (0 disables the subsystem).
    pub fn chunk_cache_bytes(mut self, bytes: u64) -> Self {
        self.cfg.chunk_cache_bytes = bytes;
        self
    }

    /// Read-ahead depth of the phase-4 prefetcher; requires a chunk cache.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.cfg.prefetch_depth = depth;
        self.prefetch_depth_set = true;
        self
    }

    /// Toggles the LZ4 chunk framing on newly preprocessed data.
    pub fn compress_chunks(mut self, on: bool) -> Self {
        self.cfg.compress_chunks = on;
        self
    }

    /// Enables copy-on-write checkpointing, retaining `kept` checkpoints.
    pub fn checkpointing(mut self, on: bool, kept: usize) -> Self {
        self.cfg.checkpointing = on;
        self.cfg.checkpoints_kept = kept;
        self
    }

    /// Simulated sequential disk bandwidth per node (`None` = unthrottled).
    pub fn disk_bw(mut self, bw: Option<u64>) -> Self {
        self.cfg.disk_bw = bw;
        self
    }

    /// Simulated network bandwidth per node (`None` = unthrottled).
    pub fn net_bw(mut self, bw: Option<u64>) -> Self {
        self.cfg.net_bw = bw;
        self
    }

    /// Records disk/network traffic time series (Figure 5).
    pub fn record_traffic(mut self, on: bool) -> Self {
        self.cfg.record_traffic = on;
        self
    }

    /// Peer `host:port` addresses (one per rank) for the TCP transport;
    /// also sets the node count to match.
    pub fn peers(mut self, peers: Vec<String>) -> Self {
        self.cfg.nodes = peers.len();
        self.cfg.peers = Some(peers);
        self
    }

    /// Seconds each rank waits for the full TCP mesh at bootstrap.
    pub fn connect_timeout_secs(mut self, secs: u64) -> Self {
        self.cfg.connect_timeout_secs = secs;
        self
    }

    /// Mesh failures a supervised run may recover from.
    pub fn max_restarts(mut self, n: u32) -> Self {
        self.cfg.max_restarts = n;
        self
    }

    /// Span-trace output path (`None` disables tracing).
    pub fn trace_path(mut self, path: Option<String>) -> Self {
        self.cfg.trace_path = path;
        self
    }

    /// Per-rank flight-recorder capacity in spans.
    pub fn trace_capacity(mut self, spans: usize) -> Self {
        self.cfg.trace_capacity = spans;
        self
    }

    /// Metrics scrape endpoint bind address (`None` serves nothing).
    pub fn metrics_addr(mut self, addr: Option<String>) -> Self {
        self.cfg.metrics_addr = addr;
        self
    }

    /// Rank-0 job-control listener bind address for daemon mode (`None`
    /// serves no remote clients).
    pub fn control_addr(mut self, addr: Option<String>) -> Self {
        self.cfg.control_addr = addr;
        self
    }

    /// Forces a dispatch strategy instead of the adaptive choice.
    pub fn dispatch_override(mut self, kind: Option<DispatchKind>) -> Self {
        self.cfg.dispatch_override = kind;
        self
    }

    /// Forces an edge representation instead of the adaptive choice.
    pub fn repr_override(mut self, kind: Option<ReprKind>) -> Self {
        self.cfg.repr_override = kind;
        self
    }

    /// Disables inter-node message filtering (§4.3 ablation).
    pub fn filtering_enabled(mut self, on: bool) -> Self {
        self.cfg.filtering_enabled = on;
        self
    }

    /// Disables intra-node batching (Table 6 ablation).
    pub fn batching_enabled(mut self, on: bool) -> Self {
        self.cfg.batching_enabled = on;
        self
    }

    /// Applies the `DFO_*` environment overrides on top of the values set
    /// so far (see [`EngineConfig::from_env_overrides`]). Overrides count
    /// as explicit settings for validation purposes.
    pub fn env_overrides(mut self) -> Self {
        self.cfg = self.cfg.from_env_overrides();
        self
    }

    /// Validates and returns the finished config. See the type docs for the
    /// checks beyond [`EngineConfig::validate`].
    pub fn build(self) -> Result<EngineConfig, String> {
        if self.cfg.mem_budget == 0 {
            return Err("mem_budget must be positive (batch sizing and job admission \
                 control divide the budget)"
                .into());
        }
        if self.prefetch_depth_set && self.cfg.prefetch_depth > 0 && self.cfg.chunk_cache_bytes == 0
        {
            return Err(format!(
                "prefetch_depth {} requested with chunk_cache_bytes 0: read-ahead decodes \
                 into the chunk cache, so enable one (e.g. .chunk_cache_bytes(64 << 20)) \
                 or drop the prefetch_depth call",
                self.cfg.prefetch_depth
            ));
        }
        if let Some(peers) = &self.cfg.peers {
            for addr in peers {
                let port_ok = addr
                    .rsplit_once(':')
                    .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
                if !port_ok {
                    return Err(format!(
                        "peer address {addr:?} is not host:port with a numeric port"
                    ));
                }
            }
        }
        for (what, addr) in
            [("metrics", &self.cfg.metrics_addr), ("control", &self.cfg.control_addr)]
        {
            if let Some(addr) = addr {
                let port_ok = addr
                    .rsplit_once(':')
                    .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
                if !port_ok {
                    return Err(format!(
                        "{what} address {addr:?} is not host:port with a numeric port"
                    ));
                }
            }
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Parses `"1"`/`"true"`/`"on"`/`"yes"` and `"0"`/`"false"`/`"off"`/`"no"`
/// (case-insensitive).
fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Parses `"67108864"`, `"64M"`, `"2G"`, `"512K"` (optionally `"64MB"`)
/// into bytes.
fn parse_byte_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let s = s.strip_suffix(['b', 'B']).filter(|r| !r.is_empty()).unwrap_or(s);
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    digits.trim().parse::<u64>().ok().map(|n| n.saturating_mul(mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_suffixes() {
        assert_eq!(parse_byte_size("4096"), Some(4096));
        assert_eq!(parse_byte_size("64M"), Some(64 << 20));
        assert_eq!(parse_byte_size("64MB"), Some(64 << 20));
        assert_eq!(parse_byte_size("512K"), Some(512 << 10));
        assert_eq!(parse_byte_size("2g"), Some(2 << 30));
        assert_eq!(parse_byte_size("2GB"), Some(2 << 30));
        assert_eq!(parse_byte_size("nope"), None);
        assert_eq!(parse_byte_size("b"), None);
        assert_eq!(parse_byte_size(""), None);
    }

    #[test]
    fn chunk_cache_defaults_off() {
        let c = EngineConfig::for_test(2);
        assert_eq!(c.chunk_cache_bytes, 0);
        assert_eq!(c.prefetch_depth, 2);
    }

    #[test]
    fn compression_defaults_on_and_bool_parsing() {
        assert!(EngineConfig::for_test(2).compress_chunks);
        for (s, want) in [
            ("1", Some(true)),
            ("true", Some(true)),
            ("ON", Some(true)),
            ("yes", Some(true)),
            ("0", Some(false)),
            ("False", Some(false)),
            ("off", Some(false)),
            ("no", Some(false)),
            ("maybe", None),
            ("", None),
        ] {
            assert_eq!(parse_bool(s), want, "parse_bool({s:?})");
        }
    }

    #[test]
    fn alpha_default_is_2p_minus_1() {
        let mut c = EngineConfig::for_test(8);
        assert_eq!(c.effective_alpha(), 15);
        c.alpha = Some(3);
        assert_eq!(c.effective_alpha(), 3);
    }

    #[test]
    fn send_and_recv_orders_mirror() {
        let c = EngineConfig::for_test(4);
        assert_eq!(c.send_order(1), vec![2, 3, 0]);
        assert_eq!(c.recv_order(1), vec![0, 3, 2]);
        // pairing property: if i sends to j at step k, j receives from i at
        // step k (both sides use distance-k neighbours).
        for i in 0..4 {
            let s = c.send_order(i);
            for (k, &j) in s.iter().enumerate() {
                assert_eq!(c.recv_order(j)[k], i);
            }
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = EngineConfig::for_test(2);
        c.page_size = 1000;
        assert!(c.validate().is_err());
        let mut c = EngineConfig::for_test(2);
        c.nodes = 0;
        assert!(c.validate().is_err());
        assert!(EngineConfig::for_test(2).validate().is_ok());
    }

    #[test]
    fn builder_accepts_a_sound_config() {
        let cfg = EngineConfig::builder()
            .nodes(3)
            .threads_per_node(4)
            .mem_budget(1 << 30)
            .chunk_cache_bytes(64 << 20)
            .prefetch_depth(3)
            .compress_chunks(false)
            .build()
            .unwrap();
        assert_eq!((cfg.nodes, cfg.threads_per_node), (3, 4));
        assert_eq!(cfg.prefetch_depth, 3);
        assert!(!cfg.compress_chunks);
    }

    #[test]
    fn builder_rejects_zero_mem_budget() {
        let err = EngineConfig::builder().mem_budget(0).build().unwrap_err();
        assert!(err.contains("mem_budget"), "{err}");
    }

    #[test]
    fn builder_rejects_prefetch_without_cache() {
        let err = EngineConfig::builder().prefetch_depth(4).build().unwrap_err();
        assert!(err.contains("chunk cache") || err.contains("chunk_cache"), "{err}");
        // the default (unset) depth is fine without a cache…
        EngineConfig::builder().build().unwrap();
        // …and an explicit depth of 0 is an explicit "no read-ahead"
        EngineConfig::builder().prefetch_depth(0).build().unwrap();
    }

    #[test]
    fn builder_rejects_malformed_peers() {
        for bad in ["127.0.0.1", "127.0.0.1:port", ":7000", "host:"] {
            let err = EngineConfig::builder()
                .peers(vec![bad.to_string(), "127.0.0.1:7001".into()])
                .build()
                .unwrap_err();
            assert!(err.contains("host:port"), "{bad}: {err}");
        }
        let cfg = EngineConfig::builder()
            .peers(vec!["127.0.0.1:7000".into(), "node1:7000".into()])
            .build()
            .unwrap();
        assert_eq!(cfg.nodes, 2, "peer list sets the node count");
    }

    #[test]
    fn from_env_overrides_is_builder_style() {
        // no DFO_* vars set in the test environment: the config round-trips
        let cfg = EngineConfig::for_test(2);
        let cfg2 = cfg.clone().from_env_overrides();
        assert_eq!(cfg.nodes, cfg2.nodes);
        assert_eq!(cfg.chunk_cache_bytes, cfg2.chunk_cache_bytes);
    }

    #[test]
    fn crash_point_parsing() {
        assert_eq!(CrashPoint::parse("5"), Some(CrashPoint::at(5)));
        assert_eq!(
            CrashPoint::parse(" 9:1 "),
            Some(CrashPoint { rank: Some(1), ..CrashPoint::at(9) })
        );
        assert_eq!(
            CrashPoint::parse("7.mid:0@2"),
            Some(CrashPoint { call: 7, rank: Some(0), pos: CrashPos::Mid, epoch: Some(2) })
        );
        assert_eq!(
            CrashPoint::parse("3.pre@1"),
            Some(CrashPoint { epoch: Some(1), ..CrashPoint::at(3) })
        );
        assert_eq!(CrashPoint::parse("9:"), None);
        assert_eq!(CrashPoint::parse(":1"), None);
        assert_eq!(CrashPoint::parse("4.sideways"), None);
        assert_eq!(CrashPoint::parse("4@"), None);
        assert_eq!(CrashPoint::parse("x"), None);
        assert_eq!(CrashPoint::parse(""), None);
    }

    #[test]
    fn crash_schedule_round_trips() {
        let sched = vec![
            CrashPoint { call: 7, rank: Some(1), pos: CrashPos::Mid, epoch: None },
            CrashPoint { call: 2, rank: Some(0), pos: CrashPos::Pre, epoch: Some(1) },
            CrashPoint::at(14),
        ];
        let rendered = CrashPoint::render_schedule(&sched);
        assert_eq!(rendered, "7.mid:1,2:0@1,14");
        assert_eq!(CrashPoint::parse_schedule(&rendered), Some(sched));
        assert_eq!(CrashPoint::parse_schedule(""), Some(vec![]));
        assert_eq!(CrashPoint::parse_schedule("1,bogus"), None);
    }

    #[test]
    fn telemetry_knobs_default_off() {
        let c = EngineConfig::for_test(2);
        assert_eq!(c.trace_path, None);
        assert_eq!(c.metrics_addr, None);
        assert_eq!(c.trace_capacity, 1 << 16);
        // tracing without a buffer is a contradiction
        let mut c = EngineConfig::for_test(1);
        c.trace_path = Some("t.json".into());
        c.trace_capacity = 0;
        assert!(c.validate().is_err());
        c.trace_capacity = 16;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_checks_metrics_addr_shape() {
        let err =
            EngineConfig::builder().metrics_addr(Some("nonsense".into())).build().unwrap_err();
        assert!(err.contains("host:port"), "{err}");
        let cfg = EngineConfig::builder()
            .metrics_addr(Some("127.0.0.1:0".into()))
            .trace_path(Some("target/t.jsonl".into()))
            .trace_capacity(1024)
            .build()
            .unwrap();
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.trace_path.as_deref(), Some("target/t.jsonl"));
        assert_eq!(cfg.trace_capacity, 1024);
    }

    #[test]
    fn recovery_knobs_default_off() {
        let c = EngineConfig::for_test(2);
        assert_eq!(c.epoch, 0);
        assert_eq!(c.max_restarts, 0);
        assert!(c.crash_schedule.is_empty());
        assert_eq!(c.epoch_file, None);
    }

    #[test]
    fn validation_checks_peer_list_shape() {
        let mut c = EngineConfig::for_test(2);
        c.peers = Some(vec!["127.0.0.1:7000".into()]);
        assert!(c.validate().is_err(), "one address for two ranks");
        c.peers = Some(vec!["127.0.0.1:7000".into(), String::new()]);
        assert!(c.validate().is_err(), "empty address");
        c.peers = Some(vec!["127.0.0.1:7000".into(), "127.0.0.1:7001".into()]);
        assert!(c.validate().is_ok());
    }
}
