//! Byte-accounting statistics shared by the storage and network substrates.
//!
//! Figure 5 of the paper plots disk and network bandwidth over time for
//! DFOGraph vs Chaos; [`TrafficRecorder`] captures exactly that series, and
//! [`PhaseStats`] captures the per-phase totals checked against the Table 2
//! worst-case bounds.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A relaxed atomic byte/op counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// One traffic sample: milliseconds since recorder start, bytes transferred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficSample {
    pub at_ms: u64,
    pub bytes: u64,
}

/// Records a time series of transfers for bandwidth-over-time plots
/// (Figure 5). Sampling is cheap: one lock-protected push per transfer;
/// transfers are MB-granular so contention is negligible.
#[derive(Clone)]
pub struct TrafficRecorder {
    inner: Arc<TrafficInner>,
}

struct TrafficInner {
    start: Instant,
    samples: Mutex<Vec<TrafficSample>>,
    total: Counter,
    enabled: bool,
}

impl TrafficRecorder {
    pub fn new(enabled: bool) -> Self {
        Self {
            inner: Arc::new(TrafficInner {
                start: Instant::now(),
                samples: Mutex::new(Vec::new()),
                total: Counter::new(),
                enabled,
            }),
        }
    }

    /// Records `bytes` transferred now.
    #[inline]
    pub fn record(&self, bytes: u64) {
        self.inner.total.add(bytes);
        if self.inner.enabled && bytes > 0 {
            let at_ms = self.inner.start.elapsed().as_millis() as u64;
            self.inner.samples.lock().push(TrafficSample { at_ms, bytes });
        }
    }

    /// Total bytes recorded so far.
    pub fn total(&self) -> u64 {
        self.inner.total.get()
    }

    /// Snapshot of the raw samples.
    pub fn samples(&self) -> Vec<TrafficSample> {
        self.inner.samples.lock().clone()
    }

    /// Aggregates samples into fixed-width buckets and returns
    /// `(bucket_start_ms, bytes)` pairs — the series plotted in Figure 5.
    pub fn bucketed(&self, bucket_ms: u64) -> Vec<(u64, u64)> {
        assert!(bucket_ms > 0);
        let samples = self.inner.samples.lock();
        if samples.is_empty() {
            return Vec::new();
        }
        let last = samples.iter().map(|s| s.at_ms).max().unwrap();
        let n = (last / bucket_ms + 1) as usize;
        let mut buckets = vec![0u64; n];
        for s in samples.iter() {
            buckets[(s.at_ms / bucket_ms) as usize] += s.bytes;
        }
        buckets.into_iter().enumerate().map(|(i, b)| (i as u64 * bucket_ms, b)).collect()
    }

    pub fn reset(&self) {
        self.inner.samples.lock().clear();
        self.inner.total.reset();
    }
}

/// Per-phase byte totals for one `ProcessEdges` call on one node, matching
/// the rows of Table 2 (generate / pass / dispatch / process).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    pub generate_disk_read: u64,
    pub generate_disk_write: u64,
    pub pass_disk_read: u64,
    pub pass_net_sent: u64,
    pub dispatch_disk_read: u64,
    pub dispatch_disk_write: u64,
    pub dispatch_net_recv: u64,
    pub process_disk_read: u64,
    pub process_disk_write: u64,
    /// Messages generated on this node this call (|M_i| in §4.3).
    pub messages_generated: u64,
    /// Messages actually sent on the wire after filtering.
    pub messages_sent: u64,
    /// Decoded-chunk cache hits this call (edge chunks + dispatch graphs);
    /// 0 when `chunk_cache_bytes == 0`.
    pub chunk_cache_hits: u64,
    /// Decoded-chunk cache misses this call (each miss cost one chunk read).
    pub chunk_cache_misses: u64,
    /// Bytes of decoded chunks evicted from the cache this call to stay
    /// inside the memory budget.
    pub chunk_cache_evicted_bytes: u64,
    /// *Logical* disk bytes read across the whole call: what the pipeline
    /// consumed, before compression. Equal to the sum of physical reads
    /// when chunk compression is off; larger when compressed chunks were
    /// decoded on the way in.
    pub logical_disk_read: u64,
    /// *Logical* disk bytes written across the whole call (pre-compression
    /// payload). The per-phase `*_disk_*` fields above stay physical.
    pub logical_disk_write: u64,
    /// Wall time of phase 1 (generating) in nanoseconds.
    pub generate_nanos: u64,
    /// Wall time of phase 2 (passing, measured on the sender thread) in
    /// nanoseconds. Phases 2 and 3 overlap by design (§4.4/§4.5), so the
    /// per-phase times can legitimately sum past the call's wall time.
    pub pass_nanos: u64,
    /// Wall time of the phase-2+3 overlap window (send + dispatch) as seen
    /// from the call's main thread, in nanoseconds.
    pub dispatch_nanos: u64,
    /// Wall time of phase 4 (processing) in nanoseconds.
    pub process_nanos: u64,
}

impl PhaseStats {
    pub fn merge(&mut self, other: &PhaseStats) {
        self.generate_disk_read += other.generate_disk_read;
        self.generate_disk_write += other.generate_disk_write;
        self.pass_disk_read += other.pass_disk_read;
        self.pass_net_sent += other.pass_net_sent;
        self.dispatch_disk_read += other.dispatch_disk_read;
        self.dispatch_disk_write += other.dispatch_disk_write;
        self.dispatch_net_recv += other.dispatch_net_recv;
        self.process_disk_read += other.process_disk_read;
        self.process_disk_write += other.process_disk_write;
        self.messages_generated += other.messages_generated;
        self.messages_sent += other.messages_sent;
        self.chunk_cache_hits += other.chunk_cache_hits;
        self.chunk_cache_misses += other.chunk_cache_misses;
        self.chunk_cache_evicted_bytes += other.chunk_cache_evicted_bytes;
        self.logical_disk_read += other.logical_disk_read;
        self.logical_disk_write += other.logical_disk_write;
        self.generate_nanos += other.generate_nanos;
        self.pass_nanos += other.pass_nanos;
        self.dispatch_nanos += other.dispatch_nanos;
        self.process_nanos += other.process_nanos;
    }

    /// Summed per-phase wall time in nanoseconds (phases 2 and 3 overlap,
    /// so this can exceed the call's wall time).
    pub fn total_nanos(&self) -> u64 {
        self.generate_nanos + self.pass_nanos + self.dispatch_nanos + self.process_nanos
    }

    /// Total *physical* disk bytes this call moved (per-phase sums).
    pub fn total_disk(&self) -> u64 {
        self.generate_disk_read
            + self.generate_disk_write
            + self.pass_disk_read
            + self.dispatch_disk_read
            + self.dispatch_disk_write
            + self.process_disk_read
            + self.process_disk_write
    }

    pub fn total_net(&self) -> u64 {
        self.pass_net_sent
    }

    /// The fields in wire order — the one place the codec's field layout is
    /// spelled out. **Append only**: decoders match encodings by position.
    fn wire_fields(&self) -> [u64; 20] {
        [
            self.generate_disk_read,
            self.generate_disk_write,
            self.pass_disk_read,
            self.pass_net_sent,
            self.dispatch_disk_read,
            self.dispatch_disk_write,
            self.dispatch_net_recv,
            self.process_disk_read,
            self.process_disk_write,
            self.messages_generated,
            self.messages_sent,
            self.chunk_cache_hits,
            self.chunk_cache_misses,
            self.chunk_cache_evicted_bytes,
            self.logical_disk_read,
            self.logical_disk_write,
            self.generate_nanos,
            self.pass_nanos,
            self.dispatch_nanos,
            self.process_nanos,
        ]
    }

    /// Encodes the stats as a count-prefixed `u64` list, so a decoder built
    /// against fewer fields skips the extras and one built against more
    /// zero-fills the missing tail (append-only evolution, like the job
    /// messages in [`crate::jobspec`]).
    pub fn encode_wire(&self) -> Vec<u8> {
        let fields = self.wire_fields();
        let mut out = Vec::with_capacity(4 + fields.len() * 8);
        crate::codec::write_u32(&mut out, fields.len() as u32).expect("vec write");
        for v in fields {
            crate::codec::write_u64(&mut out, v).expect("vec write");
        }
        out
    }

    /// Decodes stats written by [`PhaseStats::encode_wire`] of any vintage.
    pub fn decode_wire(bytes: &[u8]) -> crate::Result<Self> {
        use std::io::Cursor;
        let err = |e: &dyn std::fmt::Display| {
            crate::DfoError::Protocol(format!("decoding PhaseStats: {e}"))
        };
        let mut c = Cursor::new(bytes);
        let n = crate::codec::read_u32(&mut c).map_err(|e| err(&e))? as usize;
        let mut vals = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            vals.push(crate::codec::read_u64(&mut c).map_err(|e| err(&e))?);
        }
        let mut s = PhaseStats::default();
        let mut fields = s.wire_fields();
        let take = fields.len().min(vals.len());
        fields[..take].copy_from_slice(&vals[..take]);
        [
            s.generate_disk_read,
            s.generate_disk_write,
            s.pass_disk_read,
            s.pass_net_sent,
            s.dispatch_disk_read,
            s.dispatch_disk_write,
            s.dispatch_net_recv,
            s.process_disk_read,
            s.process_disk_write,
            s.messages_generated,
            s.messages_sent,
            s.chunk_cache_hits,
            s.chunk_cache_misses,
            s.chunk_cache_evicted_bytes,
            s.logical_disk_read,
            s.logical_disk_write,
            s.generate_nanos,
            s.pass_nanos,
            s.dispatch_nanos,
            s.process_nanos,
        ] = fields;
        Ok(s)
    }
}

/// Checkpoint-restart counters of one supervised rank (§3.2 over process
/// relaunch): how many times the rank re-bootstrapped the mesh after a peer
/// failure, the epoch it last joined under, and how many one-call rollbacks
/// it performed to rejoin peers that died before committing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Mesh re-bootstraps performed by this rank (0 = never failed over).
    pub restarts: u64,
    /// Epoch of the most recent successful mesh bootstrap.
    pub mesh_epoch: u64,
    /// Checkpoints this rank rolled back because it had committed a
    /// `Process` call that a crashed peer had not (the ahead-rank window):
    /// each rollback discards exactly one committed call so all ranks
    /// resume from the same global call sequence.
    pub rollbacks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_wire_roundtrip() {
        let s = PhaseStats {
            pass_net_sent: 7,
            process_nanos: 99,
            chunk_cache_hits: 3,
            ..PhaseStats::default()
        };
        let back = PhaseStats::decode_wire(&s.encode_wire()).unwrap();
        assert_eq!(back, s);
        // an older 3-field encoding still decodes, missing tail zero-filled
        let mut short = Vec::new();
        crate::codec::write_u32(&mut short, 3).unwrap();
        for v in [1u64, 2, 3] {
            crate::codec::write_u64(&mut short, v).unwrap();
        }
        let old = PhaseStats::decode_wire(&short).unwrap();
        assert_eq!(old.generate_disk_read, 1);
        assert_eq!(old.pass_disk_read, 3);
        assert_eq!(old.process_nanos, 0);
    }

    #[test]
    fn recovery_stats_default_is_clean() {
        let r = RecoveryStats::default();
        assert_eq!(r, RecoveryStats { restarts: 0, mesh_epoch: 0, rollbacks: 0 });
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.add(10);
        c.add(32);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn recorder_totals_and_buckets() {
        let r = TrafficRecorder::new(true);
        r.record(100);
        r.record(50);
        assert_eq!(r.total(), 150);
        let buckets = r.bucketed(1000);
        let sum: u64 = buckets.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, 150);
    }

    #[test]
    fn disabled_recorder_still_counts_total() {
        let r = TrafficRecorder::new(false);
        r.record(77);
        assert_eq!(r.total(), 77);
        assert!(r.samples().is_empty());
    }

    #[test]
    fn phase_stats_merge() {
        let mut a = PhaseStats { pass_net_sent: 10, messages_generated: 4, ..Default::default() };
        let b = PhaseStats { pass_net_sent: 5, messages_sent: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.pass_net_sent, 15);
        assert_eq!(a.messages_generated, 4);
        assert_eq!(a.messages_sent, 3);
        assert_eq!(a.total_net(), 15);
    }

    #[test]
    fn phase_stats_merge_sums_timings() {
        let mut a = PhaseStats { generate_nanos: 10, process_nanos: 5, ..Default::default() };
        let b = PhaseStats {
            generate_nanos: 1,
            pass_nanos: 2,
            dispatch_nanos: 3,
            process_nanos: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(
            (a.generate_nanos, a.pass_nanos, a.dispatch_nanos, a.process_nanos),
            (11, 2, 3, 9)
        );
        assert_eq!(a.total_nanos(), 25);
    }
}
