//! Algorithm correctness on the DFOGraph engine vs exact oracles.

use dfo_algos::{bfs, embedding, label_propagation, pagerank, read_local, sssp, wcc};
use dfo_core::Cluster;
use dfo_graph::gen::{grid2d, rmat, uniform, web_chain, GenConfig};
use dfo_graph::EdgeList;
use dfo_types::{BatchPolicy, EngineConfig};
use tempfile::TempDir;

fn cfg(nodes: usize, batch: u64) -> EngineConfig {
    let mut c = EngineConfig::for_test(nodes);
    c.batch_policy = BatchPolicy::FixedVertices(batch);
    c
}

#[test]
fn pagerank_matches_oracle() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let want = dfo_algos::pagerank::pagerank_oracle(&g, 5);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(3, 64), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got: Vec<f64> = cluster
        .run(|ctx| {
            let rank = pagerank(ctx, 5)?;
            read_local(ctx, &rank)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(got.len(), want.len());
    for (v, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() < 1e-9, "vertex {v}: {a} vs {b}");
    }
}

/// The chunk cache and prefetcher must be invisible to algorithm results:
/// PageRank (fixed iteration count, f64 state) and BFS (data-dependent
/// frontier, seek-mode-prone sparse iterations) run bit-identically across
/// the cache/prefetch matrix.
#[test]
fn algorithms_bit_identical_across_chunk_cache_matrix() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let run = |budget: u64, depth: usize| -> (Vec<u64>, Vec<u32>) {
        let mut c = cfg(3, 64);
        c.chunk_cache_bytes = budget;
        c.prefetch_depth = depth;
        let td = TempDir::new().unwrap();
        let cluster = Cluster::create(c, td.path()).unwrap();
        cluster.preprocess(&g).unwrap();
        let out = cluster
            .run(|ctx| {
                let rank = pagerank(ctx, 5)?;
                let pr = read_local(ctx, &rank)?;
                let level = bfs(ctx, 0)?;
                let lv = read_local(ctx, &level)?;
                Ok((pr, lv))
            })
            .unwrap();
        let mut pr_bits = Vec::new();
        let mut levels = Vec::new();
        for (pr, lv) in out {
            // compare f64 bit patterns: "identical" here means identical
            pr_bits.extend(pr.into_iter().map(f64::to_bits));
            levels.extend(lv);
        }
        (pr_bits, levels)
    };
    let baseline = run(0, 0);
    for budget in [16 << 10, 1 << 30] {
        for depth in [0usize, 2] {
            assert_eq!(run(budget, depth), baseline, "budget={budget} depth={depth}");
        }
    }
}

/// Chunk compression must likewise be invisible to algorithm results:
/// PageRank and BFS run bit-identically across the full
/// {compress on/off} × {chunk_cache_bytes 0/small/large} matrix — the
/// compressed arm exercises decode-before-cache, the uncompressed arm with
/// BFS exercises the CSR seek mode that compression bypasses.
#[test]
fn algorithms_bit_identical_across_compression_matrix() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let run = |compress: bool, budget: u64| -> (Vec<u64>, Vec<u32>) {
        let mut c = cfg(3, 64);
        c.compress_chunks = compress;
        c.chunk_cache_bytes = budget;
        let td = TempDir::new().unwrap();
        let cluster = Cluster::create(c, td.path()).unwrap();
        cluster.preprocess(&g).unwrap();
        let out = cluster
            .run(|ctx| {
                let rank = pagerank(ctx, 5)?;
                let pr = read_local(ctx, &rank)?;
                let level = bfs(ctx, 0)?;
                let lv = read_local(ctx, &level)?;
                Ok((pr, lv))
            })
            .unwrap();
        let mut pr_bits = Vec::new();
        let mut levels = Vec::new();
        for (pr, lv) in out {
            pr_bits.extend(pr.into_iter().map(f64::to_bits));
            levels.extend(lv);
        }
        (pr_bits, levels)
    };
    let baseline = run(false, 0);
    for compress in [false, true] {
        for budget in [0u64, 16 << 10, 1 << 30] {
            assert_eq!(run(compress, budget), baseline, "compress={compress} budget={budget}");
        }
    }
}

#[test]
fn bfs_matches_oracle_on_rmat() {
    let g = rmat(GenConfig::new(9, 5, 13));
    let want = dfo_algos::bfs::bfs_oracle(&g, 0);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2, 48), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got: Vec<u32> = cluster
        .run(|ctx| {
            let level = bfs(ctx, 0)?;
            read_local(ctx, &level)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(got, want);
}

#[test]
fn bfs_long_diameter_web_chain() {
    // the uk-2014-like regime: many sparse iterations
    let g = web_chain(40, 12, 2, 2, 5);
    let want = dfo_algos::bfs::bfs_oracle(&g, 0);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2, 32), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got: Vec<u32> = cluster
        .run(|ctx| {
            let level = bfs(ctx, 0)?;
            read_local(ctx, &level)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(got, want);
}

#[test]
fn wcc_matches_union_find() {
    // two grids + isolated vertices => several components
    let g1 = grid2d(5, 6);
    let mut edges = g1.edges.clone();
    for e in &grid2d(4, 4).edges {
        edges.push(dfo_graph::Edge::new(e.src + 40, e.dst + 40, ()));
    }
    let g = EdgeList::new(64, edges);
    let sym = dfo_algos::wcc::symmetrize(&g);
    let want = dfo_algos::wcc::wcc_oracle(&g);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2, 16), td.path()).unwrap();
    cluster.preprocess(&sym).unwrap();
    let got: Vec<u64> = cluster
        .run(|ctx| {
            let label = wcc(ctx)?;
            read_local(ctx, &label)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(got, want);
}

#[test]
fn sssp_matches_bellman_ford() {
    let g0 = uniform(200, 1200, 31);
    let g: EdgeList<f32> = g0.map_data(|e| ((e.src * 3 + e.dst) % 17 + 1) as f32);
    let want = dfo_algos::sssp::sssp_oracle(&g, 5);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(3, 32), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got: Vec<f32> = cluster
        .run(|ctx| {
            let dist = sssp(ctx, 5)?;
            read_local(ctx, &dist)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    for (v, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!(
            (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3,
            "vertex {v}: {a} vs {b}"
        );
    }
}

#[test]
fn engine_matches_baselines_cross_check() {
    // one graph, three independent implementations, one answer
    let g = rmat(GenConfig::new(8, 5, 99));
    let td = TempDir::new().unwrap();

    let cluster = Cluster::create(cfg(2, 32), td.path().join("dfo")).unwrap();
    cluster.preprocess(&g).unwrap();
    let dfo: Vec<u32> = cluster
        .run(|ctx| {
            let level = bfs(ctx, 0)?;
            read_local(ctx, &level)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();

    let bd = dfo_storage::NodeDisk::new(td.path().join("gg"), None, false).unwrap();
    let gg = dfo_baselines::GridGraphEngine::preprocess(bd, &g, 4).unwrap();
    let (grid, _) = gg.run_push(&dfo_baselines::bfs_spec(0)).unwrap();

    let bc =
        dfo_baselines::BaselineCluster::create(2, td.path().join("ch"), None, None, false).unwrap();
    let chaos = dfo_baselines::ChaosEngine::preprocess(bc, &g).unwrap();
    let (cs, _) = chaos.run_push(&dfo_baselines::bfs_spec(0)).unwrap();
    let chaos_flat: Vec<u32> = cs.into_iter().flatten().collect();

    assert_eq!(dfo, grid);
    assert_eq!(dfo, chaos_flat);
}

#[test]
fn label_propagation_converges() {
    let g = dfo_algos::wcc::symmetrize(&uniform(120, 500, 3));
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2, 32), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let rounds = cluster
        .run(|ctx| {
            let (_labels, rounds) = label_propagation(ctx, 100)?;
            Ok(rounds as u64)
        })
        .unwrap();
    assert!(rounds[0] > 1 && rounds[0] < 100);
}

#[test]
fn embedding_propagation_shrinks_neighbour_distance() {
    let g = rmat(GenConfig::new(8, 6, 55));
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2, 48), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let embs: Vec<embedding::Embedding> = cluster
        .run(|ctx| {
            let e = dfo_algos::embedding_propagation(ctx, 3, 0.5)?;
            read_local(ctx, &e)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    // propagation is a contraction: neighbours must be closer on average
    // than random pairs
    let dist = |a: &embedding::Embedding, b: &embedding::Embedding| -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
    };
    let mut neigh = 0.0f64;
    let mut cnt = 0;
    for e in g.edges.iter().take(2000) {
        if e.src != e.dst {
            neigh += dist(&embs[e.src as usize], &embs[e.dst as usize]) as f64;
            cnt += 1;
        }
    }
    neigh /= cnt as f64;
    let mut rand_d = 0.0f64;
    let mut rcnt = 0;
    for i in 0..2000u64 {
        let a = (i * 2654435761) % g.n_vertices;
        let b = (i * 40503 + 7) % g.n_vertices;
        if a != b {
            rand_d += dist(&embs[a as usize], &embs[b as usize]) as f64;
            rcnt += 1;
        }
    }
    rand_d /= rcnt as f64;
    assert!(
        neigh < rand_d * 0.9,
        "neighbours should be closer after propagation: {neigh} vs random {rand_d}"
    );
}

#[test]
fn pagerank_ranks_sum_near_one_minus_dangling_leak() {
    let g = uniform(150, 600, 8);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2, 32), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got: Vec<f64> = cluster
        .run(|ctx| {
            let rank = pagerank(ctx, 5)?;
            read_local(ctx, &rank)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();
    let total: f64 = got.iter().sum();
    assert!(total > 0.3 && total <= 1.0 + 1e-9, "rank mass {total}");
}
