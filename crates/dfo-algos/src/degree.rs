//! Out-degree materialization.
//!
//! PageRank divides each vertex's rank by its out-degree. In the original
//! system out-degrees are a preprocessing by-product (the partitioner
//! already counted them); this module reconstructs them the same way: each
//! node scans the width-independent DCSR indices of its edge chunks —
//! `idx[i+1] − idx[i]` edges per listed source — and ships the per-source
//! counts to the source's owning partition with one all-to-all exchange.

use dfo_core::{NodeCtx, VertexArray};
use dfo_part::preprocess::paths;
use dfo_types::{slice_as_bytes, vec_from_bytes, DfoError, Result};
use std::io::Read;

/// Materializes each vertex's out-degree into the `"pr_deg"` array.
pub fn out_degree_array(ctx: &mut NodeCtx) -> Result<VertexArray<u64>> {
    let deg = ctx.vertex_array::<u64>("pr_deg")?;
    let rank = ctx.rank();
    let p = ctx.nodes();
    let my_range = ctx.plan().partitions[rank];

    // per source partition: counts of edges stored on THIS node
    let mut per_target: Vec<Vec<u64>> =
        (0..p).map(|t| vec![0u64; ctx.plan().partitions[t].len() as usize]).collect();
    let chunks = ctx.plan().node_meta[rank].chunks.clone();
    for c in &chunks {
        let (srcs, idx) = read_chunk_index(ctx, c.src_partition, c.batch)?;
        let target = &mut per_target[c.src_partition];
        for (i, &s) in srcs.iter().enumerate() {
            target[s as usize] += idx[i + 1] - idx[i];
        }
    }

    // ship counts home and sum contributions from every node
    let outgoing: Vec<Vec<u8>> = per_target.iter().map(|v| slice_as_bytes(v).to_vec()).collect();
    let incoming = ctx.exchange_bytes(outgoing)?;
    let mut counts = vec![0u64; my_range.len() as usize];
    for bytes in incoming {
        if bytes.is_empty() {
            continue;
        }
        let vec: Vec<u64> = vec_from_bytes(&bytes);
        if vec.len() != counts.len() {
            return Err(DfoError::Corrupt(format!(
                "degree vector length {} != partition size {}",
                vec.len(),
                counts.len()
            )));
        }
        for (c, v) in counts.iter_mut().zip(vec) {
            *c += v;
        }
    }

    let h = deg.clone();
    let start = my_range.start;
    let counts = std::sync::Arc::new(counts);
    ctx.process_vertices(&["pr_deg"], None, move |v, c| {
        c.set(&h, v, counts[(v - start) as usize]);
        0u64
    })?;
    Ok(deg)
}

/// Reads only the (src, idx) DCSR arrays of a chunk — they sit right after
/// the header, before any width-dependent payload. The framed reader
/// transparently decodes compressed chunks, so only the blocks holding the
/// header and index are ever decompressed.
fn read_chunk_index(
    ctx: &NodeCtx,
    src_partition: usize,
    batch: usize,
) -> Result<(Vec<u32>, Vec<u64>)> {
    use dfo_types::codec::{read_u32, read_u64};
    let mut r = ctx.disk().open_framed(&paths::chunk(src_partition, batch))?;
    let _magic = read_u32(&mut r).map_err(|e| DfoError::io("chunk magic", e))?;
    let _flags = read_u32(&mut r).map_err(|e| DfoError::io("chunk flags", e))?;
    let _n_src = read_u64(&mut r).map_err(|e| DfoError::io("chunk n_src", e))?;
    let _n_edges = read_u64(&mut r).map_err(|e| DfoError::io("chunk n_edges", e))?;
    let n_nonzero = read_u64(&mut r).map_err(|e| DfoError::io("chunk nz", e))? as usize;
    let mut src_bytes = vec![0u8; n_nonzero * 4];
    r.read_exact(&mut src_bytes).map_err(|e| DfoError::io("chunk dcsr src", e))?;
    let mut idx_bytes = vec![0u8; (n_nonzero + 1) * 8];
    r.read_exact(&mut idx_bytes).map_err(|e| DfoError::io("chunk dcsr idx", e))?;
    Ok((vec_from_bytes(&src_bytes), vec_from_bytes(&idx_bytes)))
}
