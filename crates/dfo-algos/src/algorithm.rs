//! Algorithms as uniform, name-dispatchable trait objects.
//!
//! The free functions in this crate ([`crate::pagerank()`], [`crate::wcc()`],
//! …) are the SPMD *implementations*; the [`Algorithm`] trait wraps each in
//! a uniform interface a job service can dispatch by **name + parameters**
//! without knowing the concrete message or output types. The built-in
//! [`registry`] lists one static instance per workload; [`find`] resolves a
//! name to its trait object.
//!
//! Typed results cross the trait-object boundary as [`AlgoOutput`]: the
//! node-local result slice serialized to Pod bytes plus an [`OutputKind`]
//! tag, recovered losslessly with [`AlgoOutput::values_as`].

use crate::read_local;
use dfo_core::NodeCtx;
use dfo_types::{pod, DfoError, Pod, Result, VertexId};

/// Edge payload an algorithm requires of the preprocessed graph. Checked
/// against [`dfo_part::plan::Plan::edge_data_bytes`] by
/// [`check_edge_data`] *before* a job starts, turning the engine's
/// mismatched-type panic into a typed submit-time error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDataKind {
    /// Unweighted edges (`()` payload, 0 bytes on disk).
    Unit,
    /// One `f32` weight per edge (4 bytes on disk) — SSSP's input.
    WeightF32,
}

impl EdgeDataKind {
    /// On-disk bytes per edge this kind occupies.
    pub fn bytes(self) -> u32 {
        match self {
            EdgeDataKind::Unit => 0,
            EdgeDataKind::WeightF32 => 4,
        }
    }
}

/// Element type of an [`AlgoOutput`] byte payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    F64,
    F32,
    U64,
    U32,
}

impl OutputKind {
    pub fn elem_bytes(self) -> usize {
        match self {
            OutputKind::F64 | OutputKind::U64 => 8,
            OutputKind::F32 | OutputKind::U32 => 4,
        }
    }
}

/// A node's local result slice, type-erased for the trait-object boundary:
/// the vertex values of this rank's partition serialized as Pod bytes.
#[derive(Clone, Debug)]
pub struct AlgoOutput {
    pub kind: OutputKind,
    /// `kind`-typed values for this rank's vertices, in vertex order,
    /// serialized with [`dfo_types::pod::slice_as_bytes`].
    pub values: Vec<u8>,
    /// Rounds the algorithm actually ran, when it has a notion of rounds
    /// (label propagation's convergence count, BFS's frontier depth).
    pub iterations: Option<u64>,
}

impl AlgoOutput {
    /// Packs a typed result slice.
    pub fn from_values<T: Pod>(kind: OutputKind, values: &[T], iterations: Option<u64>) -> Self {
        assert_eq!(kind.elem_bytes(), std::mem::size_of::<T>(), "kind/element size mismatch");
        Self { kind, values: pod::slice_as_bytes(values).to_vec(), iterations }
    }

    /// Recovers the typed values; errors if `T` does not match the tag.
    pub fn values_as<T: Pod>(&self) -> Result<Vec<T>> {
        if self.kind.elem_bytes() != std::mem::size_of::<T>() {
            return Err(DfoError::Config(format!(
                "output holds {:?} values; {} has the wrong size",
                self.kind,
                std::any::type_name::<T>()
            )));
        }
        Ok(pod::vec_from_bytes(&self.values))
    }

    /// Number of vertex values in the payload.
    pub fn len(&self) -> usize {
        self.values.len() / self.kind.elem_bytes()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Named integer parameters for a by-name dispatch (`iters`, `root`,
/// `max_iters`, …). Every algorithm documents its keys and falls back to a
/// default for absent ones; unknown keys are ignored, so one parameter map
/// can serve a batch of different algorithms.
///
/// The type itself lives in [`dfo_types::jobspec`] (so the remote job wire
/// codec can encode it without depending on this crate); this re-export
/// keeps `dfo_algos::JobParams` the conventional import for algorithm
/// callers.
pub use dfo_types::JobParams;

/// A graph workload dispatchable by name: the uniform interface a job
/// service multiplexes over one engine. Implementations are thin wrappers
/// over this crate's free functions — the functions stay the primary API
/// for direct [`dfo_core::Cluster::run`] callers.
///
/// `run` executes SPMD inside one rank's closure: it is handed that rank's
/// [`NodeCtx`] and returns the rank's local slice of the result.
pub trait Algorithm: Send + Sync {
    /// Registry key (`"pagerank"`, `"wcc"`, …).
    fn name(&self) -> &'static str;

    /// Edge payload the algorithm needs the graph preprocessed with.
    fn edge_data(&self) -> EdgeDataKind {
        EdgeDataKind::Unit
    }

    /// Rough bytes of mutable per-vertex state the algorithm keeps across
    /// the cluster (vertex arrays it creates), used by admission control to
    /// estimate a job's memory footprint: `hint × n_vertices` bounds the
    /// working set the engine batches through `mem_budget`.
    fn state_bytes_per_vertex(&self) -> u64;

    /// Runs the workload on this rank and returns the rank's local result.
    fn run(&self, ctx: &mut NodeCtx, params: &JobParams) -> Result<AlgoOutput>;
}

/// Verifies the graph was preprocessed with the edge payload `algo` needs.
/// Call at submit time: failing here is a typed [`DfoError::Config`] before
/// any rank starts, instead of the engine's mismatched-edge-type panic
/// mid-run.
pub fn check_edge_data(algo: &dyn Algorithm, plan_edge_data_bytes: u32) -> Result<()> {
    let want = algo.edge_data();
    if want.bytes() != plan_edge_data_bytes {
        return Err(DfoError::Config(format!(
            "algorithm {:?} needs {:?} edges ({} bytes/edge) but the graph was preprocessed \
             with {} bytes/edge",
            algo.name(),
            want,
            want.bytes(),
            plan_edge_data_bytes
        )));
    }
    Ok(())
}

/// PageRank (`iters` parameter, default 5). Output: `f64` ranks.
pub struct PageRank;

impl Algorithm for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        // rank + next-rank f64 arrays + the degree array feeding them
        3 * 8
    }

    fn run(&self, ctx: &mut NodeCtx, params: &JobParams) -> Result<AlgoOutput> {
        let iters = params.get_or("iters", 5) as usize;
        let ranks = crate::pagerank(ctx, iters)?;
        let local = read_local(ctx, &ranks)?;
        Ok(AlgoOutput::from_values(OutputKind::F64, &local, Some(iters as u64)))
    }
}

/// Weakly connected components (no parameters; expects a symmetrized
/// graph — see [`crate::wcc::symmetrize`]). Output: `u64` component labels.
pub struct Wcc;

impl Algorithm for Wcc {
    fn name(&self) -> &'static str {
        "wcc"
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        // label u64 + active/next-active bools
        8 + 2
    }

    fn run(&self, ctx: &mut NodeCtx, _params: &JobParams) -> Result<AlgoOutput> {
        let labels = crate::wcc(ctx)?;
        let local = read_local(ctx, &labels)?;
        Ok(AlgoOutput::from_values(OutputKind::U64, &local, None))
    }
}

/// Single-source shortest paths (`root` parameter, default 0); needs
/// `f32`-weighted edges. Output: `f32` distances (`f32::INFINITY` =
/// unreachable).
pub struct Sssp;

impl Algorithm for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn edge_data(&self) -> EdgeDataKind {
        EdgeDataKind::WeightF32
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        // distance f32 + active/next-active bools
        4 + 2
    }

    fn run(&self, ctx: &mut NodeCtx, params: &JobParams) -> Result<AlgoOutput> {
        let root = params.get_or("root", 0) as VertexId;
        let dist = crate::sssp(ctx, root)?;
        let local = read_local(ctx, &dist)?;
        Ok(AlgoOutput::from_values(OutputKind::F32, &local, None))
    }
}

/// Breadth-first search (`root` parameter, default 0). Output: `u32` hop
/// counts (`u32::MAX` = unreachable).
pub struct Bfs;

impl Algorithm for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        // depth u32 + active/next-active bools
        4 + 2
    }

    fn run(&self, ctx: &mut NodeCtx, params: &JobParams) -> Result<AlgoOutput> {
        let root = params.get_or("root", 0) as VertexId;
        let depth = crate::bfs(ctx, root)?;
        let local = read_local(ctx, &depth)?;
        Ok(AlgoOutput::from_values(OutputKind::U32, &local, None))
    }
}

/// Out-degree per vertex (no parameters). Output: `u64` degrees.
pub struct Degree;

impl Algorithm for Degree {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        8
    }

    fn run(&self, ctx: &mut NodeCtx, _params: &JobParams) -> Result<AlgoOutput> {
        let deg = crate::out_degree_array(ctx)?;
        let local = read_local(ctx, &deg)?;
        Ok(AlgoOutput::from_values(OutputKind::U64, &local, None))
    }
}

/// Synchronous label propagation (`max_iters` parameter, default 10).
/// Output: `u64` labels; `iterations` reports the rounds until convergence.
pub struct LabelProp;

impl Algorithm for LabelProp {
    fn name(&self) -> &'static str {
        "labelprop"
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        // current + proposed label u64s + changed flag
        2 * 8 + 1
    }

    fn run(&self, ctx: &mut NodeCtx, params: &JobParams) -> Result<AlgoOutput> {
        let max_iters = params.get_or("max_iters", 10) as usize;
        let (labels, rounds) = crate::label_propagation(ctx, max_iters)?;
        let local = read_local(ctx, &labels)?;
        Ok(AlgoOutput::from_values(OutputKind::U64, &local, Some(rounds as u64)))
    }
}

/// Chaos/testing workload: sleeps, then fails with a typed error or
/// succeeds — the runtime fault injector for service availability tests
/// (mesh relaunch, retry bounds, overlap isolation). Parameters:
///
/// * `delay_ms` (default 0): sleep before acting, so a fault can be timed
///   to land while other jobs are mid-flight — or so a `mode=2` job is a
///   deterministic-duration sleeper.
/// * `mode` (default 0): `0` fails with a non-retryable
///   [`DfoError::Config`]; `1` fails with a retryable
///   [`DfoError::NetClosed`]; anything else succeeds, returning a zeroed
///   `u32` per local vertex.
///
/// Failures are SPMD-deterministic (every rank sleeps and fails alike), so
/// a failing fault job poisons a shared mesh the way any real job failure
/// would.
pub struct Fault;

impl Algorithm for Fault {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn state_bytes_per_vertex(&self) -> u64 {
        1
    }

    fn run(&self, ctx: &mut NodeCtx, params: &JobParams) -> Result<AlgoOutput> {
        let delay_ms = params.get_or("delay_ms", 0);
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
        match params.get_or("mode", 0) {
            0 => Err(DfoError::Config("fault: injected deterministic failure".into())),
            1 => Err(DfoError::NetClosed("fault: injected mesh failure".into())),
            _ => {
                let range = &ctx.plan().partitions[ctx.rank()];
                let local = vec![0u32; (range.end - range.start) as usize];
                Ok(AlgoOutput::from_values(OutputKind::U32, &local, None))
            }
        }
    }
}

/// The built-in workloads, one static instance each.
pub fn registry() -> &'static [&'static dyn Algorithm] {
    static REGISTRY: [&dyn Algorithm; 7] =
        [&PageRank, &Wcc, &Sssp, &Bfs, &Degree, &LabelProp, &Fault];
    &REGISTRY
}

/// Resolves a registry name to its algorithm, if registered.
pub fn find(name: &str) -> Option<&'static dyn Algorithm> {
    registry().iter().copied().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_builtins() {
        let names: Vec<_> = registry().iter().map(|a| a.name()).collect();
        assert_eq!(names, ["pagerank", "wcc", "sssp", "bfs", "degree", "labelprop", "fault"]);
        assert!(find("pagerank").is_some());
        assert!(find("pagerank2").is_none());
    }

    #[test]
    fn edge_kind_check_catches_mismatch() {
        let pr = find("pagerank").unwrap();
        assert!(check_edge_data(pr, 0).is_ok());
        assert!(check_edge_data(pr, 4).is_err());
        let sssp = find("sssp").unwrap();
        assert!(check_edge_data(sssp, 4).is_ok());
        assert!(check_edge_data(sssp, 0).is_err());
    }

    #[test]
    fn params_defaults_and_overrides() {
        let p = JobParams::new().with("iters", 12);
        assert_eq!(p.get_or("iters", 5), 12);
        assert_eq!(p.get_or("root", 0), 0);
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn output_roundtrips_typed_values() {
        let vals = [1.5f64, -2.25, 0.0];
        let out = AlgoOutput::from_values(OutputKind::F64, &vals, Some(3));
        assert_eq!(out.len(), 3);
        assert_eq!(out.values_as::<f64>().unwrap(), vals);
        assert!(out.values_as::<f32>().is_err());
        assert_eq!(out.iterations, Some(3));
    }
}
