//! Graph algorithms on the DFOGraph API (paper §5.1).
//!
//! The four evaluation workloads — PageRank, BFS, WCC, SSSP — plus the
//! extensions the introduction motivates (vector-valued vertex data for
//! machine-learning-style propagation, degree centrality, label
//! propagation). Each is an SPMD function taking the per-node [`NodeCtx`];
//! call them inside [`dfo_core::Cluster::run`].
//!
//! All functions return the algorithm's per-node view of its result arrays
//! so callers (tests, benches) can verify against oracles.

pub mod algorithm;
pub mod bfs;
pub mod degree;
pub mod embedding;
pub mod labelprop;
pub mod pagerank;
pub mod sssp;
pub mod wcc;

pub use algorithm::{
    check_edge_data, find, registry, AlgoOutput, Algorithm, EdgeDataKind, JobParams, OutputKind,
};
pub use bfs::bfs;
pub use degree::out_degree_array;
pub use embedding::embedding_propagation;
pub use labelprop::label_propagation;
pub use pagerank::pagerank;
pub use sssp::sssp;
pub use wcc::wcc;

use dfo_core::{NodeCtx, VertexArray};
use dfo_types::{Pod, Result, VertexId};

/// Copies this node's slice of `arr` into a `Vec` (verification helper).
pub fn read_local<T: Pod>(ctx: &mut NodeCtx, arr: &VertexArray<T>) -> Result<Vec<T>> {
    let range = ctx.plan().partitions[ctx.rank()];
    let mut out = vec![dfo_types::pod::pod_zeroed::<T>(); range.len() as usize];
    let h = arr.clone();
    let name = h.name().to_string();
    let sink = std::sync::Mutex::new(&mut out);
    ctx.process_vertices(&[name.as_str()], None, |v: VertexId, c| {
        let val = c.get(&h, v);
        sink.lock().unwrap()[(v - range.start) as usize] = val;
        0u64
    })?;
    Ok(out)
}
