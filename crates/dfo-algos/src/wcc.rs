//! Weakly Connected Components via min-label propagation (paper §5.1:
//! "each iteration may not scan the whole graph, and an edge is likely to
//! be accessed multiple times in each run").
//!
//! Labels must travel both edge directions. DFOGraph's push-only engine
//! handles that the way the paper describes in footnote 4 — run over both
//! orientations. Operationally, that is equivalent to preprocessing the
//! **symmetrized** graph (each edge stored both ways, which is exactly what
//! storing "the graph and the reversed graph" amounts to on disk) and
//! pushing labels over it; [`symmetrize`] performs that preprocessing step.

use dfo_core::{NodeCtx, VertexArray};
use dfo_types::Result;

/// Min-label WCC over a symmetrized graph; returns the label array, where
/// each vertex's label is the smallest vertex ID in its component.
pub fn wcc(ctx: &mut NodeCtx) -> Result<VertexArray<u64>> {
    let label = ctx.vertex_array::<u64>("wcc_label")?;
    let active = ctx.vertex_array::<bool>("wcc_active")?;
    {
        let (l, a) = (label.clone(), active.clone());
        ctx.process_vertices(&["wcc_label", "wcc_active"], None, move |v, c| {
            c.set(&l, v, v);
            c.set(&a, v, true);
            0u64
        })?;
    }
    loop {
        let (l1, a1) = (label.clone(), active.clone());
        let (l2, a2) = (label.clone(), active.clone());
        let updates = ctx.process_edges(
            &["wcc_label", "wcc_active"],
            &["wcc_label", "wcc_active"],
            Some(&active),
            move |v, c| {
                c.set(&a1, v, false);
                Some(c.get(&l1, v))
            },
            move |msg: u64, _src, dst, _e: &(), c| {
                if msg < c.get(&l2, dst) {
                    c.set(&l2, dst, msg);
                    c.set(&a2, dst, true);
                    1u64
                } else {
                    0u64
                }
            },
        )?;
        if updates == 0 {
            break;
        }
    }
    Ok(label)
}

/// Adds the reverse of every edge — the preprocessing step that lets a
/// push-only engine propagate labels "both ways".
pub fn symmetrize(g: &dfo_graph::EdgeList<()>) -> dfo_graph::EdgeList<()> {
    let mut edges = g.edges.clone();
    edges.extend(g.edges.iter().map(|e| dfo_graph::Edge::new(e.dst, e.src, ())));
    dfo_graph::EdgeList::new(g.n_vertices, edges)
}

/// Union-find oracle (treats edges as undirected, like WCC); labels are the
/// minimum vertex ID per component.
pub fn wcc_oracle(g: &dfo_graph::EdgeList<()>) -> Vec<u64> {
    let n = g.n_vertices as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while p[r] != r {
            r = p[r];
        }
        let mut c = x;
        while p[c] != c {
            let next = p[c];
            p[c] = r;
            c = next;
        }
        r
    }
    for e in &g.edges {
        let (a, b) = (find(&mut parent, e.src as usize), find(&mut parent, e.dst as usize));
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    let mut min_of_root = vec![u64::MAX; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        min_of_root[r] = min_of_root[r].min(v as u64);
    }
    (0..n)
        .map(|v| {
            let r = find(&mut parent, v);
            min_of_root[r]
        })
        .collect()
}
