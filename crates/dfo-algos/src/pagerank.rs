//! PageRank (paper §5.1: "each iteration scans the whole graph, and we
//! perform five iterations in each run").
//!
//! Standard damped formulation: every iteration each vertex pushes
//! `rank / out_degree` along its out-edges; new rank is
//! `(1−d)/|V| + d · Σ incoming`.

use crate::degree::out_degree_array;
use dfo_core::{NodeCtx, VertexArray};
use dfo_types::Result;

pub const DAMPING: f64 = 0.85;

/// Runs `iters` PageRank iterations; returns the rank array handle.
/// Ranks are maintained as probabilities (they sum to ~1 over the graph).
pub fn pagerank(ctx: &mut NodeCtx, iters: usize) -> Result<VertexArray<f64>> {
    let n = ctx.plan().n_vertices as f64;
    let rank = ctx.vertex_array::<f64>("pr_rank")?;
    let nextr = ctx.vertex_array::<f64>("pr_next")?;
    let deg = out_degree_array(ctx)?;

    // init: uniform distribution
    {
        let r = rank.clone();
        ctx.process_vertices(&["pr_rank"], None, move |v, c| {
            c.set(&r, v, 1.0 / n);
            0u64
        })?;
    }
    for _ in 0..iters {
        // clear accumulators
        {
            let nx = nextr.clone();
            ctx.process_vertices(&["pr_next"], None, move |v, c| {
                c.set(&nx, v, 0.0);
                0u64
            })?;
        }
        // push rank/deg along out-edges
        {
            let (r, d) = (rank.clone(), deg.clone());
            let nx = nextr.clone();
            ctx.process_edges(
                &["pr_rank", "pr_deg"],
                &["pr_next"],
                None,
                move |v, c| {
                    let dv = c.get(&d, v);
                    if dv == 0 {
                        None
                    } else {
                        Some(c.get(&r, v) / dv as f64)
                    }
                },
                move |msg: f64, _src, dst, _e: &(), c| {
                    let cur = c.get(&nx, dst);
                    c.set(&nx, dst, cur + msg);
                    0u64
                },
            )?;
        }
        // apply damping
        {
            let (r, nx) = (rank.clone(), nextr.clone());
            ctx.process_vertices(&["pr_rank", "pr_next"], None, move |v, c| {
                let s = c.get(&nx, v);
                c.set(&r, v, (1.0 - DAMPING) / n + DAMPING * s);
                0u64
            })?;
        }
    }
    Ok(rank)
}

/// Exact in-memory PageRank for verification (same dangling-mass handling:
/// dangling vertices simply leak rank, as the push formulation does).
pub fn pagerank_oracle(g: &dfo_graph::EdgeList<()>, iters: usize) -> Vec<f64> {
    let n = g.n_vertices as usize;
    let mut deg = vec![0u64; n];
    for e in &g.edges {
        deg[e.src as usize] += 1;
    }
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![0.0f64; n];
        for e in &g.edges {
            next[e.dst as usize] += rank[e.src as usize] / deg[e.src as usize] as f64;
        }
        for v in 0..n {
            rank[v] = (1.0 - DAMPING) / n as f64 + DAMPING * next[v];
        }
    }
    rank
}
