//! Embedding propagation: vector-valued vertex data.
//!
//! The paper's introduction (§1.1) argues fully-out-of-core processing is
//! essential precisely because "machine-learning related graph algorithms,
//! such as node2vec, require the data on each vertex to be vectors" —
//! vertex data can rival or exceed edge data in size. This workload
//! exercises that regime: each vertex carries a `[f32; D]` embedding and
//! every iteration mean-aggregates its in-neighbours' embeddings (the
//! message-passing core of GNN-style feature propagation).

use crate::degree::out_degree_array;
use dfo_core::{NodeCtx, VertexArray};
use dfo_types::Result;

/// Embedding dimension; 16 floats = 64 bytes per vertex, 8× the edge data.
pub const DIM: usize = 16;
pub type Embedding = [f32; DIM];

/// Runs `iters` rounds of mean-neighbour aggregation with self-mixing
/// factor `alpha` (`new = alpha·own + (1−alpha)·mean(in-neighbours)`).
/// Embeddings start from a deterministic per-vertex hash so results are
/// reproducible. Returns the embedding array.
pub fn embedding_propagation(
    ctx: &mut NodeCtx,
    iters: usize,
    alpha: f32,
) -> Result<VertexArray<Embedding>> {
    let emb = ctx.vertex_array::<Embedding>("emb")?;
    let acc = ctx.vertex_array::<Embedding>("emb_acc")?;
    let cnt = ctx.vertex_array::<u32>("emb_cnt")?;
    let deg = out_degree_array(ctx)?;

    {
        let e = emb.clone();
        ctx.process_vertices(&["emb"], None, move |v, c| {
            c.set(&e, v, seed_embedding(v));
            0u64
        })?;
    }
    for _ in 0..iters {
        {
            let (a, k) = (acc.clone(), cnt.clone());
            ctx.process_vertices(&["emb_acc", "emb_cnt"], None, move |v, c| {
                c.set(&a, v, [0.0; DIM]);
                c.set(&k, v, 0);
                0u64
            })?;
        }
        {
            let (e, d) = (emb.clone(), deg.clone());
            let (a, k) = (acc.clone(), cnt.clone());
            ctx.process_edges(
                &["emb", "pr_deg"],
                &["emb_acc", "emb_cnt"],
                None,
                move |v, c| {
                    if c.get(&d, v) == 0 {
                        return None;
                    }
                    Some(c.get(&e, v))
                },
                move |msg: Embedding, _s, dst, _ed: &(), c| {
                    let mut cur = c.get(&a, dst);
                    for (x, m) in cur.iter_mut().zip(msg.iter()) {
                        *x += m;
                    }
                    c.set(&a, dst, cur);
                    let n = c.get(&k, dst);
                    c.set(&k, dst, n + 1);
                    1u64
                },
            )?;
        }
        {
            let (e, a, k) = (emb.clone(), acc.clone(), cnt.clone());
            ctx.process_vertices(&["emb", "emb_acc", "emb_cnt"], None, move |v, c| {
                let n = c.get(&k, v);
                if n == 0 {
                    return 0u64;
                }
                let own = c.get(&e, v);
                let sum = c.get(&a, v);
                let mut new = [0.0f32; DIM];
                for i in 0..DIM {
                    new[i] = alpha * own[i] + (1.0 - alpha) * sum[i] / n as f32;
                }
                c.set(&e, v, new);
                1u64
            })?;
        }
    }
    Ok(emb)
}

/// Deterministic pseudo-random initial embedding of vertex `v`.
pub fn seed_embedding(v: u64) -> Embedding {
    let mut out = [0.0f32; DIM];
    let mut x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for slot in out.iter_mut() {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        *slot = ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
    out
}
