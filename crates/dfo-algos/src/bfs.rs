//! Breadth-First Search (paper §5.1: "the number of iterations equals the
//! longest distance from the starting vertex, and each edge is only scanned
//! once within a run").

use dfo_core::{NodeCtx, VertexArray};
use dfo_types::{Result, VertexId};

/// Level value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS from `root`; returns the level array (`UNREACHED` = not reachable).
pub fn bfs(ctx: &mut NodeCtx, root: VertexId) -> Result<VertexArray<u32>> {
    let level = ctx.vertex_array::<u32>("bfs_level")?;
    let active = ctx.vertex_array::<bool>("bfs_active")?;

    {
        let (l, a) = (level.clone(), active.clone());
        ctx.process_vertices(&["bfs_level", "bfs_active"], None, move |v, c| {
            c.set(&l, v, if v == root { 0 } else { UNREACHED });
            c.set(&a, v, v == root);
            0u64
        })?;
    }
    let mut depth: u32 = 0;
    loop {
        depth += 1;
        let (l1, a1) = (level.clone(), active.clone());
        let (l2, a2) = (level.clone(), active.clone());
        let n_new = ctx.process_edges(
            &["bfs_active"],
            &["bfs_level", "bfs_active"],
            Some(&active),
            move |v, c| {
                let _ = &l1; // frontier vertices only signal their presence
                c.set(&a1, v, false);
                Some(())
            },
            move |_msg: (), _src, dst, _e: &(), c| {
                if c.get(&l2, dst) == UNREACHED {
                    c.set(&l2, dst, depth);
                    c.set(&a2, dst, true);
                    1u64
                } else {
                    0u64
                }
            },
        )?;
        if n_new == 0 {
            break;
        }
    }
    Ok(level)
}

/// In-memory BFS oracle.
pub fn bfs_oracle(g: &dfo_graph::EdgeList<()>, root: VertexId) -> Vec<u32> {
    let n = g.n_vertices as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in &g.edges {
        adj[e.src as usize].push(e.dst as u32);
    }
    let mut level = vec![UNREACHED; n];
    level[root as usize] = 0;
    let mut frontier = vec![root as u32];
    let mut d = 0;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for v in frontier {
            for &u in &adj[v as usize] {
                if level[u as usize] == UNREACHED {
                    level[u as usize] = d;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    level
}
