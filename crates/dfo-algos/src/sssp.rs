//! Single-Source Shortest Paths — the paper's running example (Figure 2b),
//! implemented verbatim on the Rust API.

use dfo_core::{NodeCtx, VertexArray};
use dfo_types::{Result, VertexId};

/// Bellman-Ford-style SSSP with active sets from `root` over `f32` edge
/// weights; returns the distance array (`f32::INFINITY` = unreachable).
pub fn sssp(ctx: &mut NodeCtx, root: VertexId) -> Result<VertexArray<f32>> {
    let dist = ctx.vertex_array::<f32>("sssp_dist")?;
    let active = ctx.vertex_array::<bool>("sssp_active")?;
    {
        let (d, a) = (dist.clone(), active.clone());
        ctx.process_vertices(&["sssp_dist", "sssp_active"], None, move |v, c| {
            if v == root {
                c.set(&a, v, true);
                c.set(&d, v, 0.0);
            } else {
                c.set(&a, v, false);
                c.set(&d, v, f32::INFINITY);
            }
            0u64
        })?;
    }
    loop {
        let (d1, a1) = (dist.clone(), active.clone());
        let (d2, a2) = (dist.clone(), active.clone());
        let n_update = ctx.process_edges(
            &["sssp_dist", "sssp_active"],
            &["sssp_dist", "sssp_active"],
            Some(&active),
            move |v, c| {
                c.set(&a1, v, false);
                Some(c.get(&d1, v))
            },
            move |msg: f32, _src, dst, data: &f32, c| {
                if msg + data < c.get(&d2, dst) {
                    c.set(&a2, dst, true);
                    c.set(&d2, dst, msg + data);
                    1u64
                } else {
                    0u64
                }
            },
        )?;
        if n_update == 0 {
            break;
        }
    }
    Ok(dist)
}

/// Bellman-Ford oracle.
pub fn sssp_oracle(g: &dfo_graph::EdgeList<f32>, root: VertexId) -> Vec<f32> {
    let n = g.n_vertices as usize;
    let mut dist = vec![f32::INFINITY; n];
    dist[root as usize] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for e in &g.edges {
            let nd = dist[e.src as usize] + e.data;
            if nd < dist[e.dst as usize] {
                dist[e.dst as usize] = nd;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}
