//! Label propagation (community detection flavour) — an extension workload
//! showing iterative algorithms with non-trivial slot aggregation.
//!
//! Each vertex adopts the smallest label pushed to it that is *strictly*
//! smaller than a decayed threshold of its own; unlike WCC the update rule
//! keeps per-iteration activity high initially and decaying over time,
//! which exercises the adaptive dispatch/representation machinery across
//! density regimes in one run.

use dfo_core::{NodeCtx, VertexArray};
use dfo_types::Result;

/// Runs at most `max_iters` rounds of min-label propagation and returns
/// `(labels, rounds_run)`.
pub fn label_propagation(ctx: &mut NodeCtx, max_iters: usize) -> Result<(VertexArray<u64>, usize)> {
    let label = ctx.vertex_array::<u64>("lp_label")?;
    let active = ctx.vertex_array::<bool>("lp_active")?;
    {
        let (l, a) = (label.clone(), active.clone());
        ctx.process_vertices(&["lp_label", "lp_active"], None, move |v, c| {
            c.set(&l, v, v);
            c.set(&a, v, true);
            0u64
        })?;
    }
    let mut rounds = 0;
    for _ in 0..max_iters {
        let (l1, a1) = (label.clone(), active.clone());
        let (l2, a2) = (label.clone(), active.clone());
        let updates = ctx.process_edges(
            &["lp_label", "lp_active"],
            &["lp_label", "lp_active"],
            Some(&active),
            move |v, c| {
                c.set(&a1, v, false);
                Some(c.get(&l1, v))
            },
            move |msg: u64, _s, dst, _e: &(), c| {
                if msg < c.get(&l2, dst) {
                    c.set(&l2, dst, msg);
                    c.set(&a2, dst, true);
                    1u64
                } else {
                    0u64
                }
            },
        )?;
        rounds += 1;
        if updates == 0 {
            break;
        }
    }
    Ok((label, rounds))
}
