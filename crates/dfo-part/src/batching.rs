//! Intra-node vertex batch sizing (paper §2.2).
//!
//! "By default, we choose the batch size to be as large as possible, either
//! limited by the memory amount (fully-out-of-core) or by the requirement of
//! load balancing (semi-out-of-core). In fully-out-of-core processing, the
//! size is chosen that vertex data of each batch multiplied by `T` is less
//! than half of total memory. For the semi-out-of-core case, the size is
//! chosen by experience that each partition contains at least `1.5 T`
//! batches."

use dfo_types::{BatchPolicy, VertexRange};

/// Number of vertices per batch for a partition of `range` vertices under
/// `policy`, with `threads` workers and `mem_budget` bytes of node memory.
pub fn choose_batch_size(
    policy: BatchPolicy,
    range: &VertexRange,
    threads: usize,
    mem_budget: u64,
) -> u64 {
    let n = range.len().max(1);
    match policy {
        BatchPolicy::FixedVertices(k) => k.max(1),
        BatchPolicy::FullyOutOfCore { widest_vertex_bytes } => {
            let widest = widest_vertex_bytes.max(1);
            // batch_bytes * T <= mem/2  =>  batch_vertices <= mem / (2 T widest)
            let by_memory = (mem_budget / (2 * threads as u64 * widest)).max(1);
            by_memory.min(n)
        }
        BatchPolicy::SemiOutOfCore => {
            // at least 1.5 T batches per partition
            let min_batches = (3 * threads as u64).div_ceil(2);
            (n / min_batches.max(1)).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfo_types::ids::split_into_batches;

    #[test]
    fn fixed_is_fixed() {
        let r = VertexRange::new(0, 1000);
        assert_eq!(choose_batch_size(BatchPolicy::FixedVertices(64), &r, 4, 0), 64);
    }

    #[test]
    fn fully_ooc_respects_memory_rule() {
        let r = VertexRange::new(0, 1 << 20);
        // 8-byte vertex data, 4 threads, 64 KB budget:
        // batch <= 65536 / (2*4*8) = 1024
        let bs = choose_batch_size(
            BatchPolicy::FullyOutOfCore { widest_vertex_bytes: 8 },
            &r,
            4,
            64 << 10,
        );
        assert_eq!(bs, 1024);
        // invariant: batch_bytes * T <= mem/2
        assert!(bs * 8 * 4 <= (64 << 10) / 2);
    }

    #[test]
    fn semi_ooc_gives_at_least_1_5t_batches() {
        let r = VertexRange::new(0, 1200);
        let threads = 4;
        let bs = choose_batch_size(BatchPolicy::SemiOutOfCore, &r, threads, 0);
        let batches = split_into_batches(r, bs);
        assert!(
            batches.len() as f64 >= 1.5 * threads as f64,
            "got {} batches for {threads} threads",
            batches.len()
        );
    }

    #[test]
    fn tiny_partition_still_gets_one_batch() {
        let r = VertexRange::new(5, 6);
        for policy in [
            BatchPolicy::FixedVertices(100),
            BatchPolicy::FullyOutOfCore { widest_vertex_bytes: 8 },
            BatchPolicy::SemiOutOfCore,
        ] {
            let bs = choose_batch_size(policy, &r, 4, 1 << 20);
            assert!(bs >= 1);
        }
    }
}
