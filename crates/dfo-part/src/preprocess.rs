//! The preprocessing pipeline: edge list → per-node on-disk structures.
//!
//! Produces everything Figure 1b shows plus the §4.2/§4.3 side structures:
//!
//! ```text
//! <node i disk>/
//!   plan.bin                     replicated Plan
//!   chunks/p{p}_b{b}.chunk       edge chunk (src partition p → local batch b)
//!   dispatch/from_{p}.dg         dispatching graph (src vertex → batch)
//!   pull/from_{p}_b{b}.lst       pull list per (partition, batch)
//!   filter/to_{j}.lst            sources of partition i needed by node j
//! ```
//!
//! All writes go through the accounted node disks, so preprocessing time in
//! the benchmark tables reflects the same throttled I/O as iterations do.
//! Chunks and dispatching graphs are written through the checksummed LZ4
//! block framing when `cfg.compress_chunks` is on (the default); readers
//! auto-detect either layout.

use crate::batching::choose_batch_size;
use crate::csr::IndexedChunk;
use crate::dispatch::write_pull_list;
use crate::filter::write_filter_list;
use crate::partition::partition_vertices;
use crate::plan::{ChunkInfo, NodeMeta, Plan};
use dfo_graph::degree::degrees;
use dfo_graph::edge::EdgeList;
use dfo_storage::NodeDisk;
use dfo_types::{EngineConfig, Pod, Result};
use rayon::prelude::*;

/// Paths of the structures a node stores, kept in one place so the engine
/// and the preprocessor cannot drift apart.
pub mod paths {
    pub fn chunk(p: usize, b: usize) -> String {
        format!("chunks/p{p}_b{b}.chunk")
    }
    pub fn dispatch(p: usize) -> String {
        format!("dispatch/from_{p}.dg")
    }
    pub fn pull(p: usize, b: usize) -> String {
        format!("pull/from_{p}_b{b}.lst")
    }
    pub fn filter(j: usize) -> String {
        format!("filter/to_{j}.lst")
    }
}

/// Result of preprocessing (the plan plus anything harnesses want to log).
pub struct PreprocessOutput {
    pub plan: Plan,
}

/// Preprocesses `g` for `cfg.nodes` nodes writing onto `disks`.
///
/// The input follows the paper's contract for DFOGraph: edges sorted by
/// source (§5.2, "DFOGraph needs input edges in order"); sorting is the
/// caller's job and is *not* part of timed preprocessing (§5.2 footnote 5).
pub fn preprocess<E: Pod + PartialEq>(
    g: &EdgeList<E>,
    cfg: &EngineConfig,
    disks: &[NodeDisk],
) -> Result<PreprocessOutput> {
    assert_eq!(disks.len(), cfg.nodes, "one disk per node");
    cfg.validate().map_err(dfo_types::DfoError::Config)?;
    let p = cfg.nodes;
    let (din, dout) = degrees(g);
    let partitions = partition_vertices(g.n_vertices, &din, &dout, p, cfg.effective_alpha());

    let batch_sizes: Vec<u64> = partitions
        .iter()
        .map(|r| {
            if cfg.batching_enabled {
                choose_batch_size(cfg.batch_policy, r, cfg.threads_per_node, cfg.mem_budget)
            } else {
                // Table 6 ablation: one batch per partition
                r.len().max(1)
            }
        })
        .collect();

    let mut plan = Plan::from_geometry(
        g.n_vertices,
        g.n_edges(),
        std::mem::size_of::<E>() as u32,
        partitions,
        batch_sizes,
    );

    // --- group edges by (dst node, src partition, dst batch) ---------------
    let n_batches: Vec<usize> = (0..p).map(|i| plan.batches[i].len()).collect();
    let mut chunk_edges: Vec<ChunkBuckets<E>> =
        (0..p).map(|i| (0..p).map(|_| vec![Vec::new(); n_batches[i]]).collect()).collect();
    // filter bitsets: need[src_node][dst_node][src_local]
    let mut need: Vec<Vec<Vec<bool>>> = (0..p)
        .map(|i| (0..p).map(|_| vec![false; plan.partitions[i].len() as usize]).collect())
        .collect();
    let mut in_edges = vec![0u64; p];
    let mut out_edges = vec![0u64; p];

    for e in &g.edges {
        let sp = plan.partition_of(e.src);
        let dp = plan.partition_of(e.dst);
        let b = plan.batch_of(dp, e.dst);
        let src_local = plan.partitions[sp].local(e.src);
        let dst_local = plan.partitions[dp].local(e.dst);
        chunk_edges[dp][sp][b].push((src_local, dst_local, e.data));
        need[sp][dp][src_local as usize] = true;
        out_edges[sp] += 1;
        in_edges[dp] += 1;
    }

    // --- per destination node: chunks, pull lists, dispatch graphs ---------
    let metas: Vec<Result<NodeMeta>> = chunk_edges
        .into_par_iter()
        .zip(disks.par_iter())
        .enumerate()
        .map(|(i, (by_src, disk))| build_node(i, by_src, disk, cfg, &plan))
        .collect();

    for (i, meta) in metas.into_iter().enumerate() {
        let mut meta = meta?;
        meta.n_in_edges = in_edges[i];
        meta.n_out_edges = out_edges[i];
        meta.filter_lens = vec![0; p];
        plan.node_meta[i] = meta;
    }

    // --- filter lists: stored on the *source* node ------------------------
    for i in 0..p {
        for (j, bits) in need[i].iter().enumerate() {
            let list: Vec<u32> =
                bits.iter().enumerate().filter(|(_, &b)| b).map(|(v, _)| v as u32).collect();
            plan.node_meta[i].filter_lens[j] = list.len() as u64;
            write_filter_list(&disks[i], &paths::filter(j), &list)?;
        }
    }
    drop(need);

    // --- replicate the plan -------------------------------------------------
    for disk in disks {
        plan.store(disk)?;
    }
    Ok(PreprocessOutput { plan })
}

/// Local edges of one node, bucketed as `[src partition][dst batch]` lists
/// of `(src_local, dst_local, data)`.
type ChunkBuckets<E> = Vec<Vec<Vec<(u32, u32, E)>>>;

/// Builds and persists node `i`'s chunks, pull lists and dispatch graphs.
fn build_node<E: Pod + PartialEq>(
    i: usize,
    by_src: ChunkBuckets<E>,
    disk: &NodeDisk,
    cfg: &EngineConfig,
    plan: &Plan,
) -> Result<NodeMeta> {
    let p = plan.nodes();
    let mut meta = NodeMeta {
        chunks: Vec::new(),
        dispatch: vec![None; p],
        filter_lens: vec![0; p],
        n_in_edges: 0,
        n_out_edges: 0,
    };
    for (sp, batches) in by_src.into_iter().enumerate() {
        let n_src = plan.partitions[sp].len() as u32;
        let mut dispatch_edges: Vec<(u32, u32, ())> = Vec::new();
        for (b, mut edges) in batches.into_iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            edges.sort_unstable_by_key(|(s, d, _)| (*s, *d));
            let chunk = IndexedChunk::build(n_src, &edges, cfg.csr_inflate_ratio);
            let mut w = disk.create_framed(&paths::chunk(sp, b), cfg.compress_chunks)?;
            chunk.write_to(&mut w)?;
            w.finish()?.finish()?;
            write_pull_list(disk, &paths::pull(sp, b), &chunk.dcsr_src)?;
            dispatch_edges.extend(chunk.dcsr_src.iter().map(|&s| (s, b as u32, ())));
            meta.chunks.push(ChunkInfo {
                src_partition: sp,
                batch: b,
                n_edges: chunk.n_edges(),
                n_nonzero_src: chunk.n_nonzero_src(),
                has_csr: chunk.has_csr(),
            });
        }
        if !dispatch_edges.is_empty() {
            dispatch_edges.sort_unstable_by_key(|(s, b, _)| (*s, *b));
            let dg = IndexedChunk::build(n_src, &dispatch_edges, cfg.csr_inflate_ratio);
            let mut w = disk.create_framed(&paths::dispatch(sp), cfg.compress_chunks)?;
            dg.write_to(&mut w)?;
            w.finish()?.finish()?;
            meta.dispatch[sp] = Some(ChunkInfo {
                src_partition: sp,
                batch: usize::MAX,
                n_edges: dg.n_edges(),
                n_nonzero_src: dg.n_nonzero_src(),
                has_csr: dg.has_csr(),
            });
        }
        let _ = i;
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::IndexedChunk;
    use crate::dispatch::read_pull_list;
    use crate::filter::read_filter_list;
    use dfo_graph::edge::Edge;
    use dfo_types::ReprKind;
    use tempfile::TempDir;

    /// The paper's running example (Figure 1a): 7 vertices, 9 edges with
    /// letter data, partitioned 2 ways with batch size 2.
    fn figure1_graph() -> EdgeList<u8> {
        EdgeList::new(
            7,
            vec![
                Edge::new(0, 5, b'B'),
                Edge::new(0, 6, b'A'),
                Edge::new(1, 2, b'A'),
                Edge::new(2, 4, b'D'),
                Edge::new(2, 5, b'C'),
                Edge::new(4, 3, b'C'),
                Edge::new(5, 0, b'D'),
                Edge::new(5, 4, b'A'),
                Edge::new(6, 5, b'B'),
            ],
        )
    }

    fn figure1_config() -> EngineConfig {
        let mut cfg = EngineConfig::for_test(2);
        cfg.batch_policy = dfo_types::BatchPolicy::FixedVertices(2);
        // force the Figure 1b split (0..4 | 4..7) regardless of degrees
        cfg.alpha = Some(1_000_000);
        cfg
    }

    fn disks(p: usize) -> (TempDir, Vec<NodeDisk>) {
        let td = TempDir::new().unwrap();
        let ds = (0..p)
            .map(|i| NodeDisk::new(td.path().join(format!("n{i}")), None, false).unwrap())
            .collect();
        (td, ds)
    }

    #[test]
    fn figure1_partitioning_and_chunks() {
        let g = figure1_graph();
        let cfg = figure1_config();
        let (_td, ds) = disks(2);
        let out = preprocess(&g, &cfg, &ds).unwrap();
        let plan = &out.plan;
        // huge alpha balances on vertex counts: 4 | 3 split as in Figure 1b
        assert_eq!(plan.partitions[0], dfo_types::VertexRange::new(0, 4));
        assert_eq!(plan.partitions[1], dfo_types::VertexRange::new(4, 7));

        // the circled chunk of Figure 1b: edges from partition 0 to batch 2
        // (= node 1, local batch 0): 0→5 B, 2→4 D, 2→5 C
        let mut r = ds[1].open(&paths::chunk(0, 0)).unwrap();
        let chunk = IndexedChunk::<u8>::read_from(&mut r, None).unwrap();
        assert_eq!(chunk.dcsr_src, vec![0, 2]);
        assert_eq!(chunk.dcsr_idx, vec![0, 1, 3]);
        // dst stored local to node 1's partition (4..7): 5→1, 4→0
        let got: Vec<(u32, u32, u8)> = chunk.iter().map(|(s, d, &x)| (s, d, x)).collect();
        assert_eq!(got, vec![(0, 1, b'B'), (2, 0, b'D'), (2, 1, b'C')]);
    }

    #[test]
    fn figure1_dispatch_graph() {
        let g = figure1_graph();
        let cfg = figure1_config();
        let (_td, ds) = disks(2);
        preprocess(&g, &cfg, &ds).unwrap();
        // Figure 1e: dispatching graph node 0 -> node 1:
        // 0→batch2, 0→batch3, 2→batch2 (batches local: 0 and 1)
        let mut r = ds[1].open(&paths::dispatch(0)).unwrap();
        let dg = IndexedChunk::<()>::read_from(&mut r, None).unwrap();
        let got: Vec<(u32, u32)> = dg.iter().map(|(s, b, _)| (s, b)).collect();
        assert_eq!(got, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn figure1_filter_lists() {
        let g = figure1_graph();
        let cfg = figure1_config();
        let (_td, ds) = disks(2);
        let out = preprocess(&g, &cfg, &ds).unwrap();
        // Figure 3: the filtering list to node 1 is {0, 2} — vertex 1 and 3
        // have no outgoing edges into partition 1
        let l01 = read_filter_list(&ds[0], &paths::filter(1)).unwrap();
        assert_eq!(l01, vec![0, 2]);
        assert_eq!(out.plan.node_meta[0].filter_lens[1], 2);
        // node 1 -> node 0: 4→3 and 5→0 cross into partition 0; locals of
        // vertices 4 and 5 are 0 and 1
        let l10 = read_filter_list(&ds[1], &paths::filter(0)).unwrap();
        assert_eq!(l10, vec![0, 1]);
    }

    #[test]
    fn pull_lists_match_chunk_sources() {
        let g = figure1_graph();
        let cfg = figure1_config();
        let (_td, ds) = disks(2);
        let out = preprocess(&g, &cfg, &ds).unwrap();
        for (i, meta) in out.plan.node_meta.iter().enumerate() {
            for c in &meta.chunks {
                let pl = read_pull_list(&ds[i], &paths::pull(c.src_partition, c.batch)).unwrap();
                let mut r = ds[i].open(&paths::chunk(c.src_partition, c.batch)).unwrap();
                let chunk = IndexedChunk::<u8>::read_from(&mut r, Some(ReprKind::Dcsr)).unwrap();
                assert_eq!(pl, chunk.dcsr_src);
            }
        }
    }

    #[test]
    fn edge_conservation_across_chunks() {
        let g = figure1_graph();
        let cfg = figure1_config();
        let (_td, ds) = disks(2);
        let out = preprocess(&g, &cfg, &ds).unwrap();
        let total: u64 =
            out.plan.node_meta.iter().flat_map(|m| m.chunks.iter()).map(|c| c.n_edges).sum();
        assert_eq!(total, g.n_edges());
        // in-edge counts add up too
        let in_total: u64 = out.plan.node_meta.iter().map(|m| m.n_in_edges).sum();
        assert_eq!(in_total, g.n_edges());
        let out_total: u64 = out.plan.node_meta.iter().map(|m| m.n_out_edges).sum();
        assert_eq!(out_total, g.n_edges());
    }

    #[test]
    fn no_batching_mode_single_batch_per_partition() {
        let g = figure1_graph();
        let mut cfg = figure1_config();
        cfg.batching_enabled = false;
        let (_td, ds) = disks(2);
        let out = preprocess(&g, &cfg, &ds).unwrap();
        assert_eq!(out.plan.n_batches(0), 1);
        assert_eq!(out.plan.n_batches(1), 1);
    }

    /// A graph big enough for LZ4 to bite: same decoded chunks either way,
    /// strictly smaller files and physical write bytes with compression on.
    #[test]
    fn compression_shrinks_chunk_files_and_decodes_identically() {
        let edges: Vec<Edge<u8>> = (0..30_000u32)
            .map(|i| Edge::new((i / 8) as u64, ((i * 7) % 2048) as u64, (i % 11) as u8))
            .collect();
        let g = EdgeList::new(4096, edges);
        let mut cfg_on = EngineConfig::for_test(2);
        cfg_on.batch_policy = dfo_types::BatchPolicy::FixedVertices(512);
        let mut cfg_off = cfg_on.clone();
        cfg_off.compress_chunks = false;
        let (_td_on, ds_on) = disks(2);
        let (_td_off, ds_off) = disks(2);
        let plan_on = preprocess(&g, &cfg_on, &ds_on).unwrap().plan;
        let plan_off = preprocess(&g, &cfg_off, &ds_off).unwrap().plan;

        let mut compressed_chunk_bytes = 0u64;
        let mut raw_chunk_bytes = 0u64;
        for (i, meta) in plan_on.node_meta.iter().enumerate() {
            for c in &meta.chunks {
                let rel = paths::chunk(c.src_partition, c.batch);
                compressed_chunk_bytes += ds_on[i].len(&rel).unwrap();
                raw_chunk_bytes += ds_off[i].len(&rel).unwrap();
                let mut r_on = ds_on[i].open(&rel).unwrap();
                let mut r_off = ds_off[i].open(&rel).unwrap();
                assert_eq!(
                    IndexedChunk::<u8>::read_from(&mut r_on, None).unwrap(),
                    IndexedChunk::<u8>::read_from(&mut r_off, None).unwrap(),
                    "chunk {rel} must decode identically"
                );
            }
        }
        assert!(
            compressed_chunk_bytes < raw_chunk_bytes,
            "compressed chunks {compressed_chunk_bytes} vs raw {raw_chunk_bytes}"
        );
        assert!(
            ds_on[0].stats().write_bytes.get() < ds_off[0].stats().write_bytes.get(),
            "physical preprocessing writes must shrink"
        );
        // logical writes (pre-compression payload) match the raw layout's
        // physical writes exactly — the accounting split must not leak
        assert_eq!(
            ds_on[0].stats().logical_write_bytes.get(),
            ds_off[0].stats().write_bytes.get(),
            "compressed run's logical writes must equal the raw run's physical writes"
        );
        assert_eq!(plan_on.n_batches(0), plan_off.n_batches(0));
    }

    #[test]
    fn single_node_degenerates_gracefully() {
        let g = figure1_graph();
        let mut cfg = EngineConfig::for_test(1);
        cfg.batch_policy = dfo_types::BatchPolicy::FixedVertices(3);
        let (_td, ds) = disks(1);
        let out = preprocess(&g, &cfg, &ds).unwrap();
        assert_eq!(out.plan.nodes(), 1);
        assert_eq!(out.plan.n_batches(0), 3); // 7 vertices / 3 = 3 batches
        let total: u64 = out.plan.node_meta[0].chunks.iter().map(|c| c.n_edges).sum();
        assert_eq!(total, 9);
    }
}
