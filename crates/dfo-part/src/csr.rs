//! CSR and DCSR edge-chunk representations (paper §4.1, Figure 1c–1e).
//!
//! Every chunk stores its edges once (`dst` + `data` arrays) together with a
//! DCSR index — `(src, idx)` pairs for sources with at least one edge — and,
//! when the chunk is dense enough (`|V_src| / |E| ≤ csr_inflate_ratio`), an
//! additional CSR index (`idx` over the whole source range) that supports
//! O(1) seeking. At access time the engine picks whichever index the cost
//! model favours; when a stored CSR index is not wanted, the reader *skips
//! over it* so no disk bytes are spent on it.

use dfo_types::codec::{read_u32, read_u64, write_u32, write_u64};
use dfo_types::{slice_as_bytes, vec_from_bytes, DfoError, Pod, ReprKind, Result};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;

const MAGIC: u32 = 0x4446_4F43; // "DFOC"
const FLAG_HAS_CSR: u32 = 1;

/// One edge chunk (or dispatching graph): edges from a source vertex range
/// to payload targets, indexed by DCSR and optionally CSR.
///
/// `dst` holds the target of each edge: a vertex local to the destination
/// partition for edge chunks, or a batch index for dispatching graphs.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexedChunk<E: Pod + PartialEq> {
    /// Size of the source vertex range (`|V_src|`, the source partition).
    pub n_src: u32,
    /// Sorted sources with out-degree > 0 in this chunk (local IDs).
    pub dcsr_src: Vec<u32>,
    /// DCSR offsets; `len == dcsr_src.len() + 1`, last element = n_edges.
    pub dcsr_idx: Vec<u64>,
    /// CSR offsets over the full source range (`len == n_src + 1`), present
    /// only if accepted by the inflate ratio.
    pub csr_idx: Option<Vec<u64>>,
    /// Edge targets, grouped by source, in source order.
    pub dst: Vec<u32>,
    /// Edge payloads, parallel to `dst`.
    pub data: Vec<E>,
}

impl<E: Pod + PartialEq> IndexedChunk<E> {
    /// Builds a chunk from `(src, dst, data)` triples sorted by `(src, dst)`.
    /// A CSR index is added when `n_src as f64 / n_edges ≤ inflate_ratio`
    /// (the paper's "CSR inflate ratio", default 32).
    pub fn build(n_src: u32, edges: &[(u32, u32, E)], inflate_ratio: f64) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0].0 <= w[1].0), "edges must be sorted by src");
        debug_assert!(edges.iter().all(|e| e.0 < n_src), "src out of range");
        let n_edges = edges.len();
        let mut dcsr_src = Vec::new();
        let mut dcsr_idx = Vec::new();
        let mut dst = Vec::with_capacity(n_edges);
        let mut data = Vec::with_capacity(n_edges);
        let mut prev: Option<u32> = None;
        for (i, (s, d, e)) in edges.iter().enumerate() {
            if prev != Some(*s) {
                dcsr_src.push(*s);
                dcsr_idx.push(i as u64);
                prev = Some(*s);
            }
            dst.push(*d);
            data.push(*e);
        }
        dcsr_idx.push(n_edges as u64);
        let build_csr = n_edges > 0 && (n_src as f64) / (n_edges as f64) <= inflate_ratio;
        let csr_idx = build_csr.then(|| {
            let mut idx = vec![0u64; n_src as usize + 1];
            for (s, _, _) in edges {
                idx[*s as usize + 1] += 1;
            }
            for i in 1..idx.len() {
                idx[i] += idx[i - 1];
            }
            idx
        });
        Self { n_src, dcsr_src, dcsr_idx, csr_idx, dst, data }
    }

    pub fn n_edges(&self) -> u64 {
        self.dst.len() as u64
    }

    /// Number of sources with at least one edge (`|V_src, outdeg≠0|`).
    pub fn n_nonzero_src(&self) -> u64 {
        self.dcsr_src.len() as u64
    }

    pub fn has_csr(&self) -> bool {
        self.csr_idx.is_some()
    }

    /// O(1) CSR seek. Panics if no CSR index was built/loaded.
    #[inline]
    pub fn edges_of_csr(&self, src: u32) -> Range<usize> {
        let idx = self.csr_idx.as_ref().expect("chunk has no CSR index");
        idx[src as usize] as usize..idx[src as usize + 1] as usize
    }

    /// O(log n) standalone DCSR lookup (used when sources are not visited
    /// in sorted order; sorted visitors should prefer [`MergeCursor`]).
    pub fn edges_of_dcsr(&self, src: u32) -> Range<usize> {
        match self.dcsr_src.binary_search(&src) {
            Ok(i) => self.dcsr_idx[i] as usize..self.dcsr_idx[i + 1] as usize,
            Err(_) => 0..0,
        }
    }

    /// Iterates `(src, dst, &data)` over all edges (scan order).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &E)> + '_ {
        self.dcsr_src.iter().zip(self.dcsr_idx.windows(2)).flat_map(move |(&s, w)| {
            (w[0] as usize..w[1] as usize).map(move |i| (s, self.dst[i], &self.data[i]))
        })
    }

    /// Serializes the chunk. Layout (all little-endian):
    ///
    /// ```text
    /// magic u32 | flags u32 | n_src u64 | n_edges u64 | n_nonzero u64
    /// dcsr_src [u32]  dcsr_idx [u64]
    /// csr_idx [u64; n_src+1]          (iff FLAG_HAS_CSR)
    /// dst [u32]  data [E]
    /// ```
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let io = |e| DfoError::io("writing chunk", e);
        write_u32(w, MAGIC).map_err(io)?;
        write_u32(w, if self.has_csr() { FLAG_HAS_CSR } else { 0 }).map_err(io)?;
        write_u64(w, self.n_src as u64).map_err(io)?;
        write_u64(w, self.n_edges()).map_err(io)?;
        write_u64(w, self.n_nonzero_src()).map_err(io)?;
        w.write_all(slice_as_bytes(&self.dcsr_src)).map_err(io)?;
        w.write_all(slice_as_bytes(&self.dcsr_idx)).map_err(io)?;
        if let Some(csr) = &self.csr_idx {
            w.write_all(slice_as_bytes(csr)).map_err(io)?;
        }
        w.write_all(slice_as_bytes(&self.dst)).map_err(io)?;
        w.write_all(slice_as_bytes(&self.data)).map_err(io)?;
        Ok(())
    }

    /// Serializes the chunk through the [`dfo_storage::compress`] framing:
    /// block-compressed when `compress` is true, byte-identical to
    /// [`IndexedChunk::write_to`] when false. Returns the inner writer for
    /// the caller to close. [`IndexedChunk::read_from`] detects either
    /// format on its own.
    pub fn write_to_framed<W: Write>(&self, w: W, compress: bool) -> Result<W> {
        let mut fw = dfo_storage::FrameWriter::new(w, compress)?;
        self.write_to(&mut fw)?;
        fw.finish()
    }

    /// Reads a chunk back, auto-detecting the compressed frame container
    /// (chunks written with `compress_chunks` on) and decoding it
    /// transparently.
    ///
    /// `want` selects which index to load: with `Some(ReprKind::Dcsr)` a
    /// stored CSR section is *seeked over* (costing no read bytes for
    /// uncompressed chunks; compressed frames decode-and-discard instead);
    /// with `Some(ReprKind::Csr)` the DCSR index is seeked over instead
    /// (DCSR source list is still loaded — it is the pull-list surrogate
    /// and is small). `None` loads everything.
    pub fn read_from<R: Read + Seek>(r: &mut R, want: Option<ReprKind>) -> Result<Self> {
        let io = |e| DfoError::io("reading chunk", e);
        let magic = read_u32(r).map_err(io)?;
        if magic == dfo_storage::FRAME_MAGIC {
            let mut fr = dfo_storage::FrameReader::resume(&mut *r)?;
            let inner_magic = read_u32(&mut fr).map_err(io)?;
            if inner_magic != MAGIC {
                return Err(DfoError::Corrupt(format!(
                    "compressed frame does not hold a chunk (magic {inner_magic:#x})"
                )));
            }
            return Self::read_after_magic(&mut fr, want);
        }
        if magic != MAGIC {
            return Err(DfoError::Corrupt(format!("bad chunk magic {magic:#x}")));
        }
        Self::read_after_magic(r, want)
    }

    /// Shared decode body: everything after a validated chunk magic.
    fn read_after_magic<R: Read + Seek>(r: &mut R, want: Option<ReprKind>) -> Result<Self> {
        let io = |e| DfoError::io("reading chunk", e);
        let flags = read_u32(r).map_err(io)?;
        let has_csr = flags & FLAG_HAS_CSR != 0;
        let n_src = read_u64(r).map_err(io)? as u32;
        let n_edges = read_u64(r).map_err(io)? as usize;
        let n_nonzero = read_u64(r).map_err(io)? as usize;

        let dcsr_src: Vec<u32> = read_pod_vec(r, n_nonzero)?;
        let dcsr_idx: Vec<u64> = read_pod_vec(r, n_nonzero + 1)?;
        let csr_idx = if has_csr {
            let take_csr = !matches!(want, Some(ReprKind::Dcsr));
            if take_csr {
                Some(read_pod_vec::<u64, R>(r, n_src as usize + 1)?)
            } else {
                r.seek(SeekFrom::Current(8 * (n_src as i64 + 1))).map_err(io)?;
                None
            }
        } else {
            None
        };
        let dst: Vec<u32> = read_pod_vec(r, n_edges)?;
        let data: Vec<E> = read_pod_vec(r, n_edges)?;
        if *dcsr_idx.last().unwrap_or(&0) != n_edges as u64 {
            return Err(DfoError::Corrupt("DCSR index does not cover all edges".into()));
        }
        Ok(Self { n_src, dcsr_src, dcsr_idx, csr_idx, dst, data })
    }

    /// In-memory footprint of the decoded chunk — what a bounded chunk
    /// cache charges against its byte budget. Deterministic (length-based,
    /// not capacity-based) so cache behaviour is reproducible.
    pub fn decoded_bytes(&self) -> u64 {
        let mut n = std::mem::size_of::<Self>() as u64;
        n += 4 * self.dcsr_src.len() as u64;
        n += 8 * self.dcsr_idx.len() as u64;
        if let Some(c) = &self.csr_idx {
            n += 8 * c.len() as u64;
        }
        n += 4 * self.dst.len() as u64;
        n += (std::mem::size_of::<E>() * self.data.len()) as u64;
        n
    }

    /// Serialized byte size (for I/O estimations and tests).
    pub fn serialized_bytes(&self) -> u64 {
        let mut n = 4 + 4 + 8 + 8 + 8;
        n += 4 * self.dcsr_src.len() as u64;
        n += 8 * self.dcsr_idx.len() as u64;
        if let Some(c) = &self.csr_idx {
            n += 8 * c.len() as u64;
        }
        n += 4 * self.dst.len() as u64;
        n += (std::mem::size_of::<E>() * self.data.len()) as u64;
        n
    }
}

fn read_pod_vec<T: Pod, R: Read>(r: &mut R, n: usize) -> Result<Vec<T>> {
    if std::mem::size_of::<T>() == 0 {
        // zero-sized payloads (dispatch graphs) occupy no bytes on disk but
        // must still deserialize to `n` logical elements
        return Ok(vec![dfo_types::pod::pod_zeroed(); n]);
    }
    let mut buf = vec![0u8; n * std::mem::size_of::<T>()];
    r.read_exact(&mut buf)
        .map_err(|e| DfoError::io(format!("reading {n} x {}", std::any::type_name::<T>()), e))?;
    Ok(vec_from_bytes(&buf))
}

/// Monotone merge cursor over a DCSR index: visiting sources in ascending
/// order costs one sequential sweep of `(src, idx)` total — the "2 × |V_src,
/// outdeg≠0|" scan the paper's cost model charges DCSR with.
pub struct MergeCursor {
    pos: usize,
}

impl Default for MergeCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl MergeCursor {
    pub fn new() -> Self {
        Self { pos: 0 }
    }

    /// Edge range for `src`, which must be ≥ every previously queried source.
    pub fn edges_of<E: Pod + PartialEq>(
        &mut self,
        chunk: &IndexedChunk<E>,
        src: u32,
    ) -> Range<usize> {
        while self.pos < chunk.dcsr_src.len() && chunk.dcsr_src[self.pos] < src {
            self.pos += 1;
        }
        if self.pos < chunk.dcsr_src.len() && chunk.dcsr_src[self.pos] == src {
            chunk.dcsr_idx[self.pos] as usize..chunk.dcsr_idx[self.pos + 1] as usize
        } else {
            0..0
        }
    }
}

/// Positioned-read access to a serialized chunk: the CSR *seeking* mode of
/// §4.1. Instead of streaming the whole chunk file, each queried source
/// costs one small read of its two CSR index entries plus one read of its
/// edge range — exactly the γ-seeks-vs-scan trade the cost model prices.
/// Only meaningful when the chunk stored a CSR index.
pub struct ChunkSeeker<E: Pod + PartialEq> {
    file: dfo_storage::RandomFile,
    n_edges: u64,
    csr_idx_off: u64,
    dst_off: u64,
    data_off: u64,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Pod + PartialEq> ChunkSeeker<E> {
    /// Opens `rel` on `disk`; returns `None` if the chunk has no CSR index
    /// — or is stored compressed, where positioned reads into the raw
    /// layout are impossible (callers fall back to a full decoded load).
    pub fn open(disk: &dfo_storage::NodeDisk, rel: &str) -> Result<Option<Self>> {
        let file = disk.open_random(rel, false)?;
        let mut header = [0u8; 32];
        file.read_at(&mut header, 0)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic == dfo_storage::FRAME_MAGIC {
            return Ok(None);
        }
        if magic != MAGIC {
            return Err(DfoError::Corrupt(format!("bad chunk magic {magic:#x}")));
        }
        let flags = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if flags & FLAG_HAS_CSR == 0 {
            return Ok(None);
        }
        let n_src = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let n_edges = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let n_nonzero = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let csr_idx_off = 32 + 4 * n_nonzero + 8 * (n_nonzero + 1);
        let dst_off = csr_idx_off + 8 * (n_src + 1);
        let data_off = dst_off + 4 * n_edges;
        Ok(Some(Self {
            file,
            n_edges,
            csr_idx_off,
            dst_off,
            data_off,
            _marker: std::marker::PhantomData,
        }))
    }

    /// Fetches the `(dst, data)` pairs of `src` with positioned reads.
    pub fn edges_of(&self, src: u32) -> Result<Vec<(u32, E)>> {
        let mut idx = [0u8; 16];
        self.file.read_at(&mut idx, self.csr_idx_off + 8 * src as u64)?;
        let lo = u64::from_le_bytes(idx[0..8].try_into().unwrap());
        let hi = u64::from_le_bytes(idx[8..16].try_into().unwrap());
        debug_assert!(lo <= hi && hi <= self.n_edges);
        let n = (hi - lo) as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut dst_buf = vec![0u8; 4 * n];
        self.file.read_at(&mut dst_buf, self.dst_off + 4 * lo)?;
        let dsts: Vec<u32> = vec_from_bytes(&dst_buf);
        let data: Vec<E> = if std::mem::size_of::<E>() > 0 {
            let mut data_buf = vec![0u8; std::mem::size_of::<E>() * n];
            self.file
                .read_at(&mut data_buf, self.data_off + (std::mem::size_of::<E>() as u64) * lo)?;
            vec_from_bytes(&data_buf)
        } else {
            vec![crate::csr::zeroed::<E>(); n]
        };
        Ok(dsts.into_iter().zip(data).collect())
    }
}

pub(crate) fn zeroed<T: Pod>() -> T {
    dfo_types::pod::pod_zeroed()
}

/// Whether the seek mode is worth it: γ seeks per message must undercut a
/// sequential scan of the CSR index (`γ·|M| < |V_src|`).
pub fn should_seek(has_csr: bool, n_messages: u64, n_src: u64, gamma: u64) -> bool {
    has_csr && gamma.saturating_mul(n_messages) < n_src
}

/// The paper's §4.1 cost model deciding which index to use for a chunk given
/// `n_messages` incoming messages: DCSR costs `2 × |V_src,outdeg≠0|`
/// (sequential sweep), CSR costs `min(γ × |M|, |V_src|)` (γ seeks each, or
/// one full scan). Falls back to DCSR when no CSR was stored.
pub fn choose_repr(
    has_csr: bool,
    n_nonzero_src: u64,
    n_src: u64,
    n_messages: u64,
    gamma: u64,
) -> ReprKind {
    if !has_csr {
        return ReprKind::Dcsr;
    }
    let dcsr_cost = 2 * n_nonzero_src;
    let csr_cost = (gamma.saturating_mul(n_messages)).min(n_src);
    if dcsr_cost <= csr_cost {
        ReprKind::Dcsr
    } else {
        ReprKind::Csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// The paper's Figure 1c/1d example: chunk of 3 edges from partition 0
    /// (vertices 0–3) to batch 2, edges 0→5 "B", 2→4 "D", 2→5 "C".
    fn figure1_chunk() -> IndexedChunk<u8> {
        IndexedChunk::build(4, &[(0, 5, b'B'), (2, 4, b'D'), (2, 5, b'C')], 32.0)
    }

    #[test]
    fn matches_paper_figure_1c_1d() {
        let c = figure1_chunk();
        // Figure 1d DCSR: src [0, 2], idx [0, 1, 3]
        assert_eq!(c.dcsr_src, vec![0, 2]);
        assert_eq!(c.dcsr_idx, vec![0, 1, 3]);
        // Figure 1c CSR: idx [0, 1, 1, 3, 3] (we store n_src+1 entries)
        assert_eq!(c.csr_idx.as_ref().unwrap(), &vec![0, 1, 1, 3, 3]);
        assert_eq!(c.dst, vec![5, 4, 5]);
        assert_eq!(c.data, vec![b'B', b'D', b'C']);
    }

    #[test]
    fn csr_and_dcsr_seeks_agree() {
        let c = figure1_chunk();
        for src in 0..4u32 {
            let (csr, dcsr) = (c.edges_of_csr(src), c.edges_of_dcsr(src));
            // empty ranges may differ in position ("1..1" vs "0..0"); the
            // edge sets they denote must be identical
            assert_eq!(
                c.dst[csr.clone()],
                c.dst[dcsr.clone()],
                "src {src}: csr {csr:?} vs dcsr {dcsr:?}"
            );
        }
    }

    #[test]
    fn inflate_ratio_gates_csr() {
        // 3 edges over 4 sources: ratio 4/3 <= 32 -> CSR built
        assert!(figure1_chunk().has_csr());
        // 1 edge over 100 sources with ratio 32: 100/1 > 32 -> DCSR only
        let sparse = IndexedChunk::build(100, &[(7, 0, 0u8)], 32.0);
        assert!(!sparse.has_csr());
        // same chunk with a huge ratio accepts CSR
        let sparse2 = IndexedChunk::build(100, &[(7, 0, 0u8)], 1e9);
        assert!(sparse2.has_csr());
    }

    #[test]
    fn empty_chunk() {
        let c = IndexedChunk::<u8>::build(10, &[], 32.0);
        assert_eq!(c.n_edges(), 0);
        assert!(!c.has_csr());
        assert_eq!(c.edges_of_dcsr(3), 0..0);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn roundtrip_full() {
        let c = figure1_chunk();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, c.serialized_bytes());
        let back = IndexedChunk::<u8>::read_from(&mut Cursor::new(&buf), None).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_compressed_frame() {
        // a chunk big enough for LZ4 to bite: 20k edges with repetitive
        // payloads, read back through the same auto-detecting read_from
        let edges: Vec<(u32, u32, u32)> =
            (0..20_000u32).map(|i| (i / 4, i % 997, i % 13)).collect();
        let c = IndexedChunk::build(5000, &edges, 32.0);
        let framed = c.write_to_framed(Vec::new(), true).unwrap();
        assert!(
            (framed.len() as u64) < c.serialized_bytes(),
            "compressed {} vs raw {}",
            framed.len(),
            c.serialized_bytes()
        );
        for want in [None, Some(ReprKind::Dcsr), Some(ReprKind::Csr)] {
            let back = IndexedChunk::<u32>::read_from(&mut Cursor::new(&framed), want).unwrap();
            assert_eq!(back.dst, c.dst);
            assert_eq!(back.data, c.data);
            assert_eq!(back.csr_idx.is_some(), !matches!(want, Some(ReprKind::Dcsr)));
        }
    }

    #[test]
    fn framed_passthrough_is_byte_identical() {
        let c = figure1_chunk();
        let mut plain = Vec::new();
        c.write_to(&mut plain).unwrap();
        let framed_off = c.write_to_framed(Vec::new(), false).unwrap();
        assert_eq!(framed_off, plain, "compress=false must reproduce the raw layout");
    }

    #[test]
    fn decoded_bytes_tracks_loaded_index() {
        let c = figure1_chunk();
        let header = std::mem::size_of::<IndexedChunk<u8>>() as u64;
        // dcsr_src 2×4 + dcsr_idx 3×8 + csr 5×8 + dst 3×4 + data 3×1
        assert_eq!(c.decoded_bytes(), header + 8 + 24 + 40 + 12 + 3);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let dcsr_only =
            IndexedChunk::<u8>::read_from(&mut Cursor::new(&buf), Some(ReprKind::Dcsr)).unwrap();
        // skipping the CSR section shrinks the decoded footprint too
        assert_eq!(dcsr_only.decoded_bytes(), c.decoded_bytes() - 40);
    }

    #[test]
    fn read_skipping_csr_section() {
        let c = figure1_chunk();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back =
            IndexedChunk::<u8>::read_from(&mut Cursor::new(&buf), Some(ReprKind::Dcsr)).unwrap();
        assert!(back.csr_idx.is_none(), "CSR section must be skipped");
        assert_eq!(back.dst, c.dst);
        assert_eq!(back.data, c.data);
        // edges still reachable through DCSR
        assert_eq!(back.edges_of_dcsr(2), 1..3);
    }

    #[test]
    fn merge_cursor_matches_binary_search() {
        let edges: Vec<(u32, u32, u32)> =
            (0..50u32).flat_map(|s| (0..(s % 3)).map(move |k| (s * 2, k, s))).collect();
        let c = IndexedChunk::build(128, &edges, 32.0);
        let mut cur = MergeCursor::new();
        for src in 0..128u32 {
            assert_eq!(cur.edges_of(&c, src), c.edges_of_dcsr(src), "src {src}");
        }
    }

    #[test]
    fn iter_yields_all_edges_in_order() {
        let edges = vec![(1u32, 9u32, 0.5f32), (1, 10, 0.25), (5, 2, 1.0)];
        let c = IndexedChunk::build(8, &edges, 32.0);
        let got: Vec<(u32, u32, f32)> = c.iter().map(|(s, d, &w)| (s, d, w)).collect();
        assert_eq!(got, edges);
    }

    #[test]
    fn cost_model_dense_vs_sparse_messages() {
        // dense chunk: 1000 sources out of 1024 have edges
        let (nz, n_src, gamma) = (1000u64, 1024u64, 1024u64);
        // one message: CSR seek costs min(1024*1, 1024) = 1024 < 2000 -> CSR... equal γ|M|=1024
        assert_eq!(choose_repr(true, nz, n_src, 1, gamma), ReprKind::Csr);
        // many messages: CSR cost capped at n_src=1024 < 2000 -> CSR
        assert_eq!(choose_repr(true, nz, n_src, 100_000, gamma), ReprKind::Csr);
        // sparse chunk: 10 nonzero sources -> DCSR sweep costs 20, always wins
        assert_eq!(choose_repr(true, 10, n_src, 1, gamma), ReprKind::Dcsr);
        // no CSR stored -> DCSR regardless
        assert_eq!(choose_repr(false, nz, n_src, 1, gamma), ReprKind::Dcsr);
    }

    #[test]
    fn zst_payload_dispatch_graph_style() {
        // dispatching graphs carry no payload: E = ()
        let edges = vec![(0u32, 2u32, ()), (0, 3, ()), (2, 2, ())];
        let c = IndexedChunk::build(4, &edges, 32.0);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = IndexedChunk::<()>::read_from(&mut Cursor::new(&buf), None).unwrap();
        // Figure 1e: messages from 0 go to batches 2 and 3; from 2 to batch 2
        assert_eq!(back.edges_of_dcsr(0), 0..2);
        assert_eq!(&back.dst[0..2], &[2, 3]);
        assert_eq!(back.edges_of_dcsr(2), 2..3);
    }
}
