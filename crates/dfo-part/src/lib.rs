//! DFOGraph preprocessing: everything computed before the first iteration.
//!
//! Given a sorted edge list and an [`dfo_types::EngineConfig`], the
//! [`preprocess::preprocess`] entry point produces, on every node's disk,
//! the structures §2.2–§4.3 of the paper describe:
//!
//! * **edge chunks** keyed by (source partition, destination batch), each
//!   stored as DCSR plus an optional CSR (accepted by the *CSR inflate
//!   ratio*),
//! * **dispatching graphs** (source vertex → destination batch) per source
//!   partition, same adaptive representation,
//! * **pull lists** (sorted sources needed per batch per source partition),
//! * **filter lists** (sorted sources of partition *i* with outgoing edges
//!   into partition *j*, stored on node *i*),
//! * the replicated [`plan::Plan`] describing partition and batch ranges.

pub mod batching;
pub mod csr;
pub mod dispatch;
pub mod filter;
pub mod partition;
pub mod plan;
pub mod preprocess;

pub use batching::choose_batch_size;
pub use csr::{choose_repr, IndexedChunk, MergeCursor};
pub use dispatch::{read_pull_list, write_pull_list};
pub use filter::{read_filter_list, write_filter_list};
pub use partition::partition_vertices;
pub use plan::{ChunkInfo, NodeMeta, Plan};
pub use preprocess::{preprocess, PreprocessOutput};
