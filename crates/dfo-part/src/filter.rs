//! Inter-node message filter lists (paper §4.3).
//!
//! "When passing messages from node i to j, filtering means eliminating the
//! messages that node j does not need, i.e. messages whose src does not have
//! outgoing edges to partition j." The list of needed sources `L_ij` is
//! computed in preprocessing and stored on node *i*, sorted, so filtering is
//! a merge of two sorted streams.

use dfo_storage::NodeDisk;
use dfo_types::codec::{read_u64, write_u64};
use dfo_types::{slice_as_bytes, vec_from_bytes, DfoError, Result};
use std::io::{Read, Write};

/// Writes a sorted filter list to `disk` at `rel`.
pub fn write_filter_list(disk: &NodeDisk, rel: &str, sorted_srcs: &[u32]) -> Result<()> {
    debug_assert!(sorted_srcs.windows(2).all(|w| w[0] < w[1]), "list must be sorted unique");
    let mut w = disk.create(rel)?;
    write_u64(&mut w, sorted_srcs.len() as u64)
        .map_err(|e| DfoError::io("filter list header", e))?;
    w.write_all(slice_as_bytes(sorted_srcs)).map_err(|e| DfoError::io("filter list body", e))?;
    w.finish()
}

/// Reads back a filter list.
pub fn read_filter_list(disk: &NodeDisk, rel: &str) -> Result<Vec<u32>> {
    let mut r = disk.open(rel)?;
    let n = read_u64(&mut r).map_err(|e| DfoError::io("filter list header", e))? as usize;
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf).map_err(|e| DfoError::io("filter list body", e))?;
    Ok(vec_from_bytes(&buf))
}

/// Streaming sorted-merge filter: retains the elements of `messages` (sorted
/// by the key extracted with `key`) whose key appears in `list`.
///
/// The cursor persists across calls so a message stream may be filtered
/// chunk by chunk; cost is `|M| + |L|` total, as §4.3 states.
pub struct FilterCursor<'a> {
    list: &'a [u32],
    pos: usize,
}

impl<'a> FilterCursor<'a> {
    pub fn new(list: &'a [u32]) -> Self {
        Self { list, pos: 0 }
    }

    /// Whether `src` (≥ all previously queried) is in the list.
    #[inline]
    pub fn contains(&mut self, src: u32) -> bool {
        while self.pos < self.list.len() && self.list[self.pos] < src {
            self.pos += 1;
        }
        self.pos < self.list.len() && self.list[self.pos] == src
    }
}

/// §4.3 skip rule: send unfiltered when `|L_ij| / |M_i| ≥ threshold`
/// (default 2) — the merge would cost more than it saves.
pub fn should_filter(list_len: u64, n_messages: u64, threshold: f64) -> bool {
    if n_messages == 0 {
        return false;
    }
    (list_len as f64) / (n_messages as f64) < threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    #[test]
    fn roundtrip() {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path(), None, false).unwrap();
        let list: Vec<u32> = vec![1, 5, 9, 1000];
        write_filter_list(&d, "filter/to_3.lst", &list).unwrap();
        assert_eq!(read_filter_list(&d, "filter/to_3.lst").unwrap(), list);
    }

    #[test]
    fn empty_list_roundtrip() {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path(), None, false).unwrap();
        write_filter_list(&d, "f.lst", &[]).unwrap();
        assert!(read_filter_list(&d, "f.lst").unwrap().is_empty());
    }

    #[test]
    fn cursor_filters_sorted_stream() {
        let list = vec![2u32, 4, 8];
        let mut cur = FilterCursor::new(&list);
        let msgs = [0u32, 2, 3, 4, 7, 8, 9];
        let kept: Vec<u32> = msgs.iter().copied().filter(|&s| cur.contains(s)).collect();
        assert_eq!(kept, vec![2, 4, 8]);
    }

    #[test]
    fn cursor_handles_duplicate_queries() {
        // multiple messages from the same source are all retained
        let list = vec![5u32];
        let mut cur = FilterCursor::new(&list);
        assert!(cur.contains(5));
        assert!(cur.contains(5));
        assert!(!cur.contains(6));
    }

    #[test]
    fn skip_rule_threshold() {
        assert!(should_filter(10, 100, 2.0)); // L/M = 0.1 < 2
        assert!(!should_filter(200, 100, 2.0)); // L/M = 2.0 >= 2
        assert!(!should_filter(199, 100, 1.99));
        assert!(!should_filter(10, 0, 2.0)); // no messages: nothing to filter
    }
}
