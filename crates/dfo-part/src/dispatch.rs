//! Intra-node dispatching structures (paper §4.2, Figure 1e).
//!
//! * The **dispatching graph** from partition *p* to this node has one edge
//!   per "messages from vertex X should go to batch Y" relation; it is
//!   stored exactly like an edge chunk (DCSR + optional CSR, payload = the
//!   destination batch index) and read adaptively.
//! * **Pull lists** give, per (source partition, destination batch), the
//!   sorted source vertices whose messages that batch needs; pull
//!   dispatching merges each batch's list against the message stream.

use dfo_storage::NodeDisk;
use dfo_types::codec::{read_u64, write_u64};
use dfo_types::{slice_as_bytes, vec_from_bytes, DfoError, Result};
use std::io::{Read, Write};

/// Writes a pull list (sorted unique source-local IDs).
pub fn write_pull_list(disk: &NodeDisk, rel: &str, sorted_srcs: &[u32]) -> Result<()> {
    debug_assert!(sorted_srcs.windows(2).all(|w| w[0] < w[1]));
    let mut w = disk.create(rel)?;
    write_u64(&mut w, sorted_srcs.len() as u64).map_err(|e| DfoError::io("pull list header", e))?;
    w.write_all(slice_as_bytes(sorted_srcs)).map_err(|e| DfoError::io("pull list body", e))?;
    w.finish()
}

/// Reads a pull list.
pub fn read_pull_list(disk: &NodeDisk, rel: &str) -> Result<Vec<u32>> {
    let mut r = disk.open(rel)?;
    let n = read_u64(&mut r).map_err(|e| DfoError::io("pull list header", e))? as usize;
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf).map_err(|e| DfoError::io("pull list body", e))?;
    Ok(vec_from_bytes(&buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    #[test]
    fn pull_list_roundtrip() {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path(), None, false).unwrap();
        write_pull_list(&d, "pull/from_0_b2.lst", &[0, 2]).unwrap();
        assert_eq!(read_pull_list(&d, "pull/from_0_b2.lst").unwrap(), vec![0, 2]);
    }
}
