//! Inter-node partitioning (paper §2.2).
//!
//! Vertices with continuous IDs go to the same partition (preserving the
//! natural locality of crawled graphs); partitions balance the estimated
//! per-node work `α·|V_i| + |E_in_i| + |E_out_i|`, which §4.5 derives as the
//! per-node total of disk and network traffic (`α` defaults to `2P − 1`).

use dfo_types::{VertexId, VertexRange};

/// Splits `0..n_vertices` into `p` contiguous ranges balancing
/// `α·|V_i| + |E_in_i| + |E_out_i|` with a greedy prefix sweep: partition
/// `i` ends at the first vertex where the cumulative weight reaches
/// `(i+1)/p` of the total.
pub fn partition_vertices(
    n_vertices: u64,
    in_deg: &[u32],
    out_deg: &[u32],
    p: usize,
    alpha: u64,
) -> Vec<VertexRange> {
    assert!(p >= 1);
    assert_eq!(in_deg.len() as u64, n_vertices);
    assert_eq!(out_deg.len() as u64, n_vertices);
    let weight = |v: usize| alpha + in_deg[v] as u64 + out_deg[v] as u64;
    let total: u64 = (0..n_vertices as usize).map(weight).sum();

    let mut ranges = Vec::with_capacity(p);
    let mut start: VertexId = 0;
    let mut acc: u64 = 0;
    let mut v: usize = 0;
    for i in 0..p {
        let target = ((i as u128 + 1) * total as u128 / p as u128) as u64;
        while v < n_vertices as usize && acc < target {
            acc += weight(v);
            v += 1;
        }
        // remaining partitions must each get at least zero vertices; the
        // sweep may exhaust vertices early for tiny graphs
        let end = if i + 1 == p { n_vertices } else { v as VertexId };
        ranges.push(VertexRange::new(start, end));
        start = end;
    }
    debug_assert_eq!(ranges.last().unwrap().end, n_vertices);
    ranges
}

/// The balance objective of one partition, for diagnostics and tests.
pub fn partition_weight(range: &VertexRange, in_deg: &[u32], out_deg: &[u32], alpha: u64) -> u64 {
    let mut w = alpha * range.len();
    for v in range.start..range.end {
        w += in_deg[v as usize] as u64 + out_deg[v as usize] as u64;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices_contiguously() {
        let n = 1000u64;
        let din = vec![1u32; n as usize];
        let dout = vec![1u32; n as usize];
        let parts = partition_vertices(n, &din, &dout, 7, 13);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, n);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn uniform_degrees_give_even_split() {
        let n = 100u64;
        let d = vec![2u32; n as usize];
        let parts = partition_vertices(n, &d, &d, 4, 1);
        for r in &parts {
            assert_eq!(r.len(), 25);
        }
    }

    #[test]
    fn hub_vertex_shrinks_its_partition() {
        let n = 100u64;
        let mut dout = vec![0u32; n as usize];
        dout[0] = 10_000; // giant hub at the front
        let din = vec![0u32; n as usize];
        let parts = partition_vertices(n, &din, &dout, 2, 1);
        assert!(
            parts[0].len() < parts[1].len() / 2,
            "hub partition should be much smaller: {parts:?}"
        );
    }

    #[test]
    fn balance_within_max_single_weight() {
        // greedy prefix split: each partition overshoots its target by at
        // most the weight of one vertex
        let n = 500u64;
        let din: Vec<u32> = (0..n).map(|v| (v % 17) as u32).collect();
        let dout: Vec<u32> = (0..n).map(|v| (v % 5) as u32).collect();
        let alpha = 7;
        let parts = partition_vertices(n, &din, &dout, 8, alpha);
        let weights: Vec<u64> =
            parts.iter().map(|r| partition_weight(r, &din, &dout, alpha)).collect();
        let total: u64 = weights.iter().sum();
        let target = total / 8;
        let max_single =
            (0..n as usize).map(|v| alpha + din[v] as u64 + dout[v] as u64).max().unwrap();
        for (i, w) in weights.iter().enumerate() {
            assert!(
                *w <= target + 2 * max_single,
                "partition {i} weight {w} too far above target {target}"
            );
        }
    }

    #[test]
    fn more_partitions_than_vertices() {
        let parts = partition_vertices(2, &[0, 0], &[0, 0], 5, 1);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.last().unwrap().end, 2);
        let covered: u64 = parts.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn single_partition_takes_everything() {
        let parts = partition_vertices(10, &[1; 10], &[1; 10], 1, 3);
        assert_eq!(parts, vec![VertexRange::new(0, 10)]);
    }
}
