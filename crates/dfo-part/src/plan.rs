//! The replicated preprocessing plan: partition/batch geometry plus the
//! per-node inventory of on-disk structures. Every node stores a copy
//! (`plan.bin`), mirroring how the original system replicates partitioning
//! metadata so any node can address any other node's ranges.

use dfo_storage::NodeDisk;
use dfo_types::codec::{read_u32, read_u64, write_u32, write_u64};
use dfo_types::ids::split_into_batches;
use dfo_types::{BatchId, DfoError, PartitionId, Rank, Result, VertexId, VertexRange};
use std::io::{Cursor, Read, Write};

const MAGIC: u32 = 0x4446_4F50; // "DFOP"

/// Inventory entry for one non-empty edge chunk on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Source partition of the chunk's edges.
    pub src_partition: PartitionId,
    /// Destination batch (local to the owning node).
    pub batch: BatchId,
    pub n_edges: u64,
    /// `|V_src, outdeg≠0|` — drives the §4.1 cost model.
    pub n_nonzero_src: u64,
    /// Whether a CSR index was accepted by the inflate ratio.
    pub has_csr: bool,
}

/// Per-node inventory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeMeta {
    pub chunks: Vec<ChunkInfo>,
    /// Per source partition: metadata of the dispatching graph from it
    /// (`None` when no edges arrive from that partition).
    pub dispatch: Vec<Option<ChunkInfo>>,
    /// `|L_ij|` for each destination node `j` (filter lists live on node i).
    pub filter_lens: Vec<u64>,
    /// `|E_in_i|`, `|E_out_i|` — the Table 2 bound inputs.
    pub n_in_edges: u64,
    pub n_out_edges: u64,
}

/// Complete partitioning geometry + inventory, replicated on every node.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    pub n_vertices: u64,
    pub n_edges: u64,
    pub edge_data_bytes: u32,
    pub partitions: Vec<VertexRange>,
    pub batch_sizes: Vec<u64>,
    /// Batch ranges per node (derived from `partitions` × `batch_sizes`).
    pub batches: Vec<Vec<VertexRange>>,
    pub node_meta: Vec<NodeMeta>,
}

impl Plan {
    /// Derives batch ranges and empty inventories from geometry.
    pub fn from_geometry(
        n_vertices: u64,
        n_edges: u64,
        edge_data_bytes: u32,
        partitions: Vec<VertexRange>,
        batch_sizes: Vec<u64>,
    ) -> Self {
        assert_eq!(partitions.len(), batch_sizes.len());
        let p = partitions.len();
        let batches = partitions
            .iter()
            .zip(&batch_sizes)
            .map(|(r, &bs)| split_into_batches(*r, bs))
            .collect();
        Self {
            n_vertices,
            n_edges,
            edge_data_bytes,
            partitions,
            batch_sizes,
            batches,
            node_meta: vec![
                NodeMeta {
                    dispatch: vec![None; p],
                    filter_lens: vec![0; p],
                    ..Default::default()
                };
                p
            ],
        }
    }

    pub fn nodes(&self) -> usize {
        self.partitions.len()
    }

    /// Which partition owns vertex `v`.
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        dfo_types::ids::find_range(&self.partitions, v).expect("vertex outside all partitions")
    }

    /// Which batch of its owning partition holds `v`.
    pub fn batch_of(&self, p: PartitionId, v: VertexId) -> BatchId {
        let r = &self.partitions[p];
        debug_assert!(r.contains(v));
        ((v - r.start) / self.batch_sizes[p]) as usize
    }

    pub fn n_batches(&self, node: Rank) -> usize {
        self.batches[node].len()
    }

    /// Largest batch length on `node` (buffers are sized to it).
    pub fn max_batch_len(&self, node: Rank) -> u64 {
        self.batches[node].iter().map(|b| b.len()).max().unwrap_or(0)
    }

    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let io = |e| DfoError::io("writing plan", e);
        write_u32(w, MAGIC).map_err(io)?;
        write_u64(w, self.n_vertices).map_err(io)?;
        write_u64(w, self.n_edges).map_err(io)?;
        write_u32(w, self.edge_data_bytes).map_err(io)?;
        write_u64(w, self.partitions.len() as u64).map_err(io)?;
        for (r, bs) in self.partitions.iter().zip(&self.batch_sizes) {
            write_u64(w, r.start).map_err(io)?;
            write_u64(w, r.end).map_err(io)?;
            write_u64(w, *bs).map_err(io)?;
        }
        for meta in &self.node_meta {
            write_u64(w, meta.chunks.len() as u64).map_err(io)?;
            for c in &meta.chunks {
                write_chunk_info(w, c).map_err(io)?;
            }
            write_u64(w, meta.dispatch.len() as u64).map_err(io)?;
            for d in &meta.dispatch {
                match d {
                    Some(c) => {
                        write_u32(w, 1).map_err(io)?;
                        write_chunk_info(w, c).map_err(io)?;
                    }
                    None => write_u32(w, 0).map_err(io)?,
                }
            }
            write_u64(w, meta.filter_lens.len() as u64).map_err(io)?;
            for &l in &meta.filter_lens {
                write_u64(w, l).map_err(io)?;
            }
            write_u64(w, meta.n_in_edges).map_err(io)?;
            write_u64(w, meta.n_out_edges).map_err(io)?;
        }
        Ok(())
    }

    pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let io = |e| DfoError::io("reading plan", e);
        let magic = read_u32(r).map_err(io)?;
        if magic != MAGIC {
            return Err(DfoError::Corrupt(format!("bad plan magic {magic:#x}")));
        }
        let n_vertices = read_u64(r).map_err(io)?;
        let n_edges = read_u64(r).map_err(io)?;
        let edge_data_bytes = read_u32(r).map_err(io)?;
        let p = read_u64(r).map_err(io)? as usize;
        let mut partitions = Vec::with_capacity(p);
        let mut batch_sizes = Vec::with_capacity(p);
        for _ in 0..p {
            let start = read_u64(r).map_err(io)?;
            let end = read_u64(r).map_err(io)?;
            partitions.push(VertexRange::new(start, end));
            batch_sizes.push(read_u64(r).map_err(io)?);
        }
        let mut plan =
            Plan::from_geometry(n_vertices, n_edges, edge_data_bytes, partitions, batch_sizes);
        for meta in plan.node_meta.iter_mut() {
            let nc = read_u64(r).map_err(io)? as usize;
            meta.chunks =
                (0..nc).map(|_| read_chunk_info(r)).collect::<std::io::Result<_>>().map_err(io)?;
            let nd = read_u64(r).map_err(io)? as usize;
            meta.dispatch = (0..nd)
                .map(|_| -> std::io::Result<Option<ChunkInfo>> {
                    Ok(if read_u32(r)? != 0 { Some(read_chunk_info(r)?) } else { None })
                })
                .collect::<std::io::Result<_>>()
                .map_err(io)?;
            let nf = read_u64(r).map_err(io)? as usize;
            meta.filter_lens =
                (0..nf).map(|_| read_u64(r)).collect::<std::io::Result<_>>().map_err(io)?;
            meta.n_in_edges = read_u64(r).map_err(io)?;
            meta.n_out_edges = read_u64(r).map_err(io)?;
        }
        Ok(plan)
    }

    /// Persists the plan on a node's disk.
    pub fn store(&self, disk: &NodeDisk) -> Result<()> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        let mut w = disk.create("plan.bin")?;
        w.write_all(&buf).map_err(|e| DfoError::io("writing plan.bin", e))?;
        w.finish()
    }

    /// Loads the plan from a node's disk.
    pub fn load(disk: &NodeDisk) -> Result<Self> {
        let buf = disk.read_to_vec("plan.bin")?;
        Self::read_from(&mut Cursor::new(&buf))
    }
}

fn write_chunk_info<W: Write>(w: &mut W, c: &ChunkInfo) -> std::io::Result<()> {
    write_u64(w, c.src_partition as u64)?;
    write_u64(w, c.batch as u64)?;
    write_u64(w, c.n_edges)?;
    write_u64(w, c.n_nonzero_src)?;
    write_u32(w, c.has_csr as u32)
}

fn read_chunk_info<R: Read>(r: &mut R) -> std::io::Result<ChunkInfo> {
    Ok(ChunkInfo {
        src_partition: read_u64(r)? as usize,
        batch: read_u64(r)? as usize,
        n_edges: read_u64(r)?,
        n_nonzero_src: read_u64(r)?,
        has_csr: read_u32(r)? != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn sample_plan() -> Plan {
        let mut plan = Plan::from_geometry(
            10,
            20,
            4,
            vec![VertexRange::new(0, 4), VertexRange::new(4, 10)],
            vec![2, 3],
        );
        plan.node_meta[0].chunks.push(ChunkInfo {
            src_partition: 1,
            batch: 0,
            n_edges: 5,
            n_nonzero_src: 3,
            has_csr: true,
        });
        plan.node_meta[0].dispatch[1] = Some(ChunkInfo {
            src_partition: 1,
            batch: 0,
            n_edges: 2,
            n_nonzero_src: 2,
            has_csr: false,
        });
        plan.node_meta[1].filter_lens = vec![7, 0];
        plan.node_meta[1].n_in_edges = 12;
        plan.node_meta[1].n_out_edges = 8;
        plan
    }

    #[test]
    fn geometry_matches_paper_figure_1b() {
        // 7 vertices, 2 nodes, batch size 2 (Figure 1b: batches 0..4)
        let plan = Plan::from_geometry(
            7,
            9,
            1,
            vec![VertexRange::new(0, 4), VertexRange::new(4, 7)],
            vec![2, 2],
        );
        assert_eq!(plan.batches[0].len(), 2);
        assert_eq!(plan.batches[1].len(), 2);
        assert_eq!(plan.batches[1][0], VertexRange::new(4, 6));
        assert_eq!(plan.batches[1][1], VertexRange::new(6, 7));
        assert_eq!(plan.partition_of(5), 1);
        assert_eq!(plan.batch_of(1, 6), 1);
        assert_eq!(plan.batch_of(0, 3), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        plan.write_to(&mut buf).unwrap();
        let back = Plan::read_from(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn store_and_load_via_disk() {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let plan = sample_plan();
        plan.store(&disk).unwrap();
        assert_eq!(Plan::load(&disk).unwrap(), plan);
    }

    #[test]
    fn max_batch_len() {
        let plan = sample_plan();
        assert_eq!(plan.max_batch_len(0), 2);
        assert_eq!(plan.max_batch_len(1), 3);
    }
}
