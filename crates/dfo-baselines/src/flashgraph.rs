//! FlashGraph-like semi-external engine (Zheng et al., FAST'15).
//!
//! Mechanism reproduced: **vertex state stays in memory**; adjacency lists
//! live on SSD in one CSR file, fetched *per active vertex* with merging of
//! adjacent requests (FlashGraph's I/O merging). Sparse frontiers therefore
//! read only the lists they need — which is why FlashGraph's uk-2014 BFS
//! beats DFOGraph in Table 4 — while the semi-external assumption caps the
//! graph size it can handle (it OOMs preprocessing uk-2014 on the paper's
//! 93 GB node; we reproduce the memory check).

use crate::spec::{PagerankRounds, PushSpec};
use dfo_graph::EdgeList;
use dfo_storage::NodeDisk;
use dfo_types::{bytes_of, pod_from_bytes, DfoError, Pod, Result};
use std::io::Write;

pub struct FlashGraphEngine<E: Pod> {
    disk: NodeDisk,
    n_vertices: u64,
    /// In-memory CSR index: byte offset of each vertex's adjacency run.
    index: Vec<u64>,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Pod> FlashGraphEngine<E> {
    /// Preprocesses into an on-disk CSR. `mem_budget` models the
    /// semi-external constraint: vertex state + index must fit.
    pub fn preprocess(disk: NodeDisk, g: &EdgeList<E>, mem_budget: u64) -> Result<Self> {
        // semi-external feasibility: index (8 B/vertex) + one vertex-state
        // array (assume 8 B) must fit in memory
        let needed = g.n_vertices * 16;
        if needed > mem_budget {
            return Err(DfoError::Config(format!(
                "FlashGraph semi-external assumption violated: needs {needed} B in memory, \
                 budget {mem_budget} B (the original crashes preprocessing here too)"
            )));
        }
        let mut edges: Vec<_> = g.edges.iter().collect();
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        let rec = 4 + std::mem::size_of::<E>();
        let mut index = Vec::with_capacity(g.n_vertices as usize + 1);
        let mut w = disk.create("flash/adj.bin")?;
        let mut off = 0u64;
        let mut cursor = 0usize;
        for v in 0..g.n_vertices {
            index.push(off);
            while cursor < edges.len() && edges[cursor].src == v {
                let e = edges[cursor];
                w.write_all(&(e.dst as u32).to_le_bytes())
                    .and_then(|_| w.write_all(bytes_of(&e.data)))
                    .map_err(|er| DfoError::io("writing adjacency", er))?;
                off += rec as u64;
                cursor += 1;
            }
        }
        index.push(off);
        w.finish()?;
        Ok(Self { disk, n_vertices: g.n_vertices, index, _marker: std::marker::PhantomData })
    }

    /// Fetches the adjacency byte ranges of the active vertices, merging
    /// requests whose gap is below `merge_gap` bytes, and invokes
    /// `f(src, dst, data)` for each edge of each active vertex.
    fn fetch_active(
        &self,
        active: &[bool],
        merge_gap: u64,
        mut f: impl FnMut(u64, u64, E),
    ) -> Result<()> {
        let file = self.disk.open_random("flash/adj.bin", false)?;
        let rec = (4 + std::mem::size_of::<E>()) as u64;
        // build merged request ranges
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        #[allow(clippy::needless_range_loop)] // v indexes both active and the index[v..v+2] window
        for v in 0..self.n_vertices as usize {
            if !active[v] || self.index[v] == self.index[v + 1] {
                continue;
            }
            let (s, e) = (self.index[v], self.index[v + 1]);
            match ranges.last_mut() {
                Some((_, last_end)) if s <= *last_end + merge_gap => {
                    *last_end = (*last_end).max(e);
                }
                _ => ranges.push((s, e)),
            }
        }
        for (s, e) in ranges {
            let mut buf = vec![0u8; (e - s) as usize];
            file.read_at(&mut buf, s)?;
            // walk vertices covered by this range
            let first_v = self.index.partition_point(|&x| x < s + 1).saturating_sub(1);
            #[allow(clippy::needless_range_loop)]
            // v indexes both active and the index[v..v+2] window
            for v in first_v..self.n_vertices as usize {
                if self.index[v] >= e {
                    break;
                }
                if !active[v] {
                    continue;
                }
                let (vs, ve) = (self.index[v].max(s), self.index[v + 1].min(e));
                let mut off = (vs - s) as usize;
                while (off as u64) + rec <= (ve - s) {
                    let dst = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                    let data: E = if std::mem::size_of::<E>() > 0 {
                        pod_from_bytes(&buf[off + 4..off + rec as usize])
                    } else {
                        dfo_types::pod::pod_zeroed()
                    };
                    f(v as u64, dst as u64, data);
                    off += rec as usize;
                }
            }
        }
        Ok(())
    }

    /// Active-set push to convergence.
    pub fn run_push<S: Pod, M: Pod>(&self, spec: &PushSpec<S, M, E>) -> Result<(Vec<S>, usize)> {
        let n = self.n_vertices as usize;
        let mut state = Vec::with_capacity(n);
        let mut active = vec![false; n];
        for v in 0..n as u64 {
            let (s, a) = (spec.init)(v);
            state.push(s);
            active[v as usize] = a;
        }
        let mut iters = 0;
        loop {
            iters += 1;
            let mut next_active = vec![false; n];
            let mut updates = 0u64;
            // split borrow: signal reads state[src], slot writes state[dst];
            // collect updates first (FlashGraph's async completion queue)
            let mut pending: Vec<(u64, M)> = Vec::new();
            let mut pending_edges: Vec<(usize, E)> = Vec::new();
            self.fetch_active(&active, 4096, |src, dst, data| {
                let msg = (spec.signal)(&state[src as usize]);
                pending.push((dst, msg));
                pending_edges.push((pending_edges.len(), data));
            })?;
            for ((dst, msg), (_, data)) in pending.into_iter().zip(pending_edges) {
                if (spec.slot)(&mut state[dst as usize], msg, &data) {
                    next_active[dst as usize] = true;
                    updates += 1;
                }
            }
            active = next_active;
            if updates == 0 {
                break;
            }
        }
        Ok((state, iters))
    }

    /// PageRank over the on-disk CSR (all vertices active each round).
    pub fn pagerank(&self, pr: &PagerankRounds, out_deg: &[u64]) -> Result<Vec<f64>> {
        let n = self.n_vertices as usize;
        let mut rank = vec![1.0 / n as f64; n];
        let all = vec![true; n];
        for _ in 0..pr.iters {
            let mut next = vec![0.0f64; n];
            self.fetch_active(&all, 4096, |src, dst, _| {
                next[dst as usize] += rank[src as usize] / out_deg[src as usize] as f64;
            })?;
            for v in 0..n {
                rank[v] = (1.0 - pr.damping) / n as f64 + pr.damping * next[v];
            }
        }
        Ok(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::bfs_spec;
    use dfo_graph::gen::{rmat, GenConfig};
    use tempfile::TempDir;

    #[test]
    fn bfs_matches_gridgraph() {
        let g = rmat(GenConfig::new(8, 5, 4));
        let td = TempDir::new().unwrap();
        let fdisk = NodeDisk::new(td.path().join("f"), None, false).unwrap();
        let gdisk = NodeDisk::new(td.path().join("g"), None, false).unwrap();
        let fg = FlashGraphEngine::preprocess(fdisk, &g, 1 << 30).unwrap();
        let gg = crate::gridgraph::GridGraphEngine::preprocess(gdisk, &g, 4).unwrap();
        let (a, _) = fg.run_push(&bfs_spec(0)).unwrap();
        let (b, _) = gg.run_push(&bfs_spec(0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_frontier_reads_less_than_full_scan() {
        let g = rmat(GenConfig::new(10, 8, 6));
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let fg = FlashGraphEngine::preprocess(disk.clone(), &g, 1 << 30).unwrap();
        disk.stats().reset();
        // one active low-degree vertex
        let mut active = vec![false; g.n_vertices as usize];
        active[3] = true;
        fg.fetch_active(&active, 4096, |_, _, _| {}).unwrap();
        let read = disk.stats().read_bytes.get();
        let full = g.n_edges() * 4;
        assert!(read < full / 4, "semi-external fetch must be selective: {read} vs {full}");
    }

    #[test]
    fn memory_check_rejects_oversized_graphs() {
        let g = rmat(GenConfig::new(10, 2, 1));
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let r = FlashGraphEngine::preprocess(disk, &g, 1024);
        assert!(matches!(r, Err(DfoError::Config(_))));
    }

    #[test]
    fn request_merging_coalesces_neighbours() {
        let g = rmat(GenConfig::new(8, 6, 8));
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let fg = FlashGraphEngine::preprocess(disk.clone(), &g, 1 << 30).unwrap();
        disk.stats().reset();
        let all = vec![true; g.n_vertices as usize];
        fg.fetch_active(&all, 1 << 20, |_, _, _| {}).unwrap();
        // with a huge merge gap everything coalesces into ~1 read op
        assert!(disk.stats().read_ops.get() <= 3, "ops: {}", disk.stats().read_ops.get());
    }
}
