//! Algorithm specifications shared by every baseline engine.
//!
//! The four evaluation workloads all fit one *push* template: vertices hold
//! state `S`, active vertices emit a message `M`, and receiving an `(M,
//! edge)` pair may update the destination's state and re-activate it.
//! PageRank additionally runs a fixed number of all-active rounds with an
//! apply step; [`pagerank_rounds`] captures that.

use dfo_types::Pod;

/// Initial state and activity of vertex `v`.
pub type InitFn<S> = Box<dyn Fn(u64) -> (S, bool) + Sync>;
/// Message an active vertex emits (deactivating itself this round).
pub type SignalFn<S, M> = Box<dyn Fn(&S) -> M + Sync>;
/// Applies a message; returns `true` if `dst` changed (re-activates).
pub type SlotFn<S, M, E> = Box<dyn Fn(&mut S, M, &E) -> bool + Sync>;

/// An active-set push algorithm (BFS / WCC / SSSP shape).
pub struct PushSpec<S, M, E> {
    pub init: InitFn<S>,
    pub signal: SignalFn<S, M>,
    pub slot: SlotFn<S, M, E>,
}

/// BFS levels (state = level, `u32::MAX` unreached).
pub fn bfs_spec(root: u64) -> PushSpec<u32, u32, ()> {
    PushSpec {
        init: Box::new(move |v| if v == root { (0, true) } else { (u32::MAX, false) }),
        signal: Box::new(|lvl| *lvl),
        slot: Box::new(|s, msg, _| {
            if *s == u32::MAX {
                *s = msg + 1;
                true
            } else {
                false
            }
        }),
    }
}

/// Min-label WCC (run on a symmetrized graph).
pub fn wcc_spec() -> PushSpec<u64, u64, ()> {
    PushSpec {
        init: Box::new(|v| (v, true)),
        signal: Box::new(|l| *l),
        slot: Box::new(|s, msg, _| {
            if msg < *s {
                *s = msg;
                true
            } else {
                false
            }
        }),
    }
}

/// Bellman-Ford SSSP over `f32` weights.
pub fn sssp_spec(root: u64) -> PushSpec<f32, f32, f32> {
    PushSpec {
        init: Box::new(move |v| if v == root { (0.0, true) } else { (f32::INFINITY, false) }),
        signal: Box::new(|d| *d),
        slot: Box::new(|s, msg, w| {
            if msg + w < *s {
                *s = msg + w;
                true
            } else {
                false
            }
        }),
    }
}

/// PageRank as repeated all-active rounds: `contrib = rank/deg` pushed along
/// out-edges, then `rank = (1−d)/n + d·Σ`. Engines drive it through their
/// push primitive with an explicit apply step between rounds.
pub struct PagerankRounds {
    pub iters: usize,
    pub damping: f64,
}

pub fn pagerank_rounds(iters: usize) -> PagerankRounds {
    PagerankRounds { iters, damping: 0.85 }
}

/// Helper all engines share: out-degrees of a graph.
pub fn out_degrees<E: Pod>(g: &dfo_graph::EdgeList<E>) -> Vec<u64> {
    let mut d = vec![0u64; g.n_vertices as usize];
    for e in &g.edges {
        d[e.src as usize] += 1;
    }
    d
}
