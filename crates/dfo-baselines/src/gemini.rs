//! Gemini-like distributed **in-memory** engine (Zhu et al., OSDI'16) —
//! Table 5's upper bound: DFOGraph reaches ~21 % of its speed but handles
//! graphs Gemini cannot fit ("M" entries in the table).
//!
//! Mechanisms reproduced:
//!
//! 1. **Everything in memory**: adjacency (CSR) and vertex state; a memory
//!    check refuses graphs beyond the budget, like Gemini OOMs on RMAT-32.
//! 2. **Chunk-based contiguous partitioning** (Gemini's locality-aware
//!    partitioning is DFOGraph's direct ancestor).
//! 3. **Sender-side per-destination combining** — only one message per
//!    (source-partition, destination-vertex) pair crosses the wire, the
//!    dense-mode behaviour of Gemini's push.

use crate::runtime::{BaselineCluster, BaselineNode};
use crate::spec::{PagerankRounds, PushSpec};
use dfo_types::{bytes_of, pod_from_bytes, DfoError, Pod, Result, VertexRange};
use std::collections::HashMap;

pub struct GeminiEngine<E: Pod> {
    pub cluster: BaselineCluster,
    n_vertices: u64,
    ranges: Vec<VertexRange>,
    /// Per node: CSR over its owned source range (kept in memory).
    adj: Vec<AdjPart<E>>,
}

struct AdjPart<E> {
    index: Vec<u64>,
    dst: Vec<u64>,
    data: Vec<E>,
}

impl<E: Pod> GeminiEngine<E> {
    /// "Loads" the graph into per-node memory; errors if `mem_budget`
    /// per node cannot hold its partition (edges 16 B + state 16 B).
    pub fn load(
        cluster: BaselineCluster,
        g: &dfo_graph::EdgeList<E>,
        mem_budget: u64,
    ) -> Result<Self> {
        let p = cluster.nodes();
        let per = g.n_vertices.div_ceil(p as u64).max(1);
        let ranges: Vec<VertexRange> = (0..p as u64)
            .map(|i| {
                VertexRange::new((i * per).min(g.n_vertices), ((i + 1) * per).min(g.n_vertices))
            })
            .collect();
        let per_node_bytes = (g.n_edges() / p as u64) * 16 + per * 16;
        if per_node_bytes > mem_budget {
            return Err(DfoError::Config(format!(
                "Gemini is in-memory: partition needs {per_node_bytes} B > budget {mem_budget} B \
                 (the original reports OOM here, Table 5 'M')"
            )));
        }
        let mut edges: Vec<_> = g.edges.iter().collect();
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        let mut adj = Vec::with_capacity(p);
        for range in &ranges {
            let lo = edges.partition_point(|e| e.src < range.start);
            let hi = edges.partition_point(|e| e.src < range.end);
            let mut index = Vec::with_capacity(range.len() as usize + 1);
            let mut dst = Vec::with_capacity(hi - lo);
            let mut data = Vec::with_capacity(hi - lo);
            let mut cursor = lo;
            for v in range.iter() {
                index.push(dst.len() as u64);
                while cursor < hi && edges[cursor].src == v {
                    dst.push(edges[cursor].dst);
                    data.push(edges[cursor].data);
                    cursor += 1;
                }
            }
            index.push(dst.len() as u64);
            adj.push(AdjPart { index, dst, data });
        }
        Ok(Self { cluster, n_vertices: g.n_vertices, ranges, adj })
    }

    fn owner_of(&self, v: u64) -> usize {
        let per = self.ranges[0].len().max(1);
        ((v / per) as usize).min(self.ranges.len() - 1)
    }

    /// One push superstep, combining at the sender per destination vertex.
    #[allow(clippy::too_many_arguments)]
    fn superstep<SS: Pod, DS: Pod, M: Pod>(
        &self,
        node: &BaselineNode,
        signal: &(dyn Fn(&SS) -> M + Sync),
        slot: &(dyn Fn(&mut DS, M, &E) -> bool + Sync),
        combine: &(dyn Fn(M, M) -> M + Sync),
        src_state: &[SS],
        src_active: &[bool],
        dst_state: &mut [DS],
        next_active: &mut [bool],
    ) -> Result<u64> {
        let p = self.cluster.nodes();
        let range = self.ranges[node.rank];
        let part = &self.adj[node.rank];
        let combinable = std::mem::size_of::<E>() == 0;
        let upd = 8 + std::mem::size_of::<M>() + std::mem::size_of::<E>();

        let mut combined: HashMap<u64, M> = HashMap::new();
        let mut raw: Vec<Vec<u8>> = vec![Vec::new(); p];
        let mut local_applied = 0u64;
        for v in range.iter() {
            let i = (v - range.start) as usize;
            if !src_active[i] {
                continue;
            }
            let msg = signal(&src_state[i]);
            for e in part.index[i] as usize..part.index[i + 1] as usize {
                let dst = part.dst[e];
                let owner = self.owner_of(dst);
                if owner == node.rank {
                    // local edges applied directly (Gemini's local fast path)
                    let li = (dst - range.start) as usize;
                    if slot(&mut dst_state[li], msg, &part.data[e]) {
                        next_active[li] = true;
                        local_applied += 1;
                    }
                } else if combinable {
                    combined.entry(dst).and_modify(|m| *m = combine(*m, msg)).or_insert(msg);
                } else {
                    let o = &mut raw[owner];
                    o.extend_from_slice(&dst.to_le_bytes());
                    o.extend_from_slice(bytes_of(&msg));
                    o.extend_from_slice(bytes_of(&part.data[e]));
                }
            }
        }
        let mut out = raw;
        for (dst, msg) in combined {
            let o = &mut out[self.owner_of(dst)];
            o.extend_from_slice(&dst.to_le_bytes());
            o.extend_from_slice(bytes_of(&msg));
            o.extend_from_slice(bytes_of(&dfo_types::pod::pod_zeroed::<E>()));
        }
        let incoming = node.exchange(out)?;
        let mut changed = local_applied;
        for (src, buf) in incoming.iter().enumerate() {
            if src == node.rank {
                continue;
            }
            let mut off = 0;
            while off + upd <= buf.len() {
                let dst = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                let msg: M = pod_from_bytes(&buf[off + 8..off + 8 + std::mem::size_of::<M>()]);
                let data: E = if std::mem::size_of::<E>() > 0 {
                    pod_from_bytes(&buf[off + 8 + std::mem::size_of::<M>()..off + upd])
                } else {
                    dfo_types::pod::pod_zeroed()
                };
                off += upd;
                let li = (dst - range.start) as usize;
                if slot(&mut dst_state[li], msg, &data) {
                    next_active[li] = true;
                    changed += 1;
                }
            }
        }
        Ok(node.net.allreduce_sum_u64(changed))
    }

    /// Active-set push to convergence.
    pub fn run_push<S: Pod, M: Pod>(
        &self,
        spec: &PushSpec<S, M, E>,
        combine: impl Fn(M, M) -> M + Sync,
    ) -> Result<(Vec<Vec<S>>, usize)> {
        let iters = std::sync::atomic::AtomicUsize::new(0);
        let states = self.cluster.run(|node| {
            let range = self.ranges[node.rank];
            let mut state: Vec<S> = Vec::with_capacity(range.len() as usize);
            let mut active = vec![false; range.len() as usize];
            for (i, v) in range.iter().enumerate() {
                let (s, a) = (spec.init)(v);
                state.push(s);
                active[i] = a;
            }
            let mut rounds = 0;
            loop {
                let snapshot = state.clone();
                let src_active = active.clone();
                let changed = self.superstep(
                    node,
                    &*spec.signal,
                    &*spec.slot,
                    &combine,
                    &snapshot,
                    &src_active,
                    &mut state,
                    &mut active,
                )?;
                rounds += 1;
                if changed == 0 {
                    break;
                }
            }
            iters.store(rounds, std::sync::atomic::Ordering::Relaxed);
            Ok(state)
        })?;
        Ok((states, iters.load(std::sync::atomic::Ordering::Relaxed)))
    }

    /// PageRank with sum-combining.
    pub fn pagerank(&self, pr: &PagerankRounds, out_deg: &[u64]) -> Result<Vec<Vec<f64>>> {
        let deg = std::sync::Arc::new(out_deg.to_vec());
        self.cluster.run(|node| {
            let range = self.ranges[node.rank];
            let n = self.n_vertices as f64;
            let local = range.len() as usize;
            let mut rank_v = vec![1.0 / n; local];
            let active = vec![true; local];
            for _ in 0..pr.iters {
                let contrib: Vec<f64> = (0..local)
                    .map(|i| {
                        let d = deg[range.start as usize + i];
                        if d == 0 {
                            0.0
                        } else {
                            rank_v[i] / d as f64
                        }
                    })
                    .collect();
                let mut acc = vec![0.0f64; local];
                let mut next_active = vec![false; local];
                self.superstep::<f64, f64, f64>(
                    node,
                    &|r| *r,
                    &|s, m, _| {
                        *s += m;
                        true
                    },
                    &|a, b| a + b,
                    &contrib,
                    &active,
                    &mut acc,
                    &mut next_active,
                )?;
                for i in 0..local {
                    rank_v[i] = (1.0 - pr.damping) / n + pr.damping * acc[i];
                }
            }
            Ok(rank_v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{bfs_spec, out_degrees, pagerank_rounds, wcc_spec};
    use dfo_graph::gen::{rmat, GenConfig};
    use tempfile::TempDir;

    #[test]
    fn bfs_matches_gridgraph() {
        let g = rmat(GenConfig::new(8, 5, 41));
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(3, td.path().join("m"), None, None, false).unwrap();
        let gm = GeminiEngine::load(bc, &g, 1 << 30).unwrap();
        let (states, _) = gm.run_push(&bfs_spec(0), |a, b| a.min(b)).unwrap();
        let flat: Vec<u32> = states.into_iter().flatten().collect();

        let gd = dfo_storage::NodeDisk::new(td.path().join("g"), None, false).unwrap();
        let gg = crate::gridgraph::GridGraphEngine::preprocess(gd, &g, 4).unwrap();
        let (want, _) = gg.run_push(&bfs_spec(0)).unwrap();
        assert_eq!(flat, want);
    }

    #[test]
    fn wcc_on_symmetrized_graph() {
        let g0 = rmat(GenConfig::new(7, 3, 2));
        let mut edges = g0.edges.clone();
        edges.extend(g0.edges.iter().map(|e| dfo_graph::Edge::new(e.dst, e.src, ())));
        let g = dfo_graph::EdgeList::new(g0.n_vertices, edges);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path().join("m"), None, None, false).unwrap();
        let gm = GeminiEngine::load(bc, &g, 1 << 30).unwrap();
        let (states, _) = gm.run_push(&wcc_spec(), |a, b| a.min(b)).unwrap();
        let flat: Vec<u64> = states.into_iter().flatten().collect();

        let gd = dfo_storage::NodeDisk::new(td.path().join("g"), None, false).unwrap();
        let gg = crate::gridgraph::GridGraphEngine::preprocess(gd, &g, 4).unwrap();
        let (want, _) = gg.run_push(&wcc_spec()).unwrap();
        assert_eq!(flat, want);
    }

    #[test]
    fn pagerank_matches_oracle() {
        let g = rmat(GenConfig::new(7, 5, 6));
        let deg = out_degrees(&g);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        let gm = GeminiEngine::load(bc, &g, 1 << 30).unwrap();
        let ranks: Vec<f64> =
            gm.pagerank(&pagerank_rounds(3), &deg).unwrap().into_iter().flatten().collect();
        let n = g.n_vertices as usize;
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..3 {
            let mut next = vec![0.0f64; n];
            for e in &g.edges {
                next[e.dst as usize] += rank[e.src as usize] / deg[e.src as usize] as f64;
            }
            for v in 0..n {
                rank[v] = 0.15 / n as f64 + 0.85 * next[v];
            }
        }
        for (a, b) in ranks.iter().zip(&rank) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_limit_reproduced() {
        let g = rmat(GenConfig::new(10, 8, 1));
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        assert!(matches!(GeminiEngine::load(bc, &g, 1024), Err(DfoError::Config(_))));
    }

    #[test]
    fn no_disk_traffic_during_iterations() {
        let g = rmat(GenConfig::new(8, 5, 9));
        let deg = out_degrees(&g);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        let gm = GeminiEngine::load(bc, &g, 1 << 30).unwrap();
        gm.cluster.reset_disk_stats();
        gm.pagerank(&pagerank_rounds(2), &deg).unwrap();
        assert_eq!(gm.cluster.total_disk_bytes(), 0, "Gemini must not touch disk");
    }

    #[test]
    fn combining_reduces_network_vs_chaos() {
        let g = rmat(GenConfig::new(9, 8, 13));
        let deg = out_degrees(&g);
        let td = TempDir::new().unwrap();

        let bc = BaselineCluster::create(2, td.path().join("m"), None, None, false).unwrap();
        let gm = GeminiEngine::load(bc, &g, 1 << 30).unwrap();
        gm.pagerank(&pagerank_rounds(2), &deg).unwrap();
        let gemini_sent = gm.cluster.total_net_sent();

        let bc = BaselineCluster::create(2, td.path().join("c"), None, None, false).unwrap();
        let chaos = crate::chaos::ChaosEngine::preprocess(bc, &g).unwrap();
        chaos.pagerank(&pagerank_rounds(2), &deg).unwrap();
        let chaos_sent = chaos.cluster.total_net_sent();

        assert!(
            chaos_sent > 2 * gemini_sent,
            "uncombined Chaos traffic must dominate: {chaos_sent} vs {gemini_sent}"
        );
    }
}
