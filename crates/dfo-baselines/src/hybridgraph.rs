//! HybridGraph-like distributed semi-out-of-core Pregel engine (Wang et
//! al., SIGMOD'16).
//!
//! Mechanisms reproduced:
//!
//! 1. **Semi-out-of-core assumption**: vertex values (and activity) live in
//!    memory; only edges stream from disk. The original also assumes
//!    `|V| < 2³¹` — we reproduce that limit as a hard error, which is what
//!    made it crash on RMAT-32/KRON-38 in Table 5 ("R*").
//! 2. **Memory-bounded message combining**: outgoing messages are combined
//!    per destination in an in-memory table capped by the memory budget;
//!    when the table fills it is flushed uncombined-from-then-on — the
//!    §1.2 observation that "for massive graphs far beyond the memory
//!    capacity, the reduction would be much less effective".
//! 3. **Per-vertex edge access on disk** (VE-block style): sparse
//!    iterations read only active vertices' adjacency, so HybridGraph is
//!    not as pathological as Chaos on BFS — but it pays combiner misses in
//!    network bytes instead.

use crate::runtime::{BaselineCluster, BaselineNode};
use crate::spec::{PagerankRounds, PushSpec};
use dfo_types::{bytes_of, pod_from_bytes, DfoError, Pod, Result, VertexRange};
use std::collections::HashMap;
use std::io::Write;

pub struct HybridGraphEngine<E: Pod> {
    pub cluster: BaselineCluster,
    n_vertices: u64,
    ranges: Vec<VertexRange>,
    /// Max entries of the per-node combiner table.
    combiner_capacity: usize,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Pod> HybridGraphEngine<E> {
    /// Preprocesses into per-node on-disk CSR over the owned source range.
    /// `mem_budget` bounds vertex state and the message combiner.
    pub fn preprocess(
        cluster: BaselineCluster,
        g: &dfo_graph::EdgeList<E>,
        mem_budget: u64,
    ) -> Result<Self> {
        if g.n_vertices >= (1u64 << 31) {
            return Err(DfoError::Config(
                "HybridGraph assumes |V| < 2^31 (the original crashes here, Table 5 'R*')".into(),
            ));
        }
        let p = cluster.nodes();
        let per = g.n_vertices.div_ceil(p as u64).max(1);
        let ranges: Vec<VertexRange> = (0..p as u64)
            .map(|i| {
                VertexRange::new((i * per).min(g.n_vertices), ((i + 1) * per).min(g.n_vertices))
            })
            .collect();
        // vertex state must fit: value (8) + active (1) + index (8) per vertex
        let per_node_vertices = per;
        if per_node_vertices * 17 > mem_budget {
            return Err(DfoError::Config(format!(
                "HybridGraph semi-out-of-core assumption violated: {} vertices/node need {} B",
                per_node_vertices,
                per_node_vertices * 17
            )));
        }
        let combiner_capacity = ((mem_budget / 2) as usize / 16).max(16);

        let mut edges: Vec<_> = g.edges.iter().collect();
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        let rec = 8 + std::mem::size_of::<E>();
        for (i, range) in ranges.iter().enumerate() {
            let mut index = Vec::with_capacity(range.len() as usize + 1);
            let mut body: Vec<u8> = Vec::new();
            let lo = edges.partition_point(|e| e.src < range.start);
            let mut cursor = lo;
            for v in range.iter() {
                index.push(body.len() as u64);
                while cursor < edges.len() && edges[cursor].src == v {
                    body.extend_from_slice(&edges[cursor].dst.to_le_bytes());
                    body.extend_from_slice(bytes_of(&edges[cursor].data));
                    cursor += 1;
                }
            }
            index.push(body.len() as u64);
            let mut w = cluster.disks()[i].create("hybrid/adj.bin")?;
            w.write_all(&body).map_err(|e| DfoError::io("hybrid adjacency", e))?;
            w.finish()?;
            let mut w = cluster.disks()[i].create("hybrid/index.bin")?;
            w.write_all(dfo_types::slice_as_bytes(&index))
                .map_err(|e| DfoError::io("hybrid index", e))?;
            w.finish()?;
            let _ = rec;
        }
        Ok(Self {
            cluster,
            n_vertices: g.n_vertices,
            ranges,
            combiner_capacity,
            _marker: std::marker::PhantomData,
        })
    }

    fn owner_of(&self, v: u64) -> usize {
        let per = self.ranges[0].len().max(1);
        ((v / per) as usize).min(self.ranges.len() - 1)
    }

    /// One push superstep with bounded combining; `combine` merges two
    /// messages for the same destination (min for BFS/WCC/SSSP, add for
    /// PR). Returns cluster-wide updates.
    #[allow(clippy::too_many_arguments)]
    fn superstep<SS: Pod, DS: Pod, M: Pod>(
        &self,
        node: &BaselineNode,
        signal: &(dyn Fn(&SS) -> M + Sync),
        slot: &(dyn Fn(&mut DS, M, &E) -> bool + Sync),
        combine: &(dyn Fn(M, M) -> M + Sync),
        src_state: &[SS],
        src_active: &[bool],
        dst_state: &mut [DS],
        next_active: &mut [bool],
    ) -> Result<u64> {
        // combining only works for data-independent edges (E = ()); for
        // weighted graphs the weight is folded into the message by signal
        // running per-edge. To stay general we combine (dst, data) pairs
        // only when E is zero-sized; otherwise messages pass uncombined
        // (matching how Pregel combiners are declared per message type).
        let p = self.cluster.nodes();
        let range = self.ranges[node.rank];
        let index: Vec<u64> =
            dfo_types::vec_from_bytes(&node.disk.read_to_vec("hybrid/index.bin")?);
        let adj = node.disk.open_random("hybrid/adj.bin", false)?;
        let rec = 8 + std::mem::size_of::<E>();
        let combinable = std::mem::size_of::<E>() == 0;

        let mut combiner: HashMap<u64, M> = HashMap::new();
        let mut overflow: Vec<Vec<u8>> = vec![Vec::new(); p]; // uncombined spills
        let upd = 8 + std::mem::size_of::<M>() + std::mem::size_of::<E>();

        for v in range.iter() {
            let i = (v - range.start) as usize;
            if !src_active[i] {
                continue;
            }
            let (s, e) = (index[i], index[i + 1]);
            if s == e {
                continue;
            }
            let mut buf = vec![0u8; (e - s) as usize];
            adj.read_at(&mut buf, s)?;
            let msg = signal(&src_state[i]);
            let mut off = 0;
            while off + rec <= buf.len() {
                let dst = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                let data: E = if std::mem::size_of::<E>() > 0 {
                    pod_from_bytes(&buf[off + 8..off + rec])
                } else {
                    dfo_types::pod::pod_zeroed()
                };
                off += rec;
                if combinable
                    && (combiner.len() < self.combiner_capacity || combiner.contains_key(&dst))
                {
                    combiner.entry(dst).and_modify(|m| *m = combine(*m, msg)).or_insert(msg);
                } else {
                    // combiner full (or weighted edges): ship uncombined
                    let o = &mut overflow[self.owner_of(dst)];
                    o.extend_from_slice(&dst.to_le_bytes());
                    o.extend_from_slice(bytes_of(&msg));
                    o.extend_from_slice(bytes_of(&data));
                }
            }
        }
        // flush combiner into the outgoing buffers
        let mut out = overflow;
        for (dst, msg) in combiner {
            let o = &mut out[self.owner_of(dst)];
            o.extend_from_slice(&dst.to_le_bytes());
            o.extend_from_slice(bytes_of(&msg));
            o.extend_from_slice(bytes_of(&dfo_types::pod::pod_zeroed::<E>()));
        }

        let incoming = node.exchange(out)?;
        let mut changed = 0u64;
        for b in next_active.iter_mut() {
            *b = false;
        }
        for buf in incoming {
            let mut off = 0;
            while off + upd <= buf.len() {
                let dst = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                let msg: M = pod_from_bytes(&buf[off + 8..off + 8 + std::mem::size_of::<M>()]);
                let data: E = if std::mem::size_of::<E>() > 0 {
                    pod_from_bytes(&buf[off + 8 + std::mem::size_of::<M>()..off + upd])
                } else {
                    dfo_types::pod::pod_zeroed()
                };
                off += upd;
                let local = (dst - range.start) as usize;
                if slot(&mut dst_state[local], msg, &data) {
                    next_active[local] = true;
                    changed += 1;
                }
            }
        }
        Ok(node.net.allreduce_sum_u64(changed))
    }

    /// Active-set push to convergence with combiner `combine`.
    pub fn run_push<S: Pod, M: Pod>(
        &self,
        spec: &PushSpec<S, M, E>,
        combine: impl Fn(M, M) -> M + Sync,
    ) -> Result<(Vec<Vec<S>>, usize)> {
        let iters = std::sync::atomic::AtomicUsize::new(0);
        let states = self.cluster.run(|node| {
            let range = self.ranges[node.rank];
            let mut state: Vec<S> = Vec::with_capacity(range.len() as usize);
            let mut active = vec![false; range.len() as usize];
            for (i, v) in range.iter().enumerate() {
                let (s, a) = (spec.init)(v);
                state.push(s);
                active[i] = a;
            }
            let mut rounds = 0;
            loop {
                let snapshot = state.clone();
                let src_active = active.clone();
                let changed = self.superstep(
                    node,
                    &*spec.signal,
                    &*spec.slot,
                    &combine,
                    &snapshot,
                    &src_active,
                    &mut state,
                    &mut active,
                )?;
                rounds += 1;
                if changed == 0 {
                    break;
                }
            }
            iters.store(rounds, std::sync::atomic::Ordering::Relaxed);
            Ok(state)
        })?;
        Ok((states, iters.load(std::sync::atomic::Ordering::Relaxed)))
    }

    /// PageRank with sum-combining.
    pub fn pagerank(&self, pr: &PagerankRounds, out_deg: &[u64]) -> Result<Vec<Vec<f64>>> {
        let deg = std::sync::Arc::new(out_deg.to_vec());
        self.cluster.run(|node| {
            let range = self.ranges[node.rank];
            let n = self.n_vertices as f64;
            let local = range.len() as usize;
            let mut rank_v = vec![1.0 / n; local];
            let active = vec![true; local];
            for _ in 0..pr.iters {
                let contrib: Vec<f64> = (0..local)
                    .map(|i| {
                        let d = deg[range.start as usize + i];
                        if d == 0 {
                            0.0
                        } else {
                            rank_v[i] / d as f64
                        }
                    })
                    .collect();
                let mut acc = vec![0.0f64; local];
                let mut next_active = vec![false; local];
                self.superstep::<f64, f64, f64>(
                    node,
                    &|r| *r,
                    &|s, m, _| {
                        *s += m;
                        true
                    },
                    &|a, b| a + b,
                    &contrib,
                    &active,
                    &mut acc,
                    &mut next_active,
                )?;
                for i in 0..local {
                    rank_v[i] = (1.0 - pr.damping) / n + pr.damping * acc[i];
                }
            }
            Ok(rank_v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{bfs_spec, out_degrees, pagerank_rounds};
    use dfo_graph::gen::{rmat, GenConfig};
    use tempfile::TempDir;

    #[test]
    fn bfs_matches_gridgraph() {
        let g = rmat(GenConfig::new(8, 5, 21));
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path().join("h"), None, None, false).unwrap();
        let hg = HybridGraphEngine::preprocess(bc, &g, 1 << 30).unwrap();
        let (states, _) = hg.run_push(&bfs_spec(0), |a, b| a.min(b)).unwrap();
        let flat: Vec<u32> = states.into_iter().flatten().collect();

        let gd = dfo_storage::NodeDisk::new(td.path().join("g"), None, false).unwrap();
        let gg = crate::gridgraph::GridGraphEngine::preprocess(gd, &g, 4).unwrap();
        let (want, _) = gg.run_push(&bfs_spec(0)).unwrap();
        assert_eq!(flat, want);
    }

    #[test]
    fn pagerank_matches_oracle() {
        let g = rmat(GenConfig::new(7, 5, 31));
        let deg = out_degrees(&g);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        let hg = HybridGraphEngine::preprocess(bc, &g, 1 << 30).unwrap();
        let ranks: Vec<f64> =
            hg.pagerank(&pagerank_rounds(3), &deg).unwrap().into_iter().flatten().collect();
        let n = g.n_vertices as usize;
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..3 {
            let mut next = vec![0.0f64; n];
            for e in &g.edges {
                next[e.dst as usize] += rank[e.src as usize] / deg[e.src as usize] as f64;
            }
            for v in 0..n {
                rank[v] = 0.15 / n as f64 + 0.85 * next[v];
            }
        }
        for (a, b) in ranks.iter().zip(&rank) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_combiner_sends_more_bytes() {
        let g = rmat(GenConfig::new(9, 8, 3));
        let deg = out_degrees(&g);
        let td = TempDir::new().unwrap();

        let big = BaselineCluster::create(2, td.path().join("big"), None, None, false).unwrap();
        let hg_big = HybridGraphEngine::preprocess(big, &g, 1 << 30).unwrap();
        hg_big.pagerank(&pagerank_rounds(2), &deg).unwrap();
        let sent_big = hg_big.cluster.total_net_sent();

        let small = BaselineCluster::create(2, td.path().join("small"), None, None, false).unwrap();
        let mut hg_small = HybridGraphEngine::preprocess(small, &g, 1 << 30).unwrap();
        hg_small.combiner_capacity = 16; // memory-starved combiner
        hg_small.pagerank(&pagerank_rounds(2), &deg).unwrap();
        let sent_small = hg_small.cluster.total_net_sent();

        assert!(
            sent_small > sent_big * 2,
            "starved combiner must ship more bytes: {sent_small} vs {sent_big}"
        );
    }

    #[test]
    fn v31_limit_reproduced() {
        // fabricate a graph object claiming 2^31 vertices without edges
        let g = dfo_graph::EdgeList::<()>::new(1u64 << 31, vec![]);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        assert!(matches!(
            HybridGraphEngine::preprocess(bc, &g, u64::MAX),
            Err(DfoError::Config(_))
        ));
    }
}
