//! Minimal SPMD runtime shared by the distributed baselines, mirroring the
//! substrate DFOGraph runs on (throttled disks + simulated network) so that
//! byte counts and wall times are comparable across engines.

use dfo_net::{Endpoint, SimCluster};
use dfo_storage::NodeDisk;
use dfo_types::{DfoError, Rank, Result};
use parking_lot::Mutex;
use std::path::PathBuf;

/// Per-node handle given to baseline node programs.
pub struct BaselineNode {
    pub rank: Rank,
    pub disk: NodeDisk,
    pub net: Endpoint,
    tag: std::sync::atomic::AtomicU64,
}

impl BaselineNode {
    pub fn nodes(&self) -> usize {
        self.net.nodes()
    }

    fn next_tag(&self) -> u64 {
        self.tag.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// All-to-all byte exchange with the deadlock-free round-robin pairing
    /// (sender on its own thread); `result[rank] == outgoing[rank]`.
    pub fn exchange(&self, outgoing: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        let p = self.nodes();
        assert_eq!(outgoing.len(), p);
        let rank = self.rank;
        let seq = self.next_tag();
        // freeze once, send zero-copy slices (mirrors NodeCtx::exchange_bytes)
        let mut outgoing = outgoing;
        let own = std::mem::take(&mut outgoing[rank]);
        let outgoing: Vec<bytes::Bytes> = outgoing.into_iter().map(bytes::Bytes::from).collect();
        let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); p];
        let err: Mutex<Option<DfoError>> = Mutex::new(None);
        let send_order: Vec<usize> = (1..p).map(|d| (rank + d) % p).collect();
        let recv_order: Vec<usize> = (1..p).map(|d| (rank + p - d) % p).collect();
        std::thread::scope(|s| {
            s.spawn(|| {
                for &j in &send_order {
                    if let Err(e) = self.net.send_stream(j, seq, outgoing[j].clone()) {
                        *err.lock() = Some(e);
                        return;
                    }
                }
            });
            for &q in &recv_order {
                match self.net.recv_all(q, seq) {
                    Ok(b) => incoming[q] = b,
                    Err(e) => {
                        *err.lock() = Some(e);
                        break;
                    }
                }
            }
        });
        let pending = err.lock().take();
        if let Some(e) = pending {
            return Err(e);
        }
        incoming[rank] = own;
        Ok(incoming)
    }
}

/// A baseline cluster: throttled per-node disks under `<base>/n<i>`.
pub struct BaselineCluster {
    disks: Vec<NodeDisk>,
    nodes: usize,
    net_bw: Option<u64>,
    record_traffic: bool,
    last_net: Mutex<Vec<std::sync::Arc<dfo_net::NetStats>>>,
}

impl BaselineCluster {
    pub fn create(
        nodes: usize,
        base: impl Into<PathBuf>,
        disk_bw: Option<u64>,
        net_bw: Option<u64>,
        record_traffic: bool,
    ) -> Result<Self> {
        let base = base.into();
        let disks = (0..nodes)
            .map(|i| NodeDisk::new(base.join(format!("n{i}")), disk_bw, record_traffic))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { disks, nodes, net_bw, record_traffic, last_net: Mutex::new(Vec::new()) })
    }

    pub fn disks(&self) -> &[NodeDisk] {
        &self.disks
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn total_disk_bytes(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().total_bytes()).sum()
    }

    pub fn total_net_sent(&self) -> u64 {
        self.last_net.lock().iter().map(|s| s.sent_bytes.get()).sum()
    }

    pub fn net_stats(&self) -> Vec<std::sync::Arc<dfo_net::NetStats>> {
        self.last_net.lock().clone()
    }

    pub fn reset_disk_stats(&self) {
        for d in &self.disks {
            d.stats().reset();
        }
    }

    /// SPMD run; panics/errors poison the collective like the main engine.
    pub fn run<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut BaselineNode) -> Result<T> + Sync,
    {
        let endpoints = SimCluster::build(self.nodes, self.net_bw, self.record_traffic);
        *self.last_net.lock() = endpoints.iter().map(|e| e.stats_arc()).collect();
        let mut results: Vec<Option<Result<T>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, ep)| {
                    let disk = self.disks[rank].clone();
                    let f = &f;
                    s.spawn(move || -> Result<T> {
                        let mut node = BaselineNode {
                            rank,
                            disk,
                            net: ep,
                            tag: std::sync::atomic::AtomicU64::new(0),
                        };
                        let res =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut node)));
                        match res {
                            Ok(Ok(v)) => Ok(v),
                            Ok(Err(e)) => {
                                node.net.poison_collective();
                                Err(e)
                            }
                            Err(panic) => {
                                node.net.poison_collective();
                                let msg = panic
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| panic.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "<non-string panic>".into());
                                Err(DfoError::NetClosed(format!("node {rank} panicked: {msg}")))
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                results.push(Some(h.join().expect("node thread join")));
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    #[test]
    fn exchange_all_to_all() {
        let td = TempDir::new().unwrap();
        let c = BaselineCluster::create(3, td.path(), None, None, false).unwrap();
        let outs = c
            .run(|node| {
                let outgoing: Vec<Vec<u8>> =
                    (0..3).map(|j| vec![node.rank as u8 * 10 + j as u8; 4]).collect();
                node.exchange(outgoing)
            })
            .unwrap();
        for (rank, incoming) in outs.iter().enumerate() {
            for (src, bytes) in incoming.iter().enumerate() {
                assert_eq!(bytes, &vec![src as u8 * 10 + rank as u8; 4]);
            }
        }
    }
}
