//! Re-implementations of the comparator systems from the paper's evaluation
//! (Tables 4–5, Figure 5), each reproducing the *mechanism* that determines
//! its I/O and communication profile, built on the same accounted storage
//! and network substrates as DFOGraph so byte counts are comparable.
//!
//! | Engine | Models | Discriminating mechanism |
//! |--------|--------|--------------------------|
//! | [`gridgraph`] | GridGraph (ATC'15) | single node; 2-level grid of edge blocks, streamed with block-granular selectivity; in-memory vertex arrays |
//! | [`flashgraph`] | FlashGraph (FAST'15) | single node; semi-external — vertex state in memory, per-vertex adjacency lists fetched from SSD with request merging |
//! | [`chaos`] | Chaos (SOSP'15) | distributed edge-centric GAS: full edge scan every iteration, updates shipped unfiltered and uncombined, spilled to update files |
//! | [`hybridgraph`] | HybridGraph (SIGMOD'16) | distributed Pregel-like semi-out-of-core push with a memory-bounded combiner (and the `|V| < 2³¹` limit of the original code) |
//! | [`gemini`] | Gemini (OSDI'16) | distributed in-memory push with sender-side per-destination combining |
//!
//! The algorithm specs shared by all engines live in [`spec`].

pub mod chaos;
pub mod flashgraph;
pub mod gemini;
pub mod gridgraph;
pub mod hybridgraph;
pub mod runtime;
pub mod spec;

pub use chaos::ChaosEngine;
pub use flashgraph::FlashGraphEngine;
pub use gemini::GeminiEngine;
pub use gridgraph::GridGraphEngine;
pub use hybridgraph::HybridGraphEngine;
pub use runtime::{BaselineCluster, BaselineNode};
pub use spec::{bfs_spec, pagerank_rounds, sssp_spec, wcc_spec, PushSpec};
