//! GridGraph-like single-machine out-of-core engine (Zhu et al., ATC'15).
//!
//! Mechanism reproduced: edges preprocessed into a Q×Q *grid* of blocks
//! (source chunk × destination chunk) on disk; every iteration streams
//! blocks with **block-granular selective scheduling** — a block is read
//! iff its source chunk contains any active vertex. Vertex data lives in
//! in-memory arrays (the real system memory-maps them; §1.1 of the DFOGraph
//! paper notes this collapses when memory is short — Table 6 makes that
//! point with DFOGraph's own no-batching mode instead).
//!
//! This is exactly the behaviour behind GridGraph's Table 4 profile: fine
//! for PR (all blocks needed anyway), pathological on uk-2014-like graphs
//! where ~2500 sparse iterations each re-read every block that contains a
//! single active source.

use crate::spec::{PagerankRounds, PushSpec};
use dfo_graph::EdgeList;
use dfo_storage::NodeDisk;
use dfo_types::codec::read_exact_or_eof;
use dfo_types::{bytes_of, pod_from_bytes, DfoError, Pod, Result};
use std::io::Write;

pub struct GridGraphEngine<E: Pod> {
    disk: NodeDisk,
    n_vertices: u64,
    q: usize,
    chunk_size: u64,
    /// `blocks[i][j]` = number of edges in grid block (i, j).
    blocks: Vec<Vec<u64>>,
    _marker: std::marker::PhantomData<E>,
}

const REC_BASE: usize = 8; // two u32 endpoints

impl<E: Pod> GridGraphEngine<E> {
    /// Preprocesses `g` into a Q×Q grid under `disk`.
    pub fn preprocess(disk: NodeDisk, g: &EdgeList<E>, q: usize) -> Result<Self> {
        assert!(q >= 1);
        let chunk_size = g.n_vertices.div_ceil(q as u64).max(1);
        let chunk_of = |v: u64| ((v / chunk_size) as usize).min(q - 1);
        let mut buckets: Vec<Vec<Vec<u8>>> = (0..q).map(|_| vec![Vec::new(); q]).collect();
        let rec = REC_BASE + std::mem::size_of::<E>();
        for e in &g.edges {
            let (i, j) = (chunk_of(e.src), chunk_of(e.dst));
            let buf = &mut buckets[i][j];
            buf.reserve(rec);
            buf.extend_from_slice(&(e.src as u32).to_le_bytes());
            buf.extend_from_slice(&(e.dst as u32).to_le_bytes());
            buf.extend_from_slice(bytes_of(&e.data));
        }
        let mut blocks = vec![vec![0u64; q]; q];
        for (i, row) in buckets.into_iter().enumerate() {
            for (j, buf) in row.into_iter().enumerate() {
                blocks[i][j] = (buf.len() / rec) as u64;
                if !buf.is_empty() {
                    let mut w = disk.create(&format!("grid/b{i}_{j}.edges"))?;
                    w.write_all(&buf).map_err(|e| DfoError::io("writing grid block", e))?;
                    w.finish()?;
                }
            }
        }
        Ok(Self {
            disk,
            n_vertices: g.n_vertices,
            q,
            chunk_size,
            blocks,
            _marker: std::marker::PhantomData,
        })
    }

    /// Streams block (i, j), invoking `f(src, dst, data)` per edge.
    fn stream_block(&self, i: usize, j: usize, mut f: impl FnMut(u64, u64, E)) -> Result<()> {
        if self.blocks[i][j] == 0 {
            return Ok(());
        }
        let mut r = self.disk.open(&format!("grid/b{i}_{j}.edges"))?;
        let rec = REC_BASE + std::mem::size_of::<E>();
        let mut buf = vec![0u8; rec];
        loop {
            match read_exact_or_eof(&mut r, &mut buf) {
                Ok(true) => {
                    let src = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as u64;
                    let dst = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as u64;
                    let data: E = if std::mem::size_of::<E>() > 0 {
                        pod_from_bytes(&buf[8..])
                    } else {
                        dfo_types::pod::pod_zeroed()
                    };
                    f(src, dst, data);
                }
                Ok(false) => break,
                Err(e) => return Err(DfoError::io("reading grid block", e)),
            }
        }
        Ok(())
    }

    /// Runs an active-set push algorithm to convergence; returns final
    /// states and the number of iterations.
    pub fn run_push<S: Pod, M: Pod>(&self, spec: &PushSpec<S, M, E>) -> Result<(Vec<S>, usize)> {
        let n = self.n_vertices as usize;
        let mut state = Vec::with_capacity(n);
        let mut active = vec![false; n];
        for v in 0..n as u64 {
            let (s, a) = (spec.init)(v);
            state.push(s);
            active[v as usize] = a;
        }
        let mut iters = 0;
        loop {
            iters += 1;
            // chunk-granular activity map (the dual sliding window test)
            let chunk_active: Vec<bool> = (0..self.q)
                .map(|i| {
                    let lo = i as u64 * self.chunk_size;
                    let hi = ((i as u64 + 1) * self.chunk_size).min(self.n_vertices);
                    (lo..hi).any(|v| active[v as usize])
                })
                .collect();
            let mut next_active = vec![false; n];
            let mut updates = 0u64;
            for (i, &row_active) in chunk_active.iter().enumerate() {
                if !row_active {
                    continue; // skip the whole row of blocks
                }
                for j in 0..self.q {
                    self.stream_block(i, j, |src, dst, data| {
                        if active[src as usize] {
                            let msg = (spec.signal)(&state[src as usize]);
                            if (spec.slot)(&mut state[dst as usize], msg, &data) {
                                next_active[dst as usize] = true;
                                updates += 1;
                            }
                        }
                    })?;
                }
            }
            active = next_active;
            if updates == 0 {
                break;
            }
        }
        Ok((state, iters))
    }

    /// PageRank: `iters` full-scan rounds (every block read every round).
    pub fn pagerank(&self, pr: &PagerankRounds, out_deg: &[u64]) -> Result<Vec<f64>> {
        let n = self.n_vertices as usize;
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..pr.iters {
            let mut next = vec![0.0f64; n];
            for i in 0..self.q {
                for j in 0..self.q {
                    self.stream_block(i, j, |src, dst, _| {
                        next[dst as usize] += rank[src as usize] / out_deg[src as usize] as f64;
                    })?;
                }
            }
            for v in 0..n {
                rank[v] = (1.0 - pr.damping) / n as f64 + pr.damping * next[v];
            }
        }
        Ok(rank)
    }

    /// Chunk count (for tests).
    pub fn q(&self) -> usize {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{bfs_spec, out_degrees, sssp_spec, wcc_spec};
    use dfo_graph::gen::{rmat, GenConfig};
    use tempfile::TempDir;

    fn engine(g: &EdgeList<()>, q: usize) -> (TempDir, GridGraphEngine<()>) {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let e = GridGraphEngine::preprocess(disk, g, q).unwrap();
        (td, e)
    }

    #[test]
    fn bfs_matches_oracle() {
        let g = rmat(GenConfig::new(8, 6, 3));
        let (_t, e) = engine(&g, 4);
        let (levels, _) = e.run_push(&bfs_spec(0)).unwrap();
        let want = dfo_algos_oracle_bfs(&g, 0);
        assert_eq!(levels, want);
    }

    #[test]
    fn wcc_matches_union_find() {
        let g0 = rmat(GenConfig::new(7, 3, 9));
        let mut edges = g0.edges.clone();
        edges.extend(g0.edges.iter().map(|e| dfo_graph::Edge::new(e.dst, e.src, ())));
        let g = EdgeList::new(g0.n_vertices, edges);
        let (_t, e) = engine(&g, 3);
        let (labels, _) = e.run_push(&wcc_spec()).unwrap();
        let want = oracle_wcc(&g);
        assert_eq!(labels, want);
    }

    #[test]
    fn sssp_matches_bellman_ford() {
        let g0 = rmat(GenConfig::new(7, 4, 5));
        let g: EdgeList<f32> = g0.map_data(|e| ((e.src + e.dst) % 9 + 1) as f32);
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let e = GridGraphEngine::preprocess(disk, &g, 4).unwrap();
        let (dist, _) = e.run_push(&sssp_spec(1)).unwrap();
        let want = oracle_sssp(&g, 1);
        for (a, b) in dist.iter().zip(&want) {
            assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn pagerank_conserves_shape() {
        let g = rmat(GenConfig::new(8, 6, 1));
        let deg = out_degrees(&g);
        let (_t, e) = engine(&g, 4);
        let rank = e.pagerank(&crate::spec::pagerank_rounds(5), &deg).unwrap();
        assert!(rank.iter().all(|r| *r > 0.0));
        // hubs get more rank than the minimum
        let max = rank.iter().cloned().fold(0.0, f64::max);
        let min = rank.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 5.0 * min);
    }

    #[test]
    fn sparse_iterations_read_whole_block_rows() {
        // one active vertex still streams every block in its row: measure
        // that disk reads scale with block row size, not frontier size
        let g = rmat(GenConfig::new(9, 8, 2));
        let (_t, e) = engine(&g, 2);
        let read0 = e.disk.stats().read_bytes.get();
        let (_, _) = e.run_push(&bfs_spec(0)).unwrap();
        let read = e.disk.stats().read_bytes.get() - read0;
        // BFS touches each edge once logically, but GridGraph re-reads
        // blocks across iterations: reads must exceed one full edge pass
        let full_pass = (g.n_edges() as usize * REC_BASE) as u64;
        assert!(read > full_pass, "expected block re-reads: {read} <= {full_pass}");
    }

    // --- local oracles (duplicated from dfo-algos to avoid a dev-dependency
    //     cycle: dfo-algos dev-depends on this crate) ---------------------

    fn dfo_algos_oracle_bfs(g: &EdgeList<()>, root: u64) -> Vec<u32> {
        let n = g.n_vertices as usize;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in &g.edges {
            adj[e.src as usize].push(e.dst as u32);
        }
        let mut level = vec![u32::MAX; n];
        level[root as usize] = 0;
        let mut frontier = vec![root as u32];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for v in frontier {
                for &u in &adj[v as usize] {
                    if level[u as usize] == u32::MAX {
                        level[u as usize] = d;
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    fn oracle_wcc(g: &EdgeList<()>) -> Vec<u64> {
        let n = g.n_vertices as usize;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while p[r] != r {
                r = p[r];
            }
            p[x] = r;
            r
        }
        for e in &g.edges {
            let (a, b) = (find(&mut parent, e.src as usize), find(&mut parent, e.dst as usize));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut min_root = vec![u64::MAX; n];
        for v in 0..n {
            let r = find(&mut parent, v);
            min_root[r] = min_root[r].min(v as u64);
        }
        (0..n).map(|v| min_root[find(&mut parent, v)]).collect()
    }

    fn oracle_sssp(g: &EdgeList<f32>, root: u64) -> Vec<f32> {
        let n = g.n_vertices as usize;
        let mut dist = vec![f32::INFINITY; n];
        dist[root as usize] = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for e in &g.edges {
                let nd = dist[e.src as usize] + e.data;
                if nd < dist[e.dst as usize] {
                    dist[e.dst as usize] = nd;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }
}
