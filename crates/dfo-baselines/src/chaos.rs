//! Chaos-like distributed edge-centric out-of-core engine (Roy et al.,
//! SOSP'15) — the main comparator of Table 5 and Figure 5.
//!
//! Mechanisms reproduced (each the source of a cost DFOGraph eliminates):
//!
//! 1. **Edge-centric streaming**: every iteration streams the *entire*
//!    local edge file, filtering by active source on the fly — no edge
//!    index, so sparse iterations still pay a full scan (X-Stream
//!    heritage).
//! 2. **Unfiltered, uncombined updates**: scatter emits one `(dst, value)`
//!    update *per active edge* and ships it to the destination's owner —
//!    nothing like DFOGraph's per-source messages or needed-vertex
//!    filtering. This is exactly why Figure 5 shows Chaos moving ~50× the
//!    network bytes.
//! 3. **Updates spilled to disk**: received updates land in an on-disk
//!    update file, then the gather phase streams them back — doubling the
//!    disk traffic on top of the edge scan.
//! 4. **Fully out of core vertex state**: state and active bitmaps are
//!    loaded from and written back to disk every iteration.

use crate::runtime::{BaselineCluster, BaselineNode};
use crate::spec::{PagerankRounds, PushSpec};
use dfo_types::{
    bytes_of, pod_from_bytes, slice_as_bytes, vec_from_bytes, DfoError, Pod, Result, VertexRange,
};
use std::io::Write;

pub struct ChaosEngine<E: Pod> {
    pub cluster: BaselineCluster,
    n_vertices: u64,
    ranges: Vec<VertexRange>,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Pod> ChaosEngine<E> {
    /// Preprocesses: vertices in `P` contiguous ranges; each node stores the
    /// edges whose source it owns as one flat streaming file.
    pub fn preprocess(cluster: BaselineCluster, g: &dfo_graph::EdgeList<E>) -> Result<Self> {
        let p = cluster.nodes();
        let per = g.n_vertices.div_ceil(p as u64).max(1);
        let ranges: Vec<VertexRange> = (0..p as u64)
            .map(|i| {
                VertexRange::new((i * per).min(g.n_vertices), ((i + 1) * per).min(g.n_vertices))
            })
            .collect();
        let rec = 16 + std::mem::size_of::<E>();
        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); p];
        for e in &g.edges {
            let owner = ((e.src / per) as usize).min(p - 1);
            let b = &mut bufs[owner];
            b.reserve(rec);
            b.extend_from_slice(&e.src.to_le_bytes());
            b.extend_from_slice(&e.dst.to_le_bytes());
            b.extend_from_slice(bytes_of(&e.data));
        }
        for (i, buf) in bufs.into_iter().enumerate() {
            let mut w = cluster.disks()[i].create("chaos/edges.bin")?;
            w.write_all(&buf).map_err(|e| DfoError::io("writing chaos edges", e))?;
            w.finish()?;
        }
        Ok(Self { cluster, n_vertices: g.n_vertices, ranges, _marker: std::marker::PhantomData })
    }

    fn owner_of(&self, v: u64) -> usize {
        let per = self.ranges[0].len().max(1);
        ((v / per) as usize).min(self.ranges.len() - 1)
    }

    /// One scatter+gather superstep over a BSP snapshot: `signal` reads the
    /// pre-iteration source state, `slot` updates the destination state in
    /// place. Returns the cluster-wide number of state updates.
    #[allow(clippy::too_many_arguments)]
    fn superstep_raw<SS: Pod, DS: Pod, M: Pod>(
        &self,
        node: &BaselineNode,
        signal: &(dyn Fn(&SS) -> M + Sync),
        slot: &(dyn Fn(&mut DS, M, &E) -> bool + Sync),
        src_state: &[SS],
        src_active: &[bool],
        dst_state: &mut [DS],
        next_active: &mut [bool],
    ) -> Result<u64> {
        let p = self.cluster.nodes();
        let rank = node.rank;
        let range = self.ranges[rank];
        let rec_in = 16 + std::mem::size_of::<E>();
        let upd = 8 + std::mem::size_of::<M>() + std::mem::size_of::<E>();

        // ---- scatter: full local edge scan, one update per active edge ----
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
        let edge_bytes = node.disk.read_to_vec("chaos/edges.bin")?;
        let mut off = 0;
        while off + rec_in <= edge_bytes.len() {
            let src = u64::from_le_bytes(edge_bytes[off..off + 8].try_into().unwrap());
            let dst = u64::from_le_bytes(edge_bytes[off + 8..off + 16].try_into().unwrap());
            let data: E = if std::mem::size_of::<E>() > 0 {
                pod_from_bytes(&edge_bytes[off + 16..off + rec_in])
            } else {
                dfo_types::pod::pod_zeroed()
            };
            off += rec_in;
            if !src_active[(src - range.start) as usize] {
                continue;
            }
            let msg = signal(&src_state[(src - range.start) as usize]);
            let o = &mut out[self.owner_of(dst)];
            o.reserve(upd);
            o.extend_from_slice(&dst.to_le_bytes());
            o.extend_from_slice(bytes_of(&msg));
            o.extend_from_slice(bytes_of(&data));
        }

        // ---- ship updates (no filtering, no combining) --------------------
        let incoming = node.exchange(out)?;

        // ---- spill received updates to the update file, then gather -------
        {
            let mut w = node.disk.create("chaos/updates.bin")?;
            for buf in &incoming {
                w.write_all(buf).map_err(|e| DfoError::io("spilling updates", e))?;
            }
            w.finish()?;
        }
        let update_bytes = node.disk.read_to_vec("chaos/updates.bin")?;
        let mut changed = 0u64;
        for b in next_active.iter_mut() {
            *b = false;
        }
        let mut off = 0;
        while off + upd <= update_bytes.len() {
            let dst = u64::from_le_bytes(update_bytes[off..off + 8].try_into().unwrap());
            let msg: M = pod_from_bytes(&update_bytes[off + 8..off + 8 + std::mem::size_of::<M>()]);
            let data: E = if std::mem::size_of::<E>() > 0 {
                pod_from_bytes(&update_bytes[off + 8 + std::mem::size_of::<M>()..off + upd])
            } else {
                dfo_types::pod::pod_zeroed()
            };
            off += upd;
            let local = (dst - range.start) as usize;
            if slot(&mut dst_state[local], msg, &data) {
                next_active[local] = true;
                changed += 1;
            }
        }
        Ok(node.net.allreduce_sum_u64(changed))
    }

    /// BSP superstep for same-typed source/destination state (the
    /// active-set algorithms): signal reads a snapshot, slot updates live.
    fn superstep<S: Pod, M: Pod>(
        &self,
        node: &BaselineNode,
        spec: &PushSpec<S, M, E>,
        state: &mut [S],
        active: &mut [bool],
    ) -> Result<u64> {
        let snapshot: Vec<S> = state.to_vec();
        let src_active: Vec<bool> = active.to_vec();
        self.superstep_raw(node, &*spec.signal, &*spec.slot, &snapshot, &src_active, state, active)
    }

    /// Active-set push to convergence; returns per-node final states.
    pub fn run_push<S: Pod, M: Pod>(
        &self,
        spec: &PushSpec<S, M, E>,
    ) -> Result<(Vec<Vec<S>>, usize)> {
        let iters = std::sync::atomic::AtomicUsize::new(0);
        let states = self.cluster.run(|node| {
            let range = self.ranges[node.rank];
            // fully-OOC state: persisted on disk, loaded/stored per iteration
            let mut state: Vec<S> = Vec::with_capacity(range.len() as usize);
            let mut active = vec![false; range.len() as usize];
            for (i, v) in range.iter().enumerate() {
                let (s, a) = (spec.init)(v);
                state.push(s);
                active[i] = a;
            }
            write_state(node, &state, &active)?;
            let mut rounds = 0;
            loop {
                // fully-out-of-core: reload state from disk each superstep
                let (mut st, mut ac) = read_state::<S>(node, range.len() as usize)?;
                let changed = self.superstep(node, spec, &mut st, &mut ac)?;
                write_state(node, &st, &ac)?;
                rounds += 1;
                if changed == 0 {
                    state = st;
                    break;
                }
            }
            iters.store(rounds, std::sync::atomic::Ordering::Relaxed);
            Ok(state)
        })?;
        Ok((states, iters.load(std::sync::atomic::Ordering::Relaxed)))
    }

    /// PageRank: fixed all-active rounds through the same scatter/gather.
    pub fn pagerank(&self, pr: &PagerankRounds, out_deg: &[u64]) -> Result<Vec<Vec<f64>>> {
        let deg = std::sync::Arc::new(out_deg.to_vec());
        self.cluster.run(|node| {
            let range = self.ranges[node.rank];
            let n = self.n_vertices as f64;
            let local = range.len() as usize;
            let mut rank_v = vec![1.0 / n; local];
            let mut active = vec![true; local];
            for _ in 0..pr.iters {
                // scatter contributions rank/deg; gather sums into acc
                let contrib: Vec<f64> = (0..local)
                    .map(|i| {
                        let d = deg[range.start as usize + i];
                        if d == 0 {
                            0.0
                        } else {
                            rank_v[i] / d as f64
                        }
                    })
                    .collect();
                let mut acc = vec![0.0f64; local];
                let mut next_active = vec![false; local];
                self.superstep_raw::<f64, f64, f64>(
                    node,
                    &|r| *r,
                    &|s, m, _| {
                        *s += m;
                        true
                    },
                    &contrib,
                    &active,
                    &mut acc,
                    &mut next_active,
                )?;
                for i in 0..local {
                    rank_v[i] = (1.0 - pr.damping) / n + pr.damping * acc[i];
                }
                for a in active.iter_mut() {
                    *a = true;
                }
            }
            Ok(rank_v)
        })
    }
}

fn write_state<S: Pod>(node: &BaselineNode, state: &[S], active: &[bool]) -> Result<()> {
    let mut w = node.disk.create("chaos/state.bin")?;
    w.write_all(slice_as_bytes(state))
        .and_then(|_| w.write_all(slice_as_bytes(active)))
        .map_err(|e| DfoError::io("writing chaos state", e))?;
    w.finish()
}

fn read_state<S: Pod>(node: &BaselineNode, n: usize) -> Result<(Vec<S>, Vec<bool>)> {
    let bytes = node.disk.read_to_vec("chaos/state.bin")?;
    let split = n * std::mem::size_of::<S>();
    Ok((vec_from_bytes(&bytes[..split]), vec_from_bytes(&bytes[split..])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{bfs_spec, out_degrees, pagerank_rounds, sssp_spec};
    use dfo_graph::gen::{rmat, GenConfig};
    use tempfile::TempDir;

    #[test]
    fn bfs_matches_single_machine() {
        let g = rmat(GenConfig::new(8, 5, 12));
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(3, td.path().join("c"), None, None, false).unwrap();
        let chaos = ChaosEngine::preprocess(bc, &g).unwrap();
        let (states, _) = chaos.run_push(&bfs_spec(0)).unwrap();
        let flat: Vec<u32> = states.into_iter().flatten().collect();

        let gd = dfo_storage::NodeDisk::new(td.path().join("g"), None, false).unwrap();
        let gg = crate::gridgraph::GridGraphEngine::preprocess(gd, &g, 4).unwrap();
        let (want, _) = gg.run_push(&bfs_spec(0)).unwrap();
        assert_eq!(flat, want);
    }

    #[test]
    fn sssp_matches() {
        let g0 = rmat(GenConfig::new(7, 4, 3));
        let g: dfo_graph::EdgeList<f32> = g0.map_data(|e| ((e.src + 2 * e.dst) % 11 + 1) as f32);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path().join("c"), None, None, false).unwrap();
        let chaos = ChaosEngine::preprocess(bc, &g).unwrap();
        let (states, _) = chaos.run_push(&sssp_spec(0)).unwrap();
        let flat: Vec<f32> = states.into_iter().flatten().collect();

        let gd = dfo_storage::NodeDisk::new(td.path().join("g"), None, false).unwrap();
        let gg = crate::gridgraph::GridGraphEngine::preprocess(gd, &g, 4).unwrap();
        let (want, _) = gg.run_push(&sssp_spec(0)).unwrap();
        for (a, b) in flat.iter().zip(&want) {
            assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn pagerank_matches_oracle_shape() {
        let g = rmat(GenConfig::new(7, 6, 5));
        let deg = out_degrees(&g);
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        let chaos = ChaosEngine::preprocess(bc, &g).unwrap();
        let ranks: Vec<f64> =
            chaos.pagerank(&pagerank_rounds(3), &deg).unwrap().into_iter().flatten().collect();
        // oracle
        let n = g.n_vertices as usize;
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..3 {
            let mut next = vec![0.0f64; n];
            for e in &g.edges {
                next[e.dst as usize] += rank[e.src as usize] / deg[e.src as usize] as f64;
            }
            for v in 0..n {
                rank[v] = 0.15 / n as f64 + 0.85 * next[v];
            }
        }
        for (a, b) in ranks.iter().zip(&rank) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn full_edge_scan_every_iteration() {
        // sparse BFS still reads the whole edge file per superstep
        let g = rmat(GenConfig::new(9, 8, 7));
        let td = TempDir::new().unwrap();
        let bc = BaselineCluster::create(2, td.path(), None, None, false).unwrap();
        let chaos = ChaosEngine::preprocess(bc, &g).unwrap();
        chaos.cluster.reset_disk_stats();
        let (_, iters) = chaos.run_push(&bfs_spec(0)).unwrap();
        let read = chaos.cluster.total_disk_bytes();
        let edge_file_bytes = g.n_edges() * 16;
        assert!(
            read > edge_file_bytes * (iters as u64).saturating_sub(1),
            "Chaos must rescan edges every iteration: {read} bytes over {iters} iters"
        );
    }
}
