//! Token-bucket bandwidth throttle.
//!
//! Models a fixed-bandwidth resource (an NVMe SSD, one direction of a NIC).
//! Every transfer reserves a slice of virtual time proportional to its size;
//! the caller sleeps until its reservation completes. Reservations are
//! serialized through a mutex, so concurrent callers share the bandwidth
//! fairly and the long-run throughput converges to the configured rate —
//! exactly the property the DFOGraph evaluation depends on (runtime ≈ bytes
//! / bandwidth on the bottleneck resource).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
pub struct Throttle {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    bytes_per_sec: f64,
    state: Mutex<State>,
}

struct State {
    /// Virtual time at which the device becomes free again.
    next_free: Instant,
}

impl Throttle {
    /// A no-op throttle: `acquire` returns immediately.
    pub fn unlimited() -> Self {
        Self { inner: None }
    }

    /// A throttle pacing transfers to `bytes_per_sec`.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Self {
            inner: Some(Arc::new(Inner {
                bytes_per_sec: bytes_per_sec as f64,
                state: Mutex::new(State { next_free: Instant::now() }),
            })),
        }
    }

    /// Builds from an optional bandwidth (`None` = unlimited).
    pub fn from_option(bw: Option<u64>) -> Self {
        match bw {
            Some(b) => Self::new(b),
            None => Self::unlimited(),
        }
    }

    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// Blocks until a transfer of `bytes` would have completed on the
    /// modeled device. Unused idle time is *not* banked: the device never
    /// bursts above its configured rate.
    ///
    /// Sub-millisecond debts are accumulated instead of slept — OS sleep
    /// granularity (~50–100 µs minimum) would otherwise tax every small
    /// operation far beyond its modeled cost. The long-run rate is exact
    /// either way because `next_free` advances by the full duration.
    pub fn acquire(&self, bytes: u64) {
        let Some(inner) = &self.inner else { return };
        if bytes == 0 {
            return;
        }
        let dur = Duration::from_secs_f64(bytes as f64 / inner.bytes_per_sec);
        let completes_at = {
            let mut st = inner.state.lock();
            let now = Instant::now();
            let start = if st.next_free > now { st.next_free } else { now };
            st.next_free = start + dur;
            st.next_free
        };
        let now = Instant::now();
        if completes_at > now {
            let debt = completes_at - now;
            if debt >= Duration::from_millis(1) {
                std::thread::sleep(debt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_instant() {
        let t = Throttle::unlimited();
        let start = Instant::now();
        t.acquire(1 << 30);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn rate_is_enforced() {
        // 10 MB/s, transfer 2 MB => ~200 ms.
        let t = Throttle::new(10 << 20);
        let start = Instant::now();
        t.acquire(2 << 20);
        let e = start.elapsed();
        assert!(e >= Duration::from_millis(180), "too fast: {e:?}");
        assert!(e < Duration::from_millis(600), "too slow: {e:?}");
    }

    #[test]
    fn concurrent_callers_share_bandwidth() {
        // 20 MB/s total, 4 threads × 1 MB = 4 MB => ~200 ms wall.
        let t = Throttle::new(20 << 20);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || t.acquire(1 << 20));
            }
        });
        let e = start.elapsed();
        assert!(e >= Duration::from_millis(150), "too fast: {e:?}");
        assert!(e < Duration::from_millis(800), "too slow: {e:?}");
    }

    #[test]
    fn no_burst_credit_accumulates() {
        let t = Throttle::new(100 << 20);
        std::thread::sleep(Duration::from_millis(50)); // idle; no credit
        let start = Instant::now();
        t.acquire(10 << 20); // 10 MB at 100 MB/s => 100 ms
        assert!(start.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn zero_bytes_is_free() {
        let t = Throttle::new(1); // 1 byte/s: any real acquire would hang
        let start = Instant::now();
        t.acquire(0);
        assert!(start.elapsed() < Duration::from_millis(10));
    }
}
