//! Storage substrate for DFOGraph: per-node throttled disks with full byte
//! accounting, buffered sequential streams, an LRU page cache, and the
//! copy-on-write versioned block store backing checkpointed vertex arrays.
//!
//! The paper's testbed gives every node a 2 GB/s NVMe SSD; this substrate
//! reproduces the *bandwidth-bound* behaviour of that hardware on any
//! machine: every byte moved through a [`NodeDisk`] is counted (and,
//! optionally, time-stamped for the Figure 5 traffic plots) and paced by a
//! token-bucket [`Throttle`], so experiment runtimes are dominated by the
//! same byte volumes the paper reasons about.

pub mod blockstore;
pub mod chunkcache;
pub mod commitlog;
pub mod compress;
pub mod disk;
pub mod pagecache;
pub mod throttle;

pub use blockstore::VersionedArrayStore;
pub use chunkcache::{CachedValue, ChunkCache, ChunkCacheStats, ChunkKey, PrefetchJob, Prefetcher};
pub use commitlog::CommitLog;
pub use compress::{FrameReader, FrameWriter, FRAME_MAGIC};
pub use disk::{DiskReader, DiskStats, DiskWriter, NodeDisk, RandomFile};
pub use pagecache::{CacheStats, PageCache};
pub use throttle::Throttle;
