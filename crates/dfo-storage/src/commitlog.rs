//! Per-`Process`-call commit record spanning every checkpointed array
//! (paper §3.2, hardened).
//!
//! The versioned block store commits each array *independently* — one
//! checksummed manifest plus an atomic `CURRENT` flip per array. A
//! `Process` call, however, touches several arrays (signal, slot, active,
//! round marker), and a SIGKILL landing *between* their per-array commits
//! leaves the group torn: some arrays hold the call's state, others the
//! previous call's. Each array individually recovers to a valid checkpoint,
//! so per-array validation can never notice.
//!
//! The [`CommitLog`] closes that window with a single record per node,
//! rewritten atomically (temp-file + rename, magic + CRC-32 like the
//! manifests) **after** all per-array commits of a call:
//!
//! ```text
//! arrays/COMMITS.bin    call_seq, then per array: (name, epoch, touched?)
//! ```
//!
//! * A crash **before** the record write leaves the record at call `k−1`
//!   while some arrays sit at call `k` epochs; at recovery,
//!   [`CommitLog::target_epoch`] caps each array's
//!   [`crate::VersionedArrayStore::recover_to`] so the torn call is
//!   discarded *as a unit*.
//! * A crash **after** the record write is a clean boundary: every array of
//!   call `k` either committed (the record proves it) or is re-derived.
//!
//! The record also carries the node's global call sequence number, which
//! supervised recovery exchanges across ranks: a rank whose `call_seq` is
//! ahead of the cluster minimum rolls its last call back
//! ([`CommitLog::rollback_last`] plus one
//! [`crate::VersionedArrayStore::rollback_one`] per touched array).

use crate::compress::crc32;
use crate::disk::NodeDisk;
use dfo_types::codec::{read_u64, write_u64};
use dfo_types::{DfoError, Result};
use std::collections::BTreeMap;
use std::io::{Cursor, Read};

/// `"DFOCOMIT"`: identifies a commit record.
const COMMIT_MAGIC: u64 = 0x4446_4f43_4f4d_4954;

/// Entry flag bit: the array was touched by the most recent recorded call.
const FLAG_TOUCHED: u64 = 1;

#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    /// The array's committed epoch as of the last recorded call.
    epoch: u64,
    /// Whether the last recorded call touched (committed) this array —
    /// exactly the set a one-call rollback must undo.
    touched: bool,
}

/// One node's per-call commit record over all of its checkpointed arrays.
pub struct CommitLog {
    disk: NodeDisk,
    rel: String,
    call_seq: u64,
    // BTreeMap: deterministic serialization order, so byte-identical state
    // produces byte-identical records
    entries: BTreeMap<String, Entry>,
}

impl CommitLog {
    /// Opens the record at `rel` on `disk`, or starts a fresh one (call
    /// sequence 0, no arrays) when none exists. An unreadable or corrupt
    /// record — which the atomic rewrite makes impossible under SIGKILL,
    /// leaving only external damage — warns on stderr and starts fresh,
    /// mirroring the manifest fallback policy (never load invalid state).
    pub fn load_or_new(disk: NodeDisk, rel: impl Into<String>) -> Self {
        let rel = rel.into();
        let mut log = Self { disk, rel, call_seq: 0, entries: BTreeMap::new() };
        if !log.disk.exists(&log.rel) {
            return log;
        }
        match log.disk.read_to_vec(&log.rel).and_then(|b| Self::decode(&b)) {
            Ok((call_seq, entries)) => {
                log.call_seq = call_seq;
                log.entries = entries;
            }
            Err(e) => {
                eprintln!(
                    "dfo-storage: commit record {} is unreadable ({e}); \
                     treating as absent — arrays recover to their own CURRENT",
                    log.rel
                );
            }
        }
        log
    }

    /// Number of `Process` calls this node has fully committed (record
    /// included) — the value ranks exchange to detect ahead ranks.
    pub fn call_seq(&self) -> u64 {
        self.call_seq
    }

    /// The epoch recovery must cap array `name` at: its epoch as of the
    /// last fully recorded call, or 0 (the creation checkpoint) for an
    /// array no recorded call has ever touched. An array found above this
    /// epoch committed part of a call whose record never landed — the torn
    /// call is discarded by `recover_to`.
    pub fn target_epoch(&self, name: &str) -> u64 {
        self.entries.get(name).map_or(0, |e| e.epoch)
    }

    /// Records one fully committed `Process` call: `touched` lists every
    /// checkpointed array the call committed, with its new epoch. Persists
    /// the record atomically and advances the call sequence. Must be called
    /// *after* the per-array commits (the record asserts they all landed).
    pub fn record_commit(&mut self, touched: &[(&str, u64)]) -> Result<()> {
        for e in self.entries.values_mut() {
            e.touched = false;
        }
        for &(name, epoch) in touched {
            self.entries.insert(name.to_string(), Entry { epoch, touched: true });
        }
        self.call_seq += 1;
        self.persist()
    }

    /// Undoes the last recorded call *in the record*: the call sequence
    /// steps back one and each touched array's epoch steps back one
    /// (per-array epochs advance by exactly one per touching call).
    /// Persists first, then returns `(name, epoch)` pairs the caller must
    /// roll the actual array stores back to — that order is itself
    /// crash-safe, since a crash after the record rewrite leaves arrays
    /// ahead of the record, exactly the torn state `target_epoch` repairs.
    pub fn rollback_last(&mut self) -> Result<Vec<(String, u64)>> {
        if self.call_seq == 0 {
            return Err(DfoError::NoCheckpoint(format!(
                "{}: no recorded call to roll back",
                self.rel
            )));
        }
        let mut restored = Vec::new();
        for (name, e) in self.entries.iter_mut() {
            if e.touched {
                if e.epoch == 0 {
                    return Err(DfoError::Corrupt(format!(
                        "{}: array {name} touched at epoch 0 (creation is not a call)",
                        self.rel
                    )));
                }
                e.epoch -= 1;
                e.touched = false;
                restored.push((name.clone(), e.epoch));
            }
        }
        self.call_seq -= 1;
        self.persist()?;
        Ok(restored)
    }

    fn persist(&self) -> Result<()> {
        let mut buf = Vec::new();
        write_u64(&mut buf, COMMIT_MAGIC).unwrap();
        write_u64(&mut buf, self.call_seq).unwrap();
        write_u64(&mut buf, self.entries.len() as u64).unwrap();
        for (name, e) in &self.entries {
            write_u64(&mut buf, name.len() as u64).unwrap();
            buf.extend_from_slice(name.as_bytes());
            write_u64(&mut buf, e.epoch).unwrap();
            write_u64(&mut buf, if e.touched { FLAG_TOUCHED } else { 0 }).unwrap();
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        self.disk.write_atomic(&self.rel, &buf)
    }

    fn decode(bytes: &[u8]) -> Result<(u64, BTreeMap<String, Entry>)> {
        if bytes.len() < 28 {
            return Err(DfoError::Corrupt(format!(
                "commit record: {} bytes is shorter than any valid record",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let want_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != want_crc {
            return Err(DfoError::Corrupt("commit record: CRC mismatch".into()));
        }
        let mut c = Cursor::new(body);
        let magic = read_u64(&mut c).map_err(|e| DfoError::io("commit record magic", e))?;
        if magic != COMMIT_MAGIC {
            return Err(DfoError::Corrupt(format!("commit record: bad magic {magic:#x}")));
        }
        let call_seq = read_u64(&mut c).map_err(|e| DfoError::io("commit record seq", e))?;
        let n = read_u64(&mut c).map_err(|e| DfoError::io("commit record len", e))? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let name_len =
                read_u64(&mut c).map_err(|e| DfoError::io("commit record name len", e))? as usize;
            let mut name = vec![0u8; name_len];
            c.read_exact(&mut name).map_err(|e| DfoError::io("commit record name", e))?;
            let name = String::from_utf8(name)
                .map_err(|_| DfoError::Corrupt("commit record: non-UTF-8 array name".into()))?;
            let epoch = read_u64(&mut c).map_err(|e| DfoError::io("commit record epoch", e))?;
            let flags = read_u64(&mut c).map_err(|e| DfoError::io("commit record flags", e))?;
            entries.insert(name, Entry { epoch, touched: flags & FLAG_TOUCHED != 0 });
        }
        if c.position() != body.len() as u64 {
            return Err(DfoError::Corrupt("commit record: trailing bytes".into()));
        }
        Ok((call_seq, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    const REL: &str = "arrays/COMMITS.bin";

    fn mk() -> (TempDir, NodeDisk) {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        (td, disk)
    }

    #[test]
    fn fresh_log_knows_nothing() {
        let (_t, disk) = mk();
        let log = CommitLog::load_or_new(disk, REL);
        assert_eq!(log.call_seq(), 0);
        assert_eq!(log.target_epoch("rank"), 0);
    }

    #[test]
    fn record_and_reload_round_trip() {
        let (_t, disk) = mk();
        let mut log = CommitLog::load_or_new(disk.clone(), REL);
        log.record_commit(&[("rank", 1), ("marker", 1)]).unwrap();
        log.record_commit(&[("rank", 2)]).unwrap();
        drop(log);
        let log = CommitLog::load_or_new(disk, REL);
        assert_eq!(log.call_seq(), 2);
        assert_eq!(log.target_epoch("rank"), 2);
        assert_eq!(log.target_epoch("marker"), 1, "untouched arrays keep their epoch");
        assert_eq!(log.target_epoch("never_seen"), 0);
    }

    #[test]
    fn rollback_undoes_exactly_the_last_call() {
        let (_t, disk) = mk();
        let mut log = CommitLog::load_or_new(disk.clone(), REL);
        log.record_commit(&[("rank", 1), ("marker", 1)]).unwrap();
        log.record_commit(&[("rank", 2), ("next", 1)]).unwrap();
        let restored = log.rollback_last().unwrap();
        assert_eq!(restored, vec![("next".to_string(), 0), ("rank".to_string(), 1)]);
        assert_eq!(log.call_seq(), 1);
        assert_eq!(log.target_epoch("marker"), 1, "arrays of older calls untouched");
        drop(log);
        let log = CommitLog::load_or_new(disk, REL);
        assert_eq!(log.call_seq(), 1, "rollback must persist");
        assert_eq!(log.target_epoch("rank"), 1);
    }

    #[test]
    fn rollback_of_an_empty_log_is_refused() {
        let (_t, disk) = mk();
        let mut log = CommitLog::load_or_new(disk, REL);
        assert!(matches!(log.rollback_last(), Err(DfoError::NoCheckpoint(_))));
    }

    #[test]
    fn corrupt_record_is_treated_as_absent() {
        let (td, disk) = mk();
        let mut log = CommitLog::load_or_new(disk.clone(), REL);
        log.record_commit(&[("rank", 1)]).unwrap();
        drop(log);
        let path = td.path().join(REL);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let log = CommitLog::load_or_new(disk, REL);
        assert_eq!(log.call_seq(), 0, "a damaged record must never be loaded");
    }

    #[test]
    fn truncated_record_is_treated_as_absent() {
        let (td, disk) = mk();
        let mut log = CommitLog::load_or_new(disk.clone(), REL);
        log.record_commit(&[("rank", 1), ("marker", 1)]).unwrap();
        drop(log);
        let path = td.path().join(REL);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let log = CommitLog::load_or_new(disk, REL);
        assert_eq!(log.call_seq(), 0);
    }

    #[test]
    fn deterministic_bytes_for_identical_state() {
        let (ta, disk_a) = mk();
        let (tb, disk_b) = mk();
        for disk in [disk_a, disk_b] {
            let mut log = CommitLog::load_or_new(disk, REL);
            log.record_commit(&[("b", 1), ("a", 1)]).unwrap();
            log.record_commit(&[("a", 2), ("c", 1)]).unwrap();
        }
        let a = std::fs::read(ta.path().join(REL)).unwrap();
        let b = std::fs::read(tb.path().join(REL)).unwrap();
        assert_eq!(a, b, "identical commit history must serialize identically");
    }
}
