//! Transparent block compression for preprocessed chunk files.
//!
//! DFOGraph's premise is that fully-out-of-core performance is bounded by
//! bytes moved through disk and network; edge chunks are written once at
//! preprocessing time and re-read on every `ProcessEdges` call, so
//! compressing them cuts the one I/O cost a decoded-chunk cache cannot
//! help with — the cold read — and multiplies the effective cache budget
//! (GraphMP's observation). This module provides the framing:
//!
//! ```text
//! container:  magic "DFOZ" u32 | version u32
//! per block:  raw_len u32 | enc_len u32 | flags u32 | crc32 u32   (header)
//!             payload [enc_len bytes]
//! trailer:    raw_len = 0 | enc_len = 0 | flags = END | crc32 = 0
//! ```
//!
//! All integers little-endian. `flags` bit 0 (`LZ4`) marks an
//! LZ4-block-compressed payload; a block whose LZ4 encoding would not be
//! smaller than its input is stored **raw** (bit 0 clear) — the
//! incompressible-data escape, bounding worst-case inflation to one
//! 16-byte header per 128 KiB block. The CRC-32 (IEEE) covers the
//! *encoded* payload, so corruption is caught before the decoder runs; a
//! missing end trailer means truncation. [`FrameReader`] auto-detects the
//! container magic and passes non-compressed files through byte-for-byte,
//! so one read path serves both formats and `compress_chunks = false`
//! keeps files byte-identical to the uncompressed layout.
//!
//! Seeking: passthrough streams seek natively. Compressed streams support
//! *forward relative* seeks only, by decode-and-discard — skipping a
//! section of a compressed chunk still pays its physical read, which is
//! why the engine's CSR seek-mode bypass does not apply to compressed
//! chunks.

use crate::disk::NodeDisk;
use dfo_types::{DfoError, Result};
use std::io::{self, Read, Seek, SeekFrom, Write};

/// First four bytes of a compressed chunk container ("DFOZ" once the
/// little-endian u32 is laid down, mirroring the chunk codec's "DFOC").
pub const FRAME_MAGIC: u32 = 0x4446_4F5A;
/// Container format version this build writes and accepts.
pub const FRAME_VERSION: u32 = 1;
/// Uncompressed payload bytes buffered per block. 128 KiB keeps header
/// overhead < 0.02 % while bounding decode working memory.
pub const BLOCK_BYTES: usize = 128 << 10;

/// Block flag: payload is an LZ4 block of `raw_len` decoded bytes.
const FLAG_LZ4: u32 = 1;
/// Block flag: end-of-stream trailer (zero lengths, no payload).
const FLAG_END: u32 = 2;
/// Upper bound a reader accepts for either length field — far above any
/// block this writer produces, low enough to refuse absurd allocations
/// from a corrupt header.
const MAX_BLOCK: usize = 64 << 20;

const BLOCK_HEADER_BYTES: usize = 16;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Block-compressing writer (or transparent passthrough with
/// `compress = false`, producing byte-identical plain files).
///
/// Buffers up to [`BLOCK_BYTES`] of payload, then writes one checksummed
/// block — LZ4 if that is smaller, raw otherwise. [`FrameWriter::finish`]
/// flushes the final partial block and the end trailer and returns the
/// inner writer for the caller to close.
pub struct FrameWriter<W: Write> {
    inner: W,
    compress: bool,
    buf: Vec<u8>,
    logical_to: Option<NodeDisk>,
}

impl<W: Write> FrameWriter<W> {
    /// Starts a frame stream on `inner`; in compress mode the container
    /// header is written immediately.
    pub fn new(mut inner: W, compress: bool) -> Result<Self> {
        if compress {
            inner
                .write_all(&FRAME_MAGIC.to_le_bytes())
                .and_then(|()| inner.write_all(&FRAME_VERSION.to_le_bytes()))
                .map_err(|e| DfoError::io("writing frame container header", e))?;
        }
        Ok(Self {
            inner,
            compress,
            buf: if compress { Vec::with_capacity(BLOCK_BYTES) } else { Vec::new() },
            logical_to: None,
        })
    }

    /// Routes logical-byte accounting to `disk` (the physical side is
    /// accounted below this writer, at the device layer).
    pub(crate) fn account_logical_to(&mut self, disk: NodeDisk) {
        self.logical_to = Some(disk);
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let t0 = std::time::Instant::now();
        let encoded = lz4_flex::compress(&self.buf);
        if let Some(disk) = &self.logical_to {
            disk.add_encode_nanos(t0.elapsed().as_nanos() as u64);
        }
        let (flags, payload): (u32, &[u8]) =
            if encoded.len() < self.buf.len() { (FLAG_LZ4, &encoded) } else { (0, &self.buf) };
        let mut header = [0u8; BLOCK_HEADER_BYTES];
        header[0..4].copy_from_slice(&(self.buf.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[8..12].copy_from_slice(&flags.to_le_bytes());
        header[12..16].copy_from_slice(&crc32(payload).to_le_bytes());
        self.inner.write_all(&header)?;
        self.inner.write_all(payload)?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the last partial block plus the end trailer and hands the
    /// inner writer back. Compressed streams not closed through here are
    /// truncated (readers will say so).
    pub fn finish(mut self) -> Result<W> {
        let io = |e| DfoError::io("finishing frame stream", e);
        if self.compress {
            self.flush_block().map_err(io)?;
            let mut trailer = [0u8; BLOCK_HEADER_BYTES];
            trailer[8..12].copy_from_slice(&FLAG_END.to_le_bytes());
            self.inner.write_all(&trailer).map_err(io)?;
        }
        self.inner.flush().map_err(io)?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for FrameWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if !self.compress {
            return self.inner.write(data);
        }
        if let Some(disk) = &self.logical_to {
            disk.add_logical_write(data.len() as u64);
        }
        let mut rest = data;
        while !rest.is_empty() {
            let take = (BLOCK_BYTES - self.buf.len()).min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == BLOCK_BYTES {
                self.flush_block()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.compress {
            self.flush_block()?;
        }
        self.inner.flush()
    }
}

enum ReadMode {
    /// Not a compressed container: serve the peeked magic bytes, then the
    /// inner stream untouched.
    Passthrough { prefix: [u8; 4], prefix_len: usize, prefix_pos: usize },
    /// Compressed container: serve decoded blocks.
    Decode { block: Vec<u8>, pos: usize, done: bool, decoded_pos: u64 },
}

/// Auto-detecting reader over a chunk file: decodes [`FrameWriter`]
/// containers, passes anything else through byte-for-byte (including the
/// four peeked bytes).
pub struct FrameReader<R: Read> {
    inner: R,
    mode: ReadMode,
    logical_to: Option<NodeDisk>,
}

impl<R: Read> FrameReader<R> {
    /// Peeks the stream's first four bytes to pick the mode.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut prefix = [0u8; 4];
        let mut n = 0;
        while n < 4 {
            let m =
                inner.read(&mut prefix[n..]).map_err(|e| DfoError::io("peeking frame magic", e))?;
            if m == 0 {
                break;
            }
            n += m;
        }
        if n == 4 && u32::from_le_bytes(prefix) == FRAME_MAGIC {
            let mode = Self::begin_decode(&mut inner)?;
            Ok(Self { inner, mode, logical_to: None })
        } else {
            Ok(Self {
                inner,
                mode: ReadMode::Passthrough { prefix, prefix_len: n, prefix_pos: 0 },
                logical_to: None,
            })
        }
    }

    /// Starts decoding a stream whose [`FRAME_MAGIC`] the caller already
    /// consumed (the chunk codec's own auto-detection path).
    pub fn resume(mut inner: R) -> Result<Self> {
        let mode = Self::begin_decode(&mut inner)?;
        Ok(Self { inner, mode, logical_to: None })
    }

    fn begin_decode(inner: &mut R) -> Result<ReadMode> {
        let mut v = [0u8; 4];
        inner.read_exact(&mut v).map_err(|e| DfoError::io("reading frame version", e))?;
        let version = u32::from_le_bytes(v);
        if version != FRAME_VERSION {
            return Err(DfoError::Corrupt(format!("unsupported frame version {version}")));
        }
        Ok(ReadMode::Decode { block: Vec::new(), pos: 0, done: false, decoded_pos: 0 })
    }

    /// True when this stream is a compressed container (not passthrough).
    pub fn is_compressed(&self) -> bool {
        matches!(self.mode, ReadMode::Decode { .. })
    }

    /// Routes logical-byte accounting (bytes *served*, decoded for
    /// compressed streams) to `disk`.
    pub(crate) fn account_logical_to(&mut self, disk: NodeDisk) {
        self.logical_to = Some(disk);
    }

    /// Loads the next block into the decode buffer; flips `done` at the
    /// trailer. Only called in decode mode with the buffer exhausted.
    fn next_block(&mut self) -> io::Result<()> {
        let mut header = [0u8; BLOCK_HEADER_BYTES];
        self.inner.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt("compressed stream truncated: missing end trailer")
            } else {
                e
            }
        })?;
        let raw_len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let enc_len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        let flags = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if flags & FLAG_END != 0 {
            if raw_len != 0 || enc_len != 0 || flags != FLAG_END || crc != 0 {
                return Err(corrupt("malformed end trailer"));
            }
            if let ReadMode::Decode { done, .. } = &mut self.mode {
                *done = true;
            }
            return Ok(());
        }
        if raw_len == 0 || raw_len > MAX_BLOCK || enc_len == 0 || enc_len > MAX_BLOCK {
            return Err(corrupt(format!("implausible block lengths raw={raw_len} enc={enc_len}")));
        }
        let mut payload = vec![0u8; enc_len];
        self.inner.read_exact(&mut payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt("compressed stream truncated inside a block")
            } else {
                e
            }
        })?;
        let t0 = std::time::Instant::now();
        if crc32(&payload) != crc {
            return Err(corrupt("block checksum mismatch"));
        }
        let decoded = if flags & FLAG_LZ4 != 0 {
            let d = lz4_flex::decompress(&payload, raw_len)
                .map_err(|e| corrupt(format!("block decode failed: {e}")))?;
            if let Some(disk) = &self.logical_to {
                disk.add_decode_nanos(t0.elapsed().as_nanos() as u64);
            }
            d
        } else {
            if enc_len != raw_len {
                return Err(corrupt("raw block length mismatch"));
            }
            payload
        };
        if let ReadMode::Decode { block, pos, .. } = &mut self.mode {
            *block = decoded;
            *pos = 0;
        }
        Ok(())
    }

    /// Serves up to `buf.len()` decoded/passthrough bytes (no accounting).
    fn read_inner(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match &mut self.mode {
                ReadMode::Passthrough { prefix, prefix_len, prefix_pos } => {
                    if *prefix_pos < *prefix_len {
                        let n = (*prefix_len - *prefix_pos).min(buf.len());
                        buf[..n].copy_from_slice(&prefix[*prefix_pos..*prefix_pos + n]);
                        *prefix_pos += n;
                        return Ok(n);
                    }
                    return self.inner.read(buf);
                }
                ReadMode::Decode { block, pos, done, decoded_pos } => {
                    if *pos < block.len() {
                        let n = (block.len() - *pos).min(buf.len());
                        buf[..n].copy_from_slice(&block[*pos..*pos + n]);
                        *pos += n;
                        *decoded_pos += n as u64;
                        return Ok(n);
                    }
                    if *done {
                        return Ok(0);
                    }
                }
            }
            self.next_block()?;
        }
    }
}

impl<R: Read> Read for FrameReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let n = self.read_inner(buf)?;
        if n > 0 {
            if let Some(disk) = &self.logical_to {
                disk.add_logical_read(n as u64);
            }
        }
        Ok(n)
    }
}

impl<R: Read + Seek> Seek for FrameReader<R> {
    /// Passthrough streams seek natively. Decode streams support *forward
    /// relative* seeks only (decode-and-discard) — all the chunk codec's
    /// section skipping needs.
    fn seek(&mut self, target: SeekFrom) -> io::Result<u64> {
        if let ReadMode::Passthrough { prefix_len, prefix_pos, .. } = &mut self.mode {
            // the consumer sits `remaining` bytes behind the inner stream
            // while peeked bytes are unserved
            let remaining = (*prefix_len - *prefix_pos) as i64;
            *prefix_pos = *prefix_len;
            return match target {
                SeekFrom::Current(n) => self.inner.seek(SeekFrom::Current(n - remaining)),
                other => self.inner.seek(other),
            };
        }
        let mut left = match target {
            SeekFrom::Current(n) if n >= 0 => n as u64,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "compressed frames only seek forward from the current position",
                ))
            }
        };
        let mut scratch = [0u8; 4096];
        while left > 0 {
            let want = (left as usize).min(scratch.len());
            let n = self.read_inner(&mut scratch[..want])?;
            if n == 0 {
                return Err(corrupt("seek past end of compressed stream"));
            }
            left -= n as u64;
        }
        match &self.mode {
            ReadMode::Decode { decoded_pos, .. } => Ok(*decoded_pos),
            ReadMode::Passthrough { .. } => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{proptest, ProptestConfig, Strategy};
    use std::io::Cursor;

    fn compress_frames(data: &[u8]) -> Vec<u8> {
        let mut w = FrameWriter::new(Vec::new(), true).unwrap();
        w.write_all(data).unwrap();
        w.finish().unwrap()
    }

    fn decode_all(frames: &[u8]) -> std::result::Result<Vec<u8>, String> {
        let mut r = FrameReader::new(Cursor::new(frames)).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        r.read_to_end(&mut out).map_err(|e| e.to_string())?;
        Ok(out)
    }

    fn byte() -> impl Strategy<Value = u8> {
        (0u16..256).prop_map(|v| v as u8)
    }

    #[test]
    fn crc32_known_vectors() {
        // the standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_empty_and_small() {
        for data in [&b""[..], b"x", b"hello dfograph", &[0u8; 1000][..]] {
            assert_eq!(decode_all(&compress_frames(data)).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_multi_block() {
        let data: Vec<u8> = (0..(3 * BLOCK_BYTES + 12345))
            .map(|i| ((i / 7) % 251) as u8) // compressible structure
            .collect();
        let frames = compress_frames(&data);
        assert!(frames.len() < data.len(), "{} vs {}", frames.len(), data.len());
        assert_eq!(decode_all(&frames).unwrap(), data);
    }

    #[test]
    fn incompressible_blocks_stored_raw_with_bounded_overhead() {
        let mut x = 0x853c49e6748fea9bu64;
        let data: Vec<u8> = (0..2 * BLOCK_BYTES)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let frames = compress_frames(&data);
        // container 8 B + 3 headers (2 blocks + trailer): noise must not
        // inflate beyond the framing overhead
        assert!(frames.len() <= data.len() + 8 + 3 * BLOCK_HEADER_BYTES);
        assert_eq!(decode_all(&frames).unwrap(), data);
    }

    #[test]
    fn passthrough_serves_raw_files_byte_identical() {
        for data in [&b""[..], b"ab", b"DFOC and then some", &[7u8; 5000][..]] {
            let mut r = FrameReader::new(Cursor::new(data)).unwrap();
            assert!(!r.is_compressed());
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn passthrough_writer_is_identity() {
        let mut w = FrameWriter::new(Vec::new(), false).unwrap();
        w.write_all(b"plain bytes").unwrap();
        assert_eq!(w.finish().unwrap(), b"plain bytes");
    }

    #[test]
    fn forward_seek_in_decode_mode() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 256) as u8).collect();
        let frames = compress_frames(&data);
        let mut r = FrameReader::new(Cursor::new(&frames)).unwrap();
        assert!(r.is_compressed());
        let mut head = [0u8; 10];
        r.read_exact(&mut head).unwrap();
        assert_eq!(head, data[..10]);
        r.seek(SeekFrom::Current(150_000)).unwrap();
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail, data[150_010..]);
        // backward seeks are refused, not silently wrong
        let mut r2 = FrameReader::new(Cursor::new(&frames)).unwrap();
        assert!(r2.seek(SeekFrom::Current(-1)).is_err());
        assert!(r2.seek(SeekFrom::Start(3)).is_err());
    }

    #[test]
    fn passthrough_seek_matches_plain_reader() {
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 256) as u8).collect();
        let mut r = FrameReader::new(Cursor::new(&data)).unwrap();
        let mut head = [0u8; 2]; // leaves two peeked bytes unserved
        r.read_exact(&mut head).unwrap();
        r.seek(SeekFrom::Current(98)).unwrap();
        let mut b = [0u8; 4];
        r.read_exact(&mut b).unwrap();
        assert_eq!(b, data[100..104]);
        r.seek(SeekFrom::Start(7000)).unwrap();
        r.read_exact(&mut b).unwrap();
        assert_eq!(b, data[7000..7004]);
    }

    #[test]
    fn truncation_is_detected() {
        let data = vec![42u8; BLOCK_BYTES + 100];
        let frames = compress_frames(&data);
        for cut in [frames.len() - 1, frames.len() - BLOCK_HEADER_BYTES, 20, 9] {
            assert!(decode_all(&frames[..cut]).is_err(), "cut at {cut} of {}", frames.len());
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let data: Vec<u8> = (0..50_000).map(|i| (i % 93) as u8).collect();
        let mut frames = compress_frames(&data);
        // flip one payload byte (past container header + block header)
        let idx = 8 + BLOCK_HEADER_BYTES + 5;
        frames[idx] ^= 0x40;
        let err = decode_all(&frames).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn corrupt_header_lengths_rejected() {
        let data = vec![1u8; 100];
        let mut frames = compress_frames(&data);
        // blow up enc_len in the first block header
        frames[8 + 4..8 + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_all(&frames).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(byte(), 0..40_000)) {
            let frames = compress_frames(&data);
            let back = decode_all(&frames).unwrap();
            assert_eq!(back, data);
        }

        #[test]
        fn prop_truncation_never_roundtrips(
            data in proptest::collection::vec(byte(), 8..5_000),
            frac in 0usize..100,
        ) {
            let frames = compress_frames(&data);
            let cut = frames.len() * frac / 100; // strictly shorter than full
            if let Ok(back) = decode_all(&frames[..cut]) {
                // a cut inside the magic degrades to passthrough, which
                // must not reproduce the payload either
                assert_ne!(back, data, "truncated stream decoded in full");
            }
        }

        #[test]
        fn prop_single_corrupt_byte_detected(
            data in proptest::collection::vec(byte(), 64..8_000),
            at in 0usize..1_000_000,
            bit in 0u8..8,
        ) {
            let mut frames = compress_frames(&data);
            // corrupt anywhere past the container magic (corrupting the
            // magic itself flips the file to passthrough mode by design)
            let idx = 4 + at % (frames.len() - 4);
            frames[idx] ^= 1 << bit;
            if let Ok(back) = decode_all(&frames) {
                assert_ne!(back, data, "corruption at byte {idx} went unnoticed");
            }
        }
    }
}
