//! Per-node disk handle: real files under a per-node root directory, with
//! every byte throttled and accounted.
//!
//! Sequential access goes through [`DiskWriter`]/[`DiskReader`] (buffered,
//! so throttling and accounting happen at buffer granularity, matching how
//! an SSD sees large sequential requests). Random access goes through
//! [`RandomFile`] (positioned reads/writes, one accounting event per call —
//! matching how page-sized random I/O hits an SSD).

use crate::compress::{FrameReader, FrameWriter};
use crate::throttle::Throttle;
use dfo_types::{Counter, DfoError, Result, TrafficRecorder};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Byte/op counters plus optional traffic time series for one node's disk.
///
/// `read_bytes`/`write_bytes` are *physical*: what actually crossed the
/// (simulated) device, post-compression. `logical_read_bytes`/
/// `logical_write_bytes` are what the pipeline consumed or produced —
/// identical to physical for raw files, larger for compressed chunk frames
/// (see [`crate::compress`]). The throttle paces physical bytes only.
pub struct DiskStats {
    pub read_bytes: Counter,
    pub write_bytes: Counter,
    pub logical_read_bytes: Counter,
    pub logical_write_bytes: Counter,
    pub read_ops: Counter,
    pub write_ops: Counter,
    pub read_traffic: TrafficRecorder,
    pub write_traffic: TrafficRecorder,
    /// Wall time spent inside read operations (file op + throttle), ns.
    pub read_nanos: Counter,
    /// Wall time spent inside write operations (file op + throttle), ns.
    pub write_nanos: Counter,
    /// Wall time spent LZ4-encoding chunk frames on the write path, ns.
    pub encode_nanos: Counter,
    /// Wall time spent decoding/checksumming chunk frames on the read
    /// path, ns.
    pub decode_nanos: Counter,
}

impl DiskStats {
    fn new(record_traffic: bool) -> Self {
        Self {
            read_bytes: Counter::new(),
            write_bytes: Counter::new(),
            logical_read_bytes: Counter::new(),
            logical_write_bytes: Counter::new(),
            read_ops: Counter::new(),
            write_ops: Counter::new(),
            read_traffic: TrafficRecorder::new(record_traffic),
            write_traffic: TrafficRecorder::new(record_traffic),
            read_nanos: Counter::new(),
            write_nanos: Counter::new(),
            encode_nanos: Counter::new(),
            decode_nanos: Counter::new(),
        }
    }

    /// Total *physical* bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.get() + self.write_bytes.get()
    }

    pub fn reset(&self) {
        self.read_bytes.reset();
        self.write_bytes.reset();
        self.logical_read_bytes.reset();
        self.logical_write_bytes.reset();
        self.read_ops.reset();
        self.write_ops.reset();
        self.read_traffic.reset();
        self.write_traffic.reset();
        self.read_nanos.reset();
        self.write_nanos.reset();
        self.encode_nanos.reset();
        self.decode_nanos.reset();
    }
}

/// Handle to one simulated node's local disk.
#[derive(Clone)]
pub struct NodeDisk {
    root: PathBuf,
    throttle: Throttle,
    stats: Arc<DiskStats>,
}

impl NodeDisk {
    /// Opens (creating if needed) a node disk rooted at `root`.
    /// `bandwidth` paces *all* traffic on this disk; `record_traffic`
    /// enables the Figure 5 time series.
    pub fn new(
        root: impl Into<PathBuf>,
        bandwidth: Option<u64>,
        record_traffic: bool,
    ) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| DfoError::io(format!("creating disk root {}", root.display()), e))?;
        Ok(Self {
            root,
            throttle: Throttle::from_option(bandwidth),
            stats: Arc::new(DiskStats::new(record_traffic)),
        })
    }

    /// A view of this disk rooted at `<root>/<sub>`, **sharing** the parent's
    /// throttle and byte counters: traffic on the scoped view is paced by
    /// and accounted to the same simulated device. The service layer gives
    /// each job such a view for its scratch data (vertex arrays, message
    /// spills, checkpoints) so concurrent jobs on one node never collide on
    /// file paths while still contending for the node's disk bandwidth.
    pub fn scoped(&self, sub: &str) -> Result<Self> {
        let root = self.root.join(sub);
        fs::create_dir_all(&root).map_err(|e| {
            DfoError::io(format!("creating scoped disk root {}", root.display()), e)
        })?;
        Ok(Self { root, throttle: self.throttle.clone(), stats: self.stats.clone() })
    }

    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path for a disk-relative path, creating parent directories.
    pub fn path(&self, rel: &str) -> Result<PathBuf> {
        let p = self.root.join(rel);
        if let Some(parent) = p.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| DfoError::io(format!("creating dir {}", parent.display()), e))?;
        }
        Ok(p)
    }

    /// Creates (truncating) a buffered, accounted sequential writer.
    pub fn create(&self, rel: &str) -> Result<DiskWriter> {
        self.create_with_buffer(rel, BUF_CAP)
    }

    /// Like [`NodeDisk::create`] with an explicit buffer size — dispatching
    /// keeps one open writer per destination batch, so it uses small buffers.
    pub fn create_with_buffer(&self, rel: &str, buf_cap: usize) -> Result<DiskWriter> {
        self.create_inner(rel, buf_cap, true)
    }

    fn create_inner(&self, rel: &str, buf_cap: usize, count_logical: bool) -> Result<DiskWriter> {
        let p = self.path(rel)?;
        let f = File::create(&p).map_err(|e| DfoError::io(format!("creating {rel}"), e))?;
        Ok(DiskWriter {
            inner: BufWriter::with_capacity(
                buf_cap,
                Accounted { file: f, disk: self.clone(), write: true, count_logical },
            ),
        })
    }

    /// Creates a chunk-frame writer (see [`crate::compress`]): with
    /// `compress = true` the stream is block-compressed on its way to disk
    /// (physical bytes shrink, logical bytes record what the caller wrote);
    /// with `compress = false` it is a plain passthrough producing files
    /// byte-identical to [`NodeDisk::create`].
    pub fn create_framed(&self, rel: &str, compress: bool) -> Result<FrameWriter<DiskWriter>> {
        // when compressing, the Accounted layer must not also count its
        // (physical) bytes as logical — the frame writer owns that number
        let inner = self.create_inner(rel, BUF_CAP, !compress)?;
        let mut w = FrameWriter::new(inner, compress)?;
        if compress {
            w.account_logical_to(self.clone());
        }
        Ok(w)
    }

    /// Opens a file for appending (creating it if absent).
    pub fn append(&self, rel: &str) -> Result<DiskWriter> {
        let p = self.path(rel)?;
        let f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&p)
            .map_err(|e| DfoError::io(format!("appending {rel}"), e))?;
        Ok(DiskWriter {
            inner: BufWriter::with_capacity(
                BUF_CAP,
                Accounted { file: f, disk: self.clone(), write: true, count_logical: true },
            ),
        })
    }

    /// Opens a buffered, accounted sequential reader.
    pub fn open(&self, rel: &str) -> Result<DiskReader> {
        self.open_inner(rel, true)
    }

    fn open_inner(&self, rel: &str, count_logical: bool) -> Result<DiskReader> {
        let p = self.root.join(rel);
        let f = File::open(&p).map_err(|e| DfoError::io(format!("opening {rel}"), e))?;
        Ok(DiskReader {
            inner: BufReader::with_capacity(
                BUF_CAP,
                Accounted { file: f, disk: self.clone(), write: false, count_logical },
            ),
        })
    }

    /// Opens a chunk-frame reader (see [`crate::compress`]): compressed
    /// files (detected by their magic) are transparently decoded, raw files
    /// are passed through unchanged. Physical read bytes are accounted at
    /// the device layer as always; logical read bytes count what this
    /// reader *serves* (decoded payload for compressed files).
    pub fn open_framed(&self, rel: &str) -> Result<FrameReader<DiskReader>> {
        let inner = self.open_inner(rel, false)?;
        let mut r = FrameReader::new(inner)?;
        r.account_logical_to(self.clone());
        Ok(r)
    }

    /// Opens a file for positioned (random) reads and writes.
    pub fn open_random(&self, rel: &str, create: bool) -> Result<RandomFile> {
        let p = self.path(rel)?;
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(&p)
            .map_err(|e| DfoError::io(format!("opening random {rel}"), e))?;
        Ok(RandomFile { file: f, disk: self.clone() })
    }

    pub fn exists(&self, rel: &str) -> bool {
        self.root.join(rel).exists()
    }

    pub fn len(&self, rel: &str) -> Result<u64> {
        fs::metadata(self.root.join(rel))
            .map(|m| m.len())
            .map_err(|e| DfoError::io(format!("stat {rel}"), e))
    }

    pub fn remove(&self, rel: &str) -> Result<()> {
        match fs::remove_file(self.root.join(rel)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(DfoError::io(format!("removing {rel}"), e)),
        }
    }

    /// Total bytes of every file under this disk's root, recursively — for
    /// a scoped disk, the measured on-disk footprint of that scope (vertex
    /// arrays, checkpoints, message spills). Files that vanish mid-walk
    /// (concurrent cleanup) are skipped rather than erroring.
    pub fn usage_bytes(&self) -> Result<u64> {
        fn walk(dir: &Path) -> io::Result<u64> {
            let mut total = 0;
            for entry in fs::read_dir(dir)? {
                let entry = match entry {
                    Ok(e) => e,
                    Err(_) => continue,
                };
                let Ok(meta) = entry.metadata() else { continue };
                if meta.is_dir() {
                    total += walk(&entry.path()).unwrap_or(0);
                } else {
                    total += meta.len();
                }
            }
            Ok(total)
        }
        walk(&self.root)
            .map_err(|e| DfoError::io(format!("sizing disk root {}", self.root.display()), e))
    }

    /// Atomically replaces `rel` with `contents` (write temp + rename); used
    /// for checkpoint CURRENT pointers.
    pub fn write_atomic(&self, rel: &str, contents: &[u8]) -> Result<()> {
        let tmp_rel = format!("{rel}.tmp");
        let tmp = self.path(&tmp_rel)?;
        let dst = self.path(rel)?;
        {
            let mut f =
                File::create(&tmp).map_err(|e| DfoError::io(format!("creating {tmp_rel}"), e))?;
            f.write_all(contents).map_err(|e| DfoError::io(format!("writing {tmp_rel}"), e))?;
            f.sync_all().ok();
        }
        self.account_write(contents.len() as u64);
        fs::rename(&tmp, &dst).map_err(|e| DfoError::io(format!("renaming into {rel}"), e))?;
        Ok(())
    }

    pub fn read_to_vec(&self, rel: &str) -> Result<Vec<u8>> {
        let mut r = self.open(rel)?;
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).map_err(|e| DfoError::io(format!("reading {rel}"), e))?;
        Ok(buf)
    }

    fn account_read(&self, bytes: u64) {
        self.account_read_inner(bytes, true);
    }

    fn account_read_inner(&self, bytes: u64, logical: bool) {
        self.throttle.acquire(bytes);
        self.stats.read_bytes.add(bytes);
        self.stats.read_ops.add(1);
        self.stats.read_traffic.record(bytes);
        if logical {
            self.stats.logical_read_bytes.add(bytes);
        }
    }

    fn account_write(&self, bytes: u64) {
        self.account_write_inner(bytes, true);
    }

    fn account_write_inner(&self, bytes: u64, logical: bool) {
        self.throttle.acquire(bytes);
        self.stats.write_bytes.add(bytes);
        self.stats.write_ops.add(1);
        self.stats.write_traffic.record(bytes);
        if logical {
            self.stats.logical_write_bytes.add(bytes);
        }
    }

    /// Records logical-only bytes (the decoded side of a compressed frame);
    /// physical accounting happened when the frame bytes hit the device.
    pub(crate) fn add_logical_read(&self, bytes: u64) {
        self.stats.logical_read_bytes.add(bytes);
    }

    pub(crate) fn add_logical_write(&self, bytes: u64) {
        self.stats.logical_write_bytes.add(bytes);
    }

    /// Charges frame-codec encode time (the compress side of a chunk write).
    pub(crate) fn add_encode_nanos(&self, nanos: u64) {
        self.stats.encode_nanos.add(nanos);
    }

    /// Charges frame-codec decode time (checksum + LZ4 on a chunk read).
    pub(crate) fn add_decode_nanos(&self, nanos: u64) {
        self.stats.decode_nanos.add(nanos);
    }
}

const BUF_CAP: usize = 256 << 10;

/// File wrapper charging the node's throttle and counters per syscall-level
/// operation. `count_logical` is false when a frame codec sits above this
/// file and owns the logical-byte numbers.
struct Accounted {
    file: File,
    disk: NodeDisk,
    write: bool,
    count_logical: bool,
}

impl Read for Accounted {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let t0 = std::time::Instant::now();
        let n = self.file.read(buf)?;
        if n > 0 {
            self.disk.account_read_inner(n as u64, self.count_logical);
            self.disk.stats.read_nanos.add(t0.elapsed().as_nanos() as u64);
        }
        Ok(n)
    }
}

impl Write for Accounted {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let t0 = std::time::Instant::now();
        let n = self.file.write(buf)?;
        if n > 0 {
            self.disk.account_write_inner(n as u64, self.count_logical);
            self.disk.stats.write_nanos.add(t0.elapsed().as_nanos() as u64);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl Seek for Accounted {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let _ = self.write; // seeks are free; field kept for clarity
        self.file.seek(pos)
    }
}

/// Buffered, accounted sequential writer.
pub struct DiskWriter {
    inner: BufWriter<Accounted>,
}

impl DiskWriter {
    /// Flushes buffers and syncs metadata-free content to the OS.
    pub fn finish(mut self) -> Result<()> {
        self.inner.flush().map_err(|e| DfoError::io("flushing disk writer", e))?;
        Ok(())
    }
}

impl Write for DiskWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Buffered, accounted sequential reader.
pub struct DiskReader {
    inner: BufReader<Accounted>,
}

impl Read for DiskReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Seek for DiskReader {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// Positioned-I/O file handle; every call is one accounted disk operation.
pub struct RandomFile {
    file: File,
    disk: NodeDisk,
}

impl RandomFile {
    pub fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        let t0 = std::time::Instant::now();
        self.file
            .read_exact_at(buf, offset)
            .map_err(|e| DfoError::io(format!("read_at offset {offset}"), e))?;
        self.disk.account_read(buf.len() as u64);
        self.disk.stats.read_nanos.add(t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    pub fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        let t0 = std::time::Instant::now();
        self.file
            .write_all_at(buf, offset)
            .map_err(|e| DfoError::io(format!("write_at offset {offset}"), e))?;
        self.disk.account_write(buf.len() as u64);
        self.disk.stats.write_nanos.add(t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    pub fn len(&self) -> Result<u64> {
        self.file.metadata().map(|m| m.len()).map_err(|e| DfoError::io("random file len", e))
    }

    pub fn is_empty(&self) -> Result<bool> {
        self.len().map(|n| n == 0)
    }

    pub fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len).map_err(|e| DfoError::io("random file set_len", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn disk() -> (TempDir, NodeDisk) {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path().join("n0"), None, false).unwrap();
        (td, d)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (_td, d) = disk();
        let mut w = d.create("a/b/data.bin").unwrap();
        w.write_all(b"hello dfograph").unwrap();
        w.finish().unwrap();
        let mut r = d.open("a/b/data.bin").unwrap();
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "hello dfograph");
        assert_eq!(d.stats().write_bytes.get(), 14);
        assert_eq!(d.stats().read_bytes.get(), 14);
    }

    #[test]
    fn append_accumulates() {
        let (_td, d) = disk();
        for i in 0..3u8 {
            let mut w = d.append("log.bin").unwrap();
            w.write_all(&[i]).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(d.read_to_vec("log.bin").unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn random_file_positioned_io() {
        let (_td, d) = disk();
        let f = d.open_random("rand.bin", true).unwrap();
        f.set_len(16).unwrap();
        f.write_at(&[7u8; 4], 8).unwrap();
        let mut buf = [0u8; 4];
        f.read_at(&mut buf, 8).unwrap();
        assert_eq!(buf, [7u8; 4]);
        assert_eq!(d.stats().write_bytes.get(), 4);
        assert_eq!(d.stats().read_bytes.get(), 4);
    }

    #[test]
    fn atomic_write_replaces() {
        let (_td, d) = disk();
        d.write_atomic("CURRENT", b"1").unwrap();
        d.write_atomic("CURRENT", b"2").unwrap();
        assert_eq!(d.read_to_vec("CURRENT").unwrap(), b"2");
    }

    #[test]
    fn remove_missing_is_ok() {
        let (_td, d) = disk();
        d.remove("never-existed.bin").unwrap();
    }

    #[test]
    fn buffered_writer_accounts_at_buffer_granularity() {
        let (_td, d) = disk();
        let mut w = d.create("big.bin").unwrap();
        for _ in 0..1000 {
            w.write_all(&[0u8; 100]).unwrap();
        }
        w.finish().unwrap();
        // 100 KB written through a 256 KB buffer: one underlying op.
        assert_eq!(d.stats().write_bytes.get(), 100_000);
        assert!(d.stats().write_ops.get() <= 2);
    }

    #[test]
    fn scoped_disk_shares_stats_and_isolates_paths() {
        let (_td, d) = disk();
        let s = d.scoped("jobs/j1").unwrap();
        let mut w = s.create("data.bin").unwrap();
        w.write_all(b"abcd").unwrap();
        w.finish().unwrap();
        // bytes accounted on the parent device…
        assert_eq!(d.stats().write_bytes.get(), 4);
        // …but the file lives under the scope, invisible at the parent path
        assert!(s.exists("data.bin"));
        assert!(!d.exists("data.bin"));
        assert!(d.exists("jobs/j1/data.bin"));
    }

    #[test]
    fn throttled_disk_paces_writes() {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path(), Some(10 << 20), false).unwrap(); // 10 MB/s
        let start = std::time::Instant::now();
        let mut w = d.create("x.bin").unwrap();
        w.write_all(&vec![0u8; 2 << 20]).unwrap(); // 2 MB => ~200 ms
        w.finish().unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(150));
    }
}
