//! Versioned, copy-on-write block store backing checkpointed vertex arrays
//! (paper §3.2, Figure 4).
//!
//! With checkpointing enabled DFOGraph "never overwrites data blocks, and
//! redirects all write operations to a new block"; each `Process` call
//! commits a new checkpoint that may *reuse* blocks of unmodified batches
//! from the previous one, and obsolete checkpoints are garbage-collected by
//! reference counting. With checkpointing disabled the store degrades to
//! plain in-place per-batch block files (no metadata, no extra I/O — the
//! paper notes checkpointing "does not increase the amount of I/O" beyond
//! metadata).
//!
//! On-disk layout under the store's directory:
//!
//! ```text
//! blocks/<id>.bin        one file per block version
//! meta/ckpt_<epoch>.bin  committed manifest: magic, mapping, CRC-32
//! CURRENT                latest committed epoch (written atomically)
//! ```
//!
//! ## Crash-consistent commits
//!
//! A checkpoint *manifest* (`meta/ckpt_<epoch>.bin`) carries a magic
//! number and a trailing CRC-32 over its whole body, and is written via
//! temp-file + atomic rename — so a torn, truncated, or bit-flipped
//! manifest is always *detectable*, never silently loaded. Recovery
//! ([`VersionedArrayStore::recover`]) discards invalid manifests and falls
//! back to the newest surviving valid checkpoint (rewriting `CURRENT` to
//! match), which with `keep ≥ 2` retained checkpoints means a corrupted
//! in-flight commit costs exactly one checkpoint, never the array.

use crate::compress::crc32;
use crate::disk::NodeDisk;
use dfo_types::codec::{read_u64, write_u64};
use dfo_types::{DfoError, Result};
use std::collections::{HashMap, VecDeque};
use std::io::{Cursor, Write};

type BlockId = u64;

/// `"DFOMANIF"`: identifies a checkpoint manifest.
const MANIFEST_MAGIC: u64 = 0x4446_4f4d_414e_4946;

enum Mode {
    /// Copy-on-write with `keep` retained checkpoints.
    Cow {
        next_block: BlockId,
        epoch: u64,
        current: Vec<BlockId>,
        pending: Option<Vec<Option<BlockId>>>,
        history: VecDeque<(u64, Vec<BlockId>)>,
        refcounts: HashMap<BlockId, u32>,
        keep: usize,
    },
    /// In-place: block id == batch index, overwritten directly.
    InPlace,
}

/// Persistent versioned storage for one vertex array on one node.
pub struct VersionedArrayStore {
    disk: NodeDisk,
    dir: String,
    n_batches: usize,
    mode: Mode,
}

impl VersionedArrayStore {
    /// Creates a fresh store; `init` produces the initial bytes of each
    /// batch (the paper's `GetVertexArray` creates the initial checkpoint).
    pub fn create(
        disk: NodeDisk,
        dir: impl Into<String>,
        n_batches: usize,
        mut init: impl FnMut(usize) -> Vec<u8>,
        checkpointing: bool,
        keep: usize,
    ) -> Result<Self> {
        let dir = dir.into();
        let mut store = Self {
            disk,
            dir,
            n_batches,
            mode: if checkpointing {
                Mode::Cow {
                    next_block: 0,
                    epoch: 0,
                    current: Vec::new(),
                    pending: None,
                    history: VecDeque::new(),
                    refcounts: HashMap::new(),
                    keep: keep.max(1),
                }
            } else {
                Mode::InPlace
            },
        };
        match &mut store.mode {
            Mode::InPlace => {
                for b in 0..n_batches {
                    let data = init(b);
                    store.write_block_file(b as BlockId, &data)?;
                }
            }
            Mode::Cow { .. } => {
                let mut mapping = Vec::with_capacity(n_batches);
                for b in 0..n_batches {
                    let data = init(b);
                    let id = store.alloc_block()?;
                    store.write_block_file(id, &data)?;
                    mapping.push(id);
                }
                store.commit_mapping(mapping)?;
            }
        }
        Ok(store)
    }

    /// Reopens an in-place (non-checkpointed) store whose block files
    /// already exist on disk.
    pub fn open_in_place(disk: NodeDisk, dir: impl Into<String>, n_batches: usize) -> Self {
        Self { disk, dir: dir.into(), n_batches, mode: Mode::InPlace }
    }

    /// Whether an in-place store exists at `dir` (its first block file is
    /// present).
    pub fn in_place_exists(disk: &NodeDisk, dir: &str) -> bool {
        disk.exists(&format!("{dir}/blocks/0.bin"))
    }

    /// Whether a committed checkpoint exists at `dir`.
    pub fn checkpoint_exists(disk: &NodeDisk, dir: &str) -> bool {
        disk.exists(&format!("{dir}/CURRENT"))
    }

    /// Reopens a store from its last committed checkpoint. Pending blocks
    /// from a crashed epoch are deleted; the array is exactly the state
    /// after the last successful `Process` call (§3.2).
    ///
    /// Crash consistency: a manifest that fails validation (truncated,
    /// torn, bit-flipped — anything the magic/shape/CRC checks catch) is
    /// **discarded**, and recovery lands on the newest surviving valid
    /// checkpoint, rewriting `CURRENT` to match. An unreadable `CURRENT`
    /// likewise falls back to the newest valid manifest.
    pub fn recover(
        disk: NodeDisk,
        dir: impl Into<String>,
        n_batches: usize,
        keep: usize,
    ) -> Result<Self> {
        Self::recover_to(disk, dir, n_batches, keep, None)
    }

    /// [`VersionedArrayStore::recover`] with an upper bound on the epoch
    /// considered committed. A per-call commit record (see
    /// [`crate::CommitLog`]) may know that this array's last *globally*
    /// committed epoch is older than its own `CURRENT` — a crash between
    /// the per-array commits of one multi-array `Process` call leaves some
    /// arrays one epoch ahead of the record. Passing that epoch as `target`
    /// discards the torn epochs so every array of the call rolls back as a
    /// unit. `None` trusts `CURRENT` (the pre-commit-record behaviour).
    pub fn recover_to(
        disk: NodeDisk,
        dir: impl Into<String>,
        n_batches: usize,
        keep: usize,
        target: Option<u64>,
    ) -> Result<Self> {
        let dir = dir.into();
        let current_rel = format!("{dir}/CURRENT");
        if !disk.exists(&current_rel) {
            return Err(DfoError::NoCheckpoint(format!("{dir}: no CURRENT file")));
        }
        // CURRENT is written atomically, but tolerate a damaged one anyway:
        // the validated manifests are the real source of truth
        let committed: Option<u64> =
            disk.read_to_vec(&current_rel).ok().and_then(|b| read_u64(&mut Cursor::new(&b)).ok());
        let keep = keep.max(1);

        // load the retained committed epochs (<= committed and <= target,
        // newest `keep`), discarding anything that fails validation
        let mut epochs: Vec<u64> = Self::list_meta_epochs(&disk, &dir)?;
        epochs.sort_unstable();
        let mut history: VecDeque<(u64, Vec<BlockId>)> = VecDeque::new();
        let mut refcounts: HashMap<BlockId, u32> = HashMap::new();
        let mut max_block: BlockId = 0;
        for &e in epochs.iter() {
            if committed.is_some_and(|c| e > c) || target.is_some_and(|t| e > t) {
                // uncommitted (or torn-call) metadata from a crash: remove
                disk.remove(&format!("{dir}/meta/ckpt_{e}.bin"))?;
                continue;
            }
            match Self::read_meta(&disk, &dir, e, n_batches) {
                Ok(mapping) => history.push_back((e, mapping)),
                Err(_) => {
                    // torn/corrupt manifest: never load it — fall back to
                    // an older complete checkpoint instead
                    disk.remove(&format!("{dir}/meta/ckpt_{e}.bin"))?;
                }
            }
        }
        while history.len() > keep {
            let (e, _) = history.pop_front().unwrap();
            disk.remove(&format!("{dir}/meta/ckpt_{e}.bin"))?;
        }
        if history.is_empty() {
            return Err(DfoError::NoCheckpoint(format!("{dir}: no valid checkpoint manifest")));
        }
        let committed = history.back().unwrap().0;
        // re-point CURRENT if the committed checkpoint fell back
        let mut cur = Vec::new();
        write_u64(&mut cur, committed).unwrap();
        disk.write_atomic(&current_rel, &cur)?;
        for (_, mapping) in history.iter() {
            for &id in mapping {
                *refcounts.entry(id).or_insert(0) += 1;
                max_block = max_block.max(id);
            }
        }
        let current = history.back().unwrap().1.clone();

        // delete orphan block files (from crashed pending epochs)
        let blocks_dir = disk.root().join(format!("{dir}/blocks"));
        if let Ok(entries) = std::fs::read_dir(&blocks_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(id) = name.strip_suffix(".bin").and_then(|s| s.parse::<BlockId>().ok())
                {
                    if !refcounts.contains_key(&id) {
                        disk.remove(&format!("{dir}/blocks/{id}.bin"))?;
                    }
                    max_block = max_block.max(id);
                }
            }
        }

        Ok(Self {
            disk,
            dir,
            n_batches,
            mode: Mode::Cow {
                next_block: max_block + 1,
                epoch: committed,
                current,
                pending: None,
                history,
                refcounts,
                keep,
            },
        })
    }

    pub fn n_batches(&self) -> usize {
        self.n_batches
    }

    /// Latest committed epoch (0 for in-place stores).
    pub fn epoch(&self) -> u64 {
        match &self.mode {
            Mode::Cow { epoch, .. } => *epoch,
            Mode::InPlace => 0,
        }
    }

    /// Whether this store retains checkpoints (copy-on-write mode).
    pub fn is_cow(&self) -> bool {
        matches!(self.mode, Mode::Cow { .. })
    }

    /// Reads the bytes of batch `b` (read-your-writes within an open epoch).
    pub fn read_batch(&self, b: usize) -> Result<Vec<u8>> {
        assert!(b < self.n_batches, "batch {b} out of range");
        let id = match &self.mode {
            Mode::InPlace => b as BlockId,
            Mode::Cow { current, pending, .. } => {
                pending.as_ref().and_then(|p| p[b]).unwrap_or(current[b])
            }
        };
        self.disk.read_to_vec(&format!("{}/blocks/{id}.bin", self.dir))
    }

    /// Opens a new epoch; must be called before `write_batch` when the store
    /// is copy-on-write. Idempotent.
    pub fn begin_epoch(&mut self) {
        if let Mode::Cow { pending, .. } = &mut self.mode {
            if pending.is_none() {
                *pending = Some(vec![None; self.n_batches]);
            }
        }
    }

    /// Writes new bytes for batch `b`.
    pub fn write_batch(&mut self, b: usize, data: &[u8]) -> Result<()> {
        assert!(b < self.n_batches, "batch {b} out of range");
        match &mut self.mode {
            Mode::InPlace => self.write_block_file(b as BlockId, data),
            Mode::Cow { .. } => {
                let id = self.alloc_block()?;
                self.write_block_file(id, data)?;
                let Mode::Cow { pending, refcounts, .. } = &mut self.mode else { unreachable!() };
                let slot = pending
                    .as_mut()
                    .expect("begin_epoch must be called before write_batch")
                    .get_mut(b)
                    .unwrap();
                if let Some(old) = slot.replace(id) {
                    // batch written twice in one epoch: drop the older version
                    debug_assert!(!refcounts.contains_key(&old));
                    self.remove_block_file(old)?;
                }
                Ok(())
            }
        }
    }

    /// Commits the open epoch: persists the new mapping, retires checkpoints
    /// beyond the retention limit, garbage-collects unreferenced blocks.
    pub fn commit(&mut self) -> Result<()> {
        let mapping = match &mut self.mode {
            Mode::InPlace => return Ok(()),
            Mode::Cow { current, pending, .. } => {
                let p = match pending.take() {
                    Some(p) => p,
                    None => return Ok(()), // nothing opened
                };
                current.iter().zip(p).map(|(&cur, new)| new.unwrap_or(cur)).collect::<Vec<_>>()
            }
        };
        self.commit_mapping(mapping)
    }

    /// Rolls the store back one committed checkpoint, permanently
    /// discarding the newest one: its manifest is deleted, its
    /// no-longer-referenced blocks are garbage-collected, and `CURRENT`
    /// re-points to the previous checkpoint. Returns the epoch the store
    /// landed on. Used by ahead-rank recovery: a rank that committed a
    /// `Process` call its crashed peers did not must discard that call to
    /// rejoin them (`checkpoints_kept ≥ 2` retains the needed checkpoint).
    ///
    /// Fails with `NoCheckpoint` when only one checkpoint is retained and
    /// with `Corrupt` when an epoch is open (`begin_epoch` without commit).
    pub fn rollback_one(&mut self) -> Result<u64> {
        let dir = self.dir.clone();
        let Mode::Cow { epoch, current, pending, history, refcounts, .. } = &mut self.mode else {
            return Err(DfoError::Corrupt(format!(
                "{}: rollback_one on a non-checkpointed store",
                self.dir
            )));
        };
        if pending.is_some() {
            return Err(DfoError::Corrupt(format!("{dir}: rollback_one with an open epoch")));
        }
        if history.len() < 2 {
            return Err(DfoError::NoCheckpoint(format!(
                "{dir}: cannot roll back epoch {} — only {} checkpoint(s) retained \
                 (checkpoints_kept must be ≥ 2 for ahead-rank rollback)",
                *epoch,
                history.len()
            )));
        }
        let (dropped_epoch, dropped_mapping) = history.pop_back().unwrap();
        let (new_epoch, new_mapping) = history.back().unwrap();
        *epoch = *new_epoch;
        *current = new_mapping.clone();

        // re-point CURRENT before deleting anything: a crash mid-rollback
        // then re-runs recovery against the older committed epoch
        let mut cur = Vec::new();
        write_u64(&mut cur, *new_epoch).unwrap();
        let new_epoch = *new_epoch;
        let mut to_delete: Vec<BlockId> = Vec::new();
        for id in dropped_mapping {
            let rc = refcounts.get_mut(&id).expect("refcount missing");
            *rc -= 1;
            if *rc == 0 {
                refcounts.remove(&id);
                to_delete.push(id);
            }
        }
        self.disk.write_atomic(&format!("{dir}/CURRENT"), &cur)?;
        self.disk.remove(&format!("{dir}/meta/ckpt_{dropped_epoch}.bin"))?;
        for id in to_delete {
            self.remove_block_file(id)?;
        }
        Ok(new_epoch)
    }

    /// Aborts the open epoch, deleting its blocks.
    pub fn abort(&mut self) -> Result<()> {
        let ids: Vec<BlockId> = match &mut self.mode {
            Mode::InPlace => return Ok(()),
            Mode::Cow { pending, .. } => match pending.take() {
                Some(p) => p.into_iter().flatten().collect(),
                None => return Ok(()),
            },
        };
        for id in ids {
            self.remove_block_file(id)?;
        }
        Ok(())
    }

    /// Number of live block files (for tests and GC assertions).
    pub fn live_blocks(&self) -> usize {
        match &self.mode {
            Mode::InPlace => self.n_batches,
            Mode::Cow { refcounts, pending, .. } => {
                refcounts.len() + pending.as_ref().map(|p| p.iter().flatten().count()).unwrap_or(0)
            }
        }
    }

    fn commit_mapping(&mut self, mapping: Vec<BlockId>) -> Result<()> {
        let dir = self.dir.clone();
        let Mode::Cow { epoch, current, history, refcounts, .. } = &mut self.mode else {
            return Ok(());
        };
        let new_epoch = if history.is_empty() { *epoch } else { *epoch + 1 };

        // persist the manifest for the new checkpoint first: checksummed
        // and written via temp-file + atomic rename, so a crash mid-commit
        // leaves either no manifest or a complete, verifiable one — a torn
        // write is detected at recovery and recovery falls back
        let mut buf = Vec::with_capacity(28 + mapping.len() * 8);
        write_u64(&mut buf, MANIFEST_MAGIC).unwrap();
        write_u64(&mut buf, new_epoch).unwrap();
        write_u64(&mut buf, mapping.len() as u64).unwrap();
        for &id in &mapping {
            write_u64(&mut buf, id).unwrap();
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        self.disk.write_atomic(&format!("{dir}/meta/ckpt_{new_epoch}.bin"), &buf)?;

        for &id in &mapping {
            *refcounts.entry(id).or_insert(0) += 1;
        }
        history.push_back((new_epoch, mapping.clone()));
        *current = mapping;
        *epoch = new_epoch;

        // CURRENT pointer flips the commit atomically
        let mut cur = Vec::new();
        write_u64(&mut cur, new_epoch).unwrap();
        self.disk.write_atomic(&format!("{dir}/CURRENT"), &cur)?;

        // retire old checkpoints beyond the retention window
        let mut to_delete: Vec<BlockId> = Vec::new();
        let Mode::Cow { history, refcounts, keep, .. } = &mut self.mode else { unreachable!() };
        while history.len() > *keep {
            let (old_epoch, old_mapping) = history.pop_front().unwrap();
            self.disk.remove(&format!("{dir}/meta/ckpt_{old_epoch}.bin"))?;
            for id in old_mapping {
                let rc = refcounts.get_mut(&id).expect("refcount missing");
                *rc -= 1;
                if *rc == 0 {
                    refcounts.remove(&id);
                    to_delete.push(id);
                }
            }
        }
        for id in to_delete {
            self.remove_block_file(id)?;
        }
        Ok(())
    }

    fn alloc_block(&mut self) -> Result<BlockId> {
        match &mut self.mode {
            Mode::Cow { next_block, .. } => {
                let id = *next_block;
                *next_block += 1;
                Ok(id)
            }
            Mode::InPlace => unreachable!("alloc_block in in-place mode"),
        }
    }

    fn write_block_file(&self, id: BlockId, data: &[u8]) -> Result<()> {
        let mut w = self.disk.create(&format!("{}/blocks/{id}.bin", self.dir))?;
        w.write_all(data).map_err(|e| DfoError::io(format!("writing block {id}"), e))?;
        w.finish()
    }

    fn remove_block_file(&self, id: BlockId) -> Result<()> {
        self.disk.remove(&format!("{}/blocks/{id}.bin", self.dir))
    }

    fn list_meta_epochs(disk: &NodeDisk, dir: &str) -> Result<Vec<u64>> {
        let meta_dir = disk.root().join(format!("{dir}/meta"));
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&meta_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(e) = name
                    .strip_prefix("ckpt_")
                    .and_then(|s| s.strip_suffix(".bin"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }

    /// Reads and fully validates one manifest: exact length, magic, epoch,
    /// batch count, and the trailing CRC-32 over the whole body. Any
    /// mismatch is `Corrupt` — a manifest is either complete or worthless.
    fn read_meta(disk: &NodeDisk, dir: &str, epoch: u64, n_batches: usize) -> Result<Vec<BlockId>> {
        let bytes = disk.read_to_vec(&format!("{dir}/meta/ckpt_{epoch}.bin"))?;
        let want_len = 28 + n_batches * 8;
        if bytes.len() != want_len {
            return Err(DfoError::Corrupt(format!(
                "manifest {epoch}: {} bytes, want {want_len} (truncated or torn)",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let want_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != want_crc {
            return Err(DfoError::Corrupt(format!("manifest {epoch}: CRC mismatch")));
        }
        let mut c = Cursor::new(body);
        let magic = read_u64(&mut c).map_err(|e| DfoError::io("manifest magic", e))?;
        if magic != MANIFEST_MAGIC {
            return Err(DfoError::Corrupt(format!("manifest {epoch}: bad magic {magic:#x}")));
        }
        let e = read_u64(&mut c).map_err(|e| DfoError::io("manifest epoch", e))?;
        if e != epoch {
            return Err(DfoError::Corrupt(format!("manifest epoch {e} != name {epoch}")));
        }
        let n = read_u64(&mut c).map_err(|e| DfoError::io("manifest len", e))? as usize;
        if n != n_batches {
            return Err(DfoError::Corrupt(format!("manifest batches {n} != expected {n_batches}")));
        }
        let mut mapping = Vec::with_capacity(n);
        for _ in 0..n {
            mapping.push(read_u64(&mut c).map_err(|e| DfoError::io("manifest block id", e))?);
        }
        Ok(mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn mk(cow: bool, keep: usize) -> (TempDir, VersionedArrayStore) {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let s =
            VersionedArrayStore::create(disk, "arr", 3, |b| vec![b as u8; 4], cow, keep).unwrap();
        (td, s)
    }

    #[test]
    fn initial_contents() {
        for cow in [false, true] {
            let (_t, s) = mk(cow, 1);
            assert_eq!(s.read_batch(0).unwrap(), vec![0u8; 4]);
            assert_eq!(s.read_batch(2).unwrap(), vec![2u8; 4]);
        }
    }

    #[test]
    fn inplace_overwrite() {
        let (_t, mut s) = mk(false, 1);
        s.write_batch(1, &[9u8; 4]).unwrap();
        assert_eq!(s.read_batch(1).unwrap(), vec![9u8; 4]);
        s.commit().unwrap(); // no-op
        assert_eq!(s.live_blocks(), 3);
    }

    #[test]
    fn cow_reuses_unmodified_blocks_and_gcs() {
        let (_t, mut s) = mk(true, 1);
        assert_eq!(s.live_blocks(), 3);
        s.begin_epoch();
        s.write_batch(1, &[7u8; 4]).unwrap();
        s.commit().unwrap();
        // epoch 1 shares blocks 0 and 2 with epoch 0; epoch 0 retired:
        // old block of batch 1 deleted => still 3 live blocks
        assert_eq!(s.live_blocks(), 3);
        assert_eq!(s.read_batch(1).unwrap(), vec![7u8; 4]);
        assert_eq!(s.read_batch(0).unwrap(), vec![0u8; 4]);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn keep_two_checkpoints() {
        let (_t, mut s) = mk(true, 2);
        s.begin_epoch();
        s.write_batch(0, &[1u8; 4]).unwrap();
        s.commit().unwrap();
        // epochs 0 and 1 retained: blocks {0,1,2} + new one = 4
        assert_eq!(s.live_blocks(), 4);
        s.begin_epoch();
        s.write_batch(0, &[2u8; 4]).unwrap();
        s.commit().unwrap();
        // epoch 0 retired: its batch-0 block freed
        assert_eq!(s.live_blocks(), 4);
    }

    #[test]
    fn read_your_writes_in_open_epoch() {
        let (_t, mut s) = mk(true, 1);
        s.begin_epoch();
        s.write_batch(2, &[5u8; 4]).unwrap();
        assert_eq!(s.read_batch(2).unwrap(), vec![5u8; 4]);
        s.abort().unwrap();
        assert_eq!(s.read_batch(2).unwrap(), vec![2u8; 4]);
    }

    #[test]
    fn double_write_in_epoch_drops_older() {
        let (_t, mut s) = mk(true, 1);
        s.begin_epoch();
        s.write_batch(0, &[1u8; 4]).unwrap();
        s.write_batch(0, &[2u8; 4]).unwrap();
        s.commit().unwrap();
        assert_eq!(s.read_batch(0).unwrap(), vec![2u8; 4]);
        assert_eq!(s.live_blocks(), 3);
    }

    #[test]
    fn recover_after_commit() {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        {
            let mut s =
                VersionedArrayStore::create(disk.clone(), "arr", 2, |b| vec![b as u8; 2], true, 1)
                    .unwrap();
            s.begin_epoch();
            s.write_batch(0, &[42u8; 2]).unwrap();
            s.commit().unwrap();
        }
        let s = VersionedArrayStore::recover(disk, "arr", 2, 1).unwrap();
        assert_eq!(s.read_batch(0).unwrap(), vec![42u8; 2]);
        assert_eq!(s.read_batch(1).unwrap(), vec![1u8; 2]);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn recover_discards_uncommitted_epoch() {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        {
            let mut s =
                VersionedArrayStore::create(disk.clone(), "arr", 2, |b| vec![b as u8; 2], true, 1)
                    .unwrap();
            s.begin_epoch();
            s.write_batch(0, &[99u8; 2]).unwrap();
            // crash: no commit
        }
        let s = VersionedArrayStore::recover(disk, "arr", 2, 1).unwrap();
        assert_eq!(s.read_batch(0).unwrap(), vec![0u8; 2], "uncommitted write must vanish");
        // orphan pending block file must have been cleaned up
        assert_eq!(s.live_blocks(), 2);
    }

    #[test]
    fn recover_without_checkpoint_errors() {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        assert!(matches!(
            VersionedArrayStore::recover(disk, "nope", 2, 1),
            Err(DfoError::NoCheckpoint(_))
        ));
    }

    /// Path of epoch `e`'s manifest under the test layout of `mk`-style
    /// stores rooted at `td/arr`.
    fn manifest_path(td: &TempDir, e: u64) -> std::path::PathBuf {
        td.path().join(format!("arr/meta/ckpt_{e}.bin"))
    }

    /// Builds a two-checkpoint store: epoch 1 holds `[1; 4]` everywhere,
    /// epoch 2 holds `[2; 4]` everywhere.
    fn two_checkpoints() -> (TempDir, NodeDisk) {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let mut s =
            VersionedArrayStore::create(disk.clone(), "arr", 3, |b| vec![b as u8; 4], true, 2)
                .unwrap();
        for val in [1u8, 2] {
            s.begin_epoch();
            for b in 0..3 {
                s.write_batch(b, &[val; 4]).unwrap();
            }
            s.commit().unwrap();
        }
        (td, disk)
    }

    #[test]
    fn bit_flipped_manifest_falls_back_one_checkpoint() {
        let (td, disk) = two_checkpoints();
        let path = manifest_path(&td, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let s = VersionedArrayStore::recover(disk, "arr", 3, 2).unwrap();
        assert_eq!(s.epoch(), 1, "must land on the previous complete checkpoint");
        for b in 0..3 {
            assert_eq!(s.read_batch(b).unwrap(), vec![1u8; 4]);
        }
        // the corrupt manifest is gone and CURRENT re-points to epoch 1
        assert!(!manifest_path(&td, 2).exists());
        let cur = std::fs::read(td.path().join("arr/CURRENT")).unwrap();
        assert_eq!(u64::from_le_bytes(cur.try_into().unwrap()), 1);
    }

    #[test]
    fn truncated_manifest_falls_back_and_store_stays_usable() {
        let (td, disk) = two_checkpoints();
        let path = manifest_path(&td, 2);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let mut s = VersionedArrayStore::recover(disk.clone(), "arr", 3, 2).unwrap();
        assert_eq!(s.read_batch(0).unwrap(), vec![1u8; 4]);
        // the fallen-back store must commit cleanly on top of epoch 1
        s.begin_epoch();
        s.write_batch(0, &[9u8; 4]).unwrap();
        s.commit().unwrap();
        assert_eq!(s.epoch(), 2);
        drop(s);
        let s = VersionedArrayStore::recover(disk, "arr", 3, 2).unwrap();
        assert_eq!(s.read_batch(0).unwrap(), vec![9u8; 4]);
    }

    #[test]
    fn corrupting_the_only_manifest_is_no_checkpoint_not_garbage() {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let _ = VersionedArrayStore::create(disk.clone(), "arr", 2, |b| vec![b as u8; 2], true, 1)
            .unwrap();
        let path = manifest_path(&td, 0);
        std::fs::write(&path, b"garbage").unwrap();
        assert!(
            matches!(
                VersionedArrayStore::recover(disk, "arr", 2, 1),
                Err(DfoError::NoCheckpoint(_))
            ),
            "a corrupt manifest must never be loaded"
        );
    }

    #[test]
    fn recover_to_discards_epochs_above_target() {
        let (td, disk) = two_checkpoints();
        let s = VersionedArrayStore::recover_to(disk, "arr", 3, 2, Some(1)).unwrap();
        assert_eq!(s.epoch(), 1, "epoch 2 is above the commit-record target");
        for b in 0..3 {
            assert_eq!(s.read_batch(b).unwrap(), vec![1u8; 4]);
        }
        assert!(!manifest_path(&td, 2).exists(), "torn epoch must be deleted");
        let cur = std::fs::read(td.path().join("arr/CURRENT")).unwrap();
        assert_eq!(u64::from_le_bytes(cur.try_into().unwrap()), 1);
    }

    #[test]
    fn recover_to_at_or_above_current_is_a_no_op() {
        let (_td, disk) = two_checkpoints();
        let s = VersionedArrayStore::recover_to(disk.clone(), "arr", 3, 2, Some(2)).unwrap();
        assert_eq!(s.epoch(), 2);
        let s = VersionedArrayStore::recover_to(disk, "arr", 3, 2, Some(99)).unwrap();
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn rollback_one_lands_on_previous_checkpoint_and_persists() {
        let (td, disk) = two_checkpoints();
        let mut s = VersionedArrayStore::recover(disk.clone(), "arr", 3, 2).unwrap();
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.rollback_one().unwrap(), 1);
        for b in 0..3 {
            assert_eq!(s.read_batch(b).unwrap(), vec![1u8; 4]);
        }
        // a second rollback is refused: only one checkpoint left
        assert!(matches!(s.rollback_one(), Err(DfoError::NoCheckpoint(_))));
        drop(s);
        let s = VersionedArrayStore::recover(disk, "arr", 3, 2).unwrap();
        assert_eq!(s.epoch(), 1, "rollback must persist across reopen");
        assert!(!manifest_path(&td, 2).exists());
    }

    #[test]
    fn rollback_then_commit_reuses_the_epoch_number() {
        let (_td, disk) = two_checkpoints();
        let mut s = VersionedArrayStore::recover(disk.clone(), "arr", 3, 2).unwrap();
        s.rollback_one().unwrap();
        s.begin_epoch();
        s.write_batch(0, &[9u8; 4]).unwrap();
        s.commit().unwrap();
        assert_eq!(s.epoch(), 2, "re-execution recommits the rolled-back epoch");
        assert_eq!(s.read_batch(0).unwrap(), vec![9u8; 4]);
        assert_eq!(s.read_batch(1).unwrap(), vec![1u8; 4]);
        drop(s);
        let s = VersionedArrayStore::recover(disk, "arr", 3, 2).unwrap();
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.read_batch(0).unwrap(), vec![9u8; 4]);
    }

    #[test]
    fn rollback_one_requires_a_closed_epoch_and_cow_mode() {
        let (_t, mut s) = mk(false, 1);
        assert!(matches!(s.rollback_one(), Err(DfoError::Corrupt(_))));
        let (_t, mut s) = mk(true, 2);
        s.begin_epoch();
        s.write_batch(0, &[1u8; 4]).unwrap();
        s.commit().unwrap();
        s.begin_epoch();
        assert!(matches!(s.rollback_one(), Err(DfoError::Corrupt(_))));
    }

    #[test]
    fn many_epochs_bounded_storage() {
        let (_t, mut s) = mk(true, 1);
        for i in 0..20u8 {
            s.begin_epoch();
            s.write_batch((i % 3) as usize, &[i; 4]).unwrap();
            s.commit().unwrap();
            assert_eq!(s.live_blocks(), 3, "GC must bound live blocks");
        }
        assert_eq!(s.epoch(), 20);
    }
}
