//! Bounded LRU page cache over a [`RandomFile`].
//!
//! This models the OS page cache / memory-mapped vertex arrays that
//! semi-out-of-core systems rely on. GridGraph "maintains vertex data using
//! memory-mapped arrays, thus experiences excessive page swaps with
//! insufficient memory" (paper §1.1) — the Table 6 ablation reproduces that
//! collapse by routing unbatched vertex access through this cache with a
//! capacity smaller than the vertex data.
//!
//! Eviction is strict LRU implemented with an intrusive doubly-linked list
//! over slot indices (O(1) hit and eviction), because the no-batching
//! configuration generates millions of misses.

use crate::disk::RandomFile;
use dfo_types::Result;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Hit/miss/eviction counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

struct Slot {
    page_no: u64,
    data: Vec<u8>,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Write-back LRU page cache over one file.
pub struct PageCache {
    file: RandomFile,
    page_size: usize,
    capacity: usize,
    /// Logical file length in bytes; pages beyond EOF read as zeros.
    len: u64,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
}

impl PageCache {
    /// Creates a cache of `capacity` pages of `page_size` bytes over `file`,
    /// treating it as `len` bytes long (extended lazily with zero pages).
    pub fn new(file: RandomFile, page_size: usize, capacity: usize, len: u64) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        assert!(capacity >= 1, "cache needs at least one page");
        Self {
            file,
            page_size,
            capacity,
            len,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads `buf.len()` bytes at `offset` through the cache.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        assert!(offset + buf.len() as u64 <= self.len, "read past logical EOF");
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / self.page_size as u64;
            let in_page = (pos % self.page_size as u64) as usize;
            let n = (self.page_size - in_page).min(buf.len() - done);
            let slot = self.fetch(page_no)?;
            buf[done..done + n].copy_from_slice(&self.slots[slot].data[in_page..in_page + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes `data` at `offset` through the cache (write-back).
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        assert!(offset + data.len() as u64 <= self.len, "write past logical EOF");
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page_no = pos / self.page_size as u64;
            let in_page = (pos % self.page_size as u64) as usize;
            let n = (self.page_size - in_page).min(data.len() - done);
            let slot = self.fetch(page_no)?;
            let s = &mut self.slots[slot];
            s.data[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            s.dirty = true;
            done += n;
        }
        Ok(())
    }

    /// Writes all dirty pages back to the file.
    pub fn flush(&mut self) -> Result<()> {
        // ensure the backing file is long enough once, then write pages
        if self.file.len()? < self.len {
            self.file.set_len(self.len)?;
        }
        for i in 0..self.slots.len() {
            if self.slots[i].dirty {
                let off = self.slots[i].page_no * self.page_size as u64;
                self.file.write_at(&self.slots[i].data, off)?;
                self.slots[i].dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Returns the slot index of `page_no`, loading/evicting as needed, and
    /// moves it to the MRU position.
    fn fetch(&mut self, page_no: u64) -> Result<usize> {
        if let Some(&slot) = self.map.get(&page_no) {
            self.stats.hits += 1;
            self.unlink(slot);
            self.push_front(slot);
            return Ok(slot);
        }
        self.stats.misses += 1;
        let slot = if self.slots.len() < self.capacity {
            let idx = self.slots.len();
            self.slots.push(Slot {
                page_no,
                data: vec![0u8; self.page_size],
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            idx
        } else {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.evict(victim)?;
            self.slots[victim].page_no = page_no;
            self.slots[victim].dirty = false;
            victim
        };
        self.load(slot, page_no)?;
        self.map.insert(page_no, slot);
        self.push_front(slot);
        Ok(slot)
    }

    fn evict(&mut self, slot: usize) -> Result<()> {
        self.stats.evictions += 1;
        let old_page = self.slots[slot].page_no;
        self.map.remove(&old_page);
        if self.slots[slot].dirty {
            if self.file.len()? < self.len {
                self.file.set_len(self.len)?;
            }
            let off = old_page * self.page_size as u64;
            // data is taken by reference; split borrow via raw indexing
            let data = std::mem::take(&mut self.slots[slot].data);
            self.file.write_at(&data, off)?;
            self.slots[slot].data = data;
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    fn load(&mut self, slot: usize, page_no: u64) -> Result<()> {
        let off = page_no * self.page_size as u64;
        let file_len = self.file.len()?;
        let avail = file_len.saturating_sub(off).min(self.page_size as u64) as usize;
        let data = &mut self.slots[slot].data;
        data[..].fill(0);
        if avail > 0 {
            let data = std::mem::take(&mut self.slots[slot].data);
            let mut data = data;
            self.file.read_at(&mut data[..avail], off)?;
            self.slots[slot].data = data;
        }
        Ok(())
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::NodeDisk;
    use tempfile::TempDir;

    fn cache(pages: usize, len: u64) -> (TempDir, PageCache) {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path(), None, false).unwrap();
        let f = d.open_random("pc.bin", true).unwrap();
        (td, PageCache::new(f, 64, pages, len))
    }

    #[test]
    fn read_zero_filled_fresh_file() {
        let (_t, mut c) = cache(4, 256);
        let mut buf = [1u8; 32];
        c.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn write_read_roundtrip_spanning_pages() {
        let (_t, mut c) = cache(4, 1024);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        c.write_at(30, &data).unwrap(); // spans pages 0..=3
        let mut out = vec![0u8; 200];
        c.read_at(30, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let (_t, mut c) = cache(2, 64 * 16);
        // write to 8 distinct pages with a 2-page cache
        for p in 0..8u64 {
            c.write_at(p * 64, &[p as u8 + 1; 64]).unwrap();
        }
        // read them all back (forces reload of evicted pages)
        for p in 0..8u64 {
            let mut buf = [0u8; 64];
            c.read_at(p * 64, &mut buf).unwrap();
            assert_eq!(buf, [p as u8 + 1; 64], "page {p}");
        }
        let st = c.stats();
        assert!(st.evictions > 0);
        assert!(st.writebacks > 0);
    }

    #[test]
    fn lru_order_keeps_hot_page() {
        let (_t, mut c) = cache(2, 64 * 8);
        let mut b = [0u8; 1];
        c.read_at(0, &mut b).unwrap(); // page 0
        c.read_at(64, &mut b).unwrap(); // page 1
        c.read_at(0, &mut b).unwrap(); // touch page 0 => MRU
        c.read_at(128, &mut b).unwrap(); // page 2 evicts page 1 (LRU)
        let misses_before = c.stats().misses;
        c.read_at(0, &mut b).unwrap(); // still cached
        assert_eq!(c.stats().misses, misses_before);
        c.read_at(64, &mut b).unwrap(); // was evicted => miss
        assert_eq!(c.stats().misses, misses_before + 1);
    }

    #[test]
    fn flush_then_reopen_sees_data() {
        let td = TempDir::new().unwrap();
        let d = NodeDisk::new(td.path(), None, false).unwrap();
        {
            let f = d.open_random("pc.bin", true).unwrap();
            let mut c = PageCache::new(f, 64, 2, 256);
            c.write_at(10, b"persisted").unwrap();
            c.flush().unwrap();
        }
        let f = d.open_random("pc.bin", false).unwrap();
        let mut c = PageCache::new(f, 64, 2, 256);
        let mut buf = [0u8; 9];
        c.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"persisted");
    }

    #[test]
    fn hit_ratio_reflects_capacity() {
        // sequential sweep over 16 pages with capacity 16: second sweep all hits
        let (_t, mut c) = cache(16, 64 * 16);
        let mut b = [0u8; 1];
        for p in 0..16u64 {
            c.read_at(p * 64, &mut b).unwrap();
        }
        let misses_after_first = c.stats().misses;
        for p in 0..16u64 {
            c.read_at(p * 64, &mut b).unwrap();
        }
        assert_eq!(c.stats().misses, misses_after_first);
        assert_eq!(misses_after_first, 16);
    }
}
