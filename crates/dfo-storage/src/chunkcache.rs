//! Memory-budgeted cache of *decoded* edge chunks plus a read-ahead
//! prefetcher — the engine's phase-4 I/O pipeline.
//!
//! DFOGraph's edge chunks are immutable after preprocessing, so an iterative
//! algorithm that would fit its working set in spare memory should not pay
//! the chunk read + decode cost on every `process_edges` call (GraphMP and
//! GraphH get their semi-external speedups from exactly this reuse). The
//! [`ChunkCache`] keeps decoded chunks under a *byte* budget with strict LRU
//! eviction, degrading gracefully to fully-out-of-core behaviour: budget 0
//! means the engine never allocates a cache at all.
//!
//! Values are type-erased (`Arc<dyn Any + Send + Sync>`) because this crate
//! sits below the chunk codec; the engine downcasts to its concrete decoded
//! type. Keys carry the index representation the chunk was decoded with —
//! the same on-disk chunk decoded as CSR and as DCSR are different in-memory
//! objects and cache separately.
//!
//! The [`Prefetcher`] overlaps chunk reads with `slot` compute: phase-4
//! workers visit destination batches in a known order, so a small pool of
//! background threads loads the chunks of the next few batches while the
//! current one is being processed. An in-flight table lets a consumer that
//! misses the cache wait for a load already in progress instead of issuing a
//! duplicate read.

use dfo_types::{ReprKind, Result};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Type-erased decoded chunk.
pub type CachedValue = Arc<dyn Any + Send + Sync>;

/// Identity of a decoded chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Source partition of the chunk's edges.
    pub partition: usize,
    /// Destination batch; `None` addresses the partition's dispatching
    /// graph (which is not batch-addressed).
    pub batch: Option<usize>,
    /// Index representation the chunk was decoded with (`read_from`'s
    /// `want` argument).
    pub repr: Option<ReprKind>,
}

/// Cumulative counters of one cache (monotone; callers diff snapshots for
/// per-call numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserted_bytes: u64,
    pub evicted_bytes: u64,
    /// Decoded bytes currently resident (always ≤ budget).
    pub resident_bytes: u64,
}

impl ChunkCacheStats {
    /// Counter movement since `earlier` (an older snapshot of the *same*
    /// cache): the cumulative fields come back as differences, while
    /// `resident_bytes` stays the current absolute value — residency is a
    /// level, not a flow. This is how job-scoped reports carve one job's
    /// window out of a cache whose counters are cumulative across runs.
    pub fn delta_since(&self, earlier: &ChunkCacheStats) -> ChunkCacheStats {
        ChunkCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserted_bytes: self.inserted_bytes.saturating_sub(earlier.inserted_bytes),
            evicted_bytes: self.evicted_bytes.saturating_sub(earlier.evicted_bytes),
            resident_bytes: self.resident_bytes,
        }
    }
}

struct Entry {
    value: CachedValue,
    bytes: u64,
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<ChunkKey, Entry>,
    /// Recency order: tick → key; the smallest tick is the LRU victim.
    lru: BTreeMap<u64, ChunkKey>,
    resident: u64,
    tick: u64,
}

enum SlotState {
    Pending,
    Done(Option<CachedValue>),
}

/// One in-flight load: consumers wait on it instead of re-reading the chunk.
pub struct InflightSlot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

impl InflightSlot {
    fn new() -> Self {
        Self { state: Mutex::new(SlotState::Pending), cond: Condvar::new() }
    }

    /// Blocks until the load finishes; `None` means the load failed (the
    /// caller falls back to a synchronous read, which surfaces the error).
    fn wait(&self) -> Option<CachedValue> {
        let mut st = self.state.lock();
        while matches!(*st, SlotState::Pending) {
            self.cond.wait(&mut st);
        }
        match &*st {
            SlotState::Done(v) => v.clone(),
            SlotState::Pending => unreachable!(),
        }
    }

    fn fulfill(&self, value: Option<CachedValue>) {
        *self.state.lock() = SlotState::Done(value);
        self.cond.notify_all();
    }
}

/// Byte-budgeted strict-LRU cache of decoded chunks, shared by all
/// `process_edges` calls of one node (and safe across its worker threads).
pub struct ChunkCache {
    budget: u64,
    inner: Mutex<Inner>,
    inflight: Mutex<HashMap<ChunkKey, Arc<InflightSlot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserted: AtomicU64,
    evicted: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache bounded to `budget` decoded bytes. A zero budget is
    /// legal but useless (every insert is refused) — the engine simply does
    /// not construct a cache in that case.
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            inner: Mutex::new(Inner::default()),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Consumer-side lookup: cache first, then any in-flight or completed
    /// prefetch of the same key (waiting for it instead of duplicating the
    /// read). Counts one hit or one miss.
    ///
    /// A fulfilled prefetch slot stays registered until consumed here, so a
    /// prefetched chunk that was immediately *evicted* (tiny budget) is
    /// still handed over — without this, a budget below the working set
    /// would make prefetch read every chunk twice (once in the pool, once
    /// synchronously), worse than no cache at all.
    pub fn lookup(&self, key: &ChunkKey) -> Option<CachedValue> {
        if let Some(v) = self.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        let slot = self.inflight.lock().get(key).cloned();
        if let Some(slot) = slot {
            let loaded = slot.wait();
            // consume the slot (first taker wins; racers re-probe the cache)
            let mut inflight = self.inflight.lock();
            if inflight.get(key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                inflight.remove(key);
            }
            drop(inflight);
            if let Some(v) = loaded {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(v);
            }
        } else if let Some(v) = self.touch(key) {
            // fulfilled between the first probe and the in-flight check:
            // loads insert into the cache before the slot is consumed
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Whether `key` is resident, without touching recency or counters
    /// (prefetch threads use this to skip already-cached work).
    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Inserts a decoded chunk of `bytes` decoded size, evicting LRU entries
    /// until it fits. A value larger than the whole budget is refused (the
    /// caller keeps its `Arc`; nothing resident is disturbed). Re-inserting
    /// a resident key keeps the existing entry.
    pub fn insert(&self, key: ChunkKey, value: CachedValue, bytes: u64) {
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.resident + bytes > self.budget {
            let (&t, &victim) = inner.lru.iter().next().expect("resident > 0 implies lru entries");
            inner.lru.remove(&t);
            let e = inner.map.remove(&victim).expect("lru and map agree");
            inner.resident -= e.bytes;
            self.evicted.fetch_add(e.bytes, Ordering::Relaxed);
        }
        inner.tick += 1;
        let t = inner.tick;
        inner.lru.insert(t, key);
        inner.map.insert(key, Entry { value, bytes, tick: t });
        inner.resident += bytes;
        self.inserted.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Drops every resident entry (counted as evictions). Called when the
    /// on-disk chunks are about to change (re-preprocessing a cluster).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.resident;
        inner.map.clear();
        inner.lru.clear();
        inner.resident = 0;
        self.evicted.fetch_add(dropped, Ordering::Relaxed);
    }

    pub fn stats(&self) -> ChunkCacheStats {
        ChunkCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted_bytes: self.inserted.load(Ordering::Relaxed),
            evicted_bytes: self.evicted.load(Ordering::Relaxed),
            resident_bytes: self.inner.lock().resident,
        }
    }

    /// Registers an in-flight load of `key`; `None` if one is already
    /// running (the caller should skip).
    fn begin_load(&self, key: ChunkKey) -> Option<Arc<InflightSlot>> {
        let mut inflight = self.inflight.lock();
        if inflight.contains_key(&key) {
            return None;
        }
        let slot = Arc::new(InflightSlot::new());
        inflight.insert(key, slot.clone());
        Some(slot)
    }

    /// Completes an in-flight load: inserts the value (if the load
    /// succeeded) and fulfills the slot. The slot stays registered until a
    /// consumer takes it in [`ChunkCache::lookup`] (or the prefetcher purges
    /// it on shutdown) so the handed-over `Arc` survives even if the cache
    /// insert was refused or immediately evicted.
    fn finish_load(&self, key: ChunkKey, slot: &InflightSlot, loaded: Option<(CachedValue, u64)>) {
        let value = loaded.as_ref().map(|(v, _)| v.clone());
        if let Some((v, bytes)) = loaded {
            self.insert(key, v, bytes);
        }
        slot.fulfill(value);
    }

    /// Drops any fulfilled-but-unconsumed slots for `keys` (loads still
    /// pending are left alone). The prefetcher calls this after joining its
    /// threads so abandoned read-ahead does not pin memory across calls.
    fn purge_inflight(&self, keys: &[ChunkKey]) {
        let mut inflight = self.inflight.lock();
        for key in keys {
            if let Some(slot) = inflight.get(key) {
                if matches!(*slot.state.lock(), SlotState::Done(_)) {
                    inflight.remove(key);
                }
            }
        }
    }

    /// Cache probe that refreshes recency on hit; no counters.
    fn touch(&self, key: &ChunkKey) -> Option<CachedValue> {
        let mut inner = self.inner.lock();
        let entry = inner.map.get(key)?;
        let (old_tick, value) = (entry.tick, entry.value.clone());
        inner.tick += 1;
        let t = inner.tick;
        inner.lru.remove(&old_tick);
        inner.lru.insert(t, *key);
        inner.map.get_mut(key).expect("checked above").tick = t;
        Some(value)
    }
}

/// One chunk load the prefetcher may run ahead of the consumer.
pub struct PrefetchJob {
    pub key: ChunkKey,
    /// Gating group (the destination batch index): the job runs only once
    /// the consumer frontier is within `depth` groups of it, which bounds
    /// read-ahead memory to roughly `depth` batches' worth of chunks.
    pub group: usize,
    /// Reads and decodes the chunk; returns the value and its decoded size.
    #[allow(clippy::type_complexity)]
    pub load: Box<dyn FnOnce() -> Result<(CachedValue, u64)> + Send>,
}

struct PrefetchState {
    next: usize,
    frontier: usize,
    stop: bool,
}

struct PrefetchShared {
    cache: Arc<ChunkCache>,
    /// `jobs[i]` is taken exactly once by the thread that claimed index `i`.
    jobs: Mutex<Vec<Option<PrefetchJob>>>,
    /// Group of each job, in claim order (non-decreasing by construction).
    groups: Vec<usize>,
    /// Key of each job, for purging unconsumed slots at shutdown.
    keys: Vec<ChunkKey>,
    depth: usize,
    state: Mutex<PrefetchState>,
    cond: Condvar,
}

/// Fulfills the in-flight slot even if the load panics, so consumers never
/// wait forever.
struct FulfillGuard<'a> {
    cache: &'a ChunkCache,
    key: ChunkKey,
    slot: Arc<InflightSlot>,
    loaded: Option<(CachedValue, u64)>,
}

impl Drop for FulfillGuard<'_> {
    fn drop(&mut self) {
        self.cache.finish_load(self.key, &self.slot, self.loaded.take());
    }
}

/// Background read-ahead pool over an ordered list of chunk loads.
///
/// Threads claim jobs in order but a job for group `g` only starts once the
/// consumer has claimed group `g − depth` (reported via
/// [`Prefetcher::notify_claimed`]). Dropping the pool stops and joins all
/// threads; at most one load per thread finishes after the stop signal.
pub struct Prefetcher {
    shared: Arc<PrefetchShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Loader-pool size cap: `depth` is a read-ahead *distance* (batches), not
/// a parallelism knob, so a deep horizon must not spawn a thread army
/// against one disk.
const MAX_PREFETCH_THREADS: usize = 4;

impl Prefetcher {
    /// Spawns `min(depth, jobs, MAX_PREFETCH_THREADS)` loader threads over
    /// `jobs` (must be sorted by `group`).
    pub fn spawn(cache: Arc<ChunkCache>, jobs: Vec<PrefetchJob>, depth: usize) -> Self {
        debug_assert!(jobs.windows(2).all(|w| w[0].group <= w[1].group), "jobs sorted by group");
        let depth = depth.max(1);
        let groups: Vec<usize> = jobs.iter().map(|j| j.group).collect();
        let n_threads = depth.min(groups.len()).min(MAX_PREFETCH_THREADS);
        let keys: Vec<ChunkKey> = jobs.iter().map(|j| j.key).collect();
        let shared = Arc::new(PrefetchShared {
            cache,
            groups,
            keys,
            jobs: Mutex::new(jobs.into_iter().map(Some).collect()),
            depth,
            state: Mutex::new(PrefetchState { next: 0, frontier: 0, stop: false }),
            cond: Condvar::new(),
        });
        let threads = (0..n_threads)
            .map(|_| {
                let sh = shared.clone();
                std::thread::spawn(move || prefetch_loop(sh))
            })
            .collect();
        Self { shared, threads }
    }

    /// The consumer claimed `group`; wakes loads now within `depth` of it.
    pub fn notify_claimed(&self, group: usize) {
        let mut st = self.shared.state.lock();
        if group > st.frontier {
            st.frontier = group;
            self.shared.cond.notify_all();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.stop = true;
        }
        self.shared.cond.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // all loads are fulfilled now; drop any nobody consumed so abandoned
        // read-ahead does not pin decoded chunks past this call
        self.shared.cache.purge_inflight(&self.shared.keys);
    }
}

fn prefetch_loop(sh: Arc<PrefetchShared>) {
    loop {
        let i = {
            let mut st = sh.state.lock();
            loop {
                if st.stop || st.next >= sh.groups.len() {
                    return;
                }
                if sh.groups[st.next] <= st.frontier + sh.depth {
                    let i = st.next;
                    st.next += 1;
                    break i;
                }
                sh.cond.wait(&mut st);
            }
        };
        let Some(job) = sh.jobs.lock()[i].take() else { continue };
        if sh.cache.contains(&job.key) {
            continue;
        }
        let Some(slot) = sh.cache.begin_load(job.key) else { continue };
        let mut guard = FulfillGuard { cache: &sh.cache, key: job.key, slot, loaded: None };
        guard.loaded = (job.load)().ok();
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn key(p: usize, b: usize) -> ChunkKey {
        ChunkKey { partition: p, batch: Some(b), repr: Some(ReprKind::Dcsr) }
    }

    fn val(n: u64) -> CachedValue {
        Arc::new(n)
    }

    #[test]
    fn hit_miss_and_byte_budget() {
        let c = ChunkCache::new(100);
        assert!(c.lookup(&key(0, 0)).is_none());
        c.insert(key(0, 0), val(1), 60);
        c.insert(key(0, 1), val(2), 30);
        assert_eq!(c.stats().resident_bytes, 90);
        let v = c.lookup(&key(0, 0)).expect("resident");
        assert_eq!(*v.downcast::<u64>().unwrap(), 1);
        // 60 + 30 + 40 > 100: evicts LRU until it fits. key(0,1) is LRU
        // (key(0,0) was just touched), so it goes; 60 + 40 fits.
        c.insert(key(0, 2), val(3), 40);
        assert!(c.lookup(&key(0, 0)).is_some());
        assert!(c.lookup(&key(0, 2)).is_some());
        assert!(c.lookup(&key(0, 1)).is_none());
        let st = c.stats();
        assert_eq!(st.evicted_bytes, 30);
        assert_eq!(st.resident_bytes, 100);
        assert_eq!(st.hits, 3);
        assert_eq!(st.misses, 2);
    }

    #[test]
    fn oversized_value_is_refused() {
        let c = ChunkCache::new(10);
        c.insert(key(0, 0), val(1), 11);
        assert!(!c.contains(&key(0, 0)));
        assert_eq!(c.stats().resident_bytes, 0);
        assert_eq!(c.stats().evicted_bytes, 0);
    }

    #[test]
    fn repr_is_part_of_the_key() {
        let c = ChunkCache::new(100);
        let csr = ChunkKey { partition: 0, batch: Some(0), repr: Some(ReprKind::Csr) };
        let dcsr = ChunkKey { partition: 0, batch: Some(0), repr: Some(ReprKind::Dcsr) };
        c.insert(csr, val(1), 10);
        assert!(c.contains(&csr));
        assert!(!c.contains(&dcsr));
    }

    #[test]
    fn clear_counts_as_eviction() {
        let c = ChunkCache::new(100);
        c.insert(key(0, 0), val(1), 40);
        c.clear();
        assert_eq!(c.stats().resident_bytes, 0);
        assert_eq!(c.stats().evicted_bytes, 40);
        assert!(c.lookup(&key(0, 0)).is_none());
    }

    #[test]
    fn lookup_waits_for_inflight_load() {
        let c = Arc::new(ChunkCache::new(1000));
        let slot = c.begin_load(key(1, 1)).expect("fresh key");
        assert!(c.begin_load(key(1, 1)).is_none(), "second registration refused");
        let waiter = {
            let c = c.clone();
            std::thread::spawn(move || c.lookup(&key(1, 1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        c.finish_load(key(1, 1), &slot, Some((val(7), 8)));
        let got = waiter.join().unwrap().expect("fulfilled");
        assert_eq!(*got.downcast::<u64>().unwrap(), 7);
        assert!(c.contains(&key(1, 1)), "fulfilled load is resident");
        assert_eq!(c.stats().hits, 1, "a wait on in-flight counts as a hit");
    }

    #[test]
    fn fulfilled_slot_survives_refused_insert() {
        // a budget too small for the chunk refuses the insert, but the
        // consumer still gets the loaded value through the slot — prefetch
        // must never make a tiny-budget run read a chunk twice
        let c = Arc::new(ChunkCache::new(10));
        let slot = c.begin_load(key(4, 0)).expect("fresh key");
        c.finish_load(key(4, 0), &slot, Some((val(5), 100)));
        assert!(!c.contains(&key(4, 0)), "oversized insert refused");
        let got = c.lookup(&key(4, 0)).expect("handed over via the slot");
        assert_eq!(*got.downcast::<u64>().unwrap(), 5);
        // consumed: a second lookup is a genuine miss
        assert!(c.lookup(&key(4, 0)).is_none());
        // purge of a consumed key is a no-op
        c.purge_inflight(&[key(4, 0)]);
    }

    #[test]
    fn failed_inflight_load_falls_back_to_miss() {
        let c = Arc::new(ChunkCache::new(1000));
        let slot = c.begin_load(key(2, 0)).expect("fresh key");
        let waiter = {
            let c = c.clone();
            std::thread::spawn(move || c.lookup(&key(2, 0)))
        };
        std::thread::sleep(Duration::from_millis(20));
        c.finish_load(key(2, 0), &slot, None);
        assert!(waiter.join().unwrap().is_none(), "failed load surfaces as a miss");
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn prefetcher_loads_within_depth_and_waits_beyond() {
        let cache = Arc::new(ChunkCache::new(1 << 20));
        let loaded: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<PrefetchJob> = (0..6)
            .map(|g| {
                let loaded = loaded.clone();
                PrefetchJob {
                    key: key(0, g),
                    group: g,
                    load: Box::new(move || {
                        loaded.lock().push(g);
                        Ok((val(g as u64), 16))
                    }),
                }
            })
            .collect();
        let pf = Prefetcher::spawn(cache.clone(), jobs, 2);
        // frontier starts at 0: groups 0..=2 may load, 3+ must wait
        std::thread::sleep(Duration::from_millis(50));
        {
            let l = loaded.lock();
            assert!(l.iter().all(|&g| g <= 2), "read-ahead past depth: {:?}", *l);
            assert!(l.contains(&0), "depth-0 job should have run");
        }
        pf.notify_claimed(3);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(loaded.lock().len(), 6, "frontier 3 unlocks all groups ≤ 5");
        for g in 0..6 {
            assert!(cache.contains(&key(0, g)), "group {g} cached");
        }
        drop(pf);
    }

    #[test]
    fn prefetcher_skips_resident_keys_and_stops_on_drop() {
        let cache = Arc::new(ChunkCache::new(1 << 20));
        cache.insert(key(0, 0), val(9), 8);
        let ran = Arc::new(AtomicU64::new(0));
        let jobs: Vec<PrefetchJob> = (0..2)
            .map(|g| {
                let ran = ran.clone();
                PrefetchJob {
                    key: key(0, g),
                    group: g,
                    load: Box::new(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                        Ok((val(0), 8))
                    }),
                }
            })
            .collect();
        let pf = Prefetcher::spawn(cache.clone(), jobs, 2);
        std::thread::sleep(Duration::from_millis(50));
        drop(pf); // joins
        assert_eq!(ran.load(Ordering::Relaxed), 1, "resident key skipped");
        // the cached value is the pre-inserted one, not a reload
        let v = cache.lookup(&key(0, 0)).unwrap();
        assert_eq!(*v.downcast::<u64>().unwrap(), 9);
    }

    #[test]
    fn stats_delta_carves_out_a_window() {
        let cache = ChunkCache::new(1 << 20);
        cache.insert(key(0, 0), val(1), 8);
        cache.lookup(&key(0, 0));
        cache.lookup(&key(9, 9)); // miss
        let before = cache.stats();
        cache.lookup(&key(0, 0));
        cache.lookup(&key(0, 0));
        cache.lookup(&key(9, 9)); // miss
        let d = cache.stats().delta_since(&before);
        assert_eq!((d.hits, d.misses), (2, 1));
        assert_eq!(d.inserted_bytes, 0);
        assert_eq!(d.resident_bytes, 8, "residency stays absolute");
    }

    #[test]
    fn panicking_load_still_fulfills_waiters() {
        let cache = Arc::new(ChunkCache::new(1 << 20));
        let jobs = vec![PrefetchJob {
            key: key(3, 0),
            group: 0,
            load: Box::new(|| panic!("corrupt chunk")),
        }];
        let pf = Prefetcher::spawn(cache.clone(), jobs, 1);
        // the panic kills the loader thread, but the guard fulfilled the
        // slot first, so a lookup degrades to a miss instead of hanging
        std::thread::sleep(Duration::from_millis(50));
        assert!(cache.lookup(&key(3, 0)).is_none());
        drop(pf);
    }
}
