//! Crash-consistency properties of the checkpoint manifests (paper §3.2):
//! a truncated, torn, or bit-flipped manifest is **never** loaded —
//! recovery always lands on the previous complete checkpoint. Mirrors the
//! frame-corruption proptests of the compression layer.

use dfo_storage::{NodeDisk, VersionedArrayStore};
use dfo_types::DfoError;
use proptest::prelude::*;
use tempfile::TempDir;

/// Batch contents of checkpoint `epoch`: every batch holds `epoch` in
/// every byte, so "which checkpoint did recovery load?" is readable from
/// any batch.
fn fill(epoch: u64) -> Vec<u8> {
    vec![epoch as u8; 8]
}

/// Creates a store with `n_batches` batches and commits `epochs` full
/// checkpoints (epoch `e` writes `fill(e)` everywhere), keeping two.
fn committed_store(n_batches: usize, epochs: u64) -> (TempDir, NodeDisk) {
    let td = TempDir::new().unwrap();
    let disk = NodeDisk::new(td.path(), None, false).unwrap();
    let mut s =
        VersionedArrayStore::create(disk.clone(), "arr", n_batches, |_| fill(0), true, 2).unwrap();
    for e in 1..=epochs {
        s.begin_epoch();
        for b in 0..n_batches {
            s.write_batch(b, &fill(e)).unwrap();
        }
        s.commit().unwrap();
    }
    (td, disk)
}

/// The three corruption modes the recovery path must survive.
#[derive(Clone, Copy, Debug)]
enum Damage {
    /// Cut the file at a byte offset (a torn write).
    Truncate,
    /// Flip one bit (rot, or a torn sector rewrite).
    BitFlip,
    /// Replace the whole file with unrelated bytes.
    Garbage,
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![Just(Damage::Truncate), Just(Damage::BitFlip), Just(Damage::Garbage)]
}

fn apply_damage(path: &std::path::Path, damage: Damage, at: usize, bit: u8) {
    let bytes = std::fs::read(path).unwrap();
    let damaged = match damage {
        Damage::Truncate => bytes[..at % bytes.len()].to_vec(),
        Damage::BitFlip => {
            let mut b = bytes;
            let i = at % b.len();
            b[i] ^= 1 << (bit % 8);
            b
        }
        Damage::Garbage => (0..bytes.len()).map(|i| (i as u8).wrapping_mul(37)).collect(),
    };
    std::fs::write(path, damaged).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Damaging the newest manifest must always fall back exactly one
    // checkpoint — never load garbage, never lose the array.
    #[test]
    fn corrupt_manifest_always_falls_back_one_checkpoint(
        n_batches in 1usize..5,
        epochs in 2u64..5,
        damage in damage_strategy(),
        at in 0usize..4096,
        bit in 0u8..8,
    ) {
        let (td, disk) = committed_store(n_batches, epochs);
        let manifest = td.path().join(format!("arr/meta/ckpt_{epochs}.bin"));
        apply_damage(&manifest, damage, at, bit);

        let s = VersionedArrayStore::recover(disk, "arr", n_batches, 2).unwrap();
        prop_assert_eq!(s.epoch(), epochs - 1, "recovery must land on the previous checkpoint");
        for b in 0..n_batches {
            prop_assert_eq!(
                s.read_batch(b).unwrap(),
                fill(epochs - 1),
                "batch {} must hold the previous checkpoint's data", b
            );
        }
    }

    // Same damage, but recovery must also leave the store fully usable:
    // committing on top of the fallen-back checkpoint and recovering
    // again round-trips the new data.
    #[test]
    fn fallback_store_commits_and_recovers_again(
        n_batches in 1usize..4,
        damage in damage_strategy(),
        at in 0usize..4096,
    ) {
        let (td, disk) = committed_store(n_batches, 3);
        let manifest = td.path().join("arr/meta/ckpt_3.bin");
        apply_damage(&manifest, damage, at, 3);

        let mut s = VersionedArrayStore::recover(disk.clone(), "arr", n_batches, 2).unwrap();
        s.begin_epoch();
        s.write_batch(0, &fill(9)).unwrap();
        s.commit().unwrap();
        drop(s);

        let s = VersionedArrayStore::recover(disk, "arr", n_batches, 2).unwrap();
        prop_assert_eq!(s.read_batch(0).unwrap(), fill(9));
        if n_batches > 1 {
            prop_assert_eq!(s.read_batch(1).unwrap(), fill(2), "untouched batch keeps epoch 2");
        }
    }

    // With every retained manifest damaged there is nothing valid left:
    // recovery must refuse (NoCheckpoint), not fabricate state.
    #[test]
    fn all_manifests_corrupt_is_no_checkpoint(
        n_batches in 1usize..4,
        damage in damage_strategy(),
        at in 0usize..4096,
        bit in 0u8..8,
    ) {
        let (td, disk) = committed_store(n_batches, 2);
        // keep = 2 retains the manifests of epochs 1 and 2
        for e in [1u64, 2] {
            let manifest = td.path().join(format!("arr/meta/ckpt_{e}.bin"));
            apply_damage(&manifest, damage, at, bit);
        }
        match VersionedArrayStore::recover(disk, "arr", n_batches, 2) {
            Err(DfoError::NoCheckpoint(_)) => {}
            Err(other) => panic!("want NoCheckpoint, got error {other:?}"),
            Ok(_) => panic!("recovery must not load a corrupt manifest"),
        }
    }
}
