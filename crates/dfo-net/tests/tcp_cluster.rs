//! TCP transport exercised in-process: several ranks, each on its own
//! thread, talking over real localhost sockets. Multi-*process* coverage
//! (via `Cluster::run_distributed`) lives in
//! `crates/dfo-core/tests/distributed.rs` and
//! `examples/distributed_pagerank.rs`.

use bytes::Bytes;
use dfo_net::{SimCluster, TcpCluster, TcpOpts};
use dfo_types::DfoError;
use std::net::TcpListener;
use std::time::Duration;

/// Reserves `n` distinct localhost ports. The listeners are dropped before
/// the mesh binds them — a small race, but ephemeral ports are not reused
/// immediately and the suite binds them back within milliseconds.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

fn opts() -> TcpOpts {
    TcpOpts { connect_timeout: Duration::from_secs(20), ..Default::default() }
}

/// Builds a `p`-rank TCP mesh on localhost, one thread per rank, and runs
/// `f(rank, endpoint)` on each.
fn with_mesh<F>(p: usize, f: F)
where
    F: Fn(usize, &dfo_net::Endpoint) + Sync,
{
    let peers = free_addrs(p);
    std::thread::scope(|s| {
        for rank in 0..p {
            let peers = peers.clone();
            let f = &f;
            s.spawn(move || {
                let ep = TcpCluster::connect(rank, &peers, None, false, opts()).unwrap();
                f(rank, &ep);
            });
        }
    });
}

#[test]
fn two_rank_stream_roundtrip() {
    with_mesh(2, |rank, ep| {
        if rank == 0 {
            ep.send(1, 7, Bytes::from_static(b"hello "), false).unwrap();
            ep.send(1, 7, Bytes::from_static(b"world"), true).unwrap();
        } else {
            assert_eq!(ep.recv_all(0, 7).unwrap(), b"hello world");
        }
        ep.barrier();
    });
}

#[test]
fn frames_preserve_order_and_chunking() {
    with_mesh(2, |rank, ep| {
        if rank == 0 {
            for i in 0..200u8 {
                ep.send(1, 3, Bytes::copy_from_slice(&[i]), false).unwrap();
            }
            ep.finish_stream(1, 3).unwrap();
        } else {
            assert_eq!(ep.recv_all(0, 3).unwrap(), (0..200u8).collect::<Vec<_>>());
        }
        ep.barrier();
    });
}

#[test]
fn concurrent_streams_demux_by_tag() {
    // two streams in flight from the same sender, interleaved on the wire;
    // the demux must route them to the right receivers by tag. Each stream
    // stays within the per-(peer, tag) queue depth: draining out of arrival
    // order *beyond* that bound would stall the reader on the full queue —
    // intended head-of-line backpressure, which the engine never triggers
    // (one live data stream per pair, collectives after streams drain).
    const N: u32 = 8;
    with_mesh(2, |rank, ep| {
        if rank == 0 {
            for i in 0..N {
                ep.send(1, 100, Bytes::copy_from_slice(&i.to_le_bytes()), false).unwrap();
                ep.send(1, 200, Bytes::copy_from_slice(&(i * 2).to_le_bytes()), false).unwrap();
            }
            ep.finish_stream(1, 100).unwrap();
            ep.finish_stream(1, 200).unwrap();
        } else {
            // drain tag 200 first even though tag 100 frames arrived first
            let b = ep.recv_all(0, 200).unwrap();
            let a = ep.recv_all(0, 100).unwrap();
            assert_eq!(a.len(), 4 * N as usize);
            assert_eq!(b.len(), 4 * N as usize);
            for i in 0..N {
                let off = (i * 4) as usize;
                assert_eq!(u32::from_le_bytes(a[off..off + 4].try_into().unwrap()), i);
                assert_eq!(u32::from_le_bytes(b[off..off + 4].try_into().unwrap()), i * 2);
            }
        }
        ep.barrier();
    });
}

#[test]
fn all_pairs_and_collectives_four_ranks() {
    let p = 4;
    with_mesh(p, |rank, ep| {
        for dst in 0..p {
            if dst != rank {
                ep.send(dst, 0, Bytes::copy_from_slice(&[rank as u8]), true).unwrap();
            }
        }
        for src in 0..p {
            if src != rank {
                assert_eq!(ep.recv_all(src, 0).unwrap(), vec![src as u8]);
            }
        }
        ep.barrier();
        assert_eq!(ep.allreduce_sum_u64(rank as u64 + 1), 10);
        assert_eq!(ep.allreduce_max_u64(rank as u64), 3);
        assert_eq!(ep.allreduce_min_u64(rank as u64 + 5), 5);
        let s = ep.allreduce_sum_f64(0.25);
        assert!((s - 1.0).abs() < 1e-12);
    });
}

#[test]
fn collectives_bit_match_sim_backend() {
    // rank-order folding must make float all-reduce bit-identical across
    // backends (the distributed-vs-sim acceptance bound relies on it)
    let vals = [0.1f64, 0.7, 1e-9];
    let sim: Vec<f64> = {
        let eps = SimCluster::build(3, None, false);
        std::thread::scope(|s| {
            let hs: Vec<_> = eps
                .iter()
                .map(|ep| s.spawn(move || ep.allreduce_sum_f64(vals[ep.rank()])))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let tcp: std::sync::Mutex<Vec<(usize, f64)>> = std::sync::Mutex::new(Vec::new());
    with_mesh(3, |rank, ep| {
        let out = ep.allreduce_sum_f64(vals[rank]);
        tcp.lock().unwrap().push((rank, out));
    });
    for (rank, out) in tcp.into_inner().unwrap() {
        assert_eq!(out.to_bits(), sim[rank].to_bits(), "rank {rank}");
    }
}

#[test]
fn stats_count_wire_bytes_like_sim() {
    with_mesh(2, |rank, ep| {
        if rank == 0 {
            ep.send(1, 2, Bytes::from_static(b"abcd"), true).unwrap();
            ep.barrier();
            assert_eq!(ep.stats().sent_bytes.get(), 4 + dfo_net::FRAME_HEADER_BYTES);
        } else {
            let _ = ep.recv_all(0, 2).unwrap();
            ep.barrier();
            assert_eq!(ep.stats().recv_bytes.get(), 4 + dfo_net::FRAME_HEADER_BYTES);
        }
    });
}

#[test]
fn throttle_paces_tcp_sender() {
    // 10 MB/s egress; 2 MB payload => >= ~150 ms even over loopback
    let peers = free_addrs(2);
    std::thread::scope(|s| {
        {
            let peers = peers.clone();
            s.spawn(move || {
                let ep = TcpCluster::connect(0, &peers, Some(10 << 20), false, opts()).unwrap();
                let start = std::time::Instant::now();
                let payload = Bytes::from(vec![0u8; 256 << 10]);
                for _ in 0..8 {
                    ep.send(1, 5, payload.clone(), false).unwrap();
                }
                ep.finish_stream(1, 5).unwrap();
                assert!(start.elapsed() >= Duration::from_millis(150));
                ep.barrier();
            });
        }
        let peers = peers.clone();
        s.spawn(move || {
            let ep = TcpCluster::connect(1, &peers, Some(10 << 20), false, opts()).unwrap();
            assert_eq!(ep.recv_all(0, 5).unwrap().len(), 2 << 20);
            ep.barrier();
        });
    });
}

#[test]
fn dropped_peer_surfaces_as_net_closed() {
    // rank 1 joins the mesh and leaves immediately; rank 0's blocking recv
    // must fail with NetClosed (EOF), not hang
    let peers = free_addrs(2);
    std::thread::scope(|s| {
        {
            let peers = peers.clone();
            s.spawn(move || {
                let ep = TcpCluster::connect(0, &peers, None, false, opts()).unwrap();
                match ep.recv_all(1, 9) {
                    Err(DfoError::NetClosed(_)) => {}
                    other => panic!("want NetClosed, got {other:?}"),
                }
            });
        }
        let peers = peers.clone();
        s.spawn(move || {
            let ep = TcpCluster::connect(1, &peers, None, false, opts()).unwrap();
            drop(ep); // clean teardown: write halves shut down, peers see EOF
        });
    });
}

#[test]
fn poison_fails_blocked_barrier_cluster_wide() {
    let panicked: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());
    with_mesh(3, |rank, ep| {
        if rank == 2 {
            // let the others block in the barrier, then abort the job
            std::thread::sleep(Duration::from_millis(100));
            ep.poison_collective();
            return;
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ep.barrier()));
        if r.is_err() {
            panicked.lock().unwrap().push(rank);
        }
    });
    let mut got = panicked.into_inner().unwrap();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1], "both survivors must abort, not hang");
}

#[test]
fn handshake_rejects_rank_out_of_range() {
    let peers = free_addrs(1);
    assert!(matches!(
        dfo_net::TcpTransport::connect(3, &peers, opts()),
        Err(DfoError::Handshake(_))
    ));
}

#[test]
fn stale_epoch_never_joins_the_mesh() {
    // rank 0 bootstraps at epoch 1; a rank-1 incarnation still on epoch 0
    // must be rejected (dropped hello → its dial keeps retrying until its
    // deadline), and rank 0 must keep waiting rather than accept it
    let peers = free_addrs(2);
    std::thread::scope(|s| {
        {
            let peers = peers.clone();
            s.spawn(move || {
                let o = TcpOpts { connect_timeout: Duration::from_secs(3), epoch: 1 };
                match TcpCluster::connect(0, &peers, None, false, o) {
                    Err(DfoError::Handshake(_)) => {} // timed out: stale peer never joined
                    Err(other) => panic!("epoch-1 rank 0: unexpected error {other:?}"),
                    Ok(_) => panic!("epoch-1 rank 0 must not complete its mesh"),
                }
            });
        }
        let peers = peers.clone();
        s.spawn(move || {
            let o = TcpOpts { connect_timeout: Duration::from_secs(3), epoch: 0 };
            match TcpCluster::connect(1, &peers, None, false, o) {
                Err(DfoError::Handshake(_)) => {}
                Err(other) => panic!("epoch-0 rank 1: unexpected error {other:?}"),
                Ok(_) => panic!("epoch-0 rank 1 must be rejected"),
            }
        });
    });
}

#[test]
fn mesh_rebuilds_on_same_addresses_under_new_epoch() {
    // checkpoint-restart re-bootstrap: tear a mesh down (including the
    // rank-0 listener), then bring it back up on the *same* addresses at
    // the next epoch — exercises the SO_REUSEADDR rebind path
    let peers = free_addrs(2);
    for epoch in 0..3u64 {
        let tcp = TcpOpts { connect_timeout: Duration::from_secs(20), epoch };
        std::thread::scope(|s| {
            for rank in 0..2 {
                let peers = peers.clone();
                let tcp = tcp.clone();
                s.spawn(move || {
                    let ep = TcpCluster::connect(rank, &peers, None, false, tcp).unwrap();
                    assert_eq!(ep.allreduce_sum_u64(epoch), 2 * epoch);
                    ep.barrier();
                });
            }
        });
    }
}

#[test]
fn single_rank_mesh_is_trivial() {
    let peers = free_addrs(1);
    let ep = TcpCluster::connect(0, &peers, None, false, opts()).unwrap();
    ep.barrier();
    assert_eq!(ep.allreduce_sum_u64(41), 41);
    assert_eq!(ep.nodes(), 1);
}

#[test]
fn pending_control_frames_never_stall_engine_traffic() {
    // The job-control guard: a slow consumer on the reserved control
    // tag-space (CTRL_TAG_BIT) must not head-of-line-block engine streams,
    // `exchange_bytes`-style all-to-all traffic, or collectives from the
    // same peer. This models a resident daemon whose rank 0 has fanned out
    // control frames that rank 1 has not picked up yet (a "slow client"
    // situation) while engine traffic keeps flowing.
    //
    // The per-(peer, tag) demux queue holds DEMUX_QUEUE_DEPTH frames before
    // the peer's reader thread blocks — so the test parks one frame *less*
    // than the bound on the control tag (the documented outstanding budget
    // any control-plane sender must respect; the daemon keeps it at 1) and
    // then proves every engine-side primitive still completes.
    use dfo_net::{CTRL_TAG_BIT, DEMUX_QUEUE_DEPTH};
    const ROUNDS: usize = 4;
    with_mesh(2, |rank, ep| {
        if rank == 0 {
            // park control frames at rank 1: sent, enqueued, not consumed
            for i in 0..(DEMUX_QUEUE_DEPTH - 1) as u8 {
                ep.send(1, CTRL_TAG_BIT, Bytes::copy_from_slice(&[i]), false).unwrap();
            }
        }
        ep.barrier(); // control frames are in flight or queued at rank 1
                      // engine traffic in both directions while the control frames sit
                      // queued: streams on call-sequence tags, then collectives
        for round in 0..ROUNDS as u64 {
            let payload = vec![round as u8; 64 << 10];
            let to = 1 - rank;
            std::thread::scope(|s| {
                s.spawn(|| ep.send_stream(to, round, Bytes::from(payload.clone())).unwrap());
                let got = ep.recv_all(to, round).unwrap();
                assert_eq!(got.len(), 64 << 10);
                assert!(got.iter().all(|b| *b == round as u8));
            });
            assert_eq!(ep.allreduce_sum_u64(round + 1), 2 * (round + 1));
        }
        ep.barrier();
        // only now does rank 1 drain the control tag; everything is there,
        // in order, untouched by the interleaved engine traffic
        if rank == 0 {
            ep.finish_stream(1, CTRL_TAG_BIT).unwrap();
        } else {
            let ctrl = ep.recv_all(0, CTRL_TAG_BIT).unwrap();
            assert_eq!(ctrl, (0..(DEMUX_QUEUE_DEPTH - 1) as u8).collect::<Vec<_>>());
        }
        ep.barrier();
    });
}

#[test]
fn back_to_back_streams_on_one_tag_all_arrive() {
    // Tag reuse: the control channel sends every message as a complete
    // stream on the single CTRL_TAG_BIT tag, so consecutive messages can
    // both be sitting in the same demux queue before the receiver pops the
    // first. Popping a `last` frame must only reclaim the queue slot when
    // nothing is buffered behind it — discarding the rest would silently
    // lose the next message (a job fan-out, with the mesh then deadlocked
    // on the job that never started everywhere).
    use dfo_net::CTRL_TAG_BIT;
    const MSGS: usize = 5;
    with_mesh(2, |rank, ep| {
        if rank == 0 {
            for i in 0..MSGS {
                let payload = vec![i as u8; 100 + i];
                ep.send_stream(1, CTRL_TAG_BIT, Bytes::from(payload)).unwrap();
            }
        }
        // the release frame trails rank 0's streams on the same connection,
        // so after this barrier every message is already queued at rank 1
        ep.barrier();
        if rank == 1 {
            for i in 0..MSGS {
                let got = ep.recv_all(0, CTRL_TAG_BIT).unwrap();
                assert_eq!(got, vec![i as u8; 100 + i], "message {i} lost or mangled");
            }
        }
        ep.barrier();
    });
}

#[test]
fn dead_job_queues_are_reclaimed_and_never_stall_overlapping_jobs() {
    // The concurrent-jobs guard, extending the stalled-consumer test above
    // to job namespaces: a job that dies mid-stream leaves frames nobody
    // will ever consume queued at its peers — and more still in flight.
    // After `reclaim_job` the dead job's per-(peer, tag) queues must be
    // gone and late frames dropped on arrival (even a push already blocked
    // on the full queue must unblock and drop), so the dead job neither
    // leaks queues nor head-of-line-blocks a live overlapping job.
    use dfo_net::DEMUX_QUEUE_DEPTH;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    with_mesh(2, |rank, ep| {
        let dying = ep.job_view(7, Arc::new(AtomicU64::new(0)));
        let healthy = ep.job_view(8, Arc::new(AtomicU64::new(0)));
        if rank == 0 {
            // job 7 "dies" on rank 1 mid-stream: fill its queue to the
            // exact depth bound with frames rank 1 never consumes
            for i in 0..DEMUX_QUEUE_DEPTH as u8 {
                dying.send(1, 3, Bytes::copy_from_slice(&[i]), false).unwrap();
            }
            ep.barrier(); // rank 1 reclaims job 7 after this
                          // late frames of the dead job: well past the queue bound, so
                          // rank 1's reader would stall here if they were still queued
                          // (the first push even starts against the still-full queue)
            for i in 0..(2 * DEMUX_QUEUE_DEPTH) as u8 {
                dying.send(1, 3, Bytes::copy_from_slice(&[i]), false).unwrap();
            }
            // the overlapping job is untouched throughout
            healthy.send_stream(1, 5, Bytes::from(vec![42u8; 64 << 10])).unwrap();
            ep.barrier();
        } else {
            ep.barrier(); // job-7 frames are queued (or in flight) here
            ep.reclaim_job(7);
            let got = healthy.recv_all(0, 5).unwrap();
            assert_eq!(got.len(), 64 << 10);
            assert!(got.iter().all(|b| *b == 42));
            ep.barrier();
        }
    });
}
