//! Real TCP transport backend: every rank is its own OS process.
//!
//! ## Wire protocol
//!
//! Each pair of ranks shares one full-duplex TCP connection carrying
//! [`Frame`]s in the binary codec of `frame.rs` (16-byte src/tag/len|last
//! header + payload). Each peer connection gets a dedicated *writer thread*
//! (serializes frames from a bounded queue, flushing whenever the queue
//! drains) and a *demux reader thread* (decodes incoming frames and routes
//! them to per-`(peer, tag)` bounded queues). The bounded queues plus TCP's
//! own flow control give end-to-end backpressure equivalent to the
//! simulation's bounded channels.
//!
//! ## Bootstrap
//!
//! Every rank knows the full peer address list (one `host:port` per rank;
//! see `EngineConfig::peers`). Rank `r` listens on `peers[r]`; each pair is
//! connected by the *higher* rank dialing the lower one — so rank 0 only
//! listens and every peer dials it, rank `P-1` only dials. Dialers retry
//! until the deadline, which makes process start order irrelevant. A
//! handshake (magic, protocol version, rank, cluster size, **epoch**)
//! validates both ends before the connection joins the mesh; the mesh is
//! complete before `connect` returns, i.e. before any `NodeCtx` is built on
//! top of it.
//!
//! ## Epochs and restart
//!
//! Checkpoint-restart (paper §3.2 over process relaunch) rebuilds the mesh
//! after a rank dies: survivors tear their transport down and re-enter this
//! bootstrap under an *incremented epoch*, while a supervisor relaunches
//! the dead rank with the same epoch (`DFO_EPOCH`). The epoch rides in the
//! hello: a listener silently drops hellos from any other epoch (a stale
//! incarnation's late dial can never join the new mesh), and a dialer whose
//! hello is dropped — or whose ack carries a different epoch — keeps
//! retrying until the deadline, because the peer may simply not have
//! finished tearing down the old mesh yet. Listeners bind with
//! `SO_REUSEADDR` so a surviving rank can re-listen on its fixed address
//! immediately, even while sockets of the previous mesh linger in
//! `TIME_WAIT`.
//!
//! ## Collectives
//!
//! The shared-memory [`crate::Collective`] cannot span processes, so the
//! barrier and all-reduces are reimplemented as point-to-point messages
//! relayed through rank 0: everyone sends its value to rank 0, rank 0 folds
//! in rank order (bit-identical to the simulation's slot fold) and
//! broadcasts the result. Collective streams use tags with the top bit set
//! ([`crate::tag::COLL_TAG_BIT`]), a namespace the engine's call-sequence
//! tags never reach; the full tag (namespace base + per-namespace sequence
//! number) comes from the caller, so collectives of concurrent job
//! namespaces relay through rank 0 without ever matching each other's
//! frames. A dead peer (EOF, reset, or an explicit `poison`) fails the
//! collective with `NetClosed` on every survivor instead of hanging, and a
//! failed collective poisons the local mesh so the error cascades.

use crate::endpoint::Endpoint;
use crate::frame::Frame;
use crate::sim::CHANNEL_DEPTH;
use crate::tag;
use crate::transport::Transport;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use dfo_types::codec::{read_u32, read_u64, write_u32, write_u64};
use dfo_types::{DfoError, Rank, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `"DFOG"` + protocol tag; rejects accidental cross-talk with anything
/// that is not a DFOGraph mesh peer.
const MAGIC: u64 = 0x4446_4f47_4d45_5348; // "DFOGMESH"
const PROTO_VERSION: u32 = 2; // v2: hello carries the mesh epoch

/// Frames buffered per (peer, tag) on the receive side before the demux
/// reader stops reading from that peer's socket (backpressure).
const QUEUE_DEPTH: usize = CHANNEL_DEPTH;

/// Dead job namespaces remembered per peer so a reclaimed job's in-flight
/// frames are dropped on arrival rather than resurrecting its queues. A
/// bounded FIFO: once more than this many jobs have been reclaimed, the
/// oldest is forgotten — by then its stragglers have long since drained
/// (frames of a forgotten dead job would sit in an orphaned queue until
/// the transport drops, bounded by `QUEUE_DEPTH` frames each).
const DEAD_JOBS_REMEMBERED: usize = 64;

/// Public alias of the per-(peer, tag) demux queue depth, so control-plane
/// code (and the head-of-line guard test) can state its outstanding-frame
/// budget against the real number.
pub const DEMUX_QUEUE_DEPTH: usize = QUEUE_DEPTH;

/// Socket buffer sizing for the codec threads.
const IO_BUF: usize = 256 << 10;

/// Bootstrap options for [`TcpCluster::connect`].
#[derive(Clone, Debug)]
pub struct TcpOpts {
    /// Deadline for the whole mesh to come up (dial retries + handshakes).
    pub connect_timeout: Duration,
    /// Mesh epoch announced in the handshake; connections from any other
    /// epoch are rejected. Bumped once per checkpoint-restart recovery so a
    /// dead incarnation's sockets can never rejoin.
    pub epoch: u64,
}

impl Default for TcpOpts {
    fn default() -> Self {
        Self { connect_timeout: Duration::from_secs(30), epoch: 0 }
    }
}

/// Builder for the multi-process cluster: joins the TCP mesh and returns
/// this rank's [`Endpoint`].
pub struct TcpCluster;

impl TcpCluster {
    /// Establishes the full mesh for `rank` (blocking until every pair is
    /// connected and handshaken) and wraps it in an [`Endpoint`] with the
    /// same throttle/accounting semantics as the in-process cluster.
    pub fn connect(
        rank: Rank,
        peers: &[String],
        net_bw: Option<u64>,
        record_traffic: bool,
        opts: TcpOpts,
    ) -> Result<Endpoint> {
        let transport = TcpTransport::connect(rank, peers, opts)?;
        Ok(Endpoint::new(rank, peers.len(), Box::new(transport), net_bw, record_traffic))
    }
}

// ---------------------------------------------------------------------------
// handshake

fn handshake_err(msg: impl Into<String>) -> DfoError {
    DfoError::Handshake(msg.into())
}

fn write_hello(s: &mut TcpStream, rank: Rank, p: usize, epoch: u64) -> std::io::Result<()> {
    write_u64(s, MAGIC)?;
    write_u32(s, PROTO_VERSION)?;
    write_u32(s, rank as u32)?;
    write_u32(s, p as u32)?;
    write_u64(s, epoch)
}

fn read_hello(s: &mut TcpStream) -> Result<(Rank, usize, u64)> {
    let magic = read_u64(s).map_err(|e| handshake_err(format!("reading hello: {e}")))?;
    if magic != MAGIC {
        return Err(handshake_err(format!("bad magic {magic:#x}: not a DFOGraph mesh peer")));
    }
    let ver = read_u32(s).map_err(|e| handshake_err(format!("reading hello: {e}")))?;
    if ver != PROTO_VERSION {
        return Err(handshake_err(format!("protocol version mismatch: {ver} != {PROTO_VERSION}")));
    }
    let rank = read_u32(s).map_err(|e| handshake_err(format!("reading hello: {e}")))? as Rank;
    let p = read_u32(s).map_err(|e| handshake_err(format!("reading hello: {e}")))? as usize;
    let epoch = read_u64(s).map_err(|e| handshake_err(format!("reading hello: {e}")))?;
    Ok((rank, p, epoch))
}

// ---------------------------------------------------------------------------
// demux: per-(peer, tag) bounded frame queues

struct PeerState {
    queues: HashMap<u64, VecDeque<Frame>>,
    /// Job namespaces reclaimed on this endpoint (newest last, bounded by
    /// [`DEAD_JOBS_REMEMBERED`]): frames whose tag falls in one of these
    /// are dropped on arrival instead of queued.
    dead_jobs: VecDeque<u64>,
    /// Why the peer is gone, once it is; queued frames still drain first.
    closed: Option<String>,
}

impl PeerState {
    fn job_is_dead(&self, frame_tag: u64) -> bool {
        self.dead_jobs.iter().any(|&job| tag::tag_in_job(frame_tag, job))
    }
}

struct PeerSlot {
    state: Mutex<PeerState>,
    cv: Condvar,
}

struct Demux {
    slots: Vec<PeerSlot>,
}

impl Demux {
    fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            slots: (0..p)
                .map(|_| PeerSlot {
                    state: Mutex::new(PeerState {
                        queues: HashMap::new(),
                        dead_jobs: VecDeque::new(),
                        closed: None,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
        })
    }

    /// Routes one incoming frame; blocks while its queue is full (which in
    /// turn stalls the reader thread and lets TCP flow control push back on
    /// the sender). Frames of a reclaimed job namespace are dropped — the
    /// dead-job check repeats after every wakeup, so a reader blocked on a
    /// queue that [`Demux::reclaim_job`] then discards unblocks and drops
    /// instead of resurrecting it. Errors only when the slot was closed
    /// locally.
    fn push(&self, src: Rank, frame: Frame) -> std::result::Result<(), ()> {
        let slot = &self.slots[src];
        let mut st = slot.state.lock();
        loop {
            if st.closed.is_some() {
                return Err(());
            }
            if st.job_is_dead(frame.tag) {
                return Ok(()); // late frame of a reclaimed job: drop it
            }
            let q = st.queues.entry(frame.tag).or_default();
            if q.len() < QUEUE_DEPTH {
                q.push_back(frame);
                slot.cv.notify_all();
                return Ok(());
            }
            slot.cv.wait(&mut st);
        }
    }

    /// Next frame of stream `tag` from `src`. Frames already queued when
    /// the peer died still drain; afterwards every pop fails.
    fn pop(&self, src: Rank, tag: u64) -> Result<Frame> {
        let slot = &self.slots[src];
        let mut st = slot.state.lock();
        loop {
            if let Some(q) = st.queues.get_mut(&tag) {
                if let Some(f) = q.pop_front() {
                    if f.last && q.is_empty() {
                        // stream finished: reclaim the queue slot — but only
                        // when nothing is buffered behind it. Tags are reused
                        // for back-to-back streams (the control channel sends
                        // every message on one tag), so frames of the *next*
                        // stream may already sit in this queue and must not
                        // be discarded with the finished one.
                        st.queues.remove(&tag);
                    }
                    slot.cv.notify_all();
                    return Ok(f);
                }
            }
            if let Some(why) = &st.closed {
                return Err(DfoError::NetClosed(format!("peer {src}: {why}")));
            }
            slot.cv.wait(&mut st);
        }
    }

    fn close(&self, src: Rank, why: &str) {
        let slot = &self.slots[src];
        let mut st = slot.state.lock();
        if st.closed.is_none() {
            st.closed = Some(why.to_string());
        }
        slot.cv.notify_all();
    }

    fn close_all(&self, why: &str) {
        for src in 0..self.slots.len() {
            self.close(src, why);
        }
    }

    /// Discards every queue of job `job_id`'s tag namespace on every peer
    /// slot and remembers the job as dead (bounded memory, see
    /// [`DEAD_JOBS_REMEMBERED`]) so frames of it still in flight are
    /// dropped on arrival. Control queues are untouched — control tags
    /// belong to no job. Wakes all waiters: a reader thread blocked pushing
    /// into a discarded (previously full) queue re-checks and drops.
    fn reclaim_job(&self, job_id: u64) {
        for slot in &self.slots {
            let mut st = slot.state.lock();
            st.queues.retain(|&tag, _| !tag::tag_in_job(tag, job_id));
            if !st.dead_jobs.contains(&job_id) {
                st.dead_jobs.push_back(job_id);
                if st.dead_jobs.len() > DEAD_JOBS_REMEMBERED {
                    st.dead_jobs.pop_front();
                }
            }
            slot.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// per-peer codec threads

fn writer_loop(rx: Receiver<Frame>, stream: TcpStream) {
    let mut w = BufWriter::with_capacity(IO_BUF, stream);
    'outer: while let Ok(first) = rx.recv() {
        if first.write_to(&mut w).is_err() {
            break;
        }
        // batch whatever is already queued, then flush once
        loop {
            match rx.try_recv() {
                Ok(f) => {
                    if f.write_to(&mut w).is_err() {
                        break 'outer;
                    }
                }
                Err(TryRecvError::Empty) => {
                    if w.flush().is_err() {
                        break 'outer;
                    }
                    break;
                }
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
    }
    // dropping `rx` here disconnects the channel, so post-failure sends
    // surface as NetClosed at the caller instead of queuing into the void
    let _ = w.flush();
    if let Ok(stream) = w.into_inner() {
        let _ = stream.shutdown(Shutdown::Write);
    }
}

fn reader_loop(stream: TcpStream, peer: Rank, demux: Arc<Demux>) {
    let mut r = BufReader::with_capacity(IO_BUF, stream);
    loop {
        match Frame::read_from(&mut r) {
            Ok(Some(f)) => {
                if f.src != peer {
                    demux.close(peer, &format!("frame src {} on connection to {peer}", f.src));
                    return;
                }
                if demux.push(peer, f).is_err() {
                    return; // closed locally (poison/teardown)
                }
            }
            Ok(None) => {
                demux.close(peer, "connection closed");
                return;
            }
            Err(e) => {
                demux.close(peer, &e.to_string());
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// the transport

/// One rank's TCP mesh: per-peer writer threads, demux reader threads, and
/// rank-0-relayed collectives.
pub struct TcpTransport {
    rank: Rank,
    p: usize,
    writers: Vec<Option<Sender<Frame>>>,
    demux: Arc<Demux>,
    /// Raw socket handles kept for `poison` (shutdown wakes both codec
    /// threads and the remote peer).
    streams: Vec<Option<TcpStream>>,
    poisoned: AtomicBool,
    writer_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Joins the mesh as `rank` of `peers.len()` ranks. Blocks until every
    /// pairwise connection is up or the deadline passes.
    pub fn connect(rank: Rank, peers: &[String], opts: TcpOpts) -> Result<TcpTransport> {
        let p = peers.len();
        if rank >= p {
            return Err(handshake_err(format!("rank {rank} outside peer list of {p}")));
        }
        let deadline = Instant::now() + opts.connect_timeout;

        // bind before dialing anyone so lower ranks never observe a window
        // where our higher-rank dialers could outrun the listener.
        // SO_REUSEADDR lets a recovering rank re-listen on its fixed
        // address while sockets of the torn-down mesh are still in
        // TIME_WAIT.
        let listener = if rank + 1 < p {
            let l = bind_reuse(&peers[rank])
                .map_err(|e| handshake_err(format!("rank {rank} binding {}: {e}", peers[rank])))?;
            l.set_nonblocking(true)
                .map_err(|e| handshake_err(format!("listener nonblocking: {e}")))?;
            Some(l)
        } else {
            None
        };

        let mut streams: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();

        // dial every lower rank (retrying: start order must not matter)
        for dst in 0..rank {
            streams[dst] = Some(dial_handshake(&peers[dst], dst, rank, p, opts.epoch, deadline)?);
        }

        // accept every higher rank. A connection that fails the handshake
        // (port scan, health probe, dialer that died mid-handshake) is
        // *dropped* and accepting continues — that is the MAGIC check's
        // whole point — and so is a well-formed hello from a different
        // *epoch* (a stale incarnation, or a recovered peer that noticed
        // the failure before we did: it will redial); only a well-formed
        // same-epoch hello that is inconsistent with this mesh (wrong
        // size, bad or duplicate rank: a real peer that is misconfigured)
        // aborts the bootstrap.
        if let Some(listener) = listener {
            let expected = p - rank - 1;
            let mut accepted = 0;
            while accepted < expected {
                let (stream, _) = accept_retry(&listener, deadline)?;
                let Ok(mut stream) = configure(stream) else { continue };
                let Ok(left) = remaining(deadline) else {
                    return Err(handshake_err("mesh bootstrap timed out"));
                };
                if stream.set_read_timeout(Some(left)).is_err() {
                    continue;
                }
                let Ok((peer, peer_p, peer_epoch)) = read_hello(&mut stream) else { continue };
                if peer_epoch != opts.epoch {
                    continue; // stale (or too-new) epoch: reject, keep accepting
                }
                if peer_p != p || peer <= rank || peer >= p {
                    return Err(handshake_err(format!(
                        "rank {rank} accepted bogus hello: rank {peer} of {peer_p}"
                    )));
                }
                if streams[peer].is_some() {
                    return Err(handshake_err(format!("rank {peer} connected twice")));
                }
                if write_hello(&mut stream, rank, p, opts.epoch).is_err() {
                    continue; // peer died between hello and ack: drop it
                }
                if stream.set_read_timeout(None).is_err() {
                    continue;
                }
                streams[peer] = Some(stream);
                accepted += 1;
            }
        }

        // mesh complete: spin up the codec threads
        let demux = Demux::new(p);
        let mut writers: Vec<Option<Sender<Frame>>> = (0..p).map(|_| None).collect();
        let mut handles = Vec::new();
        for (peer, slot) in streams.iter().enumerate() {
            let Some(stream) = slot else { continue };
            let wstream =
                stream.try_clone().map_err(|e| handshake_err(format!("socket clone: {e}")))?;
            let rstream =
                stream.try_clone().map_err(|e| handshake_err(format!("socket clone: {e}")))?;
            let (tx, rx) = bounded::<Frame>(CHANNEL_DEPTH);
            writers[peer] = Some(tx);
            handles.push(std::thread::spawn(move || writer_loop(rx, wstream)));
            let demux2 = demux.clone();
            // readers are detached: they exit on peer EOF/error and must
            // never block local teardown behind a hung remote
            std::thread::spawn(move || reader_loop(rstream, peer, demux2));
        }

        Ok(TcpTransport {
            rank,
            p,
            writers,
            demux,
            streams,
            poisoned: AtomicBool::new(false),
            writer_handles: Mutex::new(handles),
        })
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(DfoError::NetClosed("cluster collective poisoned".into()));
        }
        Ok(())
    }

    fn coll_frame(&self, tag: u64, payload: Bytes) -> Frame {
        Frame { src: self.rank, tag, payload, last: true }
    }

    fn barrier_inner(&self, tag: u64) -> Result<()> {
        if self.rank == 0 {
            for src in 1..self.p {
                self.demux.pop(src, tag)?; // arrivals
            }
            for dst in 1..self.p {
                self.send_frame(dst, self.coll_frame(tag, Bytes::new()))?; // release
            }
        } else {
            self.send_frame(0, self.coll_frame(tag, Bytes::new()))?;
            self.demux.pop(0, tag)?;
        }
        Ok(())
    }

    /// Rank-0-relayed 8-byte all-reduce under the caller's collective tag:
    /// gather in rank order, fold at rank 0, broadcast. The rank-order fold
    /// makes float reductions bit-identical to the shared-memory backend.
    fn relay_reduce(
        &self,
        tag: u64,
        mine: [u8; 8],
        fold: &dyn Fn([u8; 8], [u8; 8]) -> [u8; 8],
    ) -> Result<[u8; 8]> {
        self.check_poisoned()?;
        if self.p == 1 {
            return Ok(mine);
        }
        let res = self.relay_reduce_inner(tag, mine, fold);
        if res.is_err() {
            self.poison();
        }
        res
    }

    fn relay_reduce_inner(
        &self,
        tag: u64,
        mine: [u8; 8],
        fold: &dyn Fn([u8; 8], [u8; 8]) -> [u8; 8],
    ) -> Result<[u8; 8]> {
        let payload8 = |f: &Frame| -> Result<[u8; 8]> {
            f.payload.as_ref().try_into().map_err(|_| {
                DfoError::Corrupt(format!(
                    "collective payload from {} is {} bytes, want 8",
                    f.src,
                    f.payload.len()
                ))
            })
        };
        if self.rank == 0 {
            let mut acc = mine;
            for src in 1..self.p {
                let f = self.demux.pop(src, tag)?;
                acc = fold(acc, payload8(&f)?);
            }
            for dst in 1..self.p {
                self.send_frame(dst, self.coll_frame(tag, Bytes::copy_from_slice(&acc)))?;
            }
            Ok(acc)
        } else {
            self.send_frame(0, self.coll_frame(tag, Bytes::copy_from_slice(&mine)))?;
            let f = self.demux.pop(0, tag)?;
            payload8(&f)
        }
    }
}

impl Transport for TcpTransport {
    fn send_frame(&self, dst: Rank, frame: Frame) -> Result<()> {
        self.check_poisoned()?;
        let tx = self.writers[dst].as_ref().expect("no connection to dst");
        tx.send(frame)
            .map_err(|_| DfoError::NetClosed(format!("send {} -> {dst}: peer gone", self.rank)))
    }

    fn recv_frame(&self, src: Rank, tag: u64) -> Result<Frame> {
        self.demux.pop(src, tag)
    }

    fn barrier(&self, tag: u64) -> Result<()> {
        self.check_poisoned()?;
        if self.p == 1 {
            return Ok(());
        }
        let res = self.barrier_inner(tag);
        if res.is_err() {
            // a failed collective is unrecoverable for the whole job:
            // poison locally so the error cascades through the mesh
            self.poison();
        }
        res
    }

    fn poison(&self) {
        if self.poisoned.swap(true, Ordering::AcqRel) {
            return;
        }
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.demux.close_all("cluster collective poisoned");
    }

    fn allreduce_u64(
        &self,
        tag: u64,
        v: u64,
        fold: &(dyn Fn(u64, u64) -> u64 + Sync),
    ) -> Result<u64> {
        let out = self.relay_reduce(tag, v.to_le_bytes(), &|a, b| {
            fold(u64::from_le_bytes(a), u64::from_le_bytes(b)).to_le_bytes()
        })?;
        Ok(u64::from_le_bytes(out))
    }

    fn allreduce_f64(
        &self,
        tag: u64,
        v: f64,
        fold: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<f64> {
        let out = self.relay_reduce(tag, v.to_le_bytes(), &|a, b| {
            fold(f64::from_le_bytes(a), f64::from_le_bytes(b)).to_le_bytes()
        })?;
        Ok(f64::from_le_bytes(out))
    }

    fn reclaim_job(&self, job_id: u64) {
        self.demux.reclaim_job(job_id);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // disconnect the writer channels: writer threads drain what is
        // queued, flush, shut down their write halves (peers see EOF), exit
        for w in self.writers.iter_mut() {
            w.take();
        }
        for h in self.writer_handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn configure(stream: TcpStream) -> Result<TcpStream> {
    stream.set_nodelay(true).map_err(|e| handshake_err(format!("setting TCP_NODELAY: {e}")))?;
    stream
        .set_nonblocking(false)
        .map_err(|e| handshake_err(format!("clearing nonblocking: {e}")))?;
    Ok(stream)
}

fn remaining(deadline: Instant) -> Result<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(handshake_err("mesh bootstrap timed out"));
    }
    Ok(left)
}

/// Dials `dst` and completes the epoch-checked handshake, retrying the
/// *whole* dial on any retryable outcome until the deadline: connection
/// refused/reset, EOF mid-handshake (the listener dropped our hello — it
/// is still on another epoch, or we raced its teardown), or an ack with a
/// different epoch. Only a well-formed same-epoch ack that is inconsistent
/// with this mesh (wrong rank or size: misconfiguration) is fatal.
fn dial_handshake(
    addr: &str,
    dst: Rank,
    rank: Rank,
    p: usize,
    epoch: u64,
    deadline: Instant,
) -> Result<TcpStream> {
    loop {
        let retry = |what: &str| -> Result<()> {
            if Instant::now() >= deadline {
                return Err(handshake_err(format!(
                    "rank {rank} dialing rank {dst}: mesh bootstrap timed out ({what})"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
            Ok(())
        };
        let stream = dial_retry(addr, deadline)
            .map_err(|e| handshake_err(format!("rank {rank} dialing rank {dst}: {e}")))?;
        let mut stream = configure(stream)?;
        if stream.set_read_timeout(Some(remaining(deadline)?)).is_err() {
            retry("timeout setup failed")?;
            continue;
        }
        if write_hello(&mut stream, rank, p, epoch).is_err() {
            retry("peer closed during hello")?;
            continue;
        }
        let (ack_rank, ack_p, ack_epoch) = match read_hello(&mut stream) {
            Ok(ack) => ack,
            Err(_) => {
                // EOF or timeout: the listener rejected our epoch or died;
                // keep dialing — it may re-enter bootstrap at our epoch
                retry("hello rejected")?;
                continue;
            }
        };
        if ack_epoch != epoch {
            retry("epoch mismatch")?;
            continue;
        }
        if ack_rank != dst || ack_p != p {
            return Err(handshake_err(format!(
                "dialed {addr} expecting rank {dst} of {p}, got rank {ack_rank} of {ack_p}"
            )));
        }
        stream.set_read_timeout(None).map_err(|e| handshake_err(e.to_string()))?;
        return Ok(stream);
    }
}

/// Binds a listener with `SO_REUSEADDR` so a recovering rank can re-listen
/// on its fixed address while connections of the previous mesh incarnation
/// are still in `TIME_WAIT` (plain `TcpListener::bind` would fail with
/// `EADDRINUSE` for up to a minute). Uses raw libc calls on Linux — no
/// crate dependency — for both IPv4 and IPv6; other platforms fall back to
/// the std bind, so their recovery rebind can hit `EADDRINUSE` until the
/// `TIME_WAIT` sockets expire (retried by the bootstrap deadline).
fn bind_reuse(addr: &str) -> std::io::Result<TcpListener> {
    let sa = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("no address: {addr}"))
    })?;
    #[cfg(target_os = "linux")]
    return bind_reuse_linux(&sa);
    #[cfg(not(target_os = "linux"))]
    TcpListener::bind(sa)
}

#[cfg(target_os = "linux")]
fn bind_reuse_linux(addr: &std::net::SocketAddr) -> std::io::Result<TcpListener> {
    use std::net::SocketAddr;
    use std::os::fd::FromRawFd;
    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    /// `struct sockaddr_in` (fields already in network byte order).
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }
    /// `struct sockaddr_in6`.
    #[repr(C)]
    struct SockaddrIn6 {
        family: u16,
        port_be: u16,
        flowinfo: u32,
        addr_be: [u8; 16],
        scope_id: u32,
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const std::ffi::c_void, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    unsafe {
        let fd = socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let fail = |fd: i32| -> std::io::Error {
            let e = std::io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return Err(fail(fd));
        }
        // octets() are already big-endian; keep their memory order
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockaddrIn {
                    family: AF_INET as u16,
                    port_be: v4.port().to_be(),
                    addr_be: u32::from_ne_bytes(v4.ip().octets()),
                    zero: [0; 8],
                };
                bind(
                    fd,
                    (&sa as *const SockaddrIn).cast(),
                    std::mem::size_of::<SockaddrIn>() as u32,
                )
            }
            SocketAddr::V6(v6) => {
                let sa = SockaddrIn6 {
                    family: AF_INET6 as u16,
                    port_be: v6.port().to_be(),
                    flowinfo: v6.flowinfo(),
                    addr_be: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                };
                bind(
                    fd,
                    (&sa as *const SockaddrIn6).cast(),
                    std::mem::size_of::<SockaddrIn6>() as u32,
                )
            }
        };
        if rc != 0 {
            return Err(fail(fd));
        }
        if listen(fd, 128) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Dials until the deadline. *Every* failure — refused connection, but also
/// transient name-resolution errors (the peer's DNS record may not exist
/// yet under orchestrators that register pods lazily) — is retried, so
/// process start order genuinely does not matter.
fn dial_retry(addr: &str, deadline: Instant) -> std::io::Result<TcpStream> {
    let mut last_err = None;
    while Instant::now() < deadline {
        let resolved = addr.to_socket_addrs().and_then(|mut it| {
            it.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("no address: {addr}"))
            })
        });
        match resolved.and_then(|a| TcpStream::connect_timeout(&a, Duration::from_millis(500))) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "mesh bootstrap timed out")
    }))
}

/// Accepts until the deadline. Transient accept failures (`WouldBlock` from
/// the nonblocking listener, but also e.g. `ECONNABORTED` when a dialer
/// resets before the accept completes) keep polling rather than aborting.
fn accept_retry(
    listener: &TcpListener,
    deadline: Instant,
) -> Result<(TcpStream, std::net::SocketAddr)> {
    loop {
        match listener.accept() {
            Ok(pair) => return Ok(pair),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(handshake_err(format!(
                        "mesh bootstrap timed out waiting for inbound peers (last: {e})"
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}
