//! The pluggable transport contract behind [`crate::Endpoint`].
//!
//! The engine talks to the cluster exclusively through [`crate::Endpoint`],
//! which owns the throttles and byte accounting and delegates frame movement
//! and collectives to a `Transport`. Two backends implement it:
//!
//! * [`crate::sim::SimTransport`] — every rank is a thread of one process;
//!   frames move through bounded in-memory channels and collectives hit a
//!   shared-memory barrier (the fast path).
//! * [`crate::tcp::TcpTransport`] — every rank is its own OS process;
//!   frames are serialized with the [`crate::Frame`] codec over per-peer TCP
//!   connections and collectives are point-to-point messages relayed through
//!   rank 0.
//!
//! The contract deliberately mirrors the small slice of MPI the paper's
//! system needs: tagged point-to-point streams, a barrier, and all-reduce.

use crate::frame::Frame;
use dfo_types::{Rank, Result};

/// Moves frames between ranks and synchronizes them.
///
/// # Contract
///
/// * `send_frame` blocks for backpressure (bounded peer buffers), never for
///   the receiver to *match* the stream: a sender can finish a stream before
///   the receiver opens it.
/// * `recv_frame(src, tag)` returns the next frame of stream `tag` from
///   `src` in send order. Backends without tag demultiplexing (the channel
///   backend, where exactly one stream per direction of a pair is live at a
///   time) may return the next frame from `src` regardless of tag; the
///   caller checks the tag.
/// * Collectives are SPMD: every rank calls the same collective in the same
///   order **per tag namespace** — the caller (the [`crate::Endpoint`])
///   supplies the full collective tag, combining its namespace base with a
///   per-namespace sequence number, so independent namespaces (the mesh
///   master plus any number of concurrent jobs, see [`crate::tag`]) may
///   interleave collectives freely on tag-demultiplexing backends. Fold
///   closures are only evaluated where the reduction happens (shared
///   memory, or rank 0 for relayed backends) and must be commutative-free
///   order-stable: both backends fold values in rank order so
///   floating-point reductions are bit-identical across backends.
/// * The channel backend's collectives hit one shared-memory rendezvous
///   and **ignore the tag** — it cannot isolate concurrent namespaces, so
///   overlapping jobs are only supported over the TCP backend (the
///   simulation runs ranks as threads of one process, where the engine
///   already serializes jobs per cluster).
/// * After `poison`, every pending and future operation on any rank's
///   endpoint fails with `DfoError::NetClosed` instead of blocking — the
///   moral equivalent of an MPI job abort.
pub trait Transport: Send + Sync {
    /// Queues one frame to `dst`, blocking on backpressure.
    fn send_frame(&self, dst: Rank, frame: Frame) -> Result<()>;

    /// Next frame of stream `tag` from `src` (see trait docs for the
    /// tag-matching latitude given to FIFO backends).
    fn recv_frame(&self, src: Rank, tag: u64) -> Result<Frame>;

    /// Blocks until every rank arrives at a barrier with this `tag`; fails
    /// if the cluster is poisoned or a peer died.
    fn barrier(&self, tag: u64) -> Result<()>;

    /// Marks the cluster dead, waking every blocked rank with an error.
    fn poison(&self);

    /// All-reduce over `u64` under collective tag `tag`; `fold` is applied
    /// in rank order where the reduction happens.
    fn allreduce_u64(
        &self,
        tag: u64,
        v: u64,
        fold: &(dyn Fn(u64, u64) -> u64 + Sync),
    ) -> Result<u64>;

    /// All-reduce over `f64` under collective tag `tag`, folded in rank
    /// order (bit-stable).
    fn allreduce_f64(
        &self,
        tag: u64,
        v: f64,
        fold: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<f64>;

    /// Drops receive-side resources of job namespace `job_id` (see
    /// [`crate::tag::job_tag_base`]): pending demux queues are discarded
    /// and frames of that job still in flight are dropped on arrival, so a
    /// job that died mid-stream can neither leak queues nor head-of-line
    /// block an overlapping job. No-op on backends without per-tag queues.
    fn reclaim_job(&self, _job_id: u64) {}
}
