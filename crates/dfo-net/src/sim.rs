//! In-process transport backend: ranks are threads, frames move through
//! bounded crossbeam channels, collectives hit the shared-memory
//! [`Collective`] fast path.
//!
//! This is the original simulation substrate of the reproduction. It
//! preserves the property DFOGraph's evaluation reasons about (transfer
//! time ≈ bytes / bandwidth per node, §4.5) while costing nothing to
//! bootstrap, so tests and benchmarks default to it.

use crate::collective::Collective;
use crate::frame::Frame;
use crate::transport::Transport;
use dfo_types::{DfoError, Rank, Result};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};

/// Frames in flight per (src, dst) pair; bounds receive-buffer memory like
/// the fixed in-memory buffers of the original implementation (Figure 3).
pub(crate) const CHANNEL_DEPTH: usize = 16;

/// Channel-based transport for one rank of an in-process cluster.
pub struct SimTransport {
    rank: Rank,
    out: Vec<Option<Sender<Frame>>>,
    inb: Vec<Option<Receiver<Frame>>>,
    collective: Arc<Collective>,
}

impl SimTransport {
    /// Wires `p` transports with a full matrix of bounded channels and one
    /// shared collective. Index `i` of the result belongs to rank `i`.
    pub fn build_mesh(p: usize) -> Vec<SimTransport> {
        assert!(p >= 1);
        // matrix of channels: chan[src][dst]
        let mut senders: Vec<Vec<Option<Sender<Frame>>>> = (0..p).map(|_| vec![None; p]).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Frame>>>> =
            (0..p).map(|_| vec![None; p]).collect();
        for src in 0..p {
            for dst in 0..p {
                if src == dst {
                    continue;
                }
                let (tx, rx) = bounded(CHANNEL_DEPTH);
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        let collective = Collective::new(p);
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (out, inb))| SimTransport {
                rank,
                out,
                inb,
                collective: collective.clone(),
            })
            .collect()
    }
}

impl Transport for SimTransport {
    fn send_frame(&self, dst: Rank, frame: Frame) -> Result<()> {
        self.out[dst]
            .as_ref()
            .expect("no channel to dst")
            .send(frame)
            .map_err(|_| DfoError::NetClosed(format!("send {} -> {}", self.rank, dst)))
    }

    /// Streams are FIFO per (src, dst) pair here — exactly one stream per
    /// direction is live at a time — so the tag is not used for
    /// demultiplexing; the caller verifies it.
    fn recv_frame(&self, src: Rank, _tag: u64) -> Result<Frame> {
        self.inb[src]
            .as_ref()
            .expect("no channel from src")
            .recv()
            .map_err(|_| DfoError::NetClosed(format!("recv {} <- {}", self.rank, src)))
    }

    /// The shared-memory collective is a single rendezvous — it cannot
    /// isolate concurrent tag namespaces, so the tag is ignored. Exactly
    /// one job's collectives may be live at a time on this backend (see
    /// the [`Transport`] trait docs); concurrent jobs need the TCP
    /// backend's tag-demultiplexed relay.
    fn barrier(&self, _tag: u64) -> Result<()> {
        self.collective.barrier()
    }

    fn poison(&self) {
        self.collective.poison();
    }

    fn allreduce_u64(
        &self,
        _tag: u64,
        v: u64,
        fold: &(dyn Fn(u64, u64) -> u64 + Sync),
    ) -> Result<u64> {
        self.collective.allreduce_u64(self.rank, v, fold)
    }

    fn allreduce_f64(
        &self,
        _tag: u64,
        v: f64,
        fold: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<f64> {
        self.collective.allreduce_f64(self.rank, v, fold)
    }
}
