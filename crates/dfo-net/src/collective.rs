//! Shared-memory barrier and all-reduce — the collective fast path of the
//! in-process backend.
//!
//! DFOGraph needs exactly two collectives: phase barriers and summing the
//! per-node partial results of `ProcessEdges`/`ProcessVertices` UDFs. Both
//! are implemented over a shared slot array with two barrier rounds (write
//! slots → barrier → read all → barrier), which keeps consecutive
//! collectives from racing each other. The TCP backend reimplements the
//! same semantics over point-to-point messages relayed through rank 0
//! (see `tcp.rs`); values are folded in rank order in both so results are
//! bit-identical across backends.

use dfo_types::{DfoError, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

/// Shared collective state for a `P`-node cluster.
///
/// The barrier is *poisonable*: when a node dies (panic or error), the
/// cluster runner poisons the collective so surviving nodes blocked in a
/// barrier fail with [`DfoError::NetClosed`] instead of hanging — the moral
/// equivalent of an MPI job abort, and what the §3.2 recovery tests rely
/// on.
pub struct Collective {
    p: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    slots_u64: Mutex<Vec<u64>>,
    slots_f64: Mutex<Vec<f64>>,
}

impl Collective {
    pub fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            p,
            state: Mutex::new(BarrierState { waiting: 0, generation: 0, poisoned: false }),
            cv: Condvar::new(),
            slots_u64: Mutex::new(vec![0; p]),
            slots_f64: Mutex::new(vec![0.0; p]),
        })
    }

    pub fn nodes(&self) -> usize {
        self.p
    }

    fn poisoned_err() -> DfoError {
        DfoError::NetClosed("cluster collective poisoned: a peer node died".into())
    }

    /// Blocks until all `P` node threads arrive; fails if the collective
    /// was poisoned (a peer died) — surfacing the cluster failure instead
    /// of deadlocking.
    pub fn barrier(&self) -> Result<()> {
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(Self::poisoned_err());
        }
        st.waiting += 1;
        if st.waiting == self.p {
            st.waiting = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            self.cv.wait(&mut st);
        }
        if st.poisoned {
            return Err(Self::poisoned_err());
        }
        Ok(())
    }

    /// Marks the collective dead and wakes all waiters.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// All-reduce over `u64` with an arbitrary associative fold, applied in
    /// rank order.
    pub fn allreduce_u64(
        &self,
        rank: usize,
        v: u64,
        fold: &(dyn Fn(u64, u64) -> u64 + Sync),
    ) -> Result<u64> {
        self.slots_u64.lock()[rank] = v;
        self.barrier()?;
        let out = {
            let slots = self.slots_u64.lock();
            slots.iter().copied().reduce(fold).expect("p >= 1")
        };
        self.barrier()?;
        Ok(out)
    }

    /// All-reduce over `f64`, folded in rank order.
    pub fn allreduce_f64(
        &self,
        rank: usize,
        v: f64,
        fold: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<f64> {
        self.slots_f64.lock()[rank] = v;
        self.barrier()?;
        let out = {
            let slots = self.slots_f64.lock();
            slots.iter().copied().reduce(fold).expect("p >= 1")
        };
        self.barrier()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_u64(c: &Collective, rank: usize, v: u64) -> u64 {
        c.allreduce_u64(rank, v, &|a, b| a + b).unwrap()
    }

    #[test]
    fn sum_across_threads() {
        let c = Collective::new(4);
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let c = c.clone();
                    s.spawn(move || sum_u64(&c, r, (r as u64 + 1) * 10))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&x| x == 100));
    }

    #[test]
    fn consecutive_reduces_do_not_race() {
        let c = Collective::new(3);
        std::thread::scope(|s| {
            for r in 0..3 {
                let c = c.clone();
                s.spawn(move || {
                    for round in 0..50u64 {
                        let got = sum_u64(&c, r, round);
                        assert_eq!(got, round * 3, "round {round} on rank {r}");
                    }
                });
            }
        });
    }

    #[test]
    fn max_reduce() {
        let c = Collective::new(2);
        let res: Vec<u64> = std::thread::scope(|s| {
            let h: Vec<_> = (0..2)
                .map(|r| {
                    let c = c.clone();
                    s.spawn(move || {
                        c.allreduce_u64(r, if r == 0 { 7 } else { 3 }, &|a, b| a.max(b)).unwrap()
                    })
                })
                .collect();
            h.into_iter().map(|x| x.join().unwrap()).collect()
        });
        assert_eq!(res, vec![7, 7]);
    }

    #[test]
    fn f64_sum() {
        let c = Collective::new(2);
        let res: Vec<f64> = std::thread::scope(|s| {
            let h: Vec<_> = (0..2)
                .map(|r| {
                    let c = c.clone();
                    s.spawn(move || c.allreduce_f64(r, 0.5 + r as f64, &|a, b| a + b).unwrap())
                })
                .collect();
            h.into_iter().map(|x| x.join().unwrap()).collect()
        });
        assert!((res[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn poison_fails_waiters_and_later_arrivals() {
        let c = Collective::new(2);
        std::thread::scope(|s| {
            let c2 = c.clone();
            let h = s.spawn(move || c2.barrier());
            // give the waiter time to block, then poison instead of arriving
            std::thread::sleep(std::time::Duration::from_millis(20));
            c.poison();
            assert!(matches!(h.join().unwrap(), Err(DfoError::NetClosed(_))));
        });
        assert!(matches!(c.barrier(), Err(DfoError::NetClosed(_))));
    }
}
