//! Per-node network endpoints, generic over the [`Transport`] backend.
//!
//! Streams are point-to-point and FIFO per (sender, receiver) pair: exactly
//! one stream may be live per direction of a pair at a time, identified by a
//! tag both sides agree on (the engine derives it from the `ProcessEdges`
//! call sequence number). Frames are throttled on egress at the sender and
//! on ingress at the receiver, so a node's aggregate send (receive) rate
//! never exceeds its NIC bandwidth no matter how many peers it talks to —
//! matching §4.5: "a node can simultaneously send/receive messages from/to
//! only one peer node at a time (communication with more peers only happens
//! given extra bandwidth)".
//!
//! The endpoint owns the throttles and byte accounting; the backend behind
//! it only moves frames. [`SimCluster`] builds endpoints over in-memory
//! channels; `TcpCluster` (in `tcp.rs`) builds the same endpoint over real
//! sockets, so the engine code is identical in both deployments.

use crate::frame::Frame;
use crate::sim::SimTransport;
use crate::tag::{job_tag_base, COLL_TAG_BIT};
use crate::transport::Transport;
use bytes::Bytes;
use dfo_storage::Throttle;
use dfo_types::{Counter, DfoError, Rank, Result, TrafficRecorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame size [`Endpoint::send_stream`] cuts payloads into; 256 KiB keeps
/// the per-frame header overhead ≪ 1 %.
pub const STREAM_CHUNK: usize = 256 << 10;

/// Per-peer direction counters inside [`NetStats`]: what this node
/// exchanged with one specific peer (wire bytes, frames).
#[derive(Default)]
pub struct PeerCounters {
    pub sent_bytes: Counter,
    pub sent_frames: Counter,
    pub recv_bytes: Counter,
}

/// Byte/message counters plus optional traffic time series for one node.
pub struct NetStats {
    pub sent_bytes: Counter,
    pub recv_bytes: Counter,
    pub sent_frames: Counter,
    pub sent_traffic: TrafficRecorder,
    pub recv_traffic: TrafficRecorder,
    /// Per-peer breakdown, indexed by peer rank (the self entry stays 0 —
    /// self-sends never touch the endpoint).
    pub per_peer: Vec<PeerCounters>,
}

impl NetStats {
    pub(crate) fn new(p: usize, record_traffic: bool) -> Self {
        Self {
            sent_bytes: Counter::new(),
            recv_bytes: Counter::new(),
            sent_frames: Counter::new(),
            sent_traffic: TrafficRecorder::new(record_traffic),
            recv_traffic: TrafficRecorder::new(record_traffic),
            per_peer: (0..p).map(|_| PeerCounters::default()).collect(),
        }
    }

    pub fn reset(&self) {
        self.sent_bytes.reset();
        self.recv_bytes.reset();
        self.sent_frames.reset();
        self.sent_traffic.reset();
        self.recv_traffic.reset();
        for pc in &self.per_peer {
            pc.sent_bytes.reset();
            pc.sent_frames.reset();
            pc.recv_bytes.reset();
        }
    }

    /// Current totals in the accumulable [`NetTotals`] form.
    pub fn totals(&self) -> NetTotals {
        NetTotals {
            sent_bytes: self.sent_bytes.get(),
            recv_bytes: self.recv_bytes.get(),
            sent_frames: self.sent_frames.get(),
        }
    }
}

/// Plain-value network totals, the accumulable form of [`NetStats`]. An
/// endpoint lives exactly one run (or one supervised attempt), so an owner
/// that wants telemetry to survive endpoint churn folds each endpoint's
/// stats into one of these as the endpoint retires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetTotals {
    /// Wire bytes sent (frame headers included).
    pub sent_bytes: u64,
    /// Wire bytes received.
    pub recv_bytes: u64,
    /// Frames sent.
    pub sent_frames: u64,
}

impl NetTotals {
    /// Adds an endpoint's current counters into the totals.
    pub fn add_stats(&mut self, s: &NetStats) {
        self.sent_bytes += s.sent_bytes.get();
        self.recv_bytes += s.recv_bytes.get();
        self.sent_frames += s.sent_frames.get();
    }
}

/// Builder for the in-process cluster: constructs `P` connected endpoints
/// over the channel-based [`SimTransport`] backend.
pub struct SimCluster;

impl SimCluster {
    /// Creates `p` endpoints. `net_bw` paces each node's egress and ingress
    /// independently (full duplex), `None` = unthrottled.
    pub fn build(p: usize, net_bw: Option<u64>, record_traffic: bool) -> Vec<Endpoint> {
        SimTransport::build_mesh(p)
            .into_iter()
            .enumerate()
            .map(|(rank, t)| Endpoint::new(rank, p, Box::new(t), net_bw, record_traffic))
            .collect()
    }
}

/// Collective-latency instrumentation attached to an [`Endpoint`] by
/// [`Endpoint::set_telemetry`]: a duration histogram every barrier and
/// allreduce observes, plus spans when tracing is on.
struct EndpointObs {
    telemetry: dfo_obs::Telemetry,
    collective_seconds: Arc<dfo_obs::ObsHistogram>,
}

/// One node's connection to the cluster, over either backend.
///
/// An endpoint is a *view* over a (possibly shared) transport: it carries a
/// tag-namespace base (see [`crate::tag`]) OR-ed into every stream and
/// collective tag, and its own collective sequence counter. The endpoint
/// built by [`Endpoint::new`] is the **master** view (namespace base 0);
/// [`Endpoint::job_view`] derives per-job views over the same transport so
/// concurrent jobs demultiplex into disjoint queues.
pub struct Endpoint {
    rank: Rank,
    p: usize,
    egress: Throttle,
    ingress: Throttle,
    stats: Arc<NetStats>,
    transport: Arc<dyn Transport>,
    /// Tag-namespace base OR-ed into every stream/collective tag (0 for
    /// the master view, [`job_tag_base`] for job views).
    tag_base: u64,
    /// This namespace's collective sequence number; SPMD discipline keeps
    /// it in lockstep across the ranks of the namespace, so
    /// `COLL_TAG_BIT | tag_base | seq` is the collective's stream tag.
    /// Shared (`Arc`) so an owner can hand a job's counter to several
    /// successive views of the same job — e.g. a post-job barrier that
    /// must continue the job's sequence, not restart it.
    coll_seq: Arc<AtomicU64>,
    obs: Option<EndpointObs>,
}

impl Endpoint {
    /// Wraps a connected transport with throttles and byte accounting.
    pub fn new(
        rank: Rank,
        p: usize,
        transport: Box<dyn Transport>,
        net_bw: Option<u64>,
        record_traffic: bool,
    ) -> Self {
        Self {
            rank,
            p,
            egress: Throttle::from_option(net_bw),
            ingress: Throttle::from_option(net_bw),
            stats: Arc::new(NetStats::new(p, record_traffic)),
            transport: Arc::from(transport),
            tag_base: 0,
            coll_seq: Arc::new(AtomicU64::new(0)),
            obs: None,
        }
    }

    /// Derives a view of this endpoint living in job `job_id`'s tag
    /// namespace: same transport, same byte accounting, same NIC throttles
    /// (concurrent jobs share the node's bandwidth, §4.5), but every
    /// stream and collective tag carries [`job_tag_base`]`(job_id)` and
    /// collectives count on `coll_seq`. The caller owns the counter so
    /// successive views of the same job (the job run, then a post-job
    /// barrier) continue one sequence; ranks must pass counters at equal
    /// positions, exactly like any SPMD collective discipline.
    ///
    /// Only meaningful on tag-demultiplexing transports (TCP): the channel
    /// backend's collectives ignore tags, so overlapping job views there
    /// would race one shared rendezvous.
    pub fn job_view(&self, job_id: u64, coll_seq: Arc<AtomicU64>) -> Endpoint {
        Endpoint {
            rank: self.rank,
            p: self.p,
            egress: self.egress.clone(),
            ingress: self.ingress.clone(),
            stats: self.stats.clone(),
            transport: self.transport.clone(),
            tag_base: job_tag_base(job_id),
            coll_seq,
            obs: None,
        }
    }

    /// Discards receive-side demux state of job `job_id`'s namespace and
    /// drops its late frames on arrival — call once a job's views are gone
    /// (success or failure) so a job that died mid-stream cannot leak
    /// queues or head-of-line-block an overlapping job.
    pub fn reclaim_job(&self, job_id: u64) {
        self.transport.reclaim_job(job_id);
    }

    /// Attaches telemetry: collective latencies feed a
    /// `dfo_net_collective_seconds` histogram under the context's labels,
    /// and barriers/allreduces open spans when the context traces. Called
    /// once at setup, before the endpoint crosses into worker threads.
    pub fn set_telemetry(&mut self, telemetry: dfo_obs::Telemetry) {
        let collective_seconds = telemetry.duration_histogram(
            "dfo_net_collective_seconds",
            "Latency of barriers and allreduces on this rank",
            &[],
        );
        self.obs = Some(EndpointObs { telemetry, collective_seconds });
    }

    #[inline]
    fn collective<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        match &self.obs {
            None => f(),
            Some(obs) => {
                let _span = obs.telemetry.span(name, "net");
                let t0 = std::time::Instant::now();
                let out = f();
                obs.collective_seconds.observe_duration(t0.elapsed());
                out
            }
        }
    }

    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn nodes(&self) -> usize {
        self.p
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Shared handle to the stats, outliving the endpoint (harnesses read
    /// totals after the node threads have finished).
    pub fn stats_arc(&self) -> Arc<NetStats> {
        self.stats.clone()
    }

    /// Sends one frame of the stream `tag` to `dst` (the tag is placed in
    /// this endpoint's namespace). Blocks while the egress throttle paces
    /// the transfer or the peer's buffer is full.
    pub fn send(&self, dst: Rank, tag: u64, payload: Bytes, last: bool) -> Result<()> {
        assert_ne!(dst, self.rank, "self-sends are handled node-locally by the engine");
        let frame = Frame { src: self.rank, tag: self.tag_base | tag, payload, last };
        let wire = frame.wire_bytes();
        self.egress.acquire(wire);
        self.stats.sent_bytes.add(wire);
        self.stats.sent_frames.add(1);
        self.stats.sent_traffic.record(wire);
        self.stats.per_peer[dst].sent_bytes.add(wire);
        self.stats.per_peer[dst].sent_frames.add(1);
        self.transport.send_frame(dst, frame)
    }

    /// Convenience: sends an empty final frame, closing stream `tag`.
    pub fn finish_stream(&self, dst: Rank, tag: u64) -> Result<()> {
        self.send(dst, tag, Bytes::new(), true)
    }

    /// Streams an entire payload to `dst` as [`STREAM_CHUNK`]-sized frames
    /// — zero-copy slices of the shared buffer — and closes the stream.
    pub fn send_stream(&self, dst: Rank, tag: u64, payload: Bytes) -> Result<()> {
        let mut off = 0;
        while off < payload.len() {
            let end = (off + STREAM_CHUNK).min(payload.len());
            self.send(dst, tag, payload.slice(off..end), false)?;
            off = end;
        }
        self.finish_stream(dst, tag)
    }

    /// Opens the receiving side of stream `tag` from `src` (matched in
    /// this endpoint's namespace).
    pub fn recv_stream(&self, src: Rank, tag: u64) -> StreamRecv<'_> {
        assert_ne!(src, self.rank);
        StreamRecv { ep: self, src, tag: self.tag_base | tag, done: false }
    }

    /// Receives an entire stream into one buffer (tests and small payloads).
    pub fn recv_all(&self, src: Rank, tag: u64) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut stream = self.recv_stream(src, tag);
        while let Some(chunk) = stream.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// The next collective tag of this namespace: the namespace base plus
    /// this view's sequence number, which SPMD discipline keeps in
    /// lockstep across ranks.
    fn next_coll_tag(&self) -> u64 {
        COLL_TAG_BIT | self.tag_base | self.coll_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Blocks until every rank arrives. Panics if the cluster is poisoned
    /// or a peer died mid-collective — with the [`DfoError`] itself as the
    /// panic payload, so the cluster runner can recover the typed error
    /// (telling a mesh failure apart from a user-code bug) instead of a
    /// formatted string.
    pub fn barrier(&self) {
        if let Err(e) = self.try_barrier() {
            std::panic::panic_any(e);
        }
    }

    /// Non-panicking [`Endpoint::barrier`]: a mesh failure comes back as a
    /// typed error. For callers outside the engine's catch-unwind runner —
    /// a resident daemon must survive a poisoned mesh, not unwind with it.
    pub fn try_barrier(&self) -> Result<()> {
        self.collective("barrier", || self.transport.barrier(self.next_coll_tag()))
    }

    /// Poisons the cluster collective: peers blocked in barriers abort
    /// instead of waiting for a node that will never arrive.
    pub fn poison_collective(&self) {
        self.transport.poison();
    }

    fn allreduce_u64_with(&self, v: u64, fold: &(dyn Fn(u64, u64) -> u64 + Sync)) -> u64 {
        self.collective("allreduce_u64", || {
            match self.transport.allreduce_u64(self.next_coll_tag(), v, fold) {
                Ok(out) => out,
                Err(e) => std::panic::panic_any(e),
            }
        })
    }

    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allreduce_u64_with(v, &|a, b| a + b)
    }

    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        self.collective("allreduce_f64", || {
            match self.transport.allreduce_f64(self.next_coll_tag(), v, &|a, b| a + b) {
                Ok(out) => out,
                Err(e) => std::panic::panic_any(e),
            }
        })
    }

    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        self.allreduce_u64_with(v, &|a, b| a.max(b))
    }

    /// Minimum across nodes — recovery uses it to agree on the last round
    /// committed *everywhere*.
    pub fn allreduce_min_u64(&self, v: u64) -> u64 {
        self.allreduce_u64_with(v, &|a, b| a.min(b))
    }
}

/// Receiving half of one stream; yields payload chunks until the sender's
/// final frame.
pub struct StreamRecv<'a> {
    ep: &'a Endpoint,
    src: Rank,
    tag: u64,
    done: bool,
}

impl StreamRecv<'_> {
    /// Returns the next payload chunk, or `None` once the stream is closed.
    /// Empty final frames are swallowed (they carry no data).
    pub fn next_chunk(&mut self) -> Result<Option<Bytes>> {
        loop {
            if self.done {
                return Ok(None);
            }
            let frame = self.ep.transport.recv_frame(self.src, self.tag)?;
            if frame.tag != self.tag {
                return Err(DfoError::Corrupt(format!(
                    "stream tag mismatch from {}: got {}, want {} (overlapping streams?)",
                    self.src, frame.tag, self.tag
                )));
            }
            let wire = frame.wire_bytes();
            self.ep.ingress.acquire(wire);
            self.ep.stats.recv_bytes.add(wire);
            self.ep.stats.recv_traffic.record(wire);
            self.ep.stats.per_peer[self.src].recv_bytes.add(wire);
            if frame.last {
                self.done = true;
                if frame.payload.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(frame.payload));
            }
            if !frame.payload.is_empty() {
                return Ok(Some(frame.payload));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn point_to_point_roundtrip() {
        let mut eps = SimCluster::build(2, None, false);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                e0.send(1, 7, Bytes::from_static(b"hello "), false).unwrap();
                e0.send(1, 7, Bytes::from_static(b"world"), true).unwrap();
            });
            let got = e1.recv_all(0, 7).unwrap();
            assert_eq!(got, b"hello world");
        });
    }

    #[test]
    fn streams_preserve_order() {
        let mut eps = SimCluster::build(2, None, false);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100u8 {
                    e0.send(1, 1, Bytes::copy_from_slice(&[i]), false).unwrap();
                }
                e0.finish_stream(1, 1).unwrap();
            });
            let got = e1.recv_all(0, 1).unwrap();
            assert_eq!(got, (0..100u8).collect::<Vec<_>>());
        });
    }

    #[test]
    fn tag_mismatch_is_error() {
        let mut eps = SimCluster::build(2, None, false);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                e0.send(1, 99, Bytes::from_static(b"x"), true).unwrap();
            });
            let mut stream = e1.recv_stream(0, 1);
            assert!(matches!(stream.next_chunk(), Err(DfoError::Corrupt(_))));
        });
    }

    #[test]
    fn throttle_paces_sender() {
        // 10 MB/s; 2 MB payload => >= ~200 ms
        let mut eps = SimCluster::build(2, Some(10 << 20), false);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let start = Instant::now();
                let payload = Bytes::from(vec![0u8; 256 << 10]);
                for _ in 0..8 {
                    e0.send(1, 5, payload.clone(), false).unwrap();
                }
                e0.finish_stream(1, 5).unwrap();
                assert!(start.elapsed() >= Duration::from_millis(150));
            });
            let got = e1.recv_all(0, 5).unwrap();
            assert_eq!(got.len(), 2 << 20);
        });
    }

    #[test]
    fn stats_count_wire_bytes() {
        let mut eps = SimCluster::build(2, None, false);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                e0.send(1, 2, Bytes::from_static(b"abcd"), true).unwrap();
            });
            let _ = e1.recv_all(0, 2).unwrap();
        });
        assert_eq!(e0.stats().sent_bytes.get(), 4 + crate::FRAME_HEADER_BYTES);
        assert_eq!(e1.stats().recv_bytes.get(), 4 + crate::FRAME_HEADER_BYTES);
    }

    #[test]
    fn all_pairs_concurrently() {
        let p = 4;
        let eps = SimCluster::build(p, None, false);
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || {
                    // every node sends its rank to every peer, then receives
                    for dst in 0..p {
                        if dst != ep.rank() {
                            ep.send(dst, 0, Bytes::copy_from_slice(&[ep.rank() as u8]), true)
                                .unwrap();
                        }
                    }
                    for src in 0..p {
                        if src != ep.rank() {
                            let got = ep.recv_all(src, 0).unwrap();
                            assert_eq!(got, vec![src as u8]);
                        }
                    }
                    ep.barrier();
                    assert_eq!(ep.allreduce_sum_u64(1), p as u64);
                });
            }
        });
    }
}
