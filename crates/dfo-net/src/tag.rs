//! The 64-bit tag layout: how streams, collectives, control messages and
//! **job namespaces** share one tag space.
//!
//! ```text
//!  bit 63    bit 62    bits 44..61        bits 0..43
//! ┌────────┬─────────┬────────────────┬──────────────────────────┐
//! │ COLL   │ CTRL    │ job field (18) │ stream / sequence number │
//! └────────┴─────────┴────────────────┴──────────────────────────┘
//! ```
//!
//! * **`COLL_TAG_BIT`** marks collective relay streams (barrier,
//!   all-reduce). The low bits carry the collective *sequence number*,
//!   which must advance in lockstep on every rank (SPMD discipline).
//! * **`CTRL_TAG_BIT`** marks job-control traffic (the resident daemon's
//!   spec fan-out). Control tags carry **no** job field: control is a
//!   mesh-level channel that outlives any job.
//! * The **job field** namespaces everything else. Field `0` is the
//!   *master* (mesh-level) namespace: out-of-job barriers, batch-mode
//!   runs, and every endpoint that never calls
//!   [`crate::Endpoint::job_view`]. Fields `1..=JOB_FIELD_MASK` belong to
//!   jobs: [`job_tag_base`] maps a job id onto them (wrapping), skipping
//!   `0` so job tags can never collide with the master namespace.
//!
//! This is what lets jobs **overlap** on one resident mesh: each job's
//! engine streams restart their call-sequence numbers at 0 and each job
//! counts its own collective sequence, yet two concurrent jobs (and the
//! mesh's own master collectives) still demultiplex into disjoint
//! per-`(peer, tag)` queues because their job fields differ.

/// Tag namespace bit reserved for collectives; engine stream tags are call
/// sequence numbers and never reach it.
pub const COLL_TAG_BIT: u64 = 1 << 63;

/// Tag namespace bit reserved for **job-control** traffic (the resident
/// service daemon's spec fan-out and the remote client protocol). Bit 63 is
/// collectives, engine stream tags are call-sequence numbers that never
/// leave the low bits — so control frames get their own per-(peer, tag)
/// demux queues and can never contend with engine streams or collectives.
///
/// Control senders must respect the demux head-of-line rule: at most
/// [`crate::DEMUX_QUEUE_DEPTH`] control frames may be outstanding (sent but
/// not yet received) per peer, because a full queue blocks the *reader
/// thread* for that peer and would then stall every tag from it. The
/// daemon bounds its concurrent fan-outs accordingly.
pub const CTRL_TAG_BIT: u64 = 1 << 62;

/// Bit position of the job field inside a tag.
pub const JOB_TAG_SHIFT: u32 = 44;

/// Width of the job field in bits.
pub const JOB_FIELD_BITS: u32 = 18;

/// Mask of the job field (after shifting right by [`JOB_TAG_SHIFT`]).
pub const JOB_FIELD_MASK: u64 = (1 << JOB_FIELD_BITS) - 1;

/// The tag-namespace base of job `job_id`: OR it into every stream and
/// collective tag of that job. Job ids map onto fields `1..=JOB_FIELD_MASK`
/// (wrapping), never `0` — field `0` is the master/mesh namespace — so a
/// job's tags are disjoint from the mesh's own barriers and from any job
/// whose id differs by less than `JOB_FIELD_MASK`.
pub const fn job_tag_base(job_id: u64) -> u64 {
    ((job_id % JOB_FIELD_MASK) + 1) << JOB_TAG_SHIFT
}

/// The job field of a tag (0 = master namespace). Meaningless for control
/// tags, which carry no job field — check [`CTRL_TAG_BIT`] first.
pub const fn tag_job_field(tag: u64) -> u64 {
    (tag >> JOB_TAG_SHIFT) & JOB_FIELD_MASK
}

/// Whether `tag` belongs to job `job_id`'s namespace. Control tags belong
/// to no job (the control channel outlives jobs), collective and stream
/// tags match on the job field.
pub const fn tag_in_job(tag: u64, job_id: u64) -> bool {
    tag & CTRL_TAG_BIT == 0 && tag_job_field(tag) == (job_id % JOB_FIELD_MASK) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_bases_are_disjoint_from_master_and_each_other() {
        // field 0 is reserved for the master namespace
        for id in [0u64, 1, 2, 63, JOB_FIELD_MASK - 1, JOB_FIELD_MASK, 2 * JOB_FIELD_MASK] {
            assert_ne!(tag_job_field(job_tag_base(id)), 0, "job {id} collides with master");
        }
        // consecutive ids get distinct fields until the field wraps
        let fields: Vec<u64> =
            (0..JOB_FIELD_MASK).map(|i| tag_job_field(job_tag_base(i))).collect();
        let mut sorted = fields.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), fields.len(), "job fields repeat before the wrap");
        // ...and the wrap lands back on field 1, still never 0
        assert_eq!(tag_job_field(job_tag_base(JOB_FIELD_MASK)), 1);
    }

    #[test]
    fn job_base_preserves_low_bits_and_namespace_bits() {
        let base = job_tag_base(7);
        let stream_tag = base | 3;
        let coll_tag = COLL_TAG_BIT | base | 12;
        assert_eq!(stream_tag & ((1 << JOB_TAG_SHIFT) - 1), 3);
        assert_eq!(tag_job_field(stream_tag), 8);
        assert_eq!(tag_job_field(coll_tag), 8);
        assert!(tag_in_job(stream_tag, 7));
        assert!(tag_in_job(coll_tag, 7));
        assert!(!tag_in_job(stream_tag, 8));
    }

    #[test]
    fn control_tags_belong_to_no_job() {
        // tag_job_field(CTRL_TAG_BIT) == 0, so without the CTRL check a
        // master-namespace reclaim could swallow control traffic
        assert_eq!(tag_job_field(CTRL_TAG_BIT), 0);
        for id in 0..64 {
            assert!(!tag_in_job(CTRL_TAG_BIT, id));
            assert!(!tag_in_job(CTRL_TAG_BIT | job_tag_base(id), id));
        }
    }
}
