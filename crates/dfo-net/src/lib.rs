//! Cluster transport for DFOGraph, pluggable between simulation and TCP.
//!
//! The paper runs on MPI over a 25 Gbps network. This crate provides the
//! equivalent substrate behind one [`Endpoint`] API — point-to-point byte
//! streams paced by per-node egress/ingress token buckets and fully
//! byte-accounted, plus the two collectives the engine needs (poisonable
//! barrier, all-reduce) — over two interchangeable [`Transport`] backends:
//!
//! * **Simulation** ([`SimCluster`]): each node is a thread (group) of one
//!   process; frames flow through bounded channels and collectives hit a
//!   shared-memory barrier. The key property preserved from the real
//!   testbed is the one DFOGraph's evaluation reasons about: transfer time
//!   ≈ bytes / bandwidth per node (§4.5 "bandwidth assumption").
//! * **TCP** ([`TcpCluster`]): each node is its own OS process; frames are
//!   serialized with a binary codec over per-peer sockets and collectives
//!   are relayed through rank 0. This is how the small-cluster systems the
//!   paper compares against (GraphD, GraphH) deploy.
//!
//! Byte accounting charges the same 16-byte envelope per frame in both
//! backends, so traffic measurements are comparable across deployments.

pub mod collective;
pub mod endpoint;
pub mod frame;
pub mod sim;
pub mod tag;
pub mod tcp;
pub mod transport;

pub use collective::Collective;
pub use endpoint::{Endpoint, NetStats, NetTotals, PeerCounters, SimCluster, StreamRecv};
pub use frame::{Frame, FRAME_HEADER_BYTES, MAX_FRAME_PAYLOAD};
pub use sim::SimTransport;
pub use tag::{job_tag_base, tag_in_job, CTRL_TAG_BIT, JOB_FIELD_MASK, JOB_TAG_SHIFT};
pub use tcp::{TcpCluster, TcpOpts, TcpTransport, DEMUX_QUEUE_DEPTH};
pub use transport::Transport;
