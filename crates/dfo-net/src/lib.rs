//! Simulated cluster transport for DFOGraph.
//!
//! The paper runs on MPI over a 25 Gbps network. This crate replaces that
//! with an in-process cluster: each node is a thread (group) owning an
//! [`Endpoint`]; point-to-point byte streams flow through bounded channels
//! paced by per-node egress/ingress token buckets and fully byte-accounted.
//! The key property preserved from the real testbed is the one DFOGraph's
//! evaluation reasons about: transfer time ≈ bytes / bandwidth per node, and
//! a node talks to effectively one peer at a time unless spare bandwidth
//! exists (§4.5 "bandwidth assumption").
//!
//! Collectives (`barrier`, all-reduce) mirror the small set of MPI
//! operations the original system needs: synchronizing phases and summing
//! the return values of `ProcessEdges`/`ProcessVertices`.

pub mod collective;
pub mod endpoint;
pub mod frame;

pub use collective::Collective;
pub use endpoint::{Endpoint, NetStats, SimCluster, StreamRecv};
pub use frame::{Frame, FRAME_HEADER_BYTES};
