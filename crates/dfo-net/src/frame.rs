//! Wire frames of the cluster transport, and their binary codec.
//!
//! Both backends move data as [`Frame`]s. The in-process backend passes them
//! through channels untouched; the TCP backend serializes them with the
//! length-prefixed codec below. The 16-byte header doubles as the modeled
//! envelope cost charged against bandwidth, so byte accounting is identical
//! across backends.
//!
//! Header layout (little-endian):
//!
//! ```text
//! [ src: u32 ][ tag: u64 ][ len|last: u32 ]
//! ```
//!
//! `len|last` packs the payload length in the low 31 bits and the
//! end-of-stream marker in the top bit, which keeps the header at exactly
//! [`FRAME_HEADER_BYTES`].

use bytes::Bytes;
use dfo_types::codec::read_exact_or_eof;
use dfo_types::{DfoError, Rank, Result};
use std::io::{Read, Write};

/// Fixed per-frame header cost charged against bandwidth; also the exact
/// on-wire header size of the TCP codec.
pub const FRAME_HEADER_BYTES: u64 = 16;

/// Top bit of the packed `len|last` word.
const LAST_FLAG: u32 = 1 << 31;

/// Upper bound on a single frame's payload (engine frames are 256 KiB; the
/// slack guards the decoder against corrupt or hostile length words without
/// constraining any legitimate sender).
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// One frame of a point-to-point stream.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sender rank.
    pub src: Rank,
    /// Stream tag; both sides must agree (one live stream per (src, dst)).
    pub tag: u64,
    /// Payload bytes (possibly empty for a bare end-of-stream marker).
    pub payload: Bytes,
    /// Marks the final frame of the stream.
    pub last: bool,
}

impl Frame {
    /// Bandwidth cost of this frame.
    pub fn wire_bytes(&self) -> u64 {
        FRAME_HEADER_BYTES + self.payload.len() as u64
    }

    /// Serializes the header into its fixed-size wire form.
    pub fn encode_header(&self) -> [u8; FRAME_HEADER_BYTES as usize] {
        assert!(self.payload.len() <= MAX_FRAME_PAYLOAD, "frame payload too large");
        let mut h = [0u8; FRAME_HEADER_BYTES as usize];
        h[0..4].copy_from_slice(&(self.src as u32).to_le_bytes());
        h[4..12].copy_from_slice(&self.tag.to_le_bytes());
        let mut len_last = self.payload.len() as u32;
        if self.last {
            len_last |= LAST_FLAG;
        }
        h[12..16].copy_from_slice(&len_last.to_le_bytes());
        h
    }

    /// Parses a header previously produced by [`Frame::encode_header`].
    /// Returns `(src, tag, payload_len, last)`.
    pub fn decode_header(
        h: &[u8; FRAME_HEADER_BYTES as usize],
    ) -> Result<(Rank, u64, usize, bool)> {
        let src = u32::from_le_bytes(h[0..4].try_into().unwrap()) as Rank;
        let tag = u64::from_le_bytes(h[4..12].try_into().unwrap());
        let len_last = u32::from_le_bytes(h[12..16].try_into().unwrap());
        let last = len_last & LAST_FLAG != 0;
        let len = (len_last & !LAST_FLAG) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(DfoError::Corrupt(format!(
                "frame header claims {len}-byte payload (max {MAX_FRAME_PAYLOAD})"
            )));
        }
        Ok((src, tag, len, last))
    }

    /// Writes header + payload to a byte stream (no flush).
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.encode_header())?;
        w.write_all(&self.payload)
    }

    /// Reads one frame from a byte stream. Returns `Ok(None)` on clean EOF
    /// at a frame boundary; EOF mid-header or mid-payload is
    /// [`DfoError::Corrupt`] (a peer died mid-frame or the stream is
    /// garbage).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Option<Frame>> {
        let mut h = [0u8; FRAME_HEADER_BYTES as usize];
        match read_exact_or_eof(r, &mut h) {
            Ok(true) => {}
            Ok(false) => return Ok(None),
            Err(e) => {
                return Err(DfoError::Corrupt(format!("truncated frame header: {e}")));
            }
        }
        let (src, tag, len, last) = Frame::decode_header(&h)?;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(|e| {
            DfoError::Corrupt(format!("truncated frame payload ({len} bytes): {e}"))
        })?;
        Ok(Some(Frame { src, tag, payload: Bytes::from(payload), last }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    #[test]
    fn wire_bytes_include_header() {
        let f = Frame { src: 0, tag: 1, payload: Bytes::from_static(b"abcd"), last: false };
        assert_eq!(f.wire_bytes(), FRAME_HEADER_BYTES + 4);
    }

    #[test]
    fn header_roundtrip() {
        let f = Frame { src: 7, tag: u64::MAX, payload: Bytes::from_static(b"xyz"), last: true };
        let h = f.encode_header();
        assert_eq!(Frame::decode_header(&h).unwrap(), (7, u64::MAX, 3, true));
    }

    #[test]
    fn stream_roundtrip_multiple_frames() {
        let frames = vec![
            Frame { src: 1, tag: 42, payload: Bytes::from(vec![9u8; 1000]), last: false },
            Frame { src: 1, tag: 42, payload: Bytes::new(), last: false },
            Frame { src: 1, tag: 42, payload: Bytes::new(), last: true },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut r = Cursor::new(buf);
        for want in &frames {
            let got = Frame::read_from(&mut r).unwrap().expect("frame present");
            assert_eq!(got.src, want.src);
            assert_eq!(got.tag, want.tag);
            assert_eq!(got.payload, want.payload);
            assert_eq!(got.last, want.last);
        }
        assert!(Frame::read_from(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_header_is_corrupt() {
        let f = Frame { src: 0, tag: 5, payload: Bytes::from_static(b"data"), last: true };
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        for cut in 1..FRAME_HEADER_BYTES as usize {
            let mut r = Cursor::new(&buf[..cut]);
            assert!(
                matches!(Frame::read_from(&mut r), Err(DfoError::Corrupt(_))),
                "cut at {cut} must be a truncated-header error"
            );
        }
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let f = Frame { src: 0, tag: 5, payload: Bytes::from(vec![1u8; 64]), last: false };
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let mut r = Cursor::new(&buf[..buf.len() - 1]);
        assert!(matches!(Frame::read_from(&mut r), Err(DfoError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_word_is_corrupt() {
        let f = Frame { src: 0, tag: 0, payload: Bytes::new(), last: false };
        let mut h = f.encode_header();
        // forge a length beyond MAX_FRAME_PAYLOAD (with the last bit clear)
        let bad = (MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes();
        h[12..16].copy_from_slice(&bad);
        assert!(matches!(Frame::decode_header(&h), Err(DfoError::Corrupt(_))));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn codec_roundtrips_any_frame(
            src in 0usize..1024,
            tag in 0u64..u64::MAX,
            len in prop_oneof![Just(0usize), Just(1), Just(15), Just(16), Just(17), 0usize..4096],
            fill in 0u8..255,
            last in prop_oneof![Just(true), Just(false)],
        ) {
            let f = Frame { src, tag, payload: Bytes::from(vec![fill; len]), last };
            let mut buf = Vec::new();
            f.write_to(&mut buf).unwrap();
            prop_assert_eq!(buf.len() as u64, f.wire_bytes());
            let got = Frame::read_from(&mut Cursor::new(buf)).unwrap().unwrap();
            prop_assert_eq!(got.src, src);
            prop_assert_eq!(got.tag, tag);
            prop_assert_eq!(got.payload.as_ref(), f.payload.as_ref());
            prop_assert_eq!(got.last, last);
        }

        #[test]
        fn any_truncation_errors_or_yields_prefix(
            len in 0usize..512,
            cut in 0usize..528,
        ) {
            let f = Frame { src: 3, tag: 9, payload: Bytes::from(vec![7u8; len]), last: true };
            let mut buf = Vec::new();
            f.write_to(&mut buf).unwrap();
            let cut = cut.min(buf.len());
            let mut r = Cursor::new(&buf[..cut]);
            match Frame::read_from(&mut r) {
                Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is clean EOF"),
                Ok(Some(_)) => prop_assert_eq!(cut, buf.len(), "full frame required"),
                Err(DfoError::Corrupt(_)) => {
                    prop_assert!(cut > 0 && cut < buf.len(), "mid-frame cut");
                }
                Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
            }
        }
    }
}
