//! Wire frames of the simulated transport.

use bytes::Bytes;
use dfo_types::Rank;

/// Fixed per-frame header cost charged against bandwidth, modeling the
/// TCP/IP + MPI envelope overhead of the real system.
pub const FRAME_HEADER_BYTES: u64 = 16;

/// One frame of a point-to-point stream.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sender rank.
    pub src: Rank,
    /// Stream tag; both sides must agree (one live stream per (src, dst)).
    pub tag: u64,
    /// Payload bytes (possibly empty for a bare end-of-stream marker).
    pub payload: Bytes,
    /// Marks the final frame of the stream.
    pub last: bool,
}

impl Frame {
    /// Bandwidth cost of this frame.
    pub fn wire_bytes(&self) -> u64 {
        FRAME_HEADER_BYTES + self.payload.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_header() {
        let f = Frame { src: 0, tag: 1, payload: Bytes::from_static(b"abcd"), last: false };
        assert_eq!(f.wire_bytes(), FRAME_HEADER_BYTES + 4);
    }
}
