//! Synthetic graph generators.
//!
//! | Paper dataset | Generator here | Matching property |
//! |---------------|----------------|-------------------|
//! | twitter-2010  | [`rmat`]       | power-law social graph, avg degree ~35 |
//! | uk-2014       | [`web_chain`]  | web-crawl locality + diameter in the thousands |
//! | RMAT-32       | [`rmat`]       | identical family, scaled down |
//! | KRON-38       | [`kronecker`]  | Graph500 Kronecker with noise, scaled down |
//!
//! All generators are deterministic in their seed.

use crate::edge::{Edge, EdgeList};
use dfo_types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Common knobs for the skewed generators.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Average edges per vertex (Graph500 calls this edgefactor).
    pub edge_factor: u32,
    pub seed: u64,
}

impl GenConfig {
    pub fn new(scale: u32, edge_factor: u32, seed: u64) -> Self {
        Self { scale, edge_factor, seed }
    }

    pub fn n_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    pub fn n_edges(&self) -> u64 {
        self.n_vertices() * self.edge_factor as u64
    }
}

/// R-MAT recursive quadrant sampling (Chakrabarti et al., SDM'04) with the
/// canonical (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
pub fn rmat(cfg: GenConfig) -> EdgeList<()> {
    rmat_with_probs(cfg, 0.57, 0.19, 0.19)
}

/// R-MAT with explicit quadrant probabilities (d = 1 − a − b − c).
pub fn rmat_with_probs(cfg: GenConfig, a: f64, b: f64, c: f64) -> EdgeList<()> {
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities must sum below 1");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.n_vertices();
    let m = cfg.n_edges();
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (src, dst) = rmat_sample(&mut rng, cfg.scale, a, b, c);
        debug_assert!(src < n && dst < n);
        edges.push(Edge::new(src, dst, ()));
    }
    EdgeList::new(n, edges)
}

fn rmat_sample(rng: &mut SmallRng, scale: u32, a: f64, b: f64, c: f64) -> (VertexId, VertexId) {
    let mut src: u64 = 0;
    let mut dst: u64 = 0;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < a {
            // top-left
        } else if r < a + b {
            dst |= 1;
        } else if r < a + b + c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

/// Graph500-style stochastic Kronecker generator: R-MAT quadrants perturbed
/// with per-level multiplicative noise, then vertex labels scrambled with a
/// deterministic permutation (Graph500 requires scrambling so that locality
/// does not leak from the construction).
pub fn kronecker(cfg: GenConfig) -> EdgeList<()> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.n_vertices();
    let m = cfg.n_edges();
    let mask = n - 1;
    // splitmix-style odd multiplier permutation over 2^scale
    let scramble_mul: u64 = 0x9E37_79B9_7F4A_7C15 | 1;
    let scramble_add: u64 = 0x7F4A_7C15_9E37_79B9;
    let scramble = |v: u64| (v.wrapping_mul(scramble_mul).wrapping_add(scramble_add)) & mask;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let noise = 0.1;
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let mut src: u64 = 0;
        let mut dst: u64 = 0;
        for _ in 0..cfg.scale {
            // Graph500 "noisy" variant: jitter quadrant probabilities per level
            let ab = (a + b) * (1.0 + noise * (rng.gen::<f64>() - 0.5));
            let a_norm = a / (a + b) * (1.0 + noise * (rng.gen::<f64>() - 0.5));
            let c_norm = c / (1.0 - a - b) * (1.0 + noise * (rng.gen::<f64>() - 0.5));
            src <<= 1;
            dst <<= 1;
            if rng.gen::<f64>() > ab {
                src |= 1;
                if rng.gen::<f64>() > c_norm {
                    dst |= 1;
                }
            } else if rng.gen::<f64>() > a_norm {
                dst |= 1;
            }
        }
        edges.push(Edge::new(scramble(src), scramble(dst), ()));
    }
    EdgeList::new(n, edges)
}

/// Web-crawl-like generator with a huge diameter.
///
/// Vertices form `communities` consecutive groups of `community_size`.
/// Each vertex draws `intra_degree` edges inside its community (preserving
/// the ID locality of real crawls, paper footnote 2) and each community is
/// chained to the next by `bridge_edges` forward links, making the graph
/// diameter ≈ `communities` — reproducing uk-2014's ~2500-iteration BFS/WCC
/// behaviour at configurable scale.
pub fn web_chain(
    communities: u64,
    community_size: u64,
    intra_degree: u32,
    bridge_edges: u32,
    seed: u64,
) -> EdgeList<()> {
    assert!(communities >= 1 && community_size >= 2);
    let n = communities * community_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges =
        Vec::with_capacity((n * intra_degree as u64 + communities * bridge_edges as u64) as usize);
    for comm in 0..communities {
        let base = comm * community_size;
        for v in 0..community_size {
            let src = base + v;
            // first intra edge: deterministic link to the community hub, so
            // every vertex reaches the bridge source in one hop and the
            // chain property (diameter scaling with `communities`) holds by
            // construction, for any RNG stream
            if intra_degree >= 1 {
                edges.push(Edge::new(src, base, ()));
            }
            for _ in 1..intra_degree {
                // skewed intra-community target: prefer low offsets (hub-like)
                let r: f64 = rng.gen::<f64>();
                let off = ((r * r) * community_size as f64) as u64 % community_size;
                edges.push(Edge::new(src, base + off, ()));
            }
        }
        if comm + 1 < communities {
            let next = (comm + 1) * community_size;
            for _ in 0..bridge_edges {
                // bridges leave from the hub so the inter-community chain is
                // walkable from any vertex of the previous community
                let d = next + rng.gen_range(0..community_size);
                edges.push(Edge::new(base, d, ()));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// Uniform (Erdős–Rényi G(n, m)) random graph.
pub fn uniform(n_vertices: u64, n_edges: u64, seed: u64) -> EdgeList<()> {
    assert!(n_vertices >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (0..n_edges)
        .map(|_| Edge::new(rng.gen_range(0..n_vertices), rng.gen_range(0..n_vertices), ()))
        .collect();
    EdgeList::new(n_vertices, edges)
}

/// Deterministic 2-D grid (right and down neighbours): handy in tests where
/// exact results (diameters, component counts) are known in closed form.
pub fn grid2d(rows: u64, cols: u64) -> EdgeList<()> {
    let n = rows * cols;
    let mut edges = Vec::with_capacity((2 * n) as usize);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push(Edge::new(v, v + 1, ()));
            }
            if r + 1 < rows {
                edges.push(Edge::new(v, v + cols, ()));
            }
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::out_degrees;

    #[test]
    fn rmat_is_deterministic_and_in_range() {
        let cfg = GenConfig::new(10, 8, 42);
        let g1 = rmat(cfg);
        let g2 = rmat(cfg);
        assert_eq!(g1.n_edges(), 8 << 10);
        assert_eq!(g1.edges, g2.edges);
        assert!(g1.edges.iter().all(|e| e.src < 1024 && e.dst < 1024));
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(GenConfig::new(12, 16, 1));
        let degs = out_degrees(&g);
        let max = *degs.iter().max().unwrap() as f64;
        let avg = g.n_edges() as f64 / g.n_vertices as f64;
        assert!(max > 10.0 * avg, "R-MAT should produce hubs: max {max}, avg {avg}");
    }

    #[test]
    fn kronecker_scrambles_but_stays_in_range() {
        let g = kronecker(GenConfig::new(10, 4, 7));
        assert_eq!(g.n_edges(), 4 << 10);
        assert!(g.edges.iter().all(|e| e.src < 1024 && e.dst < 1024));
        // scrambling should spread hubs away from vertex 0's neighbourhood
        let degs = out_degrees(&g);
        let low_ids: u64 = degs[..16].iter().map(|&d| d as u64).sum();
        assert!(low_ids < g.n_edges() / 4, "hubs should not concentrate at low IDs");
    }

    #[test]
    fn web_chain_has_long_directed_paths() {
        let g = web_chain(50, 16, 2, 3, 3);
        assert_eq!(g.n_vertices, 800);
        // BFS from community 0 must take >= communities iterations to
        // reach the last community: verify a simple frontier expansion.
        let mut dist = vec![u32::MAX; g.n_vertices as usize];
        dist[0] = 0;
        // Bellman-Ford style relaxation over sorted-by-src edges
        let mut adj: Vec<Vec<u64>> = vec![Vec::new(); g.n_vertices as usize];
        for e in &g.edges {
            adj[e.src as usize].push(e.dst);
        }
        let mut frontier = vec![0u64];
        let mut rounds = 0;
        while !frontier.is_empty() {
            rounds += 1;
            let mut next = Vec::new();
            for v in frontier {
                for &u in &adj[v as usize] {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = rounds;
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        assert!(rounds >= 50, "diameter should scale with communities, got {rounds}");
    }

    #[test]
    fn uniform_edge_count() {
        let g = uniform(100, 500, 9);
        assert_eq!(g.n_edges(), 500);
        assert!(g.edges.iter().all(|e| e.src < 100 && e.dst < 100));
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.n_vertices, 12);
        // edges: right 3*3=9, down 2*4=8
        assert_eq!(g.n_edges(), 17);
    }
}
