//! Graph toolkit: edge representations, binary edge files, and the synthetic
//! generators standing in for the paper's datasets (Table 3).
//!
//! The paper evaluates on twitter-2010, uk-2014, RMAT-32 and KRON-38. The
//! real crawls are not redistributable at reproduction scale, so this crate
//! provides generators matching their *relevant shape*: R-MAT for the
//! power-law social graphs, a Graph500-style Kronecker generator for the
//! trillion-edge synthetic, and a `web_chain` generator whose huge diameter
//! reproduces the ~2500-iteration regime of uk-2014 that dominates Table 4.

pub mod degree;
pub mod edge;
pub mod gen;
pub mod io;

pub use degree::{degrees, in_degrees, out_degrees};
pub use edge::{Edge, EdgeList};
pub use gen::{grid2d, kronecker, rmat, uniform, web_chain, GenConfig};
pub use io::{read_edges, write_edges, EdgeFileHeader, EdgeFileReader};
