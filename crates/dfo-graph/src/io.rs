//! Binary edge-file format.
//!
//! DFOGraph's preprocessing consumes "input edges in order" from binary
//! files (§5.2). Layout: a fixed header followed by packed records of
//! `(src: u64 LE, dst: u64 LE, data: E)`.

use crate::edge::{Edge, EdgeList};
use dfo_types::codec::{read_exact_or_eof, read_u32, read_u64, write_u32, write_u64};
use dfo_types::{pod_from_bytes, DfoError, Pod, Result};
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

const MAGIC: u32 = 0x4446_4F45; // "DFOE"
const VERSION: u32 = 1;

/// Header of a binary edge file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeFileHeader {
    pub n_vertices: u64,
    pub n_edges: u64,
    pub edge_data_bytes: u32,
}

/// Writes an edge list to `path`.
pub fn write_edges<E: Pod>(path: &Path, g: &EdgeList<E>) -> Result<()> {
    let f = std::fs::File::create(path)
        .map_err(|e| DfoError::io(format!("creating edge file {}", path.display()), e))?;
    let mut w = BufWriter::with_capacity(1 << 20, f);
    let data_bytes = std::mem::size_of::<E>() as u32;
    write_u32(&mut w, MAGIC).map_err(|e| DfoError::io("edge header", e))?;
    write_u32(&mut w, VERSION).map_err(|e| DfoError::io("edge header", e))?;
    write_u64(&mut w, g.n_vertices).map_err(|e| DfoError::io("edge header", e))?;
    write_u64(&mut w, g.n_edges()).map_err(|e| DfoError::io("edge header", e))?;
    write_u32(&mut w, data_bytes).map_err(|e| DfoError::io("edge header", e))?;
    for e in &g.edges {
        write_u64(&mut w, e.src).map_err(|er| DfoError::io("edge record", er))?;
        write_u64(&mut w, e.dst).map_err(|er| DfoError::io("edge record", er))?;
        w.write_all(dfo_types::bytes_of(&e.data)).map_err(|er| DfoError::io("edge record", er))?;
    }
    w.flush().map_err(|e| DfoError::io("flushing edge file", e))?;
    Ok(())
}

/// Streaming reader over a binary edge file.
pub struct EdgeFileReader<E> {
    header: EdgeFileHeader,
    inner: BufReader<std::fs::File>,
    read_so_far: u64,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Pod> EdgeFileReader<E> {
    pub fn open(path: &Path) -> Result<Self> {
        let f = std::fs::File::open(path)
            .map_err(|e| DfoError::io(format!("opening edge file {}", path.display()), e))?;
        let mut inner = BufReader::with_capacity(1 << 20, f);
        let magic = read_u32(&mut inner).map_err(|e| DfoError::io("edge magic", e))?;
        if magic != MAGIC {
            return Err(DfoError::Corrupt(format!("bad edge-file magic {magic:#x}")));
        }
        let version = read_u32(&mut inner).map_err(|e| DfoError::io("edge version", e))?;
        if version != VERSION {
            return Err(DfoError::Corrupt(format!("unsupported edge-file version {version}")));
        }
        let n_vertices = read_u64(&mut inner).map_err(|e| DfoError::io("edge nv", e))?;
        let n_edges = read_u64(&mut inner).map_err(|e| DfoError::io("edge ne", e))?;
        let edge_data_bytes = read_u32(&mut inner).map_err(|e| DfoError::io("edge width", e))?;
        if edge_data_bytes as usize != std::mem::size_of::<E>() {
            return Err(DfoError::Corrupt(format!(
                "edge data width mismatch: file {} vs type {} ({})",
                edge_data_bytes,
                std::mem::size_of::<E>(),
                std::any::type_name::<E>()
            )));
        }
        Ok(Self {
            header: EdgeFileHeader { n_vertices, n_edges, edge_data_bytes },
            inner,
            read_so_far: 0,
            _marker: std::marker::PhantomData,
        })
    }

    pub fn header(&self) -> EdgeFileHeader {
        self.header
    }

    /// Reads the next edge, or `None` at end of file.
    pub fn next_edge(&mut self) -> Result<Option<Edge<E>>> {
        let rec = 16 + std::mem::size_of::<E>();
        let mut buf = vec![0u8; rec];
        if !read_exact_or_eof(&mut self.inner, &mut buf)
            .map_err(|e| DfoError::io("edge record", e))?
        {
            if self.read_so_far != self.header.n_edges {
                return Err(DfoError::Corrupt(format!(
                    "edge file ended after {} of {} edges",
                    self.read_so_far, self.header.n_edges
                )));
            }
            return Ok(None);
        }
        self.read_so_far += 1;
        let src = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let dst = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let data: E = if std::mem::size_of::<E>() > 0 {
            pod_from_bytes(&buf[16..])
        } else {
            dfo_types::pod::pod_zeroed()
        };
        Ok(Some(Edge { src, dst, data }))
    }
}

/// Reads a whole edge file into memory.
pub fn read_edges<E: Pod>(path: &Path) -> Result<EdgeList<E>> {
    let mut r = EdgeFileReader::<E>::open(path)?;
    let mut edges = Vec::with_capacity(r.header().n_edges as usize);
    while let Some(e) = r.next_edge()? {
        edges.push(e);
    }
    Ok(EdgeList { n_vertices: r.header().n_vertices, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, GenConfig};
    use tempfile::TempDir;

    #[test]
    fn roundtrip_unweighted() {
        let td = TempDir::new().unwrap();
        let p = td.path().join("g.edges");
        let g = rmat(GenConfig::new(8, 4, 5));
        write_edges(&p, &g).unwrap();
        let back: EdgeList<()> = read_edges(&p).unwrap();
        assert_eq!(back.n_vertices, g.n_vertices);
        assert_eq!(back.edges, g.edges);
    }

    #[test]
    fn roundtrip_weighted() {
        let td = TempDir::new().unwrap();
        let p = td.path().join("g.edges");
        let g = rmat(GenConfig::new(6, 2, 5)).map_data(|e| (e.src % 7) as f32);
        write_edges(&p, &g).unwrap();
        let back: EdgeList<f32> = read_edges(&p).unwrap();
        assert_eq!(back.edges, g.edges);
    }

    #[test]
    fn width_mismatch_detected() {
        let td = TempDir::new().unwrap();
        let p = td.path().join("g.edges");
        let g = rmat(GenConfig::new(4, 2, 5));
        write_edges(&p, &g).unwrap();
        assert!(matches!(EdgeFileReader::<f32>::open(&p), Err(DfoError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_detected() {
        let td = TempDir::new().unwrap();
        let p = td.path().join("g.edges");
        let g = rmat(GenConfig::new(4, 2, 5));
        write_edges(&p, &g).unwrap();
        // chop the last 8 bytes off
        let len = std::fs::metadata(&p).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 8).unwrap();
        let mut r = EdgeFileReader::<()>::open(&p).unwrap();
        let mut err = None;
        loop {
            match r.next_edge() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.is_some(), "truncation must surface as an error");
    }
}
