//! Edge and edge-list types.

use dfo_types::{Pod, VertexId};

/// A directed edge with attached data (`()` for unweighted graphs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge<E> {
    pub src: VertexId,
    pub dst: VertexId,
    pub data: E,
}

impl<E: Pod> Edge<E> {
    pub fn new(src: VertexId, dst: VertexId, data: E) -> Self {
        Self { src, dst, data }
    }
}

/// An in-memory edge list with its vertex-count bound.
///
/// Preprocessing-scale graphs fit in host memory in this reproduction (the
/// engine itself never loads a full edge list); the list is the interchange
/// format between generators, the partitioner and the baselines.
#[derive(Clone, Debug)]
pub struct EdgeList<E> {
    pub n_vertices: u64,
    pub edges: Vec<Edge<E>>,
}

impl<E: Pod> EdgeList<E> {
    pub fn new(n_vertices: u64, edges: Vec<Edge<E>>) -> Self {
        debug_assert!(edges.iter().all(|e| e.src < n_vertices && e.dst < n_vertices));
        Self { n_vertices, edges }
    }

    pub fn n_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Sorts edges by `(src, dst)` — DFOGraph "needs input edges in order"
    /// (§5.2); sorting happens before preprocessing and is not timed.
    pub fn sort_by_src(&mut self) {
        self.edges.sort_unstable_by_key(|e| (e.src, e.dst));
    }

    /// The same graph with every edge reversed (paper footnote 4: algorithms
    /// that need messages along incoming edges run on the reversed graph).
    pub fn reversed(&self) -> Self {
        Self {
            n_vertices: self.n_vertices,
            edges: self.edges.iter().map(|e| Edge::new(e.dst, e.src, e.data)).collect(),
        }
    }

    /// Maps edge data, e.g. attaching weights to an unweighted graph.
    pub fn map_data<F: Pod>(&self, mut f: impl FnMut(&Edge<E>) -> F) -> EdgeList<F> {
        EdgeList {
            n_vertices: self.n_vertices,
            edges: self.edges.iter().map(|e| Edge::new(e.src, e.dst, f(e))).collect(),
        }
    }

    /// Total bytes of the raw binary representation (Table 3 "Size" column:
    /// "(source, destination) pair in binary formats of each edge").
    pub fn raw_pair_bytes(&self) -> u64 {
        self.n_edges() * 2 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EdgeList<u32> {
        EdgeList::new(4, vec![Edge::new(2, 1, 21), Edge::new(0, 3, 3), Edge::new(0, 1, 1)])
    }

    #[test]
    fn sort_orders_by_src_then_dst() {
        let mut g = toy();
        g.sort_by_src();
        let pairs: Vec<_> = g.edges.iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (2, 1)]);
    }

    #[test]
    fn reversed_swaps_endpoints_keeps_data() {
        let g = toy();
        let r = g.reversed();
        assert!(r.edges.contains(&Edge::new(1, 2, 21)));
        assert_eq!(r.n_edges(), g.n_edges());
    }

    #[test]
    fn map_data_attaches_weights() {
        let g = toy();
        let w = g.map_data(|e| (e.src + e.dst) as f32);
        assert_eq!(w.edges[1].data, 3.0);
    }
}
