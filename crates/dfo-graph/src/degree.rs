//! Degree computation used by the inter-node partitioner.

use crate::edge::EdgeList;
use dfo_types::Pod;

/// Out-degree of every vertex.
pub fn out_degrees<E: Pod>(g: &EdgeList<E>) -> Vec<u32> {
    let mut d = vec![0u32; g.n_vertices as usize];
    for e in &g.edges {
        d[e.src as usize] += 1;
    }
    d
}

/// In-degree of every vertex.
pub fn in_degrees<E: Pod>(g: &EdgeList<E>) -> Vec<u32> {
    let mut d = vec![0u32; g.n_vertices as usize];
    for e in &g.edges {
        d[e.dst as usize] += 1;
    }
    d
}

/// `(in, out)` degrees in one pass.
pub fn degrees<E: Pod>(g: &EdgeList<E>) -> (Vec<u32>, Vec<u32>) {
    let mut din = vec![0u32; g.n_vertices as usize];
    let mut dout = vec![0u32; g.n_vertices as usize];
    for e in &g.edges {
        dout[e.src as usize] += 1;
        din[e.dst as usize] += 1;
    }
    (din, dout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{Edge, EdgeList};

    fn toy() -> EdgeList<()> {
        EdgeList::new(
            4,
            vec![
                Edge::new(0, 1, ()),
                Edge::new(0, 2, ()),
                Edge::new(1, 2, ()),
                Edge::new(3, 3, ()),
            ],
        )
    }

    #[test]
    fn out_and_in() {
        let g = toy();
        assert_eq!(out_degrees(&g), vec![2, 1, 0, 1]);
        assert_eq!(in_degrees(&g), vec![0, 1, 2, 1]);
    }

    #[test]
    fn combined_matches_individual() {
        let g = toy();
        let (din, dout) = degrees(&g);
        assert_eq!(din, in_degrees(&g));
        assert_eq!(dout, out_degrees(&g));
    }

    #[test]
    fn degree_sums_equal_edge_count() {
        let g = toy();
        let (din, dout) = degrees(&g);
        let si: u32 = din.iter().sum();
        let so: u32 = dout.iter().sum();
        assert_eq!(si as u64, g.n_edges());
        assert_eq!(so as u64, g.n_edges());
    }
}
