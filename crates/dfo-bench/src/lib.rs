//! Shared harness for the benchmark targets that regenerate every table and
//! figure of the paper (see `benches/`).
//!
//! Scales are laptop-sized by default; set `DFO_SCALE=small|medium|large`
//! to grow them. All harnesses print the dataset actually used so results
//! are interpretable. Simulated bandwidths keep the byte-volume-dominated
//! regime of the paper's testbed (NVMe ≈ network per node).

pub mod gate;

use dfo_core::Cluster;
use dfo_graph::gen::{kronecker, rmat, web_chain, GenConfig};
use dfo_graph::EdgeList;
use dfo_types::{BatchPolicy, EngineConfig};
use std::time::Instant;

/// Simulated per-node disk bandwidth (bytes/s).
pub const DISK_BW: u64 = 96 << 20;
/// Simulated per-node network bandwidth, each direction (bytes/s); slightly
/// above disk, matching the paper's "network ≥ disk per node" assumption.
pub const NET_BW: u64 = 128 << 20;

/// Dataset scale knob.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub twitter: (u32, u32),
    pub uk_chain: (u64, u64, u32, u32),
    pub rmat: (u32, u32),
    pub kron: (u32, u32),
}

pub fn scale() -> Scale {
    match std::env::var("DFO_SCALE").as_deref() {
        Ok("small") => {
            Scale { twitter: (13, 16), uk_chain: (160, 64, 4, 3), rmat: (14, 16), kron: (15, 8) }
        }
        Ok("medium") => {
            Scale { twitter: (15, 16), uk_chain: (400, 96, 5, 3), rmat: (16, 16), kron: (17, 8) }
        }
        Ok("large") => {
            Scale { twitter: (17, 20), uk_chain: (1000, 128, 6, 3), rmat: (18, 16), kron: (19, 8) }
        }
        _ => Scale { twitter: (13, 16), uk_chain: (100, 48, 4, 3), rmat: (14, 24), kron: (15, 12) },
    }
}

/// twitter-2010 stand-in: power-law social graph.
pub fn twitter_like() -> EdgeList<()> {
    let (s, ef) = scale().twitter;
    rmat(GenConfig::new(s, ef, 2010))
}

/// uk-2014 stand-in: web crawl with diameter in the hundreds/thousands.
pub fn uk_like() -> EdgeList<()> {
    let (comms, size, intra, bridge) = scale().uk_chain;
    web_chain(comms, size, intra, bridge, 2014)
}

/// RMAT-32 stand-in.
pub fn rmat_like() -> EdgeList<()> {
    let (s, ef) = scale().rmat;
    rmat(GenConfig::new(s, ef, 32))
}

/// KRON-38 stand-in (one PR iteration only in Table 5, like the paper).
pub fn kron_like() -> EdgeList<()> {
    let (s, ef) = scale().kron;
    kronecker(GenConfig::new(s, ef, 38))
}

/// Deterministic weights for SSSP variants.
pub fn weighted(g: &EdgeList<()>) -> EdgeList<f32> {
    g.map_data(|e| ((e.src.wrapping_mul(7).wrapping_add(e.dst * 13)) % 31 + 1) as f32)
}

pub fn describe(name: &str, g: &EdgeList<()>) -> String {
    format!("{name}: |V|={}, |E|={}", g.n_vertices, g.n_edges())
}

/// Engine configuration used by all distributed harnesses.
pub fn dfo_config(nodes: usize) -> EngineConfig {
    let mut cfg = EngineConfig::for_test(nodes);
    cfg.threads_per_node = 2;
    cfg.batch_policy = BatchPolicy::SemiOutOfCore;
    cfg.mem_budget = 64 << 20;
    cfg.disk_bw = Some(DISK_BW);
    cfg.net_bw = Some(NET_BW);
    // seek/scan cost ratio of the simulated disk: a positioned read costs
    // ~16 scanned elements (the paper's 1024 reflects real NVMe firmware)
    cfg.gamma = 16;
    cfg
}

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One damped-PageRank run that records the edge pipeline's
/// [`dfo_types::PhaseStats`] per iteration (the library's `pagerank`
/// helper hides them) and returns the final ranks alongside — the workload
/// behind the `micro_chunkcache` and `micro_compress` byte-trajectory
/// benches, shared so their JSON rows measure the same thing.
pub fn pagerank_with_stats(
    ctx: &mut dfo_core::NodeCtx,
    iters: usize,
) -> dfo_types::Result<(Vec<f64>, Vec<dfo_types::PhaseStats>)> {
    use dfo_algos::pagerank::DAMPING;
    let n = ctx.plan().n_vertices as f64;
    let rank = ctx.vertex_array::<f64>("pr_rank")?;
    let nextr = ctx.vertex_array::<f64>("pr_next")?;
    let deg = dfo_algos::degree::out_degree_array(ctx)?;
    {
        let r = rank.clone();
        ctx.process_vertices(&["pr_rank"], None, move |v, c| {
            c.set(&r, v, 1.0 / n);
            0u64
        })?;
    }
    let mut stats = Vec::new();
    for _ in 0..iters {
        {
            let nx = nextr.clone();
            ctx.process_vertices(&["pr_next"], None, move |v, c| {
                c.set(&nx, v, 0.0);
                0u64
            })?;
        }
        {
            let (r, d, nx) = (rank.clone(), deg.clone(), nextr.clone());
            ctx.process_edges(
                &["pr_rank", "pr_deg"],
                &["pr_next"],
                None,
                move |v, c| {
                    let dv = c.get(&d, v);
                    if dv == 0 {
                        None
                    } else {
                        Some(c.get(&r, v) / dv as f64)
                    }
                },
                move |msg: f64, _src, dst, _e: &(), c| {
                    let cur = c.get(&nx, dst);
                    c.set(&nx, dst, cur + msg);
                    0u64
                },
            )?;
        }
        stats.push(ctx.last_phase_stats().clone());
        {
            let (r, nx) = (rank.clone(), nextr.clone());
            ctx.process_vertices(&["pr_rank", "pr_next"], None, move |v, c| {
                let s = c.get(&nx, v);
                c.set(&r, v, (1.0 - DAMPING) / n + DAMPING * s);
                0u64
            })?;
        }
    }
    let ranks = dfo_algos::read_local(ctx, &rank)?;
    Ok((ranks, stats))
}

/// Geometric mean of time ratios `other / reference` — the paper's
/// "relative time" rows.
pub fn geomean(ratios: &[f64]) -> f64 {
    let s: f64 = ratios.iter().map(|r| r.ln()).sum();
    (s / ratios.len() as f64).exp()
}

pub fn fmt_secs(s: f64) -> String {
    if s < 0.0005 {
        format!("{:.2}ms", s * 1000.0)
    } else if s < 1.0 {
        format!("{:.0}ms", s * 1000.0)
    } else {
        format!("{s:.2}s")
    }
}

pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}

/// Runs the DFOGraph suite (prep + PR + BFS + WCC + SSSP) at `nodes` nodes,
/// returning (prep, pr, bfs, wcc, sssp) seconds.
pub fn dfo_suite(
    base_dir: &std::path::Path,
    nodes: usize,
    g: &EdgeList<()>,
    pr_iters: usize,
) -> (f64, f64, f64, f64, f64) {
    let sym = dfo_algos::wcc::symmetrize(g);
    let w = weighted(g);
    let cfg = dfo_config(nodes);

    let cluster = Cluster::create(cfg.clone(), base_dir.join("base")).unwrap();
    let (_, prep) = timed(|| cluster.preprocess(g).unwrap());

    let (_, pr) = timed(|| {
        cluster
            .run(|ctx| {
                dfo_algos::pagerank(ctx, pr_iters)?;
                Ok(0u64)
            })
            .unwrap()
    });
    let (_, bfs_t) = timed(|| {
        cluster
            .run(|ctx| {
                dfo_algos::bfs(ctx, 0)?;
                Ok(0u64)
            })
            .unwrap()
    });

    let cluster_sym = Cluster::create(cfg.clone(), base_dir.join("sym")).unwrap();
    cluster_sym.preprocess(&sym).unwrap();
    let (_, wcc_t) = timed(|| {
        cluster_sym
            .run(|ctx| {
                dfo_algos::wcc(ctx)?;
                Ok(0u64)
            })
            .unwrap()
    });

    let cluster_w = Cluster::create(cfg, base_dir.join("w")).unwrap();
    cluster_w.preprocess(&w).unwrap();
    let (_, sssp_t) = timed(|| {
        cluster_w
            .run(|ctx| {
                dfo_algos::sssp(ctx, 0)?;
                Ok(0u64)
            })
            .unwrap()
    });

    (prep, pr, bfs_t, wcc_t, sssp_t)
}
