//! The bench-regression gate: parses the `BENCH_*.json` trajectory files
//! and compares a fresh bench run against the committed baseline.
//!
//! Policy (enforced by the `bench_gate` binary via `tools/bench_gate.sh`
//! in CI):
//!
//! * numeric leaves whose key path mentions `bytes` are **hard-gated**: a
//!   fresh value more than 5 % above the baseline fails the build — byte
//!   counts are deterministic in this simulator, so drift means a real
//!   I/O regression;
//! * leaves mentioning `wall` or `secs` only **warn** — CI wall-clock is
//!   noise;
//! * other numerics (hit counts, iteration counts) are ignored by the
//!   gate — the benches assert their own invariants on those;
//! * a numeric baseline key missing from the fresh run hard-fails (schema
//!   must evolve by updating the baseline, not by dropping metrics);
//!   string metadata keys (`workload`, `recorded`, …) are ignored.
//!
//! The parser is a tiny recursive-descent JSON reader — the workspace is
//! offline, so no serde; it supports exactly the JSON these benches emit.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// True when this subtree contains at least one number.
    fn has_numbers(&self) -> bool {
        match self {
            Json::Num(_) => true,
            Json::Arr(items) => items.iter().any(Json::has_numbers),
            Json::Obj(map) => map.values().any(Json::has_numbers),
            _ => false,
        }
    }
}

/// Parses a JSON document (object, array or scalar).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    let start = self.pos;
                    while self.peek().map(|b| b != b'"' && b != b'\\').unwrap_or(false) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|b| {
                b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
            })
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Severity of one gate finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Byte-metric regression or schema break: fails the build.
    Fail,
    /// Wall-clock drift: reported, never fails.
    Warn,
}

/// One comparison finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub severity: Severity,
    pub path: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Fail => "FAIL",
            Severity::Warn => "warn",
        };
        write!(f, "[{tag}] {}: {}", self.path, self.message)
    }
}

/// Fractional headroom for byte metrics (5 %).
pub const BYTE_TOLERANCE: f64 = 0.05;
/// Fractional headroom before a wall-clock warning (25 %).
pub const WALL_TOLERANCE: f64 = 0.25;

fn is_byte_metric(path: &str) -> bool {
    path.to_ascii_lowercase().contains("bytes")
}

fn is_wall_metric(path: &str) -> bool {
    let p = path.to_ascii_lowercase();
    p.contains("wall") || p.contains("secs")
}

/// Compares `fresh` against `baseline`, returning every finding. An empty
/// `Fail` set means the gate passes.
pub fn compare(baseline: &Json, fresh: &Json) -> Vec<Finding> {
    let mut findings = Vec::new();
    walk(baseline, fresh, "$", &mut findings);
    findings
}

fn walk(base: &Json, fresh: &Json, path: &str, out: &mut Vec<Finding>) {
    match (base, fresh) {
        (Json::Obj(bm), Json::Obj(fm)) => {
            for (k, bv) in bm {
                match fm.get(k) {
                    Some(fv) => walk(bv, fv, &format!("{path}.{k}"), out),
                    None if bv.has_numbers() => out.push(Finding {
                        severity: Severity::Fail,
                        path: format!("{path}.{k}"),
                        message: "metric present in baseline but missing from fresh run \
                                  (update the baseline if the schema changed)"
                            .into(),
                    }),
                    None => {} // string metadata may be baseline-only
                }
            }
        }
        (Json::Arr(ba), Json::Arr(fa)) => {
            if ba.len() != fa.len() && ba.iter().any(Json::has_numbers) {
                out.push(Finding {
                    severity: Severity::Fail,
                    path: path.into(),
                    message: format!("array length changed: {} -> {}", ba.len(), fa.len()),
                });
                return;
            }
            for (i, (bv, fv)) in ba.iter().zip(fa).enumerate() {
                walk(bv, fv, &format!("{path}[{i}]"), out);
            }
        }
        (Json::Num(b), Json::Num(f)) => {
            if is_byte_metric(path) {
                let limit = b * (1.0 + BYTE_TOLERANCE);
                if *f > limit {
                    out.push(Finding {
                        severity: Severity::Fail,
                        path: path.into(),
                        message: format!(
                            "byte metric regressed: {b:.0} -> {f:.0} (+{:.1}%, limit +{:.0}%)",
                            (f / b - 1.0) * 100.0,
                            BYTE_TOLERANCE * 100.0
                        ),
                    });
                }
            } else if is_wall_metric(path) {
                let limit = b * (1.0 + WALL_TOLERANCE);
                if *f > limit {
                    out.push(Finding {
                        severity: Severity::Warn,
                        path: path.into(),
                        message: format!(
                            "wall-clock drifted: {b:.3} -> {f:.3} (+{:.0}%; warn-only)",
                            (f / b - 1.0) * 100.0
                        ),
                    });
                }
            }
        }
        (b, f) if std::mem::discriminant(b) != std::mem::discriminant(f) && b.has_numbers() => {
            out.push(Finding {
                severity: Severity::Fail,
                path: path.into(),
                message: "value type changed between baseline and fresh run".into(),
            });
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fails(findings: &[Finding]) -> usize {
        findings.iter().filter(|f| f.severity == Severity::Fail).count()
    }

    #[test]
    fn parses_the_bench_shapes() {
        let j = parse(
            r#"{"bench":"x","iters":5,"a":{"wall_secs":0.118,"read_bytes_per_iter":[1,2,3],
                "note":"free text, with ] and } inside"},"ok":true,"n":null,"f":-1.5e3}"#,
        )
        .unwrap();
        let Json::Obj(m) = &j else { panic!("not an object") };
        assert_eq!(m["iters"], Json::Num(5.0));
        assert_eq!(m["f"], Json::Num(-1500.0));
        let Json::Obj(a) = &m["a"] else { panic!() };
        assert_eq!(
            a["read_bytes_per_iter"],
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let b = parse(r#"{"total_read_bytes":1000,"wall_secs":0.1}"#).unwrap();
        assert!(compare(&b, &b).is_empty());
    }

    #[test]
    fn small_byte_improvement_and_headroom_pass() {
        let b = parse(r#"{"total_read_bytes":1000}"#).unwrap();
        for fresh in [r#"{"total_read_bytes":900}"#, r#"{"total_read_bytes":1049}"#] {
            let f = parse(fresh).unwrap();
            assert!(compare(&b, &f).is_empty(), "{fresh}");
        }
    }

    #[test]
    fn byte_regression_fails() {
        let b = parse(r#"{"x":{"total_read_bytes":1000}}"#).unwrap();
        let f = parse(r#"{"x":{"total_read_bytes":1051}}"#).unwrap();
        let findings = compare(&b, &f);
        assert_eq!(fails(&findings), 1, "{findings:?}");
        assert!(findings[0].path.contains("total_read_bytes"));
    }

    #[test]
    fn per_iteration_arrays_gate_elementwise() {
        let b = parse(r#"{"read_bytes_per_iter":[100,50,50]}"#).unwrap();
        let ok = parse(r#"{"read_bytes_per_iter":[100,52,49]}"#).unwrap();
        assert_eq!(fails(&compare(&b, &ok)), 0);
        let bad = parse(r#"{"read_bytes_per_iter":[100,50,80]}"#).unwrap();
        assert_eq!(fails(&compare(&b, &bad)), 1);
        let reshaped = parse(r#"{"read_bytes_per_iter":[100,50]}"#).unwrap();
        assert_eq!(fails(&compare(&b, &reshaped)), 1);
    }

    #[test]
    fn wall_clock_only_warns() {
        let b = parse(r#"{"wall_secs":0.1}"#).unwrap();
        let f = parse(r#"{"wall_secs":9.0}"#).unwrap();
        let findings = compare(&b, &f);
        assert_eq!(fails(&findings), 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warn);
    }

    #[test]
    fn missing_numeric_metric_fails_missing_metadata_does_not() {
        let b = parse(r#"{"workload":"text","total_read_bytes":10,"hits":5}"#).unwrap();
        let f = parse(r#"{"hits":5}"#).unwrap();
        let findings = compare(&b, &f);
        assert_eq!(fails(&findings), 1, "{findings:?}");
        assert!(findings[0].path.contains("total_read_bytes"));
        // extra keys in the fresh run are fine (schema growth)
        let f2 =
            parse(r#"{"workload":"text","total_read_bytes":10,"hits":5,"new_metric_bytes":1}"#)
                .unwrap();
        assert!(compare(&b, &f2).is_empty());
    }

    #[test]
    fn non_byte_counters_are_not_gated() {
        let b = parse(r#"{"cache_hits":182,"iters":5}"#).unwrap();
        let f = parse(r#"{"cache_hits":10,"iters":5}"#).unwrap();
        assert!(compare(&b, &f).is_empty());
    }
}
