//! CLI wrapper for [`dfo_bench::gate`]: compares a fresh bench JSON
//! against a committed baseline.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json>
//! ```
//!
//! Exit codes: 0 = pass (warnings allowed), 1 = at least one hard failure
//! (byte metric regressed > 5 % or schema break), 2 = usage/parse error.
//! Driven by `tools/bench_gate.sh` in the CI `bench-gate` job.

use dfo_bench::gate::{compare, parse, Severity};
use std::process::ExitCode;

fn load(path: &str) -> Result<dfo_bench::gate::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for e in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_gate: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let findings = compare(&baseline, &fresh);
    let mut failed = false;
    for f in &findings {
        println!("{f}");
        failed |= f.severity == Severity::Fail;
    }
    if failed {
        println!("bench_gate: {baseline_path} vs {fresh_path}: REGRESSION");
        ExitCode::from(1)
    } else {
        println!("bench_gate: {baseline_path} vs {fresh_path}: ok ({} warning(s))", findings.len());
        ExitCode::SUCCESS
    }
}
