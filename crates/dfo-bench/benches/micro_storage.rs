//! Storage substrate micro-benchmarks: page-cache behaviour under
//! different locality (the Table 6 mechanism) and throttle fidelity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfo_storage::{NodeDisk, PageCache, Throttle};
use std::hint::black_box;
use tempfile::TempDir;

fn bench_page_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_cache");
    group.sample_size(10);
    let len = 4096 * 256; // 256 pages of data
    for &(name, cache_pages) in &[("fits", 512usize), ("thrash", 8usize)] {
        group.bench_function(BenchmarkId::new("random_writes", name), |b| {
            b.iter_batched(
                || {
                    let td = TempDir::new().unwrap();
                    let disk = NodeDisk::new(td.path(), None, false).unwrap();
                    let f = disk.open_random("pc.bin", true).unwrap();
                    (td, PageCache::new(f, 4096, cache_pages, len))
                },
                |(_td, mut cache)| {
                    // pseudo-random single-word writes across the file
                    let mut x = 12345u64;
                    for _ in 0..4096 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let off = (x % (len / 8)) * 8;
                        cache.write_at(off, &x.to_le_bytes()).unwrap();
                    }
                    black_box(cache.stats().misses)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_throttle_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("throttle");
    group.sample_size(10);
    // 512 MB/s budget, 8 MB transfer => expect ~15.6 ms
    group.bench_function("8MB_at_512MBps", |b| {
        b.iter_batched(
            || Throttle::new(512 << 20),
            |t| {
                t.acquire(8 << 20);
                black_box(())
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_page_cache, bench_throttle_fidelity);
criterion_main!(benches);
