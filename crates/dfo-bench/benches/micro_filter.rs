//! §4.3 ablation — message filtering: merge cost across |L|/|M| ratios and
//! the traffic saved with filtering on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfo_core::Cluster;
use dfo_graph::gen::{rmat, GenConfig};
use dfo_part::filter::FilterCursor;
use dfo_types::BatchPolicy;
use std::hint::black_box;
use tempfile::TempDir;

fn bench_merge_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_merge");
    group.sample_size(20);
    let n_msgs = 100_000u32;
    let msgs: Vec<u32> = (0..n_msgs).collect();
    for &ratio in &[0.1f64, 0.5, 1.0, 2.0, 4.0] {
        let list_len = (n_msgs as f64 * ratio) as u32;
        let list: Vec<u32> = (0..list_len).map(|i| i * 2).collect();
        group.bench_with_input(
            BenchmarkId::new("merge", format!("L/M={ratio}")),
            &list,
            |b, list| {
                b.iter(|| {
                    let mut cur = FilterCursor::new(list);
                    let mut kept = 0u64;
                    for &m in &msgs {
                        if cur.contains(m) {
                            kept += 1;
                        }
                    }
                    black_box(kept)
                })
            },
        );
    }
    group.finish();
}

fn bench_traffic_saved(c: &mut Criterion) {
    let g = rmat(GenConfig::new(11, 8, 7));
    let mut group = c.benchmark_group("filter_traffic");
    group.sample_size(10);
    let mut wire_bytes_by_mode = Vec::new();
    for filtering in [true, false] {
        let td = TempDir::new().unwrap();
        let mut cfg = dfo_types::EngineConfig::for_test(4);
        cfg.batch_policy = BatchPolicy::FixedVertices(128);
        cfg.filtering_enabled = filtering;
        if filtering {
            // A 1/97 frontier generates so few messages that the §4.3 skip
            // rule (|L|/|M| ≥ 2) disables filtering — which is why this
            // bench used to print *identical* wire bytes for both modes.
            // Disable the skip rule so the filter path is actually engaged
            // and the comparison isolates filtering's traffic effect.
            cfg.filter_skip_ratio = f64::INFINITY;
        }
        let cluster = Cluster::create(cfg, td.path()).unwrap();
        cluster.preprocess(&g).unwrap();
        // sparse frontier: filtering should cut most of the wire bytes
        let run = || {
            cluster
                .run(|ctx| {
                    let acc = ctx.vertex_array::<u64>("acc")?;
                    let a = acc.clone();
                    ctx.process_edges(
                        &[],
                        &["acc"],
                        None,
                        |v, _c| (v % 97 == 0).then_some(1u64),
                        move |m: u64, _s, d, _e: &(), cx| {
                            let cur = cx.get(&a, d);
                            cx.set(&a, d, cur + m);
                            1u64
                        },
                    )?;
                    Ok(ctx.last_phase_stats().messages_sent)
                })
                .unwrap()
        };
        let sent: u64 = run().into_iter().sum();
        let bytes = cluster.total_net_sent();
        wire_bytes_by_mode.push(bytes);
        println!(
            "filtering={filtering}: {bytes} wire bytes, {sent} messages passed \
             for a 1/97 frontier"
        );
        group.bench_function(BenchmarkId::new("process_edges", filtering), |b| {
            b.iter(|| black_box(run()))
        });
    }
    assert!(
        wire_bytes_by_mode[0] < wire_bytes_by_mode[1],
        "filtering on ({}) must move fewer wire bytes than off ({})",
        wire_bytes_by_mode[0],
        wire_bytes_by_mode[1]
    );
    group.finish();
}

criterion_group!(benches, bench_merge_cost, bench_traffic_saved);
criterion_main!(benches);
