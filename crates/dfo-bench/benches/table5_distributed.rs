//! Table 5 — distributed comparison on 8 (simulated) nodes: DFOGraph vs
//! Chaos-like vs HybridGraph-like vs Gemini-like, plus one PageRank
//! iteration on the big Kronecker graph for the fully-out-of-core headline.
//!
//! Expected shape (paper): DFOGraph >12.94× over Chaos, >10.82× over
//! HybridGraph, ~0.21× of in-memory Gemini.

use dfo_baselines::{
    bfs_spec, pagerank_rounds, spec::out_degrees, sssp_spec, wcc_spec, BaselineCluster,
    ChaosEngine, GeminiEngine, HybridGraphEngine,
};
use dfo_bench::{
    describe, dfo_suite, fmt_secs, geomean, kron_like, rmat_like, timed, twitter_like, uk_like,
    weighted, DISK_BW, NET_BW,
};
use tempfile::TempDir;

const P: usize = 8;

type Suite = (f64, f64, f64, f64, f64);

fn chaos_suite(dir: &std::path::Path, g: &dfo_graph::EdgeList<()>) -> Suite {
    let deg = out_degrees(g);
    let sym = dfo_algos::wcc::symmetrize(g);
    let w = weighted(g);
    let mk = |sub: &str| {
        BaselineCluster::create(P, dir.join(sub), Some(DISK_BW), Some(NET_BW), false).unwrap()
    };
    let (e, prep) = timed(|| ChaosEngine::preprocess(mk("c"), g).unwrap());
    let (_, pr) = timed(|| e.pagerank(&pagerank_rounds(5), &deg).unwrap());
    let (_, bfs) = timed(|| e.run_push(&bfs_spec(0)).unwrap());
    let es = ChaosEngine::preprocess(mk("cs"), &sym).unwrap();
    let (_, wcc) = timed(|| es.run_push(&wcc_spec()).unwrap());
    let ew = ChaosEngine::preprocess(mk("cw"), &w).unwrap();
    let (_, sssp) = timed(|| ew.run_push(&sssp_spec(0)).unwrap());
    (prep, pr, bfs, wcc, sssp)
}

fn hybrid_suite(dir: &std::path::Path, g: &dfo_graph::EdgeList<()>) -> Suite {
    let deg = out_degrees(g);
    let sym = dfo_algos::wcc::symmetrize(g);
    let w = weighted(g);
    let mem = 8u64 << 20; // deliberately modest combiner budget
    let mk = |sub: &str| {
        BaselineCluster::create(P, dir.join(sub), Some(DISK_BW), Some(NET_BW), false).unwrap()
    };
    let (e, prep) = timed(|| HybridGraphEngine::preprocess(mk("h"), g, mem).unwrap());
    let (_, pr) = timed(|| e.pagerank(&pagerank_rounds(5), &deg).unwrap());
    let (_, bfs) = timed(|| e.run_push(&bfs_spec(0), |a, b| a.min(b)).unwrap());
    let es = HybridGraphEngine::preprocess(mk("hs"), &sym, mem).unwrap();
    let (_, wcc) = timed(|| es.run_push(&wcc_spec(), |a, b| a.min(b)).unwrap());
    let ew = HybridGraphEngine::preprocess(mk("hw"), &w, mem).unwrap();
    let (_, sssp) = timed(|| ew.run_push(&sssp_spec(0), f32::min).unwrap());
    (prep, pr, bfs, wcc, sssp)
}

fn gemini_suite(dir: &std::path::Path, g: &dfo_graph::EdgeList<()>) -> Option<Suite> {
    let deg = out_degrees(g);
    let sym = dfo_algos::wcc::symmetrize(g);
    let w = weighted(g);
    let mem = 2u64 << 30;
    let mk =
        |sub: &str| BaselineCluster::create(P, dir.join(sub), None, Some(NET_BW), false).unwrap();
    let (e, prep) = match timed(|| GeminiEngine::load(mk("m"), g, mem)) {
        (Ok(e), t) => (e, t),
        (Err(_), _) => return None, // the paper's "M" (out of memory)
    };
    let (_, pr) = timed(|| e.pagerank(&pagerank_rounds(5), &deg).unwrap());
    let (_, bfs) = timed(|| e.run_push(&bfs_spec(0), |a, b| a.min(b)).unwrap());
    let es = GeminiEngine::load(mk("ms"), &sym, mem).unwrap();
    let (_, wcc) = timed(|| es.run_push(&wcc_spec(), |a, b| a.min(b)).unwrap());
    let ew = GeminiEngine::load(mk("mw"), &w, mem).unwrap();
    let (_, sssp) = timed(|| ew.run_push(&sssp_spec(0), f32::min).unwrap());
    Some((prep, pr, bfs, wcc, sssp))
}

fn print_rows(name: &str, t: Suite) {
    println!(
        "{name:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        fmt_secs(t.0),
        fmt_secs(t.1),
        fmt_secs(t.2),
        fmt_secs(t.3),
        fmt_secs(t.4)
    );
}

fn main() {
    println!("=== Table 5: distributed comparison (P={P}) ===");
    let td = TempDir::new().unwrap();
    let mut r_chaos = Vec::new();
    let mut r_hybrid = Vec::new();
    let mut r_gemini = Vec::new();
    for (gname, g) in
        [("twitter-like", twitter_like()), ("uk-like", uk_like()), ("RMAT-like", rmat_like())]
    {
        println!("\n--- {} ---", describe(gname, &g));
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "system", "Prep", "PR", "BFS", "WCC", "SSSP"
        );
        let dir = td.path().join(gname);
        let dfo = dfo_suite(&dir.join("dfo"), P, &g, 5);
        print_rows("DFOGraph", dfo);
        let ch = chaos_suite(&dir, &g);
        print_rows("Chaos", ch);
        let hy = hybrid_suite(&dir, &g);
        print_rows("HybridGraph", hy);
        match gemini_suite(&dir, &g) {
            Some(gm) => {
                print_rows("Gemini", gm);
                for (d, o) in [(dfo.1, gm.1), (dfo.2, gm.2), (dfo.3, gm.3), (dfo.4, gm.4)] {
                    r_gemini.push(o / d);
                }
            }
            None => println!("{:<14} M (out of memory)", "Gemini"),
        }
        for (d, o) in [(dfo.1, ch.1), (dfo.2, ch.2), (dfo.3, ch.3), (dfo.4, ch.4)] {
            r_chaos.push(o / d);
        }
        for (d, o) in [(dfo.1, hy.1), (dfo.2, hy.2), (dfo.3, hy.3), (dfo.4, hy.4)] {
            r_hybrid.push(o / d);
        }
    }

    // KRON headline: preprocessing + one PR iteration, DFOGraph vs Chaos
    let g = kron_like();
    println!("\n--- {} (PR1 headline) ---", describe("KRON-like", &g));
    let dir = td.path().join("kron");
    let cfg = dfo_bench::dfo_config(P);
    let cluster = dfo_core::Cluster::create(cfg, dir.join("dfo")).unwrap();
    let (_, prep) = timed(|| cluster.preprocess(&g).unwrap());
    let (_, pr1) = timed(|| {
        cluster
            .run(|ctx| {
                dfo_algos::pagerank(ctx, 1)?;
                Ok(0u64)
            })
            .unwrap()
    });
    println!("DFOGraph       Prep {}  PR1 {}", fmt_secs(prep), fmt_secs(pr1));
    let bc =
        BaselineCluster::create(P, dir.join("chaos"), Some(DISK_BW), Some(NET_BW), false).unwrap();
    let deg = out_degrees(&g);
    let (ce, cprep) = timed(|| ChaosEngine::preprocess(bc, &g).unwrap());
    let (_, cpr1) = timed(|| ce.pagerank(&pagerank_rounds(1), &deg).unwrap());
    println!("Chaos          Prep {}  PR1 {}", fmt_secs(cprep), fmt_secs(cpr1));

    println!(
        "\nRelative time (geomean, vs DFOGraph): Chaos {:.2}x, HybridGraph {:.2}x, Gemini {:.2}x",
        geomean(&r_chaos),
        geomean(&r_hybrid),
        if r_gemini.is_empty() { f64::NAN } else { geomean(&r_gemini) }
    );
    println!("(paper: >12.94x, >10.82x, 0.21x)");
}
