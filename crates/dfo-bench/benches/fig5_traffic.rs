//! Figure 5 — disk and network traffic over time: DFOGraph vs Chaos-like
//! running five PageRank iterations on 8 nodes.
//!
//! Expected shape (paper): DFOGraph moves ~38.6 % of Chaos's disk bytes and
//! ~1.9 % of its network bytes. The harness prints the totals and writes
//! the bucketed bandwidth series to `fig5_dfograph.csv` / `fig5_chaos.csv`
//! next to the bench output.

use dfo_baselines::{pagerank_rounds, spec::out_degrees, BaselineCluster, ChaosEngine};
use dfo_bench::{describe, fmt_bytes, rmat_like, DISK_BW, NET_BW};
use dfo_core::Cluster;
use std::io::Write;
use tempfile::TempDir;

const P: usize = 4;
const BUCKET_MS: u64 = 500;

fn dump_series(path: &str, label: &str, series: &[(String, Vec<(u64, u64)>)]) {
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "series,at_ms,bytes").unwrap();
    for (name, buckets) in series {
        for (at, b) in buckets {
            writeln!(f, "{name},{at},{b}").unwrap();
        }
    }
    println!("  {label} series written to {path}");
}

fn main() {
    let g = rmat_like();
    println!("=== Figure 5: traffic over time, 5 PR iterations (P={P}) ===");
    println!("{}", describe("RMAT-like", &g));
    let td = TempDir::new().unwrap();
    let deg = out_degrees(&g);

    // --- DFOGraph ----------------------------------------------------------
    let mut cfg = dfo_bench::dfo_config(P);
    cfg.record_traffic = true;
    let cluster = Cluster::create(cfg, td.path().join("dfo")).unwrap();
    cluster.preprocess(&g).unwrap();
    cluster.reset_disk_stats(); // count iterations only, like the figure
    cluster
        .run(|ctx| {
            dfo_algos::pagerank(ctx, 5)?;
            Ok(0u64)
        })
        .unwrap();
    let dfo_disk = cluster.total_disk_bytes();
    let dfo_net = cluster.total_net_sent();
    let disk0 = &cluster.disks()[0].stats();
    let dfo_series = vec![
        ("disk_read".to_string(), disk0.read_traffic.bucketed(BUCKET_MS)),
        ("disk_write".to_string(), disk0.write_traffic.bucketed(BUCKET_MS)),
        ("net_send".to_string(), cluster.net_stats()[0].sent_traffic.bucketed(BUCKET_MS)),
    ];

    // --- Chaos --------------------------------------------------------------
    let bc = BaselineCluster::create(P, td.path().join("chaos"), Some(DISK_BW), Some(NET_BW), true)
        .unwrap();
    let chaos = ChaosEngine::preprocess(bc, &g).unwrap();
    chaos.cluster.reset_disk_stats();
    chaos.pagerank(&pagerank_rounds(5), &deg).unwrap();
    let chaos_disk = chaos.cluster.total_disk_bytes();
    let chaos_net = chaos.cluster.total_net_sent();
    let cdisk0 = &chaos.cluster.disks()[0].stats();
    let chaos_series = vec![
        ("disk_read".to_string(), cdisk0.read_traffic.bucketed(BUCKET_MS)),
        ("disk_write".to_string(), cdisk0.write_traffic.bucketed(BUCKET_MS)),
        ("net_send".to_string(), chaos.cluster.net_stats()[0].sent_traffic.bucketed(BUCKET_MS)),
    ];

    println!("\n{:<12} {:>14} {:>14}", "system", "disk total", "net total");
    println!("{:<12} {:>14} {:>14}", "DFOGraph", fmt_bytes(dfo_disk), fmt_bytes(dfo_net));
    println!("{:<12} {:>14} {:>14}", "Chaos", fmt_bytes(chaos_disk), fmt_bytes(chaos_net));
    println!(
        "\nDFOGraph / Chaos: disk {:.1}%, network {:.1}%   (paper: 38.6%, 1.9%)",
        100.0 * dfo_disk as f64 / chaos_disk as f64,
        100.0 * dfo_net as f64 / chaos_net as f64
    );
    dump_series("fig5_dfograph.csv", "DFOGraph", &dfo_series);
    dump_series("fig5_chaos.csv", "Chaos", &chaos_series);

    assert!(dfo_net < chaos_net / 3, "DFOGraph must send far fewer bytes than Chaos");
    assert!(dfo_disk < chaos_disk, "DFOGraph must move fewer disk bytes than Chaos");
}
