//! §4.2 ablation — push vs pull vs no dispatching, end to end through the
//! engine with the strategy forced, across message densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfo_core::Cluster;
use dfo_graph::gen::{rmat, GenConfig};
use dfo_types::{BatchPolicy, DispatchKind};
use std::hint::black_box;
use tempfile::TempDir;

fn bench_dispatch(c: &mut Criterion) {
    let g = rmat(GenConfig::new(11, 8, 42));
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    // density: fraction of vertices signalling
    for &denom in &[1u64, 64, 1024] {
        for kind in [DispatchKind::Push, DispatchKind::Pull, DispatchKind::None] {
            let td = TempDir::new().unwrap();
            let mut cfg = dfo_types::EngineConfig::for_test(2);
            cfg.batch_policy = BatchPolicy::FixedVertices(128);
            cfg.dispatch_override = Some(kind);
            let cluster = Cluster::create(cfg, td.path()).unwrap();
            cluster.preprocess(&g).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), format!("1/{denom}")),
                &denom,
                |b, &denom| {
                    b.iter(|| {
                        let out = cluster
                            .run(|ctx| {
                                let acc = ctx.vertex_array::<u64>("acc")?;
                                let a = acc.clone();
                                ctx.process_edges(
                                    &[],
                                    &["acc"],
                                    None,
                                    move |v, _c| (v % denom == 0).then_some(1u64),
                                    move |m: u64, _s, d, _e: &(), cx| {
                                        let cur = cx.get(&a, d);
                                        cx.set(&a, d, cur + m);
                                        1u64
                                    },
                                )
                            })
                            .unwrap();
                        black_box(out[0])
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
