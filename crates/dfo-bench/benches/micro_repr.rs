//! §4.1 ablation — CSR vs DCSR access cost across chunk density and message
//! count: locates the crossover the adaptive cost model exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfo_part::csr::{IndexedChunk, MergeCursor};
use std::hint::black_box;

fn build_chunk(n_src: u32, nonzero: u32, edges_per_src: u32) -> IndexedChunk<u32> {
    let stride = (n_src / nonzero.max(1)).max(1);
    let mut edges = Vec::new();
    for i in 0..nonzero {
        let s = i * stride;
        for k in 0..edges_per_src {
            edges.push((s, k, s ^ k));
        }
    }
    IndexedChunk::build(n_src, &edges, f64::INFINITY) // always build CSR too
}

fn bench_seek(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_seek");
    group.sample_size(20);
    let n_src = 1 << 16;
    for &nonzero in &[64u32, 1 << 10, 1 << 14] {
        let chunk = build_chunk(n_src, nonzero, 4);
        for &n_msgs in &[8u32, 256, 8192] {
            let msgs: Vec<u32> = (0..n_msgs).map(|i| i * (n_src / n_msgs.max(1))).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("csr_nz{nonzero}"), n_msgs),
                &msgs,
                |b, msgs| {
                    b.iter(|| {
                        let mut acc = 0u64;
                        for &m in msgs {
                            for e in chunk.edges_of_csr(m) {
                                acc += chunk.dst[e] as u64;
                            }
                        }
                        black_box(acc)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dcsr_nz{nonzero}"), n_msgs),
                &msgs,
                |b, msgs| {
                    b.iter(|| {
                        let mut cur = MergeCursor::new();
                        let mut acc = 0u64;
                        for &m in msgs {
                            for e in cur.edges_of(&chunk, m) {
                                acc += chunk.dst[e] as u64;
                            }
                        }
                        black_box(acc)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_space(c: &mut Criterion) {
    // serialized size difference: the I/O the inflate ratio gates
    let mut group = c.benchmark_group("repr_space");
    group.sample_size(10);
    for &nonzero in &[64u32, 1 << 12] {
        let with_csr = build_chunk(1 << 16, nonzero, 4);
        let no_csr = IndexedChunk::build(
            1 << 16,
            &with_csr.iter().map(|(s, d, &x)| (s, d, x)).collect::<Vec<_>>(),
            0.0, // never accept CSR
        );
        println!(
            "chunk nz={nonzero}: dcsr-only {} B, +csr {} B",
            no_csr.serialized_bytes(),
            with_csr.serialized_bytes()
        );
        group.bench_function(BenchmarkId::new("serialize_dcsr", nonzero), |b| {
            b.iter(|| {
                let mut buf = Vec::new();
                no_csr.write_to(&mut buf).unwrap();
                black_box(buf.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seek, bench_space);
criterion_main!(benches);
