//! Table 4 — single-machine comparison: DFOGraph vs GridGraph-like vs
//! FlashGraph-like on a twitter-like and a uk-like graph; Prep / PR(5) /
//! BFS / WCC / SSSP, plus the paper's "relative time" geometric mean.
//!
//! Expected shape (paper): DFOGraph ≥2.52× over GridGraph overall, ~1.06×
//! over FlashGraph; GridGraph collapses on the long-diameter graph's
//! sparse iterations; FlashGraph's selective adjacency fetch keeps BFS
//! competitive.

use dfo_baselines::{bfs_spec, pagerank_rounds, spec::out_degrees, sssp_spec, wcc_spec};
use dfo_baselines::{FlashGraphEngine, GridGraphEngine};
use dfo_bench::{
    describe, dfo_suite, fmt_secs, geomean, timed, twitter_like, uk_like, weighted, DISK_BW,
};
use dfo_storage::NodeDisk;
use tempfile::TempDir;

fn gridgraph_suite(
    dir: &std::path::Path,
    g: &dfo_graph::EdgeList<()>,
) -> (f64, f64, f64, f64, f64) {
    let q = 16;
    let deg = out_degrees(g);
    let sym = dfo_algos::wcc::symmetrize(g);
    let w = weighted(g);
    let disk = NodeDisk::new(dir.join("gg"), Some(DISK_BW), false).unwrap();
    let (e, prep) = timed(|| GridGraphEngine::preprocess(disk, g, q).unwrap());
    let (_, pr) = timed(|| e.pagerank(&pagerank_rounds(5), &deg).unwrap());
    let (_, bfs) = timed(|| e.run_push(&bfs_spec(0)).unwrap());
    let disk = NodeDisk::new(dir.join("gg_sym"), Some(DISK_BW), false).unwrap();
    let es = GridGraphEngine::preprocess(disk, &sym, q).unwrap();
    let (_, wcc) = timed(|| es.run_push(&wcc_spec()).unwrap());
    let disk = NodeDisk::new(dir.join("gg_w"), Some(DISK_BW), false).unwrap();
    let ew = GridGraphEngine::preprocess(disk, &w, q).unwrap();
    let (_, sssp) = timed(|| ew.run_push(&sssp_spec(0)).unwrap());
    (prep, pr, bfs, wcc, sssp)
}

fn flashgraph_suite(
    dir: &std::path::Path,
    g: &dfo_graph::EdgeList<()>,
) -> (f64, f64, f64, f64, f64) {
    let mem = 4u64 << 30;
    let deg = out_degrees(g);
    let sym = dfo_algos::wcc::symmetrize(g);
    let w = weighted(g);
    let disk = NodeDisk::new(dir.join("fg"), Some(DISK_BW), false).unwrap();
    let (e, prep) = timed(|| FlashGraphEngine::preprocess(disk, g, mem).unwrap());
    let (_, pr) = timed(|| e.pagerank(&pagerank_rounds(5), &deg).unwrap());
    let (_, bfs) = timed(|| e.run_push(&bfs_spec(0)).unwrap());
    let disk = NodeDisk::new(dir.join("fg_sym"), Some(DISK_BW), false).unwrap();
    let es = FlashGraphEngine::preprocess(disk, &sym, mem).unwrap();
    let (_, wcc) = timed(|| es.run_push(&wcc_spec()).unwrap());
    let disk = NodeDisk::new(dir.join("fg_w"), Some(DISK_BW), false).unwrap();
    let ew = FlashGraphEngine::preprocess(disk, &w, mem).unwrap();
    let (_, sssp) = timed(|| ew.run_push(&sssp_spec(0)).unwrap());
    (prep, pr, bfs, wcc, sssp)
}

fn print_rows(name: &str, t: (f64, f64, f64, f64, f64)) {
    println!(
        "{name:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        fmt_secs(t.0),
        fmt_secs(t.1),
        fmt_secs(t.2),
        fmt_secs(t.3),
        fmt_secs(t.4)
    );
}

fn main() {
    println!("=== Table 4: single-machine comparison (P=1) ===");
    let td = TempDir::new().unwrap();
    let mut ratios_gg = Vec::new();
    let mut ratios_fg = Vec::new();
    for (gname, g) in [("twitter-like", twitter_like()), ("uk-like", uk_like())] {
        println!("\n--- {} ---", describe(gname, &g));
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "system", "Prep", "PR", "BFS", "WCC", "SSSP"
        );
        let dir = td.path().join(gname);
        let dfo = dfo_suite(&dir.join("dfo"), 1, &g, 5);
        print_rows("DFOGraph", dfo);
        let gg = gridgraph_suite(&dir, &g);
        print_rows("GridGraph", gg);
        let fg = flashgraph_suite(&dir, &g);
        print_rows("FlashGraph", fg);
        for (d, o) in [(dfo.1, gg.1), (dfo.2, gg.2), (dfo.3, gg.3), (dfo.4, gg.4)] {
            ratios_gg.push(o / d);
        }
        for (d, o) in [(dfo.1, fg.1), (dfo.2, fg.2), (dfo.3, fg.3), (dfo.4, fg.4)] {
            ratios_fg.push(o / d);
        }
    }
    println!(
        "\nRelative time (geomean, vs DFOGraph): GridGraph {:.2}x, FlashGraph {:.2}x",
        geomean(&ratios_gg),
        geomean(&ratios_fg)
    );
    println!("(paper: >2.52x and 1.06x)");
}
