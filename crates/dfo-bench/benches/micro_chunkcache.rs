//! Chunk cache micro-benchmark: multi-iteration PageRank with the cache off
//! (budget 0, today's fully-out-of-core behaviour) vs a fits-all budget
//! with read-ahead. Prints per-iteration disk read bytes and asserts the
//! cached run reads strictly fewer bytes on every iteration after the
//! first — the cross-iteration chunk reuse the cache exists for.
//!
//! The printed `BENCH_3` line is the JSON committed as `BENCH_3.json` so
//! future PRs have a trajectory to compare against.

use criterion::{criterion_group, criterion_main, Criterion};
use dfo_bench::{fmt_bytes, fmt_secs, pagerank_with_stats, timed};
use dfo_core::Cluster;
use dfo_graph::gen::{rmat, GenConfig};
use dfo_types::{BatchPolicy, EngineConfig, PhaseStats};

const ITERS: usize = 5;

struct RunOut {
    /// *Physical* disk bytes read by the edge pipeline per iteration,
    /// cluster-wide (post-compression: what actually crossed the device).
    per_iter_read: Vec<u64>,
    /// *Logical* disk bytes read per iteration (pre-compression payload the
    /// pipeline consumed) — separates the cache win (fewer logical reads)
    /// from the compression win (physical < logical on what remains).
    per_iter_logical: Vec<u64>,
    wall_secs: f64,
    cache_hits: u64,
}

fn run(budget: u64) -> RunOut {
    let g = rmat(GenConfig::new(12, 8, 21));
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(256);
    cfg.disk_bw = Some(dfo_bench::DISK_BW);
    cfg.net_bw = Some(dfo_bench::NET_BW);
    cfg.chunk_cache_bytes = budget;
    cfg.prefetch_depth = 2;
    let td = tempfile::TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let (per_node, wall_secs) =
        timed(|| cluster.run(|ctx| pagerank_with_stats(ctx, ITERS)).unwrap());
    let mut per_iter = vec![PhaseStats::default(); ITERS];
    for (_ranks, stats) in per_node {
        for (m, s) in per_iter.iter_mut().zip(&stats) {
            m.merge(s);
        }
    }
    let cache_hits = per_iter.iter().map(|s| s.chunk_cache_hits).sum();
    let per_iter_read = per_iter
        .iter()
        .map(|s| {
            s.generate_disk_read + s.pass_disk_read + s.dispatch_disk_read + s.process_disk_read
        })
        .collect();
    let per_iter_logical = per_iter.iter().map(|s| s.logical_disk_read).collect();
    RunOut { per_iter_read, per_iter_logical, wall_secs, cache_hits }
}

fn bench_chunk_cache(c: &mut Criterion) {
    let g = rmat(GenConfig::new(12, 8, 21));
    println!(
        "micro_chunkcache: |V|={}, |E|={}, {ITERS} PageRank iterations",
        g.n_vertices,
        g.n_edges()
    );

    let cold = run(0);
    let warm = run(1 << 30);

    // wall-time percentiles over repeated warm runs, through the same
    // dfo-obs histogram machinery the engine exports (warn-only in the
    // gate — CI wall-clock is noise, but the spread is worth seeing)
    const WALL_SAMPLES: usize = 7;
    let wall_hist = dfo_obs::Registry::new().histogram(
        "bench_wall_seconds",
        "micro_chunkcache fits-all wall time",
        &[],
        dfo_obs::DURATION_BUCKETS,
    );
    wall_hist.observe(warm.wall_secs);
    for _ in 1..WALL_SAMPLES {
        wall_hist.observe(run(1 << 30).wall_secs);
    }
    let snap = wall_hist.snapshot();
    let (p50, p99) = (snap.quantile(0.5).unwrap_or(0.0), snap.quantile(0.99).unwrap_or(0.0));
    println!(
        "fits-all wall percentiles over {WALL_SAMPLES} runs: p50={:.1}ms p99={:.1}ms",
        p50 * 1e3,
        p99 * 1e3
    );
    for (name, r) in [("budget 0", &cold), ("fits-all", &warm)] {
        let iters: Vec<String> = r.per_iter_read.iter().map(|&b| fmt_bytes(b)).collect();
        let logical: Vec<String> = r.per_iter_logical.iter().map(|&b| fmt_bytes(b)).collect();
        println!(
            "{name:>9}: wall {} | per-iteration edge-pipeline physical reads: [{}] | \
             logical reads: [{}] | cache hits {}",
            fmt_secs(r.wall_secs),
            iters.join(", "),
            logical.join(", "),
            r.cache_hits
        );
    }

    // the whole point: once the chunks are resident, every later iteration
    // reads strictly fewer disk bytes than the cold first one
    for (i, &bytes) in warm.per_iter_read.iter().enumerate().skip(1) {
        assert!(
            bytes < warm.per_iter_read[0],
            "cached iteration {} read {} bytes, iteration 1 read {}",
            i + 1,
            bytes,
            warm.per_iter_read[0]
        );
    }
    assert!(warm.cache_hits > 0, "fits-all budget never hit the cache");
    let total = |r: &RunOut| r.per_iter_read.iter().sum::<u64>();
    assert!(
        total(&warm) < total(&cold),
        "cached run must read fewer total bytes: {} vs {}",
        total(&warm),
        total(&cold)
    );

    let total_logical = |r: &RunOut| r.per_iter_logical.iter().sum::<u64>();
    println!(
        "BENCH_3 {{\"bench\":\"micro_chunkcache\",\"iters\":{ITERS},\
         \"budget0\":{{\"wall_secs\":{:.3},\"read_bytes_per_iter\":{:?},\"total_read_bytes\":{},\
         \"logical_read_bytes_per_iter\":{:?},\"total_logical_read_bytes\":{}}},\
         \"fits_all\":{{\"wall_secs\":{:.3},\"read_bytes_per_iter\":{:?},\"total_read_bytes\":{},\
         \"logical_read_bytes_per_iter\":{:?},\"total_logical_read_bytes\":{},\
         \"cache_hits\":{},\"wall_ms_p50\":{:.1},\"wall_ms_p99\":{:.1}}}}}",
        cold.wall_secs,
        cold.per_iter_read,
        total(&cold),
        cold.per_iter_logical,
        total_logical(&cold),
        warm.wall_secs,
        warm.per_iter_read,
        total(&warm),
        warm.per_iter_logical,
        total_logical(&warm),
        warm.cache_hits,
        p50 * 1e3,
        p99 * 1e3
    );

    let mut group = c.benchmark_group("chunk_cache");
    group.sample_size(2);
    group.bench_function("pagerank5/budget0", |b| b.iter(|| std::hint::black_box(run(0))));
    group.bench_function("pagerank5/fits_all", |b| b.iter(|| std::hint::black_box(run(1 << 30))));
    group.finish();
}

criterion_group!(benches, bench_chunk_cache);
criterion_main!(benches);
