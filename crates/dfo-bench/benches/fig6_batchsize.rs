//! Figure 6 — impact of vertex batch size operating semi-out-of-core:
//! preprocessing, PageRank and BFS time as the average number of batches
//! per node sweeps 3 … 192 (uk-like graph).
//!
//! Expected shape (paper, T=12): too few batches hurt load balancing; the
//! optimum sits a small multiple of T; very small batches hurt BFS because
//! fewer chunks pass the CSR inflate ratio and DCSR-only access costs more.

use dfo_bench::{describe, dfo_config, fmt_secs, timed, uk_like};
use dfo_core::Cluster;
use dfo_types::BatchPolicy;
use tempfile::TempDir;

const P: usize = 2;

fn main() {
    let g = uk_like();
    println!("=== Figure 6: batch-size sweep, semi-out-of-core (P={P}, T=2) ===");
    println!("{}", describe("uk-like", &g));
    let td = TempDir::new().unwrap();
    println!(
        "\n{:<16} {:>10} {:>10} {:>10} {:>14}",
        "batches/node", "Prep", "PR", "BFS", "CSR chunks %"
    );
    let per_node = g.n_vertices / P as u64;
    for batches in [3u64, 6, 12, 24, 48, 96, 192] {
        let batch_size = (per_node / batches).max(1);
        let mut cfg = dfo_config(P);
        cfg.batch_policy = BatchPolicy::FixedVertices(batch_size);
        let dir = td.path().join(format!("b{batches}"));
        let cluster = Cluster::create(cfg, &dir).unwrap();
        let (plan, prep) = timed(|| cluster.preprocess(&g).unwrap());
        let (_, pr) = timed(|| {
            cluster
                .run(|ctx| {
                    dfo_algos::pagerank(ctx, 5)?;
                    Ok(0u64)
                })
                .unwrap()
        });
        let (_, bfs) = timed(|| {
            cluster
                .run(|ctx| {
                    dfo_algos::bfs(ctx, 0)?;
                    Ok(0u64)
                })
                .unwrap()
        });
        let (csr, total) = plan
            .node_meta
            .iter()
            .flat_map(|m| m.chunks.iter())
            .fold((0u64, 0u64), |(c, t), ch| (c + ch.has_csr as u64, t + 1));
        println!(
            "{batches:<16} {:>10} {:>10} {:>10} {:>13.1}%",
            fmt_secs(prep),
            fmt_secs(pr),
            fmt_secs(bfs),
            100.0 * csr as f64 / total.max(1) as f64
        );
    }
    println!("(paper: optimum between 2T and 4T batches; tiny batches lose CSR acceptance)");
}
