//! Table 2 — I/O and communication amount in each phase of `ProcessEdges`
//! on node i, measured against the paper's analytic worst-case bounds:
//!
//! ```text
//! Generate  disk R+W ≤ |V_i|
//! Pass      disk R   ≤ (P−1)·|V_i| + |E_out_i|,  net send ≤ |E_out_i|
//! Dispatch  disk R+W ≤ |E_in_i|,                 net recv ≤ |E_in_i|
//! Process   disk R   ≤ P·|V_i| + |E_in_i|,       disk W   ≤ P·|V_i|
//! ```
//!
//! Bounds are in *records*; we convert to bytes with the record sizes in
//! play and allow the representation/metadata overhead factor the paper's
//! "≤" hides (index arrays, block headers).

use dfo_bench::{describe, dfo_config, rmat_like};
use dfo_core::Cluster;
use dfo_types::PhaseStats;
use tempfile::TempDir;

fn main() {
    let p = 4;
    let g = rmat_like();
    println!("=== Table 2: per-phase I/O vs analytic bounds (P={p}) ===");
    println!("{}", describe("RMAT-like", &g));
    let td = TempDir::new().unwrap();
    let mut cfg = dfo_config(p);
    cfg.disk_bw = None; // bounds check, not a timing run
    cfg.net_bw = None;
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    let plan = cluster.preprocess(&g).unwrap();

    // one PageRank-style all-active iteration: M = f64 (12 B records)
    let stats: Vec<(usize, PhaseStats, u64, u64, u64)> = cluster
        .run(|ctx| {
            let deg = ctx.vertex_array::<u64>("deg")?;
            let d = deg.clone();
            ctx.process_edges(
                &[],
                &["deg"],
                None,
                |_v, _c| Some(1.0f64),
                move |m: f64, _s, dst, _e: &(), c| {
                    let cur = c.get(&d, dst);
                    c.set(&d, dst, cur + m as u64);
                    1u64
                },
            )?;
            let meta = &ctx.plan().node_meta[ctx.rank()];
            Ok((
                ctx.rank(),
                ctx.last_phase_stats().clone(),
                ctx.plan().partitions[ctx.rank()].len(),
                meta.n_in_edges,
                meta.n_out_edges,
            ))
        })
        .unwrap();

    let rec = 12u64; // 4 B src + 8 B f64 message
    let vertex_rec = 8u64; // one f64/u64 vertex value
    let overhead = 4; // index arrays, headers, bool bitmaps
    println!("{:<6} {:<10} {:>14} {:>14}  ok?", "node", "phase", "measured", "bound");
    let mut all_ok = true;
    for (rank, s, vi, ein, eout) in &stats {
        let p_u = p as u64;
        let rows: Vec<(&str, u64, u64)> = vec![
            (
                "generate",
                s.generate_disk_read + s.generate_disk_write,
                // reads active+signal arrays and writes ≤|V_i| records +
                // written-back vertex blocks
                (vi * (rec + 3 * vertex_rec)) * overhead,
            ),
            ("pass-read", s.pass_disk_read, ((p_u - 1) * vi + eout) * rec * overhead),
            ("pass-net", s.pass_net_sent, eout * rec * overhead + (p_u - 1) * 64),
            ("dispatch", s.dispatch_disk_read + s.dispatch_disk_write, ein * rec * overhead),
            ("disp-net", s.dispatch_net_recv, ein * rec * overhead + (p_u - 1) * 64),
            ("process-r", s.process_disk_read, (p_u * vi + ein) * rec * overhead),
            ("process-w", s.process_disk_write, p_u * vi * vertex_rec * overhead),
        ];
        for (name, measured, bound) in rows {
            let ok = measured <= bound;
            all_ok &= ok;
            println!(
                "{rank:<6} {name:<10} {measured:>14} {bound:>14}  {}",
                if ok { "yes" } else { "VIOLATED" }
            );
        }
        println!(
            "{rank:<6} {:<10} generated={} sent={} (filtering saved {:.1}%)",
            "messages",
            s.messages_generated,
            s.messages_sent,
            100.0
                * (1.0
                    - s.messages_sent as f64
                        / ((p as u64 - 1) * s.messages_generated).max(1) as f64),
        );
    }
    let _ = plan;
    println!(
        "\nresult: {}",
        if all_ok { "all phases within analytic bounds" } else { "BOUND VIOLATION" }
    );
    assert!(all_ok);
}
