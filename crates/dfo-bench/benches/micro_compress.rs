//! Chunk compression micro-benchmark on the bundled web-graph generator
//! (`web_chain`, the uk-2014 stand-in — web graphs are where GraphMP-style
//! block compression shines).
//!
//! Runs multi-iteration damped PageRank across the full
//! {compress on/off} × {chunk_cache_bytes 0/small/large} matrix and
//! asserts:
//!
//! * results are bit-identical across all six cells,
//! * compressed preprocessing writes strictly fewer physical bytes,
//! * the cold iteration reads strictly fewer physical bytes compressed,
//!   while consuming the same logical bytes.
//!
//! The printed `BENCH_4` line is the JSON committed as `BENCH_4.json`; the
//! CI bench-gate job compares fresh runs against it (hard-fail when any
//! byte metric regresses > 5 %, warn-only on wall-clock).

use dfo_bench::{fmt_bytes, fmt_secs, pagerank_with_stats, timed, uk_like};
use dfo_core::Cluster;
use dfo_types::{BatchPolicy, EngineConfig, PhaseStats};

const ITERS: usize = 4;
const SMALL_BUDGET: u64 = 64 << 10;
const LARGE_BUDGET: u64 = 1 << 30;

struct RunOut {
    /// Physical disk bytes written by preprocessing, cluster-wide.
    prep_write: u64,
    /// Logical (pre-compression) preprocessing writes.
    prep_write_logical: u64,
    /// Physical edge-pipeline reads per iteration, cluster-wide.
    per_iter_read: Vec<u64>,
    /// Logical reads per iteration.
    per_iter_logical: Vec<u64>,
    wall_secs: f64,
    /// Bit patterns of the final ranks, for the identity matrix.
    rank_bits: Vec<u64>,
}

fn run(compress: bool, budget: u64) -> RunOut {
    let g = uk_like();
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(256);
    cfg.disk_bw = Some(dfo_bench::DISK_BW);
    cfg.net_bw = Some(dfo_bench::NET_BW);
    cfg.compress_chunks = compress;
    cfg.chunk_cache_bytes = budget;
    let td = tempfile::TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let (prep_write, prep_write_logical) = cluster
        .disks()
        .iter()
        .map(|d| (d.stats().write_bytes.get(), d.stats().logical_write_bytes.get()))
        .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));

    let (per_node, wall_secs) =
        timed(|| cluster.run(|ctx| pagerank_with_stats(ctx, ITERS)).unwrap());
    let mut per_iter = vec![PhaseStats::default(); ITERS];
    let mut rank_bits = Vec::new();
    for (ranks, stats) in per_node {
        rank_bits.extend(ranks.into_iter().map(f64::to_bits));
        for (m, s) in per_iter.iter_mut().zip(&stats) {
            m.merge(s);
        }
    }
    let per_iter_read = per_iter
        .iter()
        .map(|s| {
            s.generate_disk_read + s.pass_disk_read + s.dispatch_disk_read + s.process_disk_read
        })
        .collect();
    let per_iter_logical = per_iter.iter().map(|s| s.logical_disk_read).collect();
    RunOut { prep_write, prep_write_logical, per_iter_read, per_iter_logical, wall_secs, rank_bits }
}

fn main() {
    let g = uk_like();
    println!(
        "micro_compress: web_chain |V|={}, |E|={}, {ITERS} PageRank iterations, 2 nodes",
        g.n_vertices,
        g.n_edges()
    );

    // the reported cells: fully-out-of-core (budget 0), compression off/on
    let raw = run(false, 0);
    let comp = run(true, 0);
    for (name, r) in [("raw", &raw), ("compressed", &comp)] {
        println!(
            "{name:>11}: prep writes {} (logical {}) | wall {} | cold iteration reads {} \
             (logical {})",
            fmt_bytes(r.prep_write),
            fmt_bytes(r.prep_write_logical),
            fmt_secs(r.wall_secs),
            fmt_bytes(r.per_iter_read[0]),
            fmt_bytes(r.per_iter_logical[0]),
        );
    }

    // acceptance: compressed preprocessing output and cold-iteration
    // physical reads strictly smaller than uncompressed
    assert!(
        comp.prep_write < raw.prep_write,
        "compressed preprocessing wrote {} vs raw {}",
        comp.prep_write,
        raw.prep_write
    );
    assert!(
        comp.per_iter_read[0] < raw.per_iter_read[0],
        "compressed cold iteration read {} vs raw {}",
        comp.per_iter_read[0],
        raw.per_iter_read[0]
    );
    // logical traffic is layout-independent
    assert_eq!(comp.per_iter_logical, raw.per_iter_logical, "logical reads must match");

    // bit-identical results across the whole compression × budget matrix
    // (the two budget-0 cells are `raw` and `comp`, already computed)
    assert_eq!(comp.rank_bits, raw.rank_bits, "results diverged at compress=true budget=0");
    for compress in [false, true] {
        for budget in [SMALL_BUDGET, LARGE_BUDGET] {
            let cell = run(compress, budget);
            assert_eq!(
                cell.rank_bits, raw.rank_bits,
                "results diverged at compress={compress} budget={budget}"
            );
        }
    }
    println!("matrix: ranks bit-identical across {{on,off}} × {{0, 64K, 1G}}");

    // the compounding cell for the JSON trajectory: compression + cache
    let both = run(true, LARGE_BUDGET);
    let total = |v: &[u64]| v.iter().sum::<u64>();
    println!(
        "BENCH_4 {{\"bench\":\"micro_compress\",\"iters\":{ITERS},\
         \"uncompressed\":{{\"wall_secs\":{:.3},\"prep_write_bytes\":{},\
         \"cold_read_bytes\":{},\"total_read_bytes\":{}}},\
         \"compressed\":{{\"wall_secs\":{:.3},\"prep_write_bytes\":{},\
         \"prep_logical_write_bytes\":{},\"cold_read_bytes\":{},\"total_read_bytes\":{},\
         \"cold_logical_read_bytes\":{}}},\
         \"compressed_cached\":{{\"wall_secs\":{:.3},\"total_read_bytes\":{}}}}}",
        raw.wall_secs,
        raw.prep_write,
        raw.per_iter_read[0],
        total(&raw.per_iter_read),
        comp.wall_secs,
        comp.prep_write,
        comp.prep_write_logical,
        comp.per_iter_read[0],
        total(&comp.per_iter_read),
        comp.per_iter_logical[0],
        both.wall_secs,
        total(&both.per_iter_read),
    );
}
