//! Table 7 — DFOGraph scalability on 1, 2, 4, 8 and 16 nodes (RMAT-like):
//! preprocessing and the four algorithms, with speedups relative to P = 1.
//!
//! Expected shape (paper): overall 1.42× / 3.01× / 6.56× / 21.32× at
//! P = 2/4/8/16 (super-linear tail from aggregate page cache).

use dfo_bench::{describe, dfo_suite, fmt_secs, geomean, rmat_like};
use tempfile::TempDir;

fn main() {
    let g = rmat_like();
    println!("=== Table 7: scalability (RMAT-like) ===");
    println!("{}", describe("RMAT-like", &g));
    let td = TempDir::new().unwrap();
    println!(
        "\n{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "P", "Prep", "PR", "BFS", "WCC", "SSSP", "overall-x"
    );
    let mut base: Option<(f64, f64, f64, f64, f64)> = None;
    for p in [1usize, 2, 4, 8, 16] {
        let t = dfo_suite(&td.path().join(format!("p{p}")), p, &g, 5);
        let overall = match &base {
            None => {
                base = Some(t);
                1.0
            }
            Some(b) => geomean(&[b.1 / t.1, b.2 / t.2, b.3 / t.3, b.4 / t.4]),
        };
        println!(
            "{p:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11.2}x",
            fmt_secs(t.0),
            fmt_secs(t.1),
            fmt_secs(t.2),
            fmt_secs(t.3),
            fmt_secs(t.4),
            overall
        );
    }
    println!("(paper overall speedups: 1.42x / 3.01x / 6.56x / 21.32x)");
}
