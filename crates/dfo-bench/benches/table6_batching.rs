//! Table 6 — importance of intra-node batching: one PageRank iteration with
//! batching enabled/disabled under sufficient and insufficient memory.
//!
//! Expected shape (paper, KRON-34 on 4 nodes): without batching and with
//! memory short of the vertex data, random page traffic makes the run
//! >15× slower; with ample memory batching costs only ~8 % overhead.

use dfo_bench::{describe, fmt_secs, rmat_like, timed};
use dfo_core::Cluster;
use dfo_types::BatchPolicy;
use tempfile::TempDir;

const P: usize = 2;

fn run_one(g: &dfo_graph::EdgeList<()>, batching: bool, mem: u64, dir: &std::path::Path) -> f64 {
    let mut cfg = dfo_bench::dfo_config(P);
    cfg.batching_enabled = batching;
    cfg.mem_budget = mem;
    cfg.batch_policy = BatchPolicy::FullyOutOfCore { widest_vertex_bytes: 8 };
    cfg.disk_bw = Some(256 << 20);
    cfg.net_bw = Some(256 << 20);
    cfg.page_size = 4096;
    let cluster = Cluster::create(cfg, dir).unwrap();
    cluster.preprocess(g).unwrap();
    let (_, t) = timed(|| {
        cluster
            .run(|ctx| {
                dfo_algos::pagerank(ctx, 1)?;
                Ok(0u64)
            })
            .unwrap()
    });
    t
}

fn main() {
    let g = rmat_like();
    println!("=== Table 6: intra-node batching ablation (P={P}, 1 PR iteration) ===");
    println!("{}", describe("RMAT-like", &g));
    let vertex_bytes = g.n_vertices / P as u64 * 8 * 3; // three f64/u64 arrays
    let low_mem = (vertex_bytes / 8).max(64 << 10); // well below vertex data
    let high_mem = 512u64 << 20;
    println!(
        "vertex data per node ≈ {}, low budget {}, high budget {}",
        dfo_bench::fmt_bytes(vertex_bytes),
        dfo_bench::fmt_bytes(low_mem),
        dfo_bench::fmt_bytes(high_mem)
    );
    let td = TempDir::new().unwrap();

    println!(
        "\n{:<22} {:>14} {:>14} {:>10}",
        "memory per node", "No batching", "Batching", "speedup"
    );
    for (label, mem) in [("insufficient", low_mem), ("sufficient", high_mem)] {
        let no_b = run_one(&g, false, mem, &td.path().join(format!("nb_{label}")));
        let with_b = run_one(&g, true, mem, &td.path().join(format!("b_{label}")));
        println!(
            "{label:<22} {:>14} {:>14} {:>9.2}x",
            fmt_secs(no_b),
            fmt_secs(with_b),
            no_b / with_b
        );
    }
    println!("(paper: >15.48x with insufficient memory, 0.92x with sufficient)");
}
