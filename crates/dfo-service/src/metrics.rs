//! The scrape endpoint: a minimal hand-rolled HTTP/1.1 responder serving
//! the service registry as Prometheus text exposition and as JSON.
//!
//! Deliberately tiny — blocking std networking, one connection served at a
//! time, `Connection: close` — because a metrics endpoint sees one scraper
//! every few seconds, not traffic. No HTTP dependency enters the workspace.

use dfo_obs::Registry;
use dfo_types::{DfoError, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A background thread serving `GET /metrics` (Prometheus text,
/// `text/plain; version=0.0.4`) and `GET /metrics.json` (a JSON snapshot)
/// from a shared [`Registry`]. Bind with port 0 for an ephemeral port; the
/// bound address is [`MetricsServer::addr`]. Dropping the server stops the
/// thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (`host:port`; port 0 picks an ephemeral port) and
    /// starts serving the registry.
    pub fn spawn(addr: &str, registry: Arc<Registry>) -> Result<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DfoError::io(format!("binding metrics endpoint {addr}"), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DfoError::io("reading metrics endpoint address", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("dfo-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // a misbehaving scraper must not wedge the thread
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(&mut stream, &registry);
                }
            })
            .map_err(|e| DfoError::io("spawning metrics thread", e))?;
        Ok(Self { addr, stop, handle: Some(handle) })
    }

    /// The address the endpoint actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Reads one request head and writes one response. Anything malformed gets
/// a 400; unknown paths a 404.
fn serve_one(stream: &mut TcpStream, registry: &Registry) -> std::io::Result<()> {
    let head = read_head(stream)?;
    let path = match parse_get_path(&head) {
        Some(p) => p,
        None => return respond(stream, 400, "text/plain; charset=utf-8", "bad request\n"),
    };
    match path {
        "/metrics" => {
            let body = registry.snapshot().to_prometheus();
            respond(stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/metrics.json" => {
            let body = registry.snapshot().to_json();
            respond(stream, 200, "application/json", &body)
        }
        _ => respond(stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads until the blank line ending the request head (or 8 KiB, whichever
/// comes first — headers beyond that are nobody's scrape).
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while buf.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                buf.push(byte[0]);
                if buf.ends_with(b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Extracts the path of a `GET <path> HTTP/1.x` request line.
fn parse_get_path(head: &str) -> Option<&str> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    parts.next()?.starts_with("HTTP/1.").then_some(path)
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: \
         {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_and_json() {
        let registry = Registry::new();
        registry.counter("demo_total", "a demo counter", &[("rank", "0")]).add(3);
        let srv = MetricsServer::spawn("127.0.0.1:0", registry).unwrap();
        let (head, body) = get(srv.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
        assert!(body.contains("demo_total{rank=\"0\"} 3"), "body: {body}");
        let (head, body) = get(srv.addr(), "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = dfo_obs::json::parse(&body).expect("json snapshot parses");
        assert!(parsed.get("demo_total").is_some(), "json: {body}");
        let (head, _) = get(srv.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn rejects_non_get() {
        let srv = MetricsServer::spawn("127.0.0.1:0", Registry::new()).unwrap();
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"));
    }
}
