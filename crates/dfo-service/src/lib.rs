//! Resident DFOGraph engine service: one engine per rank group, many jobs.
//!
//! Batch mode ([`dfo_core::Cluster::run`]) ties one graph, one algorithm and
//! one process lifetime together — every run pays preprocessing or at least
//! plan reload, and two workloads over the same graph serialize. This crate
//! turns the engine into a **resident service**:
//!
//! * a [`Service`] owns the engine configuration and a **catalog** of loaded
//!   graphs — each graph preprocessed once into its own [`dfo_core::Cluster`]
//!   (own disks and per-rank chunk caches) and then shared, reference-
//!   counted, by every job over it;
//! * jobs are submitted as transport-agnostic [`JobSpec`]s — graph name,
//!   algorithm name (resolved in the [`dfo_algos::registry`]), integer
//!   [`dfo_algos::JobParams`] — and tracked through [`JobHandle`]s with
//!   [`JobHandle::wait`], [`JobHandle::cancel`] and [`JobHandle::stats`];
//! * **admission control** queues a job while the running jobs' estimated
//!   footprints would push past `mem_budget`; the scheduler admits by
//!   [`JobSpec::priority`] with per-client fair share and aging against
//!   starvation, and its footprint estimates are **learned**: each
//!   completed job's measured peak scratch usage feeds an EWMA per
//!   `(algorithm, graph)` that replaces the static per-vertex hint on the
//!   next submission;
//! * concurrent jobs over one graph are isolated by per-job scratch
//!   directories ([`dfo_core::Cluster::run_scoped`]) while sharing the
//!   graph's chunk caches and disk/network throttles, and a cooperative
//!   cancellation token is checked collectively at every `Process`-call
//!   boundary;
//! * each finished job yields a [`JobReport`]: per-rank outputs, per-job
//!   [`dfo_types::PhaseStats`] totals (chunk-cache hits and misses counted
//!   at the job's own lookup sites, so concurrent jobs cannot pollute each
//!   other's numbers), and the shared caches' counter deltas over the job's
//!   wall-clock window.
//!
//! * observability: every graph's cluster feeds one shared
//!   [`dfo_obs::Registry`] (series labeled `graph`/`rank`), jobs add
//!   per-job cache counters, and `cfg.metrics_addr` (or
//!   `DFO_METRICS_ADDR`) exposes it all through a [`MetricsServer`] scrape
//!   endpoint — `GET /metrics` for Prometheus text, `GET /metrics.json`
//!   for a JSON snapshot.
//!
//! Single-node multi-job first: jobs run over the in-process mesh. The
//! [`JobSpec`] carries no process-local state, so a transport layer can be
//! put in front of [`Service::submit`] without touching the job model.

mod catalog;
mod client;
mod daemon;
mod estimator;
mod job;
mod metrics;
mod sched;
mod service;
mod wire;

pub use catalog::CatalogEntry;
pub use client::{DfoClient, RemoteJobHandle};
pub use daemon::Daemon;
pub use job::{JobHandle, JobReport};
pub use metrics::MetricsServer;
pub use service::Service;
pub use wire::PROTO_VERSION;

// The job vocabulary ([`JobSpec`], [`JobPhase`], [`JobStatus`]) moved to
// `dfo_types::jobspec` when the remote protocol made it a wire format.
// These re-exports keep every pre-existing `dfo_service::JobSpec` import
// path compiling unchanged — new code may import from either crate.
pub use dfo_types::{JobPhase, JobSpec, JobStatus};

// The vocabulary types a service caller needs, so `dfo_service` (or the
// facade's `service::*`) is a self-sufficient import.
pub use dfo_algos::{AlgoOutput, EdgeDataKind, JobParams, OutputKind};
pub use dfo_types::{DfoError, EngineConfig, PhaseStats, Result};
