//! Job model: handles, lifecycle state, and the finished-job report.
//!
//! The spec/status vocabulary ([`JobSpec`], [`JobPhase`], [`JobStatus`])
//! lives in `dfo_types::jobspec` since the remote protocol made it a wire
//! format; this crate re-exports it, so `dfo_service::JobSpec` keeps
//! working. What remains here is the process-local side: the shared
//! [`JobInner`] record and the [`JobHandle`] a submitter holds.

use crate::service::ServiceInner;
use dfo_algos::AlgoOutput;
use dfo_storage::ChunkCacheStats;
use dfo_types::{DfoError, JobPhase, JobSpec, JobStatus, PhaseStats, Pod, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Everything a finished job produced.
#[derive(Clone, Debug)]
pub struct JobReport {
    pub id: u64,
    pub graph: String,
    pub algorithm: String,
    /// Per-rank local outputs in rank order; concatenated they cover the
    /// whole vertex set ([`JobReport::assemble`]).
    pub outputs: Vec<AlgoOutput>,
    /// Per-rank per-job [`PhaseStats`] totals. Chunk-cache hits/misses are
    /// counted at this job's own lookup sites, so they are attributable to
    /// this job even when others ran concurrently on the same caches.
    pub rank_stats: Vec<PhaseStats>,
    /// Sum of `rank_stats` — the job's cluster-wide totals.
    pub totals: PhaseStats,
    /// Per-rank **shared** chunk-cache counter deltas over this job's
    /// wall-clock window. Unlike `totals`, these include every concurrent
    /// job's traffic on the graph's caches — they describe the device, not
    /// the job; eviction pressure in particular only exists at cache level.
    pub cache_window: Vec<ChunkCacheStats>,
    /// Retryable failures absorbed before this report was produced
    /// ([`JobSpec::max_retries`]); 0 for a first-try success.
    pub retries: u32,
    pub elapsed: Duration,
}

impl JobReport {
    /// Concatenates the per-rank outputs into one typed vector over the
    /// whole vertex set (ranks own contiguous ascending vertex ranges).
    pub fn assemble<T: Pod>(&self) -> Result<Vec<T>> {
        let mut all = Vec::new();
        for out in &self.outputs {
            all.extend(out.values_as::<T>()?);
        }
        Ok(all)
    }
}

pub(crate) enum State {
    Queued,
    Running,
    // boxed: a JobReport is large next to the unit variants
    Finished { phase: JobPhase, result: Box<Option<Result<JobReport>>> },
}

/// Shared core of a job, owned by its [`JobHandle`], the scheduler queue,
/// and the worker thread running it.
pub(crate) struct JobInner {
    pub(crate) id: u64,
    pub(crate) spec: JobSpec,
    pub(crate) estimate: u64,
    /// The cooperative token every rank's `NodeCtx` checks at
    /// `Process`-call boundaries.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Retryable failures absorbed so far (worker-incremented, live).
    pub(crate) retries: AtomicU32,
    pub(crate) state: Mutex<State>,
    pub(crate) done: Condvar,
}

impl JobInner {
    pub(crate) fn finish(&self, result: Result<JobReport>) {
        let phase = match &result {
            Ok(_) => JobPhase::Done,
            Err(DfoError::Cancelled(_)) => JobPhase::Cancelled,
            Err(_) => JobPhase::Failed,
        };
        *self.state.lock() = State::Finished { phase, result: Box::new(Some(result)) };
        self.done.notify_all();
    }

    pub(crate) fn status(&self) -> JobStatus {
        let phase = match &*self.state.lock() {
            State::Queued => JobPhase::Queued,
            State::Running => JobPhase::Running,
            State::Finished { phase, .. } => *phase,
        };
        JobStatus {
            id: self.id,
            phase,
            graph: self.spec.graph.clone(),
            algorithm: self.spec.algorithm.clone(),
            mem_estimate: self.estimate,
            retries: self.retries.load(Ordering::Relaxed),
            priority: self.spec.priority,
            client_id: self.spec.client_id.clone(),
        }
    }
}

/// Tracks one submitted job. Not cloneable: [`JobHandle::wait`] consumes
/// the handle and hands over the job's single [`JobReport`].
pub struct JobHandle {
    pub(crate) job: Arc<JobInner>,
    pub(crate) svc: Weak<ServiceInner>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.stats();
        f.debug_struct("JobHandle")
            .field("id", &st.id)
            .field("phase", &st.phase)
            .field("graph", &st.graph)
            .field("algorithm", &st.algorithm)
            .finish()
    }
}

impl JobHandle {
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// Blocks until the job finishes and returns its report — or the error
    /// it failed with ([`DfoError::Cancelled`] if it was cancelled).
    pub fn wait(self) -> Result<JobReport> {
        let mut st = self.job.state.lock();
        loop {
            if let State::Finished { result, .. } = &mut *st {
                return result.take().expect("wait consumes the only handle");
            }
            self.job.done.wait(&mut st);
        }
    }

    /// Like [`JobHandle::wait`], but gives up after `timeout`. On timeout
    /// the handle comes back in the `Err` arm, still valid — poll again,
    /// [`JobHandle::cancel`], or [`JobHandle::wait`] for good.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> std::result::Result<Result<JobReport>, JobHandle> {
        let deadline = Instant::now() + timeout;
        {
            let mut st = self.job.state.lock();
            loop {
                if let State::Finished { result, .. } = &mut *st {
                    return Ok(result.take().expect("wait consumes the only handle"));
                }
                let Some(left) =
                    deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
                else {
                    break;
                };
                self.job.done.wait_for(&mut st, left);
            }
        }
        Err(self)
    }

    /// Requests cooperative cancellation. A queued job is withdrawn without
    /// running; a running job's ranks observe the token at their next
    /// `Process`-call boundary, agree collectively, and unwind together —
    /// freeing the job's admission budget. [`JobHandle::wait`] then returns
    /// [`DfoError::Cancelled`]. Idempotent; a job that already finished is
    /// unaffected.
    pub fn cancel(&self) {
        self.job.cancel.store(true, Ordering::Relaxed);
        // reap a queued job right away rather than when it reaches the front
        if let Some(svc) = self.svc.upgrade() {
            ServiceInner::pump(&svc);
        }
    }

    /// Point-in-time snapshot of the job's phase and admission footprint.
    pub fn stats(&self) -> JobStatus {
        self.job.status()
    }
}
