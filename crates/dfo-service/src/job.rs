//! Job model: specs, handles, status, and the finished-job report.

use crate::service::ServiceInner;
use dfo_algos::{AlgoOutput, JobParams};
use dfo_storage::ChunkCacheStats;
use dfo_types::{DfoError, PhaseStats, Pod, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// What to run: a catalog graph by name, a registered algorithm by name,
/// and the algorithm's integer parameters. Deliberately plain data — no
/// process-local state — so a transport layer can ship it between
/// processes unchanged.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Catalog name of the graph ([`crate::Service::load_graph`]).
    pub graph: String,
    /// Registry name of the algorithm ([`dfo_algos::registry`]).
    pub algorithm: String,
    /// Parameters the algorithm reads by key (`iters`, `root`, …).
    pub params: JobParams,
    /// Overrides the admission-control footprint estimate (bytes per node).
    /// `None` derives one from the algorithm's per-vertex state hint and
    /// the graph's vertex count.
    pub mem_estimate: Option<u64>,
    /// Bounded retry policy: how many times a *retryable* failure
    /// ([`DfoError::is_retryable`] — a mesh death or bootstrap handshake
    /// failure, the errors checkpoint-restart exists for) is re-executed
    /// before surfacing to [`JobHandle::wait`]. Non-retryable errors
    /// (corruption, config, panics, cancellation) surface immediately.
    /// Defaults to 0: every failure surfaces on first occurrence.
    pub max_retries: u32,
}

impl JobSpec {
    pub fn new(graph: impl Into<String>, algorithm: impl Into<String>) -> Self {
        Self {
            graph: graph.into(),
            algorithm: algorithm.into(),
            params: JobParams::new(),
            mem_estimate: None,
            max_retries: 0,
        }
    }

    #[must_use]
    pub fn with_param(mut self, key: &str, value: u64) -> Self {
        self.params.set(key, value);
        self
    }

    #[must_use]
    pub fn with_mem_estimate(mut self, bytes: u64) -> Self {
        self.mem_estimate = Some(bytes);
        self
    }

    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted to the queue; not yet running (waiting for budget or for
    /// earlier jobs — admission is FIFO, no overtaking).
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

/// A point-in-time snapshot from [`JobHandle::stats`].
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub id: u64,
    pub phase: JobPhase,
    pub graph: String,
    pub algorithm: String,
    /// The admission-control footprint this job charges against
    /// `mem_budget` while running (bytes per node).
    pub mem_estimate: u64,
    /// Retryable failures absorbed so far under the spec's `max_retries`
    /// budget (live — a running job being re-executed counts up here).
    pub retries: u32,
}

/// Everything a finished job produced.
#[derive(Clone, Debug)]
pub struct JobReport {
    pub id: u64,
    pub graph: String,
    pub algorithm: String,
    /// Per-rank local outputs in rank order; concatenated they cover the
    /// whole vertex set ([`JobReport::assemble`]).
    pub outputs: Vec<AlgoOutput>,
    /// Per-rank per-job [`PhaseStats`] totals. Chunk-cache hits/misses are
    /// counted at this job's own lookup sites, so they are attributable to
    /// this job even when others ran concurrently on the same caches.
    pub rank_stats: Vec<PhaseStats>,
    /// Sum of `rank_stats` — the job's cluster-wide totals.
    pub totals: PhaseStats,
    /// Per-rank **shared** chunk-cache counter deltas over this job's
    /// wall-clock window. Unlike `totals`, these include every concurrent
    /// job's traffic on the graph's caches — they describe the device, not
    /// the job; eviction pressure in particular only exists at cache level.
    pub cache_window: Vec<ChunkCacheStats>,
    /// Retryable failures absorbed before this report was produced
    /// ([`JobSpec::max_retries`]); 0 for a first-try success.
    pub retries: u32,
    pub elapsed: Duration,
}

impl JobReport {
    /// Concatenates the per-rank outputs into one typed vector over the
    /// whole vertex set (ranks own contiguous ascending vertex ranges).
    pub fn assemble<T: Pod>(&self) -> Result<Vec<T>> {
        let mut all = Vec::new();
        for out in &self.outputs {
            all.extend(out.values_as::<T>()?);
        }
        Ok(all)
    }
}

pub(crate) enum State {
    Queued,
    Running,
    // boxed: a JobReport is large next to the unit variants
    Finished { phase: JobPhase, result: Box<Option<Result<JobReport>>> },
}

/// Shared core of a job, owned by its [`JobHandle`], the scheduler queue,
/// and the worker thread running it.
pub(crate) struct JobInner {
    pub(crate) id: u64,
    pub(crate) spec: JobSpec,
    pub(crate) estimate: u64,
    /// The cooperative token every rank's `NodeCtx` checks at
    /// `Process`-call boundaries.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Retryable failures absorbed so far (worker-incremented, live).
    pub(crate) retries: AtomicU32,
    pub(crate) state: Mutex<State>,
    pub(crate) done: Condvar,
}

impl JobInner {
    pub(crate) fn finish(&self, result: Result<JobReport>) {
        let phase = match &result {
            Ok(_) => JobPhase::Done,
            Err(DfoError::Cancelled(_)) => JobPhase::Cancelled,
            Err(_) => JobPhase::Failed,
        };
        *self.state.lock() = State::Finished { phase, result: Box::new(Some(result)) };
        self.done.notify_all();
    }
}

/// Tracks one submitted job. Not cloneable: [`JobHandle::wait`] consumes
/// the handle and hands over the job's single [`JobReport`].
pub struct JobHandle {
    pub(crate) job: Arc<JobInner>,
    pub(crate) svc: Weak<ServiceInner>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.stats();
        f.debug_struct("JobHandle")
            .field("id", &st.id)
            .field("phase", &st.phase)
            .field("graph", &st.graph)
            .field("algorithm", &st.algorithm)
            .finish()
    }
}

impl JobHandle {
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// Blocks until the job finishes and returns its report — or the error
    /// it failed with ([`DfoError::Cancelled`] if it was cancelled).
    pub fn wait(self) -> Result<JobReport> {
        let mut st = self.job.state.lock();
        loop {
            if let State::Finished { result, .. } = &mut *st {
                return result.take().expect("wait consumes the only handle");
            }
            self.job.done.wait(&mut st);
        }
    }

    /// Requests cooperative cancellation. A queued job is withdrawn without
    /// running; a running job's ranks observe the token at their next
    /// `Process`-call boundary, agree collectively, and unwind together —
    /// freeing the job's admission budget. [`JobHandle::wait`] then returns
    /// [`DfoError::Cancelled`]. Idempotent; a job that already finished is
    /// unaffected.
    pub fn cancel(&self) {
        self.job.cancel.store(true, Ordering::Relaxed);
        // reap a queued job right away rather than when it reaches the front
        if let Some(svc) = self.svc.upgrade() {
            ServiceInner::pump(&svc);
        }
    }

    /// Point-in-time snapshot of the job's phase and admission footprint.
    pub fn stats(&self) -> JobStatus {
        let phase = match &*self.job.state.lock() {
            State::Queued => JobPhase::Queued,
            State::Running => JobPhase::Running,
            State::Finished { phase, .. } => *phase,
        };
        JobStatus {
            id: self.job.id,
            phase,
            graph: self.job.spec.graph.clone(),
            algorithm: self.job.spec.algorithm.clone(),
            mem_estimate: self.job.estimate,
            retries: self.job.retries.load(Ordering::Relaxed),
        }
    }
}
