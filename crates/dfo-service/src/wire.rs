//! The job-control wire protocol: client ⇄ daemon and rank-0 ⇄ peer ranks.
//!
//! Both directions reuse the [`dfo_net::Frame`] codec for framing — the
//! same 16-byte header and length-prefixed payload the engine transport
//! speaks — so there is exactly one framing layer in the system. A
//! job-control message is always a **single** last-flagged frame on the
//! reserved control tag ([`dfo_net::CTRL_TAG_BIT`]): on a client
//! connection the tag merely brands the traffic, on the resident mesh it
//! routes the message into its own demux queues so job control can never
//! contend with engine streams.
//!
//! Message payloads are `[type: u8][body…]` with length-prefixed fields.
//! Versioning happens at two levels: the connection handshake
//! ([`ClientMsg::Hello`] / [`DaemonMsg::HelloOk`]) carries
//! [`PROTO_VERSION`], and the [`JobSpec`] / [`JobStatus`] bodies are
//! independently versioned, unknown-field-tolerant codecs
//! ([`dfo_types::JOB_WIRE_VERSION`]) — a newer spec field degrades
//! gracefully instead of breaking the session.
//!
//! Anything malformed decodes to [`DfoError::Protocol`]: deterministic,
//! never retried, and fatal only to the offending connection.

use crate::job::JobReport;
use bytes::Bytes;
use dfo_algos::{AlgoOutput, OutputKind};
use dfo_net::{Frame, CTRL_TAG_BIT};
use dfo_types::{DfoError, JobSpec, JobStatus, PhaseStats, Result};
use std::io::{Read, Write};
use std::time::Duration;

/// Version of the job-control message set (the framing and message bodies
/// below). Bumped only for incompatible changes; additive evolution happens
/// inside the versioned [`JobSpec`] / [`JobStatus`] codecs.
pub const PROTO_VERSION: u8 = 1;

fn proto_err(m: impl Into<String>) -> DfoError {
    DfoError::Protocol(m.into())
}

// ---------------------------------------------------------------------------
// primitives: length-prefixed fields and a bounds-checked cursor

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend((b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| proto_err("message truncated"))?;
        let s = &self.b[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn str(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| proto_err("string field is not UTF-8"))
    }

    fn done(&self) -> Result<()> {
        if self.off != self.b.len() {
            return Err(proto_err("trailing bytes after message"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// framing: one job-control message = one last-flagged frame on CTRL_TAG_BIT

/// Writes one job-control message to a client connection.
pub(crate) fn send_msg<W: Write>(w: &mut W, payload: Vec<u8>) -> Result<()> {
    let frame = Frame { src: 0, tag: CTRL_TAG_BIT, payload: Bytes::from(payload), last: true };
    frame.write_to(w).map_err(|e| DfoError::io("send job-control frame", e))?;
    w.flush().map_err(|e| DfoError::io("flush job-control frame", e))
}

/// Reads one job-control message from a client connection. `Ok(None)` is a
/// clean end-of-stream (the peer closed between messages); a truncation or
/// a frame that is not a single control-tagged message is a protocol error.
pub(crate) fn recv_msg<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    let Some(frame) = Frame::read_from(r)? else { return Ok(None) };
    if frame.tag != CTRL_TAG_BIT || !frame.last {
        return Err(proto_err(format!(
            "expected a single control-tagged frame, got tag {:#x} (last: {})",
            frame.tag, frame.last
        )));
    }
    Ok(Some(frame.payload.to_vec()))
}

// ---------------------------------------------------------------------------
// client → daemon

const C_HELLO: u8 = 1;
const C_SUBMIT: u8 = 2;
const C_CANCEL: u8 = 3;
const C_LIST_JOBS: u8 = 4;
const C_SHUTDOWN: u8 = 5;

/// A request on a client connection.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum ClientMsg {
    /// Connection handshake: the first message, once.
    Hello {
        version: u8,
        client_id: String,
    },
    Submit {
        spec: JobSpec,
    },
    Cancel {
        job_id: u64,
    },
    ListJobs,
    /// Coordinated daemon shutdown: drain nothing, fail queued jobs, stop.
    Shutdown,
}

impl ClientMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ClientMsg::Hello { version, client_id } => {
                buf.push(C_HELLO);
                buf.push(*version);
                put_str(&mut buf, client_id);
            }
            ClientMsg::Submit { spec } => {
                buf.push(C_SUBMIT);
                put_bytes(&mut buf, &spec.encode());
            }
            ClientMsg::Cancel { job_id } => {
                buf.push(C_CANCEL);
                buf.extend(job_id.to_le_bytes());
            }
            ClientMsg::ListJobs => buf.push(C_LIST_JOBS),
            ClientMsg::Shutdown => buf.push(C_SHUTDOWN),
        }
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Cur::new(bytes);
        let msg = match c.u8()? {
            C_HELLO => ClientMsg::Hello { version: c.u8()?, client_id: c.str()? },
            C_SUBMIT => ClientMsg::Submit { spec: JobSpec::decode(c.bytes()?)? },
            C_CANCEL => ClientMsg::Cancel { job_id: c.u64()? },
            C_LIST_JOBS => ClientMsg::ListJobs,
            C_SHUTDOWN => ClientMsg::Shutdown,
            t => return Err(proto_err(format!("unknown client message type {t}"))),
        };
        c.done()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// daemon → client

const D_HELLO_OK: u8 = 1;
const D_SUBMITTED: u8 = 2;
const D_STATUS: u8 = 3;
const D_REPORT: u8 = 4;
const D_JOB_ERROR: u8 = 5;
const D_JOBS: u8 = 6;
const D_ERROR: u8 = 7;
const D_SHUTDOWN_OK: u8 = 8;

/// A reply or event on a client connection. Replies answer the client's
/// last request; `Status` / `Report` / `JobError` are asynchronous events
/// about jobs this connection submitted.
//
// `Report` dwarfs the other variants, but every DaemonMsg is encoded (or
// decoded) and dropped within one call — none are stored in bulk, so
// boxing the report would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum DaemonMsg {
    HelloOk {
        version: u8,
        nodes: u32,
    },
    Submitted {
        job_id: u64,
    },
    /// A lifecycle transition of a job this connection submitted.
    Status {
        status: JobStatus,
    },
    /// Terminal success: the job's full report.
    Report {
        report: JobReport,
    },
    /// Terminal failure: the job's typed error.
    JobError {
        job_id: u64,
        error: DfoError,
    },
    Jobs {
        jobs: Vec<JobStatus>,
    },
    /// Protocol-level rejection of the last request.
    Error {
        message: String,
    },
    ShutdownOk,
}

impl DaemonMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            DaemonMsg::HelloOk { version, nodes } => {
                buf.push(D_HELLO_OK);
                buf.push(*version);
                buf.extend(nodes.to_le_bytes());
            }
            DaemonMsg::Submitted { job_id } => {
                buf.push(D_SUBMITTED);
                buf.extend(job_id.to_le_bytes());
            }
            DaemonMsg::Status { status } => {
                buf.push(D_STATUS);
                put_bytes(&mut buf, &status.encode());
            }
            DaemonMsg::Report { report } => {
                buf.push(D_REPORT);
                encode_report(&mut buf, report);
            }
            DaemonMsg::JobError { job_id, error } => {
                buf.push(D_JOB_ERROR);
                buf.extend(job_id.to_le_bytes());
                encode_error(&mut buf, error);
            }
            DaemonMsg::Jobs { jobs } => {
                buf.push(D_JOBS);
                buf.extend((jobs.len() as u32).to_le_bytes());
                for j in jobs {
                    put_bytes(&mut buf, &j.encode());
                }
            }
            DaemonMsg::Error { message } => {
                buf.push(D_ERROR);
                put_str(&mut buf, message);
            }
            DaemonMsg::ShutdownOk => buf.push(D_SHUTDOWN_OK),
        }
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Cur::new(bytes);
        let msg = match c.u8()? {
            D_HELLO_OK => DaemonMsg::HelloOk { version: c.u8()?, nodes: c.u32()? },
            D_SUBMITTED => DaemonMsg::Submitted { job_id: c.u64()? },
            D_STATUS => DaemonMsg::Status { status: JobStatus::decode(c.bytes()?)? },
            D_REPORT => DaemonMsg::Report { report: decode_report(&mut c)? },
            D_JOB_ERROR => DaemonMsg::JobError { job_id: c.u64()?, error: decode_error(&mut c)? },
            D_JOBS => {
                let n = c.u32()? as usize;
                if n > 1 << 20 {
                    return Err(proto_err(format!("implausible job-list length {n}")));
                }
                let mut jobs = Vec::with_capacity(n);
                for _ in 0..n {
                    jobs.push(JobStatus::decode(c.bytes()?)?);
                }
                DaemonMsg::Jobs { jobs }
            }
            D_ERROR => DaemonMsg::Error { message: c.str()? },
            D_SHUTDOWN_OK => DaemonMsg::ShutdownOk,
            t => return Err(proto_err(format!("unknown daemon message type {t}"))),
        };
        c.done()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------------
// rank 0 → peer ranks, over the resident mesh's control tag

const P_RUN: u8 = 1;
const P_SHUTDOWN: u8 = 2;

/// A command the coordinator rank fans out to its peer ranks.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum PeerCmd {
    /// Run one job, SPMD: every rank enters `run_job` with this spec under
    /// this scratch scope.
    Run { job_id: u64, scope: String, spec: JobSpec },
    /// Leave the follower loop and exit cleanly.
    Shutdown,
}

impl PeerCmd {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            PeerCmd::Run { job_id, scope, spec } => {
                buf.push(P_RUN);
                buf.extend(job_id.to_le_bytes());
                put_str(&mut buf, scope);
                put_bytes(&mut buf, &spec.encode());
            }
            PeerCmd::Shutdown => buf.push(P_SHUTDOWN),
        }
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Cur::new(bytes);
        let cmd = match c.u8()? {
            P_RUN => PeerCmd::Run {
                job_id: c.u64()?,
                scope: c.str()?,
                spec: JobSpec::decode(c.bytes()?)?,
            },
            P_SHUTDOWN => PeerCmd::Shutdown,
            t => return Err(proto_err(format!("unknown peer command type {t}"))),
        };
        c.done()?;
        Ok(cmd)
    }
}

// ---------------------------------------------------------------------------
// per-rank job results, gathered in-band over `exchange_bytes`

/// One rank's contribution to a job report: its output slice, its
/// [`PhaseStats`], and its measured peak scratch footprint in bytes.
pub(crate) struct RankResult {
    pub output: AlgoOutput,
    pub stats: PhaseStats,
    pub footprint: u64,
}

impl RankResult {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_output(&mut buf, &self.output);
        put_bytes(&mut buf, &self.stats.encode_wire());
        buf.extend(self.footprint.to_le_bytes());
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Cur::new(bytes);
        let output = decode_output(&mut c)?;
        let stats = PhaseStats::decode_wire(c.bytes()?)?;
        let footprint = c.u64()?;
        c.done()?;
        Ok(Self { output, stats, footprint })
    }
}

fn kind_to_wire(k: OutputKind) -> u8 {
    match k {
        OutputKind::F64 => 0,
        OutputKind::F32 => 1,
        OutputKind::U64 => 2,
        OutputKind::U32 => 3,
    }
}

fn kind_from_wire(b: u8) -> Result<OutputKind> {
    Ok(match b {
        0 => OutputKind::F64,
        1 => OutputKind::F32,
        2 => OutputKind::U64,
        3 => OutputKind::U32,
        other => return Err(proto_err(format!("unknown output kind {other}"))),
    })
}

fn encode_output(buf: &mut Vec<u8>, out: &AlgoOutput) {
    buf.push(kind_to_wire(out.kind));
    match out.iterations {
        Some(it) => {
            buf.push(1);
            buf.extend(it.to_le_bytes());
        }
        None => buf.push(0),
    }
    put_bytes(buf, &out.values);
}

fn decode_output(c: &mut Cur<'_>) -> Result<AlgoOutput> {
    let kind = kind_from_wire(c.u8()?)?;
    let iterations = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        other => return Err(proto_err(format!("bad iterations marker {other}"))),
    };
    let values = c.bytes()?.to_vec();
    Ok(AlgoOutput { kind, values, iterations })
}

// ---------------------------------------------------------------------------
// JobReport body

/// The `cache_window` field does **not** cross the wire: shared chunk-cache
/// deltas describe the daemon's device state, not the job, and are exposed
/// through the daemon's metrics endpoint instead. Remote reports carry an
/// empty window.
fn encode_report(buf: &mut Vec<u8>, r: &JobReport) {
    buf.extend(r.id.to_le_bytes());
    put_str(buf, &r.graph);
    put_str(buf, &r.algorithm);
    buf.extend(r.retries.to_le_bytes());
    buf.extend((r.elapsed.as_nanos() as u64).to_le_bytes());
    let n = r.outputs.len().min(r.rank_stats.len());
    buf.extend((n as u32).to_le_bytes());
    for i in 0..n {
        encode_output(buf, &r.outputs[i]);
        put_bytes(buf, &r.rank_stats[i].encode_wire());
    }
}

fn decode_report(c: &mut Cur<'_>) -> Result<JobReport> {
    let id = c.u64()?;
    let graph = c.str()?;
    let algorithm = c.str()?;
    let retries = c.u32()?;
    let elapsed = Duration::from_nanos(c.u64()?);
    let n = c.u32()? as usize;
    if n > 1 << 20 {
        return Err(proto_err(format!("implausible rank count {n}")));
    }
    let mut outputs = Vec::with_capacity(n);
    let mut rank_stats = Vec::with_capacity(n);
    let mut totals = PhaseStats::default();
    for _ in 0..n {
        outputs.push(decode_output(c)?);
        let stats = PhaseStats::decode_wire(c.bytes()?)?;
        totals.merge(&stats);
        rank_stats.push(stats);
    }
    Ok(JobReport {
        id,
        graph,
        algorithm,
        outputs,
        rank_stats,
        totals,
        cache_window: Vec::new(),
        retries,
        elapsed,
    })
}

// ---------------------------------------------------------------------------
// typed errors

const E_IO: u8 = 0;
const E_CORRUPT: u8 = 1;
const E_CONFIG: u8 = 2;
const E_NET_CLOSED: u8 = 3;
const E_HANDSHAKE: u8 = 4;
const E_NO_CHECKPOINT: u8 = 5;
const E_PANIC: u8 = 6;
const E_CANCELLED: u8 = 7;
const E_PROTOCOL: u8 = 8;
const E_RESTARTS: u8 = 9;

/// Encodes a [`DfoError`] preserving its variant (and thus cancelled-ness
/// and retryability) plus its rendered message. `Io` keeps only the
/// rendered text; `RestartsExhausted` keeps its attempt count and one level
/// of underlying error (enough for `is_retryable` to agree across the
/// wire).
fn encode_error(buf: &mut Vec<u8>, e: &DfoError) {
    match e {
        DfoError::Io { .. } => {
            buf.push(E_IO);
            put_str(buf, &e.to_string());
        }
        DfoError::Corrupt(m) => {
            buf.push(E_CORRUPT);
            put_str(buf, m);
        }
        DfoError::Config(m) => {
            buf.push(E_CONFIG);
            put_str(buf, m);
        }
        DfoError::NetClosed(m) => {
            buf.push(E_NET_CLOSED);
            put_str(buf, m);
        }
        DfoError::Handshake(m) => {
            buf.push(E_HANDSHAKE);
            put_str(buf, m);
        }
        DfoError::NoCheckpoint(m) => {
            buf.push(E_NO_CHECKPOINT);
            put_str(buf, m);
        }
        DfoError::Panic(m) => {
            buf.push(E_PANIC);
            put_str(buf, m);
        }
        DfoError::Cancelled(m) => {
            buf.push(E_CANCELLED);
            put_str(buf, m);
        }
        DfoError::Protocol(m) => {
            buf.push(E_PROTOCOL);
            put_str(buf, m);
        }
        DfoError::RestartsExhausted { attempts, last } => {
            buf.push(E_RESTARTS);
            buf.extend(attempts.to_le_bytes());
            let mut inner = Vec::new();
            encode_error(&mut inner, last);
            put_bytes(buf, &inner);
        }
    }
}

/// "Clones" an error through its wire codec. [`DfoError`] is not `Clone`
/// (the `Io` variant owns a `std::io::Error`); a codec roundtrip preserves
/// variant and message, which is everything a remote client ever sees.
pub(crate) fn clone_error(e: &DfoError) -> DfoError {
    let mut buf = Vec::new();
    encode_error(&mut buf, e);
    let mut c = Cur::new(&buf);
    decode_error(&mut c).unwrap_or_else(|_| DfoError::Panic(e.to_string()))
}

fn decode_error(c: &mut Cur<'_>) -> Result<DfoError> {
    Ok(match c.u8()? {
        E_IO => DfoError::io(c.str()?, std::io::Error::other("remote I/O failure")),
        E_CORRUPT => DfoError::Corrupt(c.str()?),
        E_CONFIG => DfoError::Config(c.str()?),
        E_NET_CLOSED => DfoError::NetClosed(c.str()?),
        E_HANDSHAKE => DfoError::Handshake(c.str()?),
        E_NO_CHECKPOINT => DfoError::NoCheckpoint(c.str()?),
        E_PANIC => DfoError::Panic(c.str()?),
        E_CANCELLED => DfoError::Cancelled(c.str()?),
        E_PROTOCOL => DfoError::Protocol(c.str()?),
        E_RESTARTS => {
            let attempts = c.u32()?;
            let inner = c.bytes()?;
            let mut ic = Cur::new(inner);
            let last = decode_error(&mut ic)?;
            ic.done()?;
            DfoError::RestartsExhausted { attempts, last: Box::new(last) }
        }
        t => return Err(proto_err(format!("unknown error kind {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfo_types::JobPhase;

    fn roundtrip_client(msg: ClientMsg) {
        let back = ClientMsg::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Hello { version: PROTO_VERSION, client_id: "ci".into() });
        roundtrip_client(ClientMsg::Submit {
            spec: JobSpec::new("web", "pagerank")
                .with_param("iters", 10)
                .with_priority(7)
                .with_client_id("ci"),
        });
        roundtrip_client(ClientMsg::Cancel { job_id: 42 });
        roundtrip_client(ClientMsg::ListJobs);
        roundtrip_client(ClientMsg::Shutdown);
    }

    #[test]
    fn peer_commands_roundtrip() {
        let cmd =
            PeerCmd::Run { job_id: 3, scope: "job3".into(), spec: JobSpec::new("web", "wcc") };
        assert_eq!(PeerCmd::decode(&cmd.encode()).unwrap(), cmd);
        assert_eq!(PeerCmd::decode(&PeerCmd::Shutdown.encode()).unwrap(), PeerCmd::Shutdown);
    }

    #[test]
    fn report_roundtrips_bit_identically() {
        let stats =
            PhaseStats { messages_generated: 4, pass_net_sent: 123, ..PhaseStats::default() };
        let report = JobReport {
            id: 9,
            graph: "web".into(),
            algorithm: "pagerank".into(),
            outputs: vec![
                AlgoOutput {
                    kind: OutputKind::F64,
                    values: vec![1, 2, 3, 4, 5, 6, 7, 8],
                    iterations: None,
                },
                AlgoOutput { kind: OutputKind::U32, values: vec![9, 9, 9, 9], iterations: Some(6) },
            ],
            rank_stats: vec![stats.clone(), stats.clone()],
            totals: PhaseStats::default(),
            cache_window: Vec::new(),
            retries: 1,
            elapsed: Duration::from_millis(1234),
        };
        let msg = DaemonMsg::Report { report };
        let DaemonMsg::Report { report: back } = DaemonMsg::decode(&msg.encode()).unwrap() else {
            panic!("wrong message type");
        };
        assert_eq!(back.id, 9);
        assert_eq!(back.outputs[0].values, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(back.outputs[1].iterations, Some(6));
        assert_eq!(back.rank_stats.len(), 2);
        assert_eq!(back.rank_stats[1].pass_net_sent, 123);
        // totals are recomputed from the per-rank stats on decode
        assert_eq!(back.totals.messages_generated, 8);
        assert_eq!(back.elapsed, Duration::from_millis(1234));
    }

    #[test]
    fn errors_keep_their_type_across_the_wire() {
        for e in [
            DfoError::Cancelled("stop".into()),
            DfoError::NetClosed("mesh died".into()),
            DfoError::Protocol("bad frame".into()),
            DfoError::Panic("bug".into()),
        ] {
            let msg = DaemonMsg::JobError { job_id: 1, error: e };
            let DaemonMsg::JobError { error: back, .. } = DaemonMsg::decode(&msg.encode()).unwrap()
            else {
                panic!("wrong message type");
            };
            // variant (not just message) must survive: cancellation stays
            // typed and retryability agrees on both ends
            match DaemonMsg::decode(&msg.encode()).unwrap() {
                DaemonMsg::JobError { error, .. } => {
                    assert_eq!(std::mem::discriminant(&error), std::mem::discriminant(&back));
                }
                _ => unreachable!(),
            }
        }
        let nested = DfoError::RestartsExhausted {
            attempts: 3,
            last: Box::new(DfoError::NetClosed("gone".into())),
        };
        assert!(nested.is_retryable());
        let msg = DaemonMsg::JobError { job_id: 1, error: nested };
        let DaemonMsg::JobError { error: back, .. } = DaemonMsg::decode(&msg.encode()).unwrap()
        else {
            panic!("wrong message type");
        };
        assert!(back.is_retryable(), "retryability must survive the wire");
    }

    #[test]
    fn status_events_roundtrip() {
        let status = JobStatus {
            id: 5,
            phase: JobPhase::Running,
            graph: "g".into(),
            algorithm: "bfs".into(),
            mem_estimate: 4096,
            retries: 0,
            priority: -2,
            client_id: "ci".into(),
        };
        let msg = DaemonMsg::Status { status };
        match DaemonMsg::decode(&msg.encode()).unwrap() {
            DaemonMsg::Status { status } => {
                assert_eq!(status.id, 5);
                assert_eq!(status.phase, JobPhase::Running);
                assert_eq!(status.priority, -2);
            }
            _ => panic!("wrong message type"),
        }
    }

    #[test]
    fn rank_results_roundtrip() {
        let rr = RankResult {
            output: AlgoOutput { kind: OutputKind::U64, values: vec![0; 16], iterations: None },
            stats: PhaseStats::default(),
            footprint: 777,
        };
        let back = RankResult::decode(&rr.encode()).unwrap();
        assert_eq!(back.footprint, 777);
        assert_eq!(back.output.values.len(), 16);
    }

    #[test]
    fn framing_roundtrips_and_rejects_garbage() {
        let mut buf = Vec::new();
        send_msg(&mut buf, ClientMsg::ListJobs.encode()).unwrap();
        let mut r = &buf[..];
        let msg = recv_msg(&mut r).unwrap().unwrap();
        assert_eq!(ClientMsg::decode(&msg).unwrap(), ClientMsg::ListJobs);
        // clean EOF after the message
        assert!(recv_msg(&mut r).unwrap().is_none());
        // truncated frame mid-payload is an error, not a clean EOF
        let cut = &buf[..buf.len() - 1];
        let mut r = cut;
        assert!(recv_msg(&mut r).is_err(), "truncation must not look like clean EOF");
        // unknown message types are a typed protocol error
        assert!(matches!(ClientMsg::decode(&[250]), Err(DfoError::Protocol(_))));
    }
}
