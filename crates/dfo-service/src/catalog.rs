//! The graph catalog: named, preprocessed, reference-counted graphs.

use dfo_core::Cluster;
use dfo_part::plan::Plan;
use dfo_types::{DfoError, Result};

/// One loaded graph: its name, the [`Cluster`] whose disks hold the
/// preprocessed chunks (rooted at `<service base>/graphs/<name>/`), and the
/// replicated [`Plan`].
///
/// Entries are handed out as `Arc<CatalogEntry>`: a running job keeps its
/// graph alive even if [`crate::Service::unload_graph`] removes the name
/// from the catalog mid-run — the entry (and its chunk caches) drop when
/// the last job over it finishes.
pub struct CatalogEntry {
    pub(crate) name: String,
    pub(crate) cluster: Cluster,
    pub(crate) plan: Plan,
}

impl std::fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("n_vertices", &self.plan.n_vertices)
            .finish()
    }
}

impl CatalogEntry {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The preprocessing plan (vertex count, partitioning, edge payload
    /// width) jobs over this graph are validated against.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The underlying cluster — exposed so callers can still run batch-mode
    /// [`Cluster::run`] closures over a catalog graph (the migration path),
    /// and so tests can compare service jobs against batch results on the
    /// very same preprocessed disks.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

/// Catalog names become path components (`<base>/graphs/<name>/`), so
/// constrain them to filesystem-safe characters.
pub(crate) fn validate_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.');
    if !ok {
        return Err(DfoError::Config(format!(
            "graph name {name:?} must be 1-128 chars of [A-Za-z0-9._-], not starting with '.'"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_path_safe() {
        assert!(validate_name("twitter-2010").is_ok());
        assert!(validate_name("g_1.sym").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("../escape").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name(".hidden").is_err());
    }
}
