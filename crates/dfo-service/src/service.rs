//! The resident engine: catalog management, admission control, execution.

use crate::catalog::{validate_name, CatalogEntry};
use crate::estimator::FootprintEstimator;
use crate::job::{JobHandle, JobInner, JobReport, State};
use crate::metrics::MetricsServer;
use crate::sched::JobQueue;
use dfo_algos::{check_edge_data, Algorithm};
use dfo_core::Cluster;
use dfo_graph::EdgeList;
use dfo_obs::Registry;
use dfo_types::{DfoError, EngineConfig, JobSpec, PhaseStats, Pod, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fair-share quota: jobs one client may have running while other clients'
/// admissible jobs wait (the scheduler is work-conserving, so the quota
/// never idles free budget — see [`crate::sched`]).
pub(crate) const CLIENT_QUOTA: usize = 2;

/// A queued job together with everything resolved at submit time: the
/// catalog entry `Arc` (pinning the graph for the job's lifetime) and the
/// registry algorithm.
struct Pending {
    job: Arc<JobInner>,
    entry: Arc<CatalogEntry>,
    algo: &'static dyn Algorithm,
}

/// Admission state: bytes charged by running jobs, and the prioritized
/// queue of jobs waiting for budget (ordering lives in [`JobQueue`]; the
/// per-id [`Pending`] records carry the resolved graph and algorithm).
struct Sched {
    running_bytes: u64,
    running_jobs: usize,
    /// Running jobs per client id — the fair-share state [`JobQueue::pick`]
    /// consults.
    running_per_client: BTreeMap<String, usize>,
    queue: JobQueue,
    pending: BTreeMap<u64, Pending>,
}

impl Default for Sched {
    fn default() -> Self {
        Self {
            running_bytes: 0,
            running_jobs: 0,
            running_per_client: BTreeMap::new(),
            queue: JobQueue::new(CLIENT_QUOTA),
            pending: BTreeMap::new(),
        }
    }
}

pub(crate) struct ServiceInner {
    cfg: EngineConfig,
    base: PathBuf,
    catalog: Mutex<BTreeMap<String, Arc<CatalogEntry>>>,
    sched: Mutex<Sched>,
    next_id: AtomicU64,
    /// One registry shared by every loaded graph's cluster (each labeled
    /// `graph=<name>`) plus the service's own per-job series.
    registry: Arc<Registry>,
    /// Scrape endpoint; present when `cfg.metrics_addr` is set.
    metrics: Option<MetricsServer>,
    /// Learned admission footprints per `(algorithm, graph)`, fed by every
    /// completed job's measured peak scratch usage.
    estimator: FootprintEstimator,
}

/// A resident engine owning a graph [catalog](CatalogEntry) and a job
/// queue. See the crate docs for the model; in short:
///
/// ```no_run
/// # use dfo_service::{Service, JobSpec};
/// # use dfo_types::EngineConfig;
/// # fn demo(g: &dfo_graph::EdgeList<()>) -> dfo_types::Result<()> {
/// let svc = Service::new(EngineConfig::for_test(2), "/tmp/dfo")?;
/// svc.load_graph("web", g)?;                       // preprocess once
/// let a = svc.submit(JobSpec::new("web", "pagerank").with_param("iters", 10))?;
/// let b = svc.submit(JobSpec::new("web", "bfs").with_param("root", 0))?;
/// let ranks = a.wait()?.assemble::<f64>()?;        // jobs ran concurrently
/// let depths = b.wait()?.assemble::<u32>()?;
/// # Ok(()) }
/// ```
///
/// `Service` is cheap to share behind an `Arc`; all methods take `&self`.
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Creates a resident engine rooted at `base`. Graph `g` loaded under
    /// name `n` lives at `<base>/graphs/<n>/`; per-job scratch under each
    /// graph's node directories. The config is shared by every graph and
    /// job; `cfg.mem_budget` doubles as the admission-control budget.
    pub fn new(cfg: EngineConfig, base: impl Into<PathBuf>) -> Result<Self> {
        cfg.validate().map_err(DfoError::Config)?;
        let registry = Registry::new();
        let metrics = match &cfg.metrics_addr {
            Some(addr) => Some(MetricsServer::spawn(addr, registry.clone())?),
            None => None,
        };
        Ok(Self {
            inner: Arc::new(ServiceInner {
                cfg,
                base: base.into(),
                catalog: Mutex::new(BTreeMap::new()),
                sched: Mutex::new(Sched::default()),
                next_id: AtomicU64::new(0),
                registry,
                metrics,
                estimator: FootprintEstimator::new(),
            }),
        })
    }

    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// The registry every graph cluster and per-job counter feeds; what the
    /// scrape endpoint serves.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// The bound scrape-endpoint address (`cfg.metrics_addr` with port 0
    /// resolved), or `None` when the endpoint is off.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.inner.metrics.as_ref().map(|m| m.addr())
    }

    /// Preprocesses `g` once under `name` and adds it to the catalog. Every
    /// subsequent job over `name` reuses the preprocessed chunks and the
    /// graph's per-rank chunk caches — loading is the expensive step, jobs
    /// are not. Errors if the name is taken or not filesystem-safe.
    pub fn load_graph<E: Pod + PartialEq>(
        &self,
        name: &str,
        g: &EdgeList<E>,
    ) -> Result<Arc<CatalogEntry>> {
        validate_name(name)?;
        // preprocess outside the catalog lock (it is slow); the name is
        // checked again before insert, so a concurrent load of the same
        // name errors rather than replacing an entry jobs may already hold
        {
            let catalog = self.inner.catalog.lock();
            if catalog.contains_key(name) {
                return Err(DfoError::Config(format!("graph {name:?} is already loaded")));
            }
        }
        let cluster = Cluster::create_with_registry(
            self.inner.cfg.clone(),
            self.inner.base.join("graphs").join(name),
            self.inner.registry.clone(),
            &[("graph", name)],
        )?;
        let plan = cluster.preprocess(g)?;
        let entry = Arc::new(CatalogEntry { name: name.to_string(), cluster, plan });
        let mut catalog = self.inner.catalog.lock();
        if catalog.contains_key(name) {
            return Err(DfoError::Config(format!("graph {name:?} is already loaded")));
        }
        catalog.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Attaches a graph that is **already preprocessed** under
    /// `<base>/graphs/<name>` — plan reload only, no preprocessing. This is
    /// how a restarted service (or a [`crate::Daemon`] rank) reopens its
    /// catalog, and how a process that didn't do the preprocessing itself
    /// serves a shipped graph directory.
    pub fn open_graph(&self, name: &str) -> Result<Arc<CatalogEntry>> {
        validate_name(name)?;
        {
            let catalog = self.inner.catalog.lock();
            if catalog.contains_key(name) {
                return Err(DfoError::Config(format!("graph {name:?} is already loaded")));
            }
        }
        let dir = self.inner.base.join("graphs").join(name);
        if !dir.is_dir() {
            return Err(DfoError::Config(format!(
                "graph {name:?} has no preprocessed directory at {}",
                dir.display()
            )));
        }
        let cluster = Cluster::create_with_registry(
            self.inner.cfg.clone(),
            dir,
            self.inner.registry.clone(),
            &[("graph", name)],
        )?;
        let plan = dfo_part::plan::Plan::load(&cluster.disks()[0])?;
        let entry = Arc::new(CatalogEntry { name: name.to_string(), cluster, plan });
        let mut catalog = self.inner.catalog.lock();
        if catalog.contains_key(name) {
            return Err(DfoError::Config(format!("graph {name:?} is already loaded")));
        }
        catalog.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Removes `name` from the catalog. Jobs already submitted over it keep
    /// their reference-counted entry (and finish normally); new submissions
    /// no longer resolve the name.
    pub fn unload_graph(&self, name: &str) -> Result<()> {
        self.inner
            .catalog
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DfoError::Config(format!("graph {name:?} is not loaded")))
    }

    /// Loaded graph names, sorted.
    pub fn graphs(&self) -> Vec<String> {
        self.inner.catalog.lock().keys().cloned().collect()
    }

    /// The catalog entry for `name`, if loaded.
    pub fn graph(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        self.inner.catalog.lock().get(name).cloned()
    }

    /// Submits a job. Resolution (graph in catalog, algorithm in registry,
    /// edge-payload compatibility) happens **here**, so a bad spec is a
    /// typed error at submit time, not a mid-run failure. The job starts
    /// when the scheduler admits it: higher
    /// [`JobSpec::priority`] first, per-client fair share on ties, aging
    /// against starvation, all gated by the admission budget. Its footprint
    /// charge is, in order: the spec's explicit `mem_estimate`; the learned
    /// estimate from earlier completed runs of the same
    /// `(algorithm, graph)`; the static per-vertex hint. The returned
    /// handle is the only way to get the job's [`JobReport`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle> {
        let entry = self.graph(&spec.graph).ok_or_else(|| {
            DfoError::Config(format!("graph {:?} is not in the catalog", spec.graph))
        })?;
        let algo = dfo_algos::find(&spec.algorithm).ok_or_else(|| {
            DfoError::Config(format!(
                "unknown algorithm {:?} (registered: {})",
                spec.algorithm,
                dfo_algos::registry().iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
            ))
        })?;
        check_edge_data(algo, entry.plan.edge_data_bytes)?;
        let estimate = spec
            .mem_estimate
            .or_else(|| self.inner.estimator.estimate(&spec.algorithm, &spec.graph))
            .unwrap_or_else(|| default_estimate(algo, entry.plan.n_vertices, self.inner.cfg.nodes));
        let job = Arc::new(JobInner {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            spec,
            estimate,
            cancel: Arc::new(AtomicBool::new(false)),
            retries: AtomicU32::new(0),
            state: Mutex::new(State::Queued),
            done: Condvar::new(),
        });
        {
            let mut s = self.inner.sched.lock();
            s.queue.push(job.id, &job.spec.client_id, job.spec.priority, estimate);
            s.pending.insert(job.id, Pending { job: job.clone(), entry, algo });
        }
        ServiceInner::pump(&self.inner);
        Ok(JobHandle { job, svc: Arc::downgrade(&self.inner) })
    }

    /// Jobs currently charged against the admission budget / waiting in the
    /// queue — `(running, queued)`.
    pub fn job_counts(&self) -> (usize, usize) {
        let s = self.inner.sched.lock();
        (s.running_jobs, s.queue.len())
    }

    /// The learned admission footprint for `(algorithm, graph)` — present
    /// once at least one job of that pair has completed and reported its
    /// measured peak scratch usage. What [`Service::submit`] charges when
    /// the spec has no explicit `mem_estimate`.
    pub fn learned_estimate(&self, algorithm: &str, graph: &str) -> Option<u64> {
        self.inner.estimator.estimate(algorithm, graph)
    }
}

/// Default admission footprint: the algorithm's per-vertex state hint times
/// this node's share of the vertices — the mutable working set the engine
/// will batch through `mem_budget`.
pub(crate) fn default_estimate(algo: &dyn Algorithm, n_vertices: u64, nodes: usize) -> u64 {
    let per_node = n_vertices.div_ceil(nodes.max(1) as u64);
    (algo.state_bytes_per_vertex() * per_node).max(1)
}

impl ServiceInner {
    /// Admits as many jobs as the scheduler allows. Called whenever the
    /// queue or the budget changes (submit, job completion, cancellation);
    /// safe to call concurrently. Each round asks [`JobQueue::pick`] for
    /// the best admissible job — priority first, per-client fair share on
    /// ties, aging against starvation — under the remaining `mem_budget`;
    /// a job whose estimate alone exceeds the budget is still admitted once
    /// it runs alone, because the engine degrades gracefully when a working
    /// set overruns `mem_budget` (it batches harder).
    pub(crate) fn pump(inner: &Arc<ServiceInner>) {
        loop {
            let pending = {
                let mut guard = inner.sched.lock();
                let s = &mut *guard;
                // withdraw cancelled jobs wherever they sit in the queue
                let cancelled: Vec<u64> = s
                    .pending
                    .iter()
                    .filter(|(_, p)| p.job.cancel.load(Ordering::Relaxed))
                    .map(|(id, _)| *id)
                    .collect();
                if !cancelled.is_empty() {
                    let mut withdrawn = Vec::new();
                    for id in cancelled {
                        s.queue.remove(id);
                        if let Some(p) = s.pending.remove(&id) {
                            withdrawn.push(p.job);
                        }
                    }
                    drop(guard);
                    for job in withdrawn {
                        job.finish(Err(DfoError::Cancelled(
                            "job cancelled while queued".to_string(),
                        )));
                    }
                    continue;
                }
                let alone = s.running_jobs == 0;
                let budget_left = inner.cfg.mem_budget.saturating_sub(s.running_bytes);
                let picked = s.queue.pick(&s.running_per_client, budget_left, alone);
                let Some(entry) = picked else {
                    ServiceInner::sched_gauges(inner, s.queue.len(), s.running_jobs);
                    return;
                };
                let p = s.pending.remove(&entry.id).expect("picked job has a pending record");
                s.running_bytes += p.job.estimate;
                s.running_jobs += 1;
                *s.running_per_client.entry(entry.client.clone()).or_insert(0) += 1;
                ServiceInner::sched_gauges(inner, s.queue.len(), s.running_jobs);
                p
            };
            let priority = pending.job.spec.priority.to_string();
            inner
                .registry
                .counter(
                    "dfo_sched_admitted_total",
                    "Jobs admitted by the scheduler, by priority",
                    &[("priority", priority.as_str())],
                )
                .inc();
            *pending.job.state.lock() = State::Running;
            let inner = inner.clone();
            std::thread::spawn(move || {
                let result = ServiceInner::execute_with_retries(&inner, &pending);
                {
                    let mut s = inner.sched.lock();
                    s.running_bytes -= pending.job.estimate;
                    s.running_jobs -= 1;
                    let client = pending.job.spec.client_id.clone();
                    if let Some(n) = s.running_per_client.get_mut(&client) {
                        *n -= 1;
                        if *n == 0 {
                            s.running_per_client.remove(&client);
                        }
                    }
                }
                pending.job.finish(result);
                ServiceInner::pump(&inner);
            });
        }
    }

    /// Refreshes the scheduler gauges (queue depth, running jobs).
    fn sched_gauges(inner: &Arc<ServiceInner>, queued: usize, running: usize) {
        inner
            .registry
            .gauge("dfo_sched_queue_depth", "Jobs waiting for admission", &[])
            .set(queued as f64);
        inner
            .registry
            .gauge("dfo_sched_running_jobs", "Jobs currently admitted and running", &[])
            .set(running as f64);
    }

    /// Runs one admitted job under its spec's bounded retry policy: a
    /// *retryable* failure ([`DfoError::is_retryable`]) is re-executed up
    /// to `max_retries` times before surfacing typed through
    /// [`crate::JobHandle::wait`]; anything else — including a worker
    /// panic, caught here so `wait` gets an error instead of hanging on a
    /// dead detached thread — surfaces immediately. The job keeps its
    /// admission charge across retries (it is still one running job).
    fn execute_with_retries(inner: &Arc<ServiceInner>, p: &Pending) -> Result<JobReport> {
        let max_retries = p.job.spec.max_retries;
        loop {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ServiceInner::execute(inner, p)
            }))
            .unwrap_or_else(|panic| {
                Err(match panic.downcast::<DfoError>() {
                    Ok(e) => *e,
                    Err(panic) => DfoError::Panic(format!(
                        "job {} worker: {}",
                        p.job.id,
                        panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into())
                    )),
                })
            });
            let retries = p.job.retries.load(Ordering::Relaxed);
            match attempt {
                Ok(mut report) => {
                    report.retries = retries;
                    return Ok(report);
                }
                Err(e)
                    if e.is_retryable()
                        && retries < max_retries
                        && !p.job.cancel.load(Ordering::Relaxed) =>
                {
                    p.job.retries.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[dfo-service] job {}: retryable failure ({e}); retry {}/{max_retries}",
                        p.job.id,
                        retries + 1
                    );
                    inner
                        .registry
                        .counter(
                            "dfo_job_retries_total",
                            "Job re-executions after retryable failures",
                            &[
                                ("graph", p.job.spec.graph.as_str()),
                                ("algorithm", p.job.spec.algorithm.as_str()),
                            ],
                        )
                        .inc();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs one admitted job to completion on the graph's cluster, under a
    /// job-private scratch scope, and assembles its report.
    fn execute(inner: &Arc<ServiceInner>, p: &Pending) -> Result<JobReport> {
        let scope = format!("job{}", p.job.id);
        let cache0 = p.entry.cluster.chunk_cache_stats();
        let started = Instant::now();
        let algo = p.algo;
        let params = p.job.spec.params.clone();
        let token = p.job.cancel.clone();
        let res = p.entry.cluster.run_scoped(&scope, |ctx| {
            ctx.set_cancel_token(token.clone());
            let out = algo.run(ctx, &params)?;
            // measured peak footprint: everything the job materialized in
            // its private scratch scope (vertex arrays, checkpoints,
            // spills) — what the estimator learns per (algorithm, graph).
            // Measurement failure must not fail a finished job.
            let footprint = ctx.scratch().usage_bytes().ok();
            Ok((out, ctx.job_phase_stats().clone(), footprint))
        });
        // scratch cleanup happens even when the job failed or was cancelled
        let cleanup = p.entry.cluster.remove_scratch(&scope);
        let graph = p.job.spec.graph.as_str();
        let algorithm = p.job.spec.algorithm.as_str();
        let per_rank = match res {
            Ok(v) => v,
            Err(e) => {
                inner
                    .registry
                    .counter(
                        "dfo_jobs_failed_total",
                        "Jobs that errored or were cancelled",
                        &[("graph", graph), ("algorithm", algorithm)],
                    )
                    .inc();
                return Err(e);
            }
        };
        cleanup?;
        let cache_window = p
            .entry
            .cluster
            .chunk_cache_stats()
            .iter()
            .zip(&cache0)
            .map(|(now, then)| now.delta_since(then))
            .collect();
        let mut totals = PhaseStats::default();
        let mut outputs = Vec::with_capacity(per_rank.len());
        let mut rank_stats = Vec::with_capacity(per_rank.len());
        let mut measured: Option<u64> = None;
        for (out, stats, footprint) in per_rank {
            totals.merge(&stats);
            outputs.push(out);
            rank_stats.push(stats);
            measured = measured.max(footprint);
        }
        // close the admission loop: the busiest rank's measured footprint
        // becomes the learned estimate for the next (algorithm, graph) run
        if let Some(peak) = measured {
            inner.estimator.record(algorithm, graph, peak);
            inner
                .registry
                .gauge(
                    "dfo_sched_estimate_error_ratio",
                    "Charged admission estimate over measured peak scratch footprint \
                     (last completed job; >1 = over-estimate)",
                    &[("graph", graph), ("algorithm", algorithm)],
                )
                .set(p.job.estimate as f64 / peak.max(1) as f64);
        }
        // per-job series: cache traffic attributed at the job's own lookup
        // sites (PR 6), now also scrapeable. One series per job id — fine
        // for a resident service's job cardinality.
        let job_id = p.job.id.to_string();
        let job_labels: [(&str, &str); 3] =
            [("graph", graph), ("algorithm", algorithm), ("job", job_id.as_str())];
        inner
            .registry
            .counter(
                "dfo_job_cache_hits_total",
                "Chunk-cache hits counted at this job's lookup sites",
                &job_labels,
            )
            .add(totals.chunk_cache_hits);
        inner
            .registry
            .counter(
                "dfo_job_cache_misses_total",
                "Chunk-cache misses counted at this job's lookup sites",
                &job_labels,
            )
            .add(totals.chunk_cache_misses);
        inner
            .registry
            .counter(
                "dfo_jobs_completed_total",
                "Jobs that ran to completion",
                &[("graph", graph), ("algorithm", algorithm)],
            )
            .inc();
        Ok(JobReport {
            id: p.job.id,
            graph: p.job.spec.graph.clone(),
            algorithm: p.job.spec.algorithm.clone(),
            outputs,
            rank_stats,
            totals,
            cache_window,
            retries: 0, // stamped by execute_with_retries
            elapsed: started.elapsed(),
        })
    }
}
