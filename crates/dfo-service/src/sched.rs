//! The admission scheduler: priority, per-client fair share, aging.
//!
//! PR 6's admission control was a plain FIFO — correct, but one greedy
//! client or one low-value bulk job could hold every other workload behind
//! it. This module replaces the FIFO with a small, **pure** scheduling
//! structure (no threads, no clocks — fully unit-testable) that both the
//! in-process [`crate::Service`] and the remote daemon drive:
//!
//! * **Priority**: higher [`dfo_types::JobSpec::priority`] runs earlier.
//! * **Fair share**: clients with fewer running jobs win priority ties, and
//!   a client already running [`JobQueue::quota`] jobs is passed over
//!   entirely while any under-quota client has an admissible job waiting.
//! * **Aging**: every time a queued job is passed over, it ages; every
//!   [`AGE_EVERY`] pass-overs add one effective priority point, and a job
//!   aged past [`STARVE_WAITS`] pass-overs also bypasses the quota rule.
//!   Low priority is therefore a preference, never starvation — the same
//!   guarantee the old FIFO's alone-rule gave, kept here unchanged for
//!   budget-oversized jobs.

use std::collections::BTreeMap;

/// Pass-overs per effective priority point: a job overtaken `AGE_EVERY`
/// times schedules as if submitted one priority level higher.
pub(crate) const AGE_EVERY: u64 = 4;

/// Pass-overs after which a job also bypasses the per-client quota.
pub(crate) const STARVE_WAITS: u64 = 32;

/// One queued job as the scheduler sees it.
#[derive(Clone, Debug)]
pub(crate) struct SchedEntry {
    pub id: u64,
    /// Fair-share bucket ([`dfo_types::JobSpec::client_id`]; empty =
    /// anonymous, itself one bucket).
    pub client: String,
    pub priority: i32,
    /// Admission-control footprint in bytes (what the job will charge
    /// against `mem_budget` while running).
    pub estimate: u64,
    /// Submission order, the final tie-break.
    seq: u64,
    /// Times this entry was passed over by a pick.
    waits: u64,
}

impl SchedEntry {
    /// Priority after aging.
    fn effective(&self) -> i64 {
        self.priority as i64 + (self.waits / AGE_EVERY) as i64
    }
}

/// The queue of jobs waiting for admission. Pure data structure: the owner
/// locks it, calls [`JobQueue::pick`] with the current running state, and
/// acts on the returned entry.
pub(crate) struct JobQueue {
    entries: Vec<SchedEntry>,
    next_seq: u64,
    /// Max running jobs per client while other clients wait (fair share).
    quota: usize,
}

impl JobQueue {
    pub fn new(quota: usize) -> Self {
        Self { entries: Vec::new(), next_seq: 0, quota: quota.max(1) }
    }

    pub fn push(&mut self, id: u64, client: &str, priority: i32, estimate: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(SchedEntry {
            id,
            client: client.to_string(),
            priority,
            estimate,
            seq,
            waits: 0,
        });
    }

    /// Withdraws `id` (a cancelled job); returns whether it was queued.
    pub fn remove(&mut self, id: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() != before
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Picks the next job to admit given the jobs currently running
    /// (`running_per_client` maps client → running count; `budget_left` is
    /// the unclaimed part of `mem_budget`; `alone` is true when nothing is
    /// running, which admits even a budget-oversized job rather than
    /// starving it). Returns `None` when nothing is admissible. Every entry
    /// that was *not* picked ages by one pass-over.
    pub fn pick(
        &mut self,
        running_per_client: &BTreeMap<String, usize>,
        budget_left: u64,
        alone: bool,
    ) -> Option<SchedEntry> {
        let running = |client: &str| running_per_client.get(client).copied().unwrap_or(0);
        let admissible = |e: &SchedEntry| e.estimate <= budget_left || alone;
        let under_quota = |e: &SchedEntry| running(&e.client) < self.quota;
        let starved = |e: &SchedEntry| e.waits >= STARVE_WAITS;
        let best_of = |pred: &dyn Fn(&SchedEntry) -> bool| {
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| pred(e))
                .max_by(|(_, a), (_, b)| {
                    a.effective()
                        .cmp(&b.effective())
                        // fewer running jobs for your client wins the tie
                        .then(running(&b.client).cmp(&running(&a.client)))
                        // then strict submission order
                        .then(b.seq.cmp(&a.seq))
                })
                .map(|(i, _)| i)
        };
        // first pass respects the quota (aged-out entries re-enter it); the
        // fallback keeps the scheduler work-conserving — a quota never idles
        // free budget when only over-quota clients have work queued
        let best = best_of(&|e| admissible(e) && (under_quota(e) || starved(e)))
            .or_else(|| best_of(&admissible));
        match best {
            Some(i) => {
                let picked = self.entries.swap_remove(i);
                for e in &mut self.entries {
                    e.waits += 1;
                }
                Some(picked)
            }
            None => {
                for e in &mut self.entries {
                    e.waits += 1;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_running() -> BTreeMap<String, usize> {
        BTreeMap::new()
    }

    /// Drains the queue with nothing running and infinite budget, returning
    /// the admission order.
    fn drain(q: &mut JobQueue) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some(e) = q.pick(&no_running(), u64::MAX, true) {
            order.push(e.id);
        }
        order
    }

    #[test]
    fn priority_orders_admission() {
        let mut q = JobQueue::new(usize::MAX);
        q.push(1, "a", 0, 1);
        q.push(2, "a", 10, 1);
        q.push(3, "a", 5, 1);
        q.push(4, "a", 10, 1); // same priority as 2, later seq
        assert_eq!(drain(&mut q), vec![2, 4, 3, 1]);
    }

    #[test]
    fn a_higher_priority_job_submitted_later_overtakes_a_queued_one() {
        // the acceptance-criteria scenario: low-priority queued first,
        // high-priority admitted after it — high runs first
        let mut q = JobQueue::new(usize::MAX);
        q.push(1, "a", 0, 1);
        q.push(2, "a", 7, 1);
        assert_eq!(q.pick(&no_running(), u64::MAX, true).unwrap().id, 2);
        assert_eq!(q.pick(&no_running(), u64::MAX, true).unwrap().id, 1);
    }

    #[test]
    fn equal_priority_falls_back_to_fifo() {
        let mut q = JobQueue::new(usize::MAX);
        for id in 0..8 {
            q.push(id, "a", 3, 1);
        }
        assert_eq!(drain(&mut q), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fair_share_prefers_the_idle_client() {
        let mut q = JobQueue::new(usize::MAX);
        q.push(1, "busy", 0, 1);
        q.push(2, "idle", 0, 1); // same priority, later seq — but idle client
        let mut running = BTreeMap::new();
        running.insert("busy".to_string(), 3usize);
        let picked = q.pick(&running, u64::MAX, false).unwrap();
        assert_eq!(picked.id, 2, "client with fewer running jobs wins the tie");
    }

    #[test]
    fn quota_holds_a_greedy_client_back() {
        let mut q = JobQueue::new(2);
        q.push(1, "greedy", 10, 1); // higher priority but at quota
        q.push(2, "other", 0, 1);
        let mut running = BTreeMap::new();
        running.insert("greedy".to_string(), 2usize);
        assert_eq!(q.pick(&running, u64::MAX, false).unwrap().id, 2);
        // once the greedy client drops under quota it runs again
        running.insert("greedy".to_string(), 1usize);
        assert_eq!(q.pick(&running, u64::MAX, false).unwrap().id, 1);
    }

    #[test]
    fn aging_beats_starvation() {
        let mut q = JobQueue::new(usize::MAX);
        q.push(99, "slow", 0, 1);
        // an endless stream of higher-priority work keeps arriving, but the
        // aged job must still get scheduled eventually
        let mut rounds = 0u64;
        loop {
            q.push(1000 + rounds, "fast", 5, 1);
            let picked = q.pick(&no_running(), u64::MAX, true).unwrap();
            if picked.id == 99 {
                break;
            }
            rounds += 1;
            assert!(rounds < 100, "job 99 starved: never picked in {rounds} rounds");
        }
        // aging needs AGE_EVERY pass-overs per priority point of deficit
        assert!(rounds >= 5 * AGE_EVERY - 1, "aged job won too early ({rounds} rounds)");
    }

    #[test]
    fn aging_eventually_bypasses_quota() {
        // a high-priority job from an at-quota client is passed over in
        // favor of under-quota competitors — but only until it has aged
        // past STARVE_WAITS, after which the quota no longer excludes it
        let mut q = JobQueue::new(1);
        q.push(1, "greedy", 10, 1);
        let mut running = BTreeMap::new();
        running.insert("greedy".to_string(), 1usize); // permanently at quota
        let mut round = 0u64;
        loop {
            q.push(1000 + round, "other", 0, 1);
            let picked = q.pick(&running, u64::MAX, false).unwrap();
            if picked.id == 1 {
                break;
            }
            assert_eq!(picked.id, 1000 + round, "quota should route work to other clients");
            round += 1;
            assert!(round <= STARVE_WAITS + 1, "starved job never bypassed the quota");
        }
        assert_eq!(round, STARVE_WAITS, "quota bypass should require STARVE_WAITS pass-overs");
    }

    #[test]
    fn quota_never_idles_free_budget() {
        // work conservation: when only an at-quota client has work queued,
        // the quota yields rather than leaving budget unused
        let mut q = JobQueue::new(1);
        q.push(1, "greedy", 0, 1);
        let mut running = BTreeMap::new();
        running.insert("greedy".to_string(), 1usize);
        assert_eq!(q.pick(&running, u64::MAX, false).unwrap().id, 1);
    }

    #[test]
    fn budget_gates_admission_but_alone_rule_saves_oversized_jobs() {
        let mut q = JobQueue::new(usize::MAX);
        q.push(1, "a", 0, 1000);
        // does not fit and something else is running: not admitted
        assert!(q.pick(&no_running(), 500, false).is_none());
        // alone: admitted anyway (the engine degrades gracefully instead)
        assert_eq!(q.pick(&no_running(), 500, true).unwrap().id, 1);
    }

    #[test]
    fn smaller_learned_estimates_shrink_queue_wait() {
        // the estimator satellite's admission-level claim: with the static
        // over-estimate two jobs serialize; with the learned footprint they
        // run concurrently, so the second job's queue wait drops to zero
        // pick-rounds. Budget 100; static hint 80; measured footprint 20.
        let wait_rounds = |estimate: u64| -> u64 {
            let mut q = JobQueue::new(usize::MAX);
            q.push(1, "a", 0, estimate);
            q.push(2, "a", 0, estimate);
            let first = q.pick(&no_running(), 100, true).expect("first admits");
            assert_eq!(first.id, 1);
            let mut rounds = 0;
            // second job retries while the first still runs (budget minus
            // the first job's charge); a real service would re-pick on the
            // first job's completion — count how many rounds that takes
            while q.pick(&no_running(), 100 - first.estimate, false).is_none() {
                rounds += 1;
                if rounds > 3 {
                    break; // would only admit once job 1 finishes
                }
            }
            rounds
        };
        assert!(wait_rounds(80) > 0, "static over-estimate must serialize");
        assert_eq!(wait_rounds(20), 0, "learned estimate admits immediately");
    }

    #[test]
    fn remove_withdraws_queued_jobs() {
        let mut q = JobQueue::new(usize::MAX);
        q.push(1, "a", 0, 1);
        q.push(2, "a", 0, 1);
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert_eq!(drain(&mut q), vec![2]);
    }
}
