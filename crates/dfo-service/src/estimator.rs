//! Learned admission footprints: an EWMA over measured job footprints.
//!
//! Admission control charges each job an up-front byte estimate against the
//! service's `mem_budget`. The static hint (`state_bytes_per_vertex` ×
//! per-node vertex share) is deliberately pessimistic — it assumes every
//! algorithm materializes every declared array at full width — so real
//! queues serialize jobs that would happily fit together. This module
//! closes the loop: every completed job reports its **measured** peak
//! scratch footprint (vertex arrays + checkpoints + spills, summed over the
//! job's private scratch scope on the busiest rank), and the estimator
//! folds it into an exponentially-weighted moving average keyed by
//! `(algorithm, graph)`. The next submission of the same pair is admitted
//! against the learned value instead of the static hint.
//!
//! Explicit [`dfo_types::JobSpec::mem_estimate`] always wins — the operator
//! knows best — and an entry only forms after one completed observation, so
//! cold pairs still use the static hint. A safety factor keeps the learned
//! value slightly above the observed average to absorb run-to-run noise.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default smoothing factor: the newest observation contributes 30%.
const DEFAULT_ALPHA: f64 = 0.3;

/// Learned estimates are padded by this factor over the moving average so a
/// slightly-heavier-than-average rerun still fits its admission charge.
const SAFETY_FACTOR: f64 = 1.2;

/// EWMA footprint estimator keyed by `(algorithm, graph)`.
pub(crate) struct FootprintEstimator {
    alpha: f64,
    avg: Mutex<BTreeMap<(String, String), f64>>,
}

impl FootprintEstimator {
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_ALPHA)
    }

    pub fn with_alpha(alpha: f64) -> Self {
        Self { alpha: alpha.clamp(0.0, 1.0), avg: Mutex::new(BTreeMap::new()) }
    }

    /// The learned admission estimate for `(algorithm, graph)`, or `None`
    /// before the first completed observation (caller falls back to the
    /// static hint).
    pub fn estimate(&self, algorithm: &str, graph: &str) -> Option<u64> {
        let avg = self.avg.lock().unwrap();
        avg.get(&(algorithm.to_string(), graph.to_string()))
            .map(|a| (a * SAFETY_FACTOR).ceil() as u64)
    }

    /// Folds one measured peak footprint (bytes, busiest rank) into the
    /// average and returns the updated learned estimate.
    pub fn record(&self, algorithm: &str, graph: &str, measured: u64) -> u64 {
        let mut avg = self.avg.lock().unwrap();
        let key = (algorithm.to_string(), graph.to_string());
        let next = match avg.get(&key) {
            Some(prev) => prev + self.alpha * (measured as f64 - prev),
            None => measured as f64,
        };
        avg.insert(key, next);
        (next * SAFETY_FACTOR).ceil() as u64
    }

    /// Number of `(algorithm, graph)` pairs with a learned estimate.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.avg.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pair_has_no_estimate() {
        let e = FootprintEstimator::new();
        assert_eq!(e.estimate("pagerank", "g"), None);
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn first_observation_seeds_the_average() {
        let e = FootprintEstimator::new();
        e.record("pagerank", "g", 1000);
        assert_eq!(e.estimate("pagerank", "g"), Some(1200)); // ×SAFETY_FACTOR
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn ewma_converges_to_the_steady_footprint() {
        let e = FootprintEstimator::new();
        e.record("pagerank", "g", 10_000); // outlier first run
        for _ in 0..30 {
            e.record("pagerank", "g", 2_000); // steady state
        }
        let learned = e.estimate("pagerank", "g").unwrap();
        // converged to ≈ 2000 × 1.2 = 2400, well clear of the outlier
        assert!((2_300..=2_600).contains(&learned), "EWMA did not converge: learned {learned}");
    }

    #[test]
    fn pairs_are_independent() {
        let e = FootprintEstimator::new();
        e.record("pagerank", "g1", 1000);
        e.record("wcc", "g1", 50);
        e.record("pagerank", "g2", 9000);
        assert_eq!(e.estimate("pagerank", "g1"), Some(1200));
        assert_eq!(e.estimate("wcc", "g1"), Some(60));
        assert_eq!(e.estimate("pagerank", "g2"), Some(10_800));
        assert_eq!(e.estimate("wcc", "g2"), None);
    }

    #[test]
    fn learned_estimate_tracks_upward_drift_too() {
        let e = FootprintEstimator::with_alpha(0.5);
        e.record("sssp", "g", 100);
        for _ in 0..20 {
            e.record("sssp", "g", 400);
        }
        let learned = e.estimate("sssp", "g").unwrap();
        assert!(learned >= 450, "learned {learned} should approach 400×1.2");
    }
}
