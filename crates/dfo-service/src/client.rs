//! `DfoClient`: the remote counterpart of [`crate::Service`].
//!
//! One client connection speaks the [`crate::wire`] protocol to a
//! [`crate::Daemon`]'s rank-0 control listener: a `Hello`/`HelloOk`
//! handshake pins the protocol version, after which the connection is a
//! full-duplex job channel — requests flow up, and the daemon pushes
//! status transitions, [`JobReport`]s and typed errors down as they
//! happen, not on poll.
//!
//! A background reader thread demultiplexes the downstream: job events are
//! routed to their [`RemoteJobHandle`] by job id (tolerating any
//! interleaving with request replies — the daemon's executor races the
//! request handler, so a `Running` status may legally arrive before the
//! `Submitted` ack), while request replies are handed to the single
//! in-flight RPC. If the connection drops, every outstanding handle
//! resolves to [`DfoError::NetClosed`] — a remote wait never hangs.

use crate::job::JobReport;
use crate::wire::{self, ClientMsg, DaemonMsg, PROTO_VERSION};
use dfo_types::{DfoError, JobSpec, JobStatus, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Client-side record of one submitted job: the latest pushed status and,
/// eventually, the terminal result.
struct JobEntry {
    id: u64,
    status: Mutex<Option<JobStatus>>,
    result: Mutex<Option<Result<JobReport>>>,
    done: Condvar,
}

impl JobEntry {
    fn new(id: u64) -> Self {
        Self { id, status: Mutex::new(None), result: Mutex::new(None), done: Condvar::new() }
    }

    /// First terminal event wins; later ones (e.g. a NetClosed sweep after
    /// a real report already landed) are dropped.
    fn finish(&self, result: Result<JobReport>) {
        let mut slot = self.result.lock();
        if slot.is_none() {
            *slot = Some(result);
            self.done.notify_all();
        }
    }
}

struct ClientInner {
    writer: Mutex<TcpStream>,
    /// Serializes request/reply exchanges: one RPC in flight per
    /// connection, so replies pair with requests without correlation ids.
    rpc: Mutex<mpsc::Receiver<DaemonMsg>>,
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
    dead: AtomicBool,
    nodes: u32,
}

impl ClientInner {
    fn entry(&self, id: u64) -> Arc<JobEntry> {
        self.jobs.lock().entry(id).or_insert_with(|| Arc::new(JobEntry::new(id))).clone()
    }

    fn send(&self, msg: &ClientMsg) -> Result<()> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(DfoError::NetClosed("daemon connection is closed".into()));
        }
        wire::send_msg(&mut *self.writer.lock(), msg.encode())
    }

    /// Sends one request and waits for its reply (the reader thread routes
    /// job events around this exchange).
    fn rpc(&self, msg: &ClientMsg) -> Result<DaemonMsg> {
        let rx = self.rpc.lock();
        self.send(msg)?;
        rx.recv().map_err(|_| DfoError::NetClosed("daemon connection dropped mid-request".into()))
    }
}

/// A connection to a resident [`crate::Daemon`] mesh: the single public
/// entry point for remote job submission.
///
/// ```no_run
/// # fn main() -> dfo_types::Result<()> {
/// use dfo_service::{DfoClient, JobSpec};
/// let client = DfoClient::connect("127.0.0.1:7070")?;
/// let job = client.submit(JobSpec::new("web", "pagerank").with_priority(5))?;
/// let report = job.wait()?;
/// println!("ran {} in {:?}", report.algorithm, report.elapsed);
/// # Ok(()) }
/// ```
///
/// The client is cheap to clone-share via the handles it returns; drop it
/// (or let the process exit) to close the connection — running jobs keep
/// running, their events simply have nowhere to go.
pub struct DfoClient {
    inner: Arc<ClientInner>,
}

impl DfoClient {
    /// Connects and handshakes with an empty client id (the daemon's
    /// fair-share scheduler lumps anonymous clients together).
    pub fn connect(addr: &str) -> Result<Self> {
        Self::connect_as(addr, "")
    }

    /// Connects with an explicit client id, the unit of the daemon's
    /// per-client fair-share quota. Submitted specs inherit it unless they
    /// carry their own [`JobSpec::with_client_id`].
    pub fn connect_as(addr: &str, client_id: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DfoError::io(format!("connecting to daemon at {addr}"), e))?;
        let _ = stream.set_nodelay(true);
        let mut reader =
            stream.try_clone().map_err(|e| DfoError::io("cloning daemon connection", e))?;
        wire::send_msg(
            &mut &stream,
            ClientMsg::Hello { version: PROTO_VERSION, client_id: client_id.to_string() }.encode(),
        )?;
        let nodes = match wire::recv_msg(&mut reader)? {
            Some(bytes) => match DaemonMsg::decode(&bytes)? {
                DaemonMsg::HelloOk { version, nodes } if version == PROTO_VERSION => nodes,
                DaemonMsg::HelloOk { version, .. } => {
                    return Err(DfoError::Handshake(format!(
                        "daemon speaks protocol {version}, this client speaks {PROTO_VERSION}"
                    )))
                }
                DaemonMsg::Error { message } => return Err(DfoError::Handshake(message)),
                other => {
                    return Err(DfoError::Protocol(format!("expected HelloOk, got {other:?}")))
                }
            },
            None => {
                return Err(DfoError::Handshake(
                    "daemon closed the connection during the handshake".into(),
                ))
            }
        };

        let (rpc_tx, rpc_rx) = mpsc::channel();
        let inner = Arc::new(ClientInner {
            writer: Mutex::new(stream),
            rpc: Mutex::new(rpc_rx),
            jobs: Mutex::new(BTreeMap::new()),
            dead: AtomicBool::new(false),
            nodes,
        });
        let reader_inner = inner.clone();
        std::thread::spawn(move || {
            reader_loop(reader_inner, reader, rpc_tx);
        });
        Ok(Self { inner })
    }

    /// Number of ranks in the daemon mesh (a [`JobReport`] carries one
    /// output slice per rank).
    pub fn nodes(&self) -> usize {
        self.inner.nodes as usize
    }

    /// Submits a job and returns its handle once the daemon has validated
    /// and queued it. A rejected spec (unknown graph or algorithm,
    /// incompatible edge payload) is an immediate `Err` here, not a failed
    /// handle.
    pub fn submit(&self, spec: JobSpec) -> Result<RemoteJobHandle> {
        match self.inner.rpc(&ClientMsg::Submit { spec })? {
            DaemonMsg::Submitted { job_id } => {
                Ok(RemoteJobHandle { entry: self.inner.entry(job_id), inner: self.inner.clone() })
            }
            DaemonMsg::Error { message } => Err(DfoError::Config(message)),
            other => Err(DfoError::Protocol(format!("expected Submitted, got {other:?}"))),
        }
    }

    /// Requests cancellation of a job by id (fire-and-forget, like
    /// [`crate::JobHandle::cancel`]; the job resolves as cancelled through
    /// its handle).
    pub fn cancel(&self, job_id: u64) -> Result<()> {
        self.inner.send(&ClientMsg::Cancel { job_id })
    }

    /// Lists every job the daemon currently tracks (all clients', queued
    /// and terminal alike), with the daemon's charged `mem_estimate` —
    /// which is how a remote caller observes learned admission estimates.
    pub fn list_jobs(&self) -> Result<Vec<JobStatus>> {
        match self.inner.rpc(&ClientMsg::ListJobs)? {
            DaemonMsg::Jobs { jobs } => Ok(jobs),
            DaemonMsg::Error { message } => Err(DfoError::Protocol(message)),
            other => Err(DfoError::Protocol(format!("expected Jobs, got {other:?}"))),
        }
    }

    /// Asks the daemon mesh to shut down cleanly: queued jobs drain first,
    /// then every rank settles on a barrier and exits. Returns once the
    /// daemon acknowledges.
    pub fn shutdown(self) -> Result<()> {
        match self.inner.rpc(&ClientMsg::Shutdown)? {
            DaemonMsg::ShutdownOk => Ok(()),
            DaemonMsg::Error { message } => Err(DfoError::Protocol(message)),
            other => Err(DfoError::Protocol(format!("expected ShutdownOk, got {other:?}"))),
        }
    }
}

/// Handle to a job submitted over a [`DfoClient`] — the remote analogue of
/// [`crate::JobHandle`], same consuming `wait` / `wait_timeout` shape.
pub struct RemoteJobHandle {
    entry: Arc<JobEntry>,
    inner: Arc<ClientInner>,
}

impl RemoteJobHandle {
    /// The daemon-assigned job id.
    pub fn id(&self) -> u64 {
        self.entry.id
    }

    /// The latest status the daemon pushed for this job, if any has
    /// arrived yet.
    pub fn status(&self) -> Option<JobStatus> {
        self.entry.status.lock().clone()
    }

    /// Requests cooperative cancellation (fire-and-forget).
    pub fn cancel(&self) -> Result<()> {
        self.inner.send(&ClientMsg::Cancel { job_id: self.entry.id })
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// report or typed error. A dropped daemon connection resolves every
    /// waiter with [`DfoError::NetClosed`] — this never hangs forever.
    pub fn wait(self) -> Result<JobReport> {
        let mut slot = self.entry.result.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.entry.done.wait(&mut slot);
        }
    }

    /// Like [`RemoteJobHandle::wait`] with a deadline: yields the terminal
    /// result, or hands the handle back if the job is still in flight.
    pub fn wait_timeout(self, timeout: Duration) -> std::result::Result<Result<JobReport>, Self> {
        let deadline = Instant::now() + timeout;
        {
            let mut slot = self.entry.result.lock();
            loop {
                if let Some(result) = slot.take() {
                    return Ok(result);
                }
                let Some(left) =
                    deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
                else {
                    break;
                };
                self.entry.done.wait_for(&mut slot, left);
            }
        }
        Err(self)
    }
}

/// Routes the daemon's downstream: job events to their entries, request
/// replies to the in-flight RPC. Exits when the connection closes, failing
/// everything outstanding.
fn reader_loop(inner: Arc<ClientInner>, mut reader: TcpStream, rpc_tx: mpsc::Sender<DaemonMsg>) {
    // clean EOF, a transport error and undecodable bytes all end the
    // session the same way: everything outstanding resolves NetClosed
    let mut next = || match wire::recv_msg(&mut reader) {
        Ok(Some(bytes)) => DaemonMsg::decode(&bytes).ok(),
        Ok(None) | Err(_) => None,
    };
    while let Some(msg) = next() {
        match msg {
            DaemonMsg::Status { status } => {
                let entry = inner.entry(status.id);
                *entry.status.lock() = Some(status);
            }
            DaemonMsg::Report { report } => inner.entry(report.id).finish(Ok(report)),
            DaemonMsg::JobError { job_id, error } => inner.entry(job_id).finish(Err(error)),
            reply => {
                // request reply; if no RPC is waiting the client is gone
                if rpc_tx.send(reply).is_err() {
                    break;
                }
            }
        }
    }
    inner.dead.store(true, Ordering::Relaxed);
    // dropping rpc_tx disconnects any in-flight rpc(); sweep the handles
    for entry in inner.jobs.lock().values() {
        entry.finish(Err(DfoError::NetClosed(
            "daemon connection closed before the job finished".into(),
        )));
    }
}
