//! The resident daemon: one process per rank, serving jobs over the mesh.
//!
//! [`Daemon::run`] is the per-rank entry point of service phase 2. Every
//! rank process connects the [`ResidentMesh`] **once** (paying mesh
//! bootstrap at startup, not per job), opens the preprocessed graphs under
//! `<base>/graphs/`, and then splits by role:
//!
//! * **Rank 0** additionally binds the job-control listener
//!   (`cfg.control_addr` / `DFO_CONTROL_ADDR`) and accepts
//!   [`crate::DfoClient`] connections. Client handler threads validate and
//!   enqueue [`JobSpec`]s; the executor loop picks jobs off the
//!   [scheduler](crate::sched) (priority, aging — serially, one job at a
//!   time, because two jobs may not interleave on one mesh), fans each
//!   admitted spec to the peer ranks as a [`PeerCmd::Run`] over the
//!   reserved control tag, runs its own rank, and streams status
//!   transitions, [`JobReport`]s and typed errors back to the submitting
//!   client.
//! * **Peer ranks** sit in a follower loop: block on the next control
//!   message from rank 0, enter the same SPMD job, loop. The control plane
//!   keeps at most one outstanding message per peer, so it can never fill
//!   its demux queue and stall engine traffic.
//!
//! Job results travel **in-band**: every rank encodes its output slice,
//! [`dfo_types::PhaseStats`] and measured scratch footprint as a
//! [`wire::RankResult`] and the job closure gathers them to rank 0 with
//! `exchange_bytes` — no side channel, no shared filesystem assumption.
//! The measured footprints feed the same [`FootprintEstimator`] the
//! in-process service uses, so repeat submissions of an
//! `(algorithm, graph)` pair are admitted against learned estimates.
//!
//! ## Failure model
//!
//! Cooperative cancellation unwinds all ranks together and leaves the mesh
//! healthy. Any other job failure poisons the mesh: the daemon reports the
//! typed error to the submitting client, fails everything still queued,
//! and exits — a supervisor may relaunch the whole mesh under a bumped
//! epoch. The daemon deliberately ignores [`JobSpec::max_retries`]:
//! retrying requires a fresh mesh, which is the supervisor's job, not the
//! daemon's.

use crate::catalog::validate_name;
use crate::estimator::FootprintEstimator;
use crate::job::JobReport;
use crate::metrics::MetricsServer;
use crate::sched::JobQueue;
use crate::service::{default_estimate, CLIENT_QUOTA};
use crate::wire::{self, ClientMsg, DaemonMsg, PeerCmd, RankResult, PROTO_VERSION};
use dfo_algos::check_edge_data;
use dfo_core::{Cluster, ResidentMesh};
use dfo_obs::Registry;
use dfo_part::plan::Plan;
use dfo_types::{DfoError, EngineConfig, JobPhase, JobSpec, JobStatus, PhaseStats, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One opened graph: the cluster whose disks hold the preprocessed chunks,
/// and its replicated plan.
struct GraphEntry {
    cluster: Cluster,
    plan: Plan,
}

/// The write half of one client connection, shared by the handler thread
/// (replies) and the executor (job events). Send failures mark the sink
/// dead and are otherwise ignored: a vanished client must never take the
/// daemon down with it.
struct ClientSink {
    w: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ClientSink {
    fn send(&self, msg: &DaemonMsg) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.w.lock();
        if wire::send_msg(&mut *w, msg.encode()).is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

/// One job tracked by the daemon, shared by the submitting connection's
/// handler, the scheduler, and the executor.
struct RemoteJob {
    id: u64,
    spec: JobSpec,
    estimate: u64,
    /// Rank 0's real cancel token; peers install always-false tokens and
    /// the collective cancel check spreads this one's value to every rank.
    cancel: Arc<AtomicBool>,
    phase: Mutex<JobPhase>,
    /// Where this job's status transitions and terminal result stream to.
    sink: Arc<ClientSink>,
}

impl RemoteJob {
    fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id,
            phase: *self.phase.lock(),
            graph: self.spec.graph.clone(),
            algorithm: self.spec.algorithm.clone(),
            mem_estimate: self.estimate,
            retries: 0,
            priority: self.spec.priority,
            client_id: self.spec.client_id.clone(),
        }
    }

    fn set_phase(&self, phase: JobPhase) {
        *self.phase.lock() = phase;
        self.sink.send(&DaemonMsg::Status { status: self.status() });
    }
}

struct SchedState {
    queue: JobQueue,
    jobs: BTreeMap<u64, Arc<RemoteJob>>,
    next_id: u64,
    shutdown: bool,
    /// The connection that requested shutdown, owed a `ShutdownOk`.
    shutdown_sink: Option<Arc<ClientSink>>,
}

/// Rank-0 daemon state shared between the accept/handler threads and the
/// executor loop.
struct Shared {
    cfg: EngineConfig,
    catalog: BTreeMap<String, GraphEntry>,
    registry: Arc<Registry>,
    estimator: FootprintEstimator,
    sched: Mutex<SchedState>,
    /// Signaled on submit, cancel and shutdown; the executor waits here.
    work: Condvar,
}

impl Shared {
    fn sched_gauges(&self, queued: usize, running: usize) {
        self.registry
            .gauge("dfo_sched_queue_depth", "Jobs waiting for admission", &[])
            .set(queued as f64);
        self.registry
            .gauge("dfo_sched_running_jobs", "Jobs currently admitted and running", &[])
            .set(running as f64);
    }
}

/// The resident per-rank daemon. See the module docs; in short, each rank
/// process of the deployment calls [`Daemon::run`] with its rank and the
/// shared engine config, and rank 0's `control_addr` is what
/// [`crate::DfoClient::connect`] dials.
pub struct Daemon;

impl Daemon {
    /// Runs one rank of the daemon mesh until a client requests shutdown
    /// (clean `Ok`) or a job failure poisons the mesh (the poisoning
    /// error). Graphs are discovered under `<base>/graphs/` — preprocess
    /// them first with [`crate::Service::load_graph`] (or ship the
    /// directories); the daemon never preprocesses.
    pub fn run(cfg: EngineConfig, rank: usize, base: impl Into<PathBuf>) -> Result<()> {
        cfg.validate().map_err(DfoError::Config)?;
        let base = base.into();
        let registry = Registry::new();
        let catalog = open_catalog(&cfg, &base, &registry)?;
        if catalog.is_empty() {
            return Err(DfoError::Config(format!(
                "no preprocessed graphs under {}/graphs",
                base.display()
            )));
        }
        let mesh = ResidentMesh::connect(&cfg, rank)?;
        if rank == 0 {
            run_rank0(cfg, catalog, registry, mesh)
        } else {
            run_peer(catalog, mesh)
        }
    }
}

/// Opens every preprocessed graph under `<base>/graphs/` into the shared
/// registry — attach-only, no preprocessing (the plan must already exist).
fn open_catalog(
    cfg: &EngineConfig,
    base: &Path,
    registry: &Arc<Registry>,
) -> Result<BTreeMap<String, GraphEntry>> {
    let graphs_dir = base.join("graphs");
    let mut catalog = BTreeMap::new();
    let entries = match std::fs::read_dir(&graphs_dir) {
        Ok(e) => e,
        Err(_) => return Ok(catalog), // no graphs directory yet
    };
    for entry in entries {
        let entry = entry.map_err(|e| DfoError::io("listing graphs directory", e))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if validate_name(&name).is_err() {
            continue;
        }
        let cluster = Cluster::create_with_registry(
            cfg.clone(),
            entry.path(),
            registry.clone(),
            &[("graph", name.as_str())],
        )?;
        let plan = Plan::load(&cluster.disks()[0])?;
        catalog.insert(name, GraphEntry { cluster, plan });
    }
    Ok(catalog)
}

/// Runs the SPMD body of one job on this rank over the resident mesh and
/// gathers every rank's [`RankResult`] to rank 0 in-band.
fn run_spmd_job(
    mesh: &mut ResidentMesh,
    entry: &GraphEntry,
    spec: &JobSpec,
    scope: &str,
    token: Arc<AtomicBool>,
) -> Result<Option<Vec<RankResult>>> {
    let nodes = mesh.nodes();
    let rank = mesh.rank();
    mesh.run_job(&entry.cluster, scope, |ctx| {
        ctx.set_cancel_token(token);
        let algo = dfo_algos::find(&spec.algorithm).ok_or_else(|| {
            DfoError::Config(format!("algorithm {:?} is not registered", spec.algorithm))
        })?;
        let output = algo.run(ctx, &spec.params)?;
        let stats = ctx.job_phase_stats().clone();
        let footprint = ctx.scratch().usage_bytes().unwrap_or(0);
        let mine = RankResult { output, stats, footprint };
        let mut outgoing = vec![Vec::new(); nodes];
        outgoing[0] = mine.encode();
        let gathered = ctx.exchange_bytes(outgoing)?;
        if rank != 0 {
            return Ok(None);
        }
        let mut results = Vec::with_capacity(nodes);
        for bytes in &gathered {
            results.push(RankResult::decode(bytes)?);
        }
        Ok(Some(results))
    })
}

/// Post-job cleanup on the healthy path (success or cooperative cancel):
/// a mesh-wide barrier so no rank deletes scratch another rank still
/// touches, then each rank removes its **own** scratch directory — correct
/// whether the deployment shares a filesystem or not.
fn finish_scope(mesh: &ResidentMesh, entry: &GraphEntry, scope: &str) -> Result<()> {
    mesh.barrier()?;
    let dir = entry.cluster.disks()[mesh.rank()].root().join(scope);
    if dir.exists() {
        std::fs::remove_dir_all(&dir)
            .map_err(|e| DfoError::io(format!("removing scratch dir {}", dir.display()), e))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// peer ranks: the follower loop

fn run_peer(catalog: BTreeMap<String, GraphEntry>, mut mesh: ResidentMesh) -> Result<()> {
    loop {
        let msg = mesh.ctrl_recv(0)?;
        match PeerCmd::decode(&msg)? {
            PeerCmd::Run { scope, spec, .. } => {
                let entry = catalog.get(&spec.graph).ok_or_else(|| {
                    DfoError::Protocol(format!(
                        "coordinator fanned out unknown graph {:?}",
                        spec.graph
                    ))
                })?;
                // rank 0's token cancels everyone through the collective
                // cancel agreement; this rank never flips its own
                let token = Arc::new(AtomicBool::new(false));
                match run_spmd_job(&mut mesh, entry, &spec, &scope, token) {
                    Ok(_) | Err(DfoError::Cancelled(_)) => finish_scope(&mesh, entry, &scope)?,
                    Err(e) => return Err(e), // mesh poisoned; daemon dies
                }
            }
            PeerCmd::Shutdown => {
                mesh.barrier()?;
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// rank 0: client listener, handlers, executor

fn run_rank0(
    cfg: EngineConfig,
    catalog: BTreeMap<String, GraphEntry>,
    registry: Arc<Registry>,
    mut mesh: ResidentMesh,
) -> Result<()> {
    let control_addr = cfg.control_addr.clone().ok_or_else(|| {
        DfoError::Config(
            "daemon rank 0 needs cfg.control_addr (or DFO_CONTROL_ADDR) for the client listener"
                .into(),
        )
    })?;
    // the scrape endpoint lives on rank 0 alongside the control listener
    let _metrics = match &cfg.metrics_addr {
        Some(addr) => Some(MetricsServer::spawn(addr, registry.clone())?),
        None => None,
    };
    let listener = TcpListener::bind(&control_addr)
        .map_err(|e| DfoError::io(format!("binding control listener on {control_addr}"), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| DfoError::io("setting control listener non-blocking", e))?;
    eprintln!(
        "[dfo-daemon] rank 0 serving {} graph(s) on {}",
        catalog.len(),
        listener.local_addr().map(|a| a.to_string()).unwrap_or(control_addr.clone()),
    );

    let shared = Arc::new(Shared {
        cfg,
        catalog,
        registry,
        estimator: FootprintEstimator::new(),
        sched: Mutex::new(SchedState {
            queue: JobQueue::new(CLIENT_QUOTA),
            jobs: BTreeMap::new(),
            next_id: 0,
            shutdown: false,
            shutdown_sink: None,
        }),
        work: Condvar::new(),
    });

    // accept loop: non-blocking poll so it can observe shutdown and release
    // the port even when Daemon::run is hosted in a long-lived process
    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = accept_shared.clone();
                std::thread::spawn(move || handle_client(shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if accept_shared.sched.lock().shutdown {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return,
        }
    });

    let out = executor(&shared, &mut mesh);
    let _ = accept.join();
    out
}

/// The serial executor: picks one job at a time off the scheduler and runs
/// it over the resident mesh. Serial on purpose — engine stream tags
/// restart per job and the collective sequence is mesh-global, so two jobs
/// may not interleave on one mesh (see [`ResidentMesh`]); the scheduler
/// *orders* the queue instead of overlapping it.
fn executor(shared: &Arc<Shared>, mesh: &mut ResidentMesh) -> Result<()> {
    loop {
        // wait for an admissible job, a cancellation to reap, or shutdown
        let job = {
            let mut s = shared.sched.lock();
            loop {
                // withdraw cancelled queued jobs wherever they sit
                let cancelled: Vec<u64> = s
                    .jobs
                    .values()
                    .filter(|j| {
                        j.cancel.load(Ordering::Relaxed) && *j.phase.lock() == JobPhase::Queued
                    })
                    .map(|j| j.id)
                    .collect();
                for id in cancelled {
                    s.queue.remove(id);
                    if let Some(j) = s.jobs.get(&id) {
                        *j.phase.lock() = JobPhase::Cancelled;
                        j.sink.send(&DaemonMsg::JobError {
                            job_id: id,
                            error: DfoError::Cancelled("job cancelled while queued".into()),
                        });
                    }
                }
                if s.shutdown && s.queue.is_empty() {
                    break None;
                }
                // serial executor: nothing is running while picking, so
                // every pick is "alone" — priority and aging order the
                // queue, the alone-rule admits even oversized footprints
                let picked = s.queue.pick(&BTreeMap::new(), shared.cfg.mem_budget, true);
                match picked {
                    Some(e) => {
                        shared.sched_gauges(s.queue.len(), 1);
                        break Some(s.jobs.get(&e.id).expect("picked job is tracked").clone());
                    }
                    None => {
                        shared.sched_gauges(s.queue.len(), 0);
                        shared.work.wait(&mut s);
                    }
                }
            }
        };

        let Some(job) = job else {
            // coordinated shutdown: stop the peers, settle the mesh, ack
            let cmd = PeerCmd::Shutdown.encode();
            for peer in 1..mesh.nodes() {
                mesh.ctrl_send(peer, cmd.clone())?;
            }
            mesh.barrier()?;
            let sink = shared.sched.lock().shutdown_sink.clone();
            if let Some(sink) = sink {
                sink.send(&DaemonMsg::ShutdownOk);
            }
            return Ok(());
        };

        let priority = job.spec.priority.to_string();
        shared
            .registry
            .counter(
                "dfo_sched_admitted_total",
                "Jobs admitted by the scheduler, by priority",
                &[("priority", priority.as_str())],
            )
            .inc();
        if let Err(e) = run_job_rank0(shared, mesh, &job) {
            // the mesh is poisoned: fail everything still queued and exit
            fail_queued(shared, &e);
            return Err(e);
        }
        shared.sched_gauges(shared.sched.lock().queue.len(), 0);
    }
}

/// Runs one admitted job end to end on rank 0: fan-out, SPMD execution,
/// learning, and the terminal client event. `Err` means the mesh is dead.
fn run_job_rank0(
    shared: &Arc<Shared>,
    mesh: &mut ResidentMesh,
    job: &Arc<RemoteJob>,
) -> Result<()> {
    let entry = shared.catalog.get(&job.spec.graph).expect("graph validated at submit");
    let scope = format!("job{}", job.id);
    let cmd = PeerCmd::Run { job_id: job.id, scope: scope.clone(), spec: job.spec.clone() };
    let encoded = cmd.encode();
    for peer in 1..mesh.nodes() {
        mesh.ctrl_send(peer, encoded.clone())?;
    }
    job.set_phase(JobPhase::Running);
    let started = Instant::now();
    let graph = job.spec.graph.as_str();
    let algorithm = job.spec.algorithm.as_str();
    match run_spmd_job(mesh, entry, &job.spec, &scope, job.cancel.clone()) {
        Ok(results) => {
            finish_scope(mesh, entry, &scope)?;
            let results = results.expect("rank 0 gathers results");
            let mut outputs = Vec::with_capacity(results.len());
            let mut rank_stats = Vec::with_capacity(results.len());
            let mut totals = PhaseStats::default();
            let mut peak = 0u64;
            for r in results {
                totals.merge(&r.stats);
                peak = peak.max(r.footprint);
                outputs.push(r.output);
                rank_stats.push(r.stats);
            }
            if peak > 0 {
                shared.estimator.record(algorithm, graph, peak);
                shared
                    .registry
                    .gauge(
                        "dfo_sched_estimate_error_ratio",
                        "Charged admission estimate over measured peak scratch footprint \
                         (last completed job; >1 = over-estimate)",
                        &[("graph", graph), ("algorithm", algorithm)],
                    )
                    .set(job.estimate as f64 / peak.max(1) as f64);
            }
            shared
                .registry
                .counter(
                    "dfo_jobs_completed_total",
                    "Jobs that ran to completion",
                    &[("graph", graph), ("algorithm", algorithm)],
                )
                .inc();
            let report = JobReport {
                id: job.id,
                graph: job.spec.graph.clone(),
                algorithm: job.spec.algorithm.clone(),
                outputs,
                rank_stats,
                totals,
                cache_window: Vec::new(),
                retries: 0,
                elapsed: started.elapsed(),
            };
            *job.phase.lock() = JobPhase::Done;
            job.sink.send(&DaemonMsg::Report { report });
            Ok(())
        }
        Err(e @ DfoError::Cancelled(_)) => {
            // cooperative cancel: every rank unwound together, mesh healthy
            finish_scope(mesh, entry, &scope)?;
            shared
                .registry
                .counter(
                    "dfo_jobs_failed_total",
                    "Jobs that errored or were cancelled",
                    &[("graph", graph), ("algorithm", algorithm)],
                )
                .inc();
            *job.phase.lock() = JobPhase::Cancelled;
            job.sink.send(&DaemonMsg::JobError { job_id: job.id, error: e });
            Ok(())
        }
        Err(e) => {
            shared
                .registry
                .counter(
                    "dfo_jobs_failed_total",
                    "Jobs that errored or were cancelled",
                    &[("graph", graph), ("algorithm", algorithm)],
                )
                .inc();
            *job.phase.lock() = JobPhase::Failed;
            job.sink.send(&DaemonMsg::JobError { job_id: job.id, error: wire::clone_error(&e) });
            Err(e)
        }
    }
}

/// Fails every still-queued job after the mesh died.
fn fail_queued(shared: &Arc<Shared>, cause: &DfoError) {
    let s = shared.sched.lock();
    for j in s.jobs.values() {
        if *j.phase.lock() == JobPhase::Queued {
            *j.phase.lock() = JobPhase::Failed;
            j.sink.send(&DaemonMsg::JobError {
                job_id: j.id,
                error: DfoError::NetClosed(format!("daemon mesh died: {cause}")),
            });
        }
    }
}

/// One client connection: handshake, then a request loop. Protocol
/// violations answer with a typed error and close the connection; a bad
/// job *spec* is a per-request [`DaemonMsg::Error`], not a disconnect.
fn handle_client(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let sink = Arc::new(ClientSink { w: Mutex::new(write_half), dead: AtomicBool::new(false) });
    let mut reader = stream;

    // handshake: Hello must come first and the version must match
    let hello_client_id = match wire::recv_msg(&mut reader) {
        Ok(Some(bytes)) => match ClientMsg::decode(&bytes) {
            Ok(ClientMsg::Hello { version, client_id }) if version == PROTO_VERSION => client_id,
            Ok(ClientMsg::Hello { version, .. }) => {
                sink.send(&DaemonMsg::Error {
                    message: format!(
                        "unsupported protocol version {version} (daemon speaks {PROTO_VERSION})"
                    ),
                });
                return;
            }
            _ => {
                sink.send(&DaemonMsg::Error { message: "expected Hello first".into() });
                return;
            }
        },
        _ => return,
    };
    sink.send(&DaemonMsg::HelloOk { version: PROTO_VERSION, nodes: shared.cfg.nodes as u32 });

    loop {
        let bytes = match wire::recv_msg(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) | Err(_) => return, // client left (or spoke garbage)
        };
        let msg = match ClientMsg::decode(&bytes) {
            Ok(m) => m,
            Err(e) => {
                sink.send(&DaemonMsg::Error { message: e.to_string() });
                return;
            }
        };
        match msg {
            ClientMsg::Hello { .. } => {
                sink.send(&DaemonMsg::Error { message: "duplicate Hello".into() });
                return;
            }
            ClientMsg::Submit { mut spec } => {
                if spec.client_id.is_empty() {
                    spec.client_id = hello_client_id.clone();
                }
                match submit(&shared, spec, &sink) {
                    Ok(job_id) => sink.send(&DaemonMsg::Submitted { job_id }),
                    Err(e) => sink.send(&DaemonMsg::Error { message: e.to_string() }),
                }
            }
            ClientMsg::Cancel { job_id } => {
                let s = shared.sched.lock();
                if let Some(j) = s.jobs.get(&job_id) {
                    j.cancel.store(true, Ordering::Relaxed);
                }
                drop(s);
                shared.work.notify_all();
            }
            ClientMsg::ListJobs => {
                let s = shared.sched.lock();
                let jobs = s.jobs.values().map(|j| j.status()).collect();
                drop(s);
                sink.send(&DaemonMsg::Jobs { jobs });
            }
            ClientMsg::Shutdown => {
                {
                    let mut s = shared.sched.lock();
                    s.shutdown = true;
                    s.shutdown_sink = Some(sink.clone());
                }
                shared.work.notify_all();
                // ShutdownOk arrives from the executor once the mesh is down
            }
        }
    }
}

/// Validates and enqueues one spec (the daemon-side analogue of
/// [`crate::Service::submit`]): graph in catalog, algorithm registered,
/// edge payload compatible; estimate from the spec, the learned estimator,
/// or the static hint — in that order.
fn submit(shared: &Arc<Shared>, spec: JobSpec, sink: &Arc<ClientSink>) -> Result<u64> {
    let entry = shared
        .catalog
        .get(&spec.graph)
        .ok_or_else(|| DfoError::Config(format!("graph {:?} is not in the catalog", spec.graph)))?;
    let algo = dfo_algos::find(&spec.algorithm).ok_or_else(|| {
        DfoError::Config(format!(
            "unknown algorithm {:?} (registered: {})",
            spec.algorithm,
            dfo_algos::registry().iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
        ))
    })?;
    check_edge_data(algo, entry.plan.edge_data_bytes)?;
    let estimate = spec
        .mem_estimate
        .or_else(|| shared.estimator.estimate(&spec.algorithm, &spec.graph))
        .unwrap_or_else(|| default_estimate(algo, entry.plan.n_vertices, shared.cfg.nodes));
    let job = {
        let mut s = shared.sched.lock();
        if s.shutdown {
            return Err(DfoError::NetClosed("daemon is shutting down".into()));
        }
        let id = s.next_id;
        s.next_id += 1;
        let job = Arc::new(RemoteJob {
            id,
            spec,
            estimate,
            cancel: Arc::new(AtomicBool::new(false)),
            phase: Mutex::new(JobPhase::Queued),
            sink: sink.clone(),
        });
        s.queue.push(id, &job.spec.client_id, job.spec.priority, estimate);
        s.jobs.insert(id, job.clone());
        shared.sched_gauges(s.queue.len(), 0);
        job
    };
    job.sink.send(&DaemonMsg::Status { status: job.status() });
    shared.work.notify_all();
    Ok(job.id)
}
