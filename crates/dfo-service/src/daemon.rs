//! The resident daemon: one process per rank, serving **concurrent** jobs
//! over the mesh.
//!
//! [`Daemon::run`] is the per-rank entry point of service phase 2. Every
//! rank process connects the [`ResidentMesh`] **once** (paying mesh
//! bootstrap at startup, not per job), opens the preprocessed graphs under
//! `<base>/graphs/`, and then splits by role:
//!
//! * **Rank 0** additionally binds the job-control listener
//!   (`cfg.control_addr` / `DFO_CONTROL_ADDR`) and accepts
//!   [`crate::DfoClient`] connections. Client handler threads validate and
//!   enqueue [`JobSpec`]s; the scheduler loop admits jobs off the
//!   [scheduler](crate::sched) (priority, aging, per-client quota) against
//!   the **live** footprint account — up to `cfg.mem_budget` of learned
//!   estimates and [`MAX_OVERLAP`] jobs at once — and hands each admitted
//!   job to a worker thread. The worker fans the spec to the peer ranks as
//!   a [`PeerCmd::Run`] over the reserved control tag, runs its own rank
//!   under the job's tag namespace, and streams status transitions,
//!   [`JobReport`]s and typed errors back to the submitting client.
//! * **Peer ranks** sit in a follower loop: block on the next control
//!   message from rank 0 and spawn a worker per [`PeerCmd::Run`], so the
//!   peer enters every overlapping job that rank 0's workers fan out.
//!
//! Jobs may overlap because every job runs in its own tag namespace over
//! the shared endpoint (see [`ResidentMesh`] — rank 0 assigns the job id
//! and every rank enters the job under it), and because admission keeps the
//! in-flight control fan-out within the demux head-of-line budget
//! ([`MAX_OVERLAP`]). Control fan-outs are serialized under a mutex so a
//! multi-frame control message is never interleaved with another on a
//! peer's FIFO (peer, tag) queue.
//!
//! Job results travel **in-band**: every rank encodes its output slice,
//! [`dfo_types::PhaseStats`] and measured scratch footprint as a
//! [`wire::RankResult`] and the job closure gathers them to rank 0 with
//! `exchange_bytes` — no side channel, no shared filesystem assumption.
//! The measured footprints feed the same [`FootprintEstimator`] the
//! in-process service uses, so repeat submissions of an
//! `(algorithm, graph)` pair are admitted against learned estimates.
//!
//! ## Failure model: relaunch in place, honor retries
//!
//! Cooperative cancellation unwinds all ranks of that job together and
//! leaves the mesh healthy — overlapping jobs never notice. Any other job
//! failure poisons the mesh, taking every overlapping job down with a
//! retryable `NetClosed`. The daemon then:
//!
//! 1. drains its workers (each failed job is either **requeued** — when its
//!    error [`DfoError::is_retryable`] and it has attempts left under
//!    [`JobSpec::max_retries`] — or failed to its client with the typed
//!    error),
//! 2. rebuilds the mesh **in place** under a bumped epoch (every rank
//!    counts one relaunch per mesh death, so epochs agree), and
//! 3. resumes the scheduler: requeued jobs re-run on the fresh mesh, with
//!    attempts surfaced in [`JobStatus::retries`] / [`JobReport`] and the
//!    `dfo_job_retries_total` counter.
//!
//! Relaunches are bounded by `cfg.max_restarts`; past the bound the daemon
//! fails everything still queued and exits with the poisoning error.

use crate::catalog::validate_name;
use crate::estimator::FootprintEstimator;
use crate::job::JobReport;
use crate::metrics::MetricsServer;
use crate::sched::JobQueue;
use crate::service::{default_estimate, CLIENT_QUOTA};
use crate::wire::{self, ClientMsg, DaemonMsg, PeerCmd, RankResult, PROTO_VERSION};
use dfo_algos::check_edge_data;
use dfo_core::{Cluster, ResidentMesh};
use dfo_obs::Registry;
use dfo_part::plan::Plan;
use dfo_types::{DfoError, EngineConfig, JobPhase, JobSpec, JobStatus, PhaseStats, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most jobs allowed in flight on the mesh at once. Each running job keeps
/// at most one outstanding control fan-out per peer, so this bound keeps
/// the control tag's demux queue ([`dfo_net::DEMUX_QUEUE_DEPTH`] frames per
/// (peer, tag)) comfortably clear of head-of-line blocking even when every
/// job's fan-out lands at once.
pub const MAX_OVERLAP: usize = match dfo_net::DEMUX_QUEUE_DEPTH / 4 {
    0 => 1,
    n => n,
};

/// One opened graph: the cluster whose disks hold the preprocessed chunks,
/// and its replicated plan.
struct GraphEntry {
    cluster: Cluster,
    plan: Plan,
}

/// The write half of one client connection, shared by the handler thread
/// (replies) and the job workers (job events). Send failures mark the sink
/// dead and are otherwise ignored: a vanished client must never take the
/// daemon down with it.
struct ClientSink {
    w: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ClientSink {
    fn send(&self, msg: &DaemonMsg) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.w.lock();
        if wire::send_msg(&mut *w, msg.encode()).is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

/// One job tracked by the daemon, shared by the submitting connection's
/// handler, the scheduler, and the worker running it.
struct RemoteJob {
    id: u64,
    spec: JobSpec,
    estimate: u64,
    /// Rank 0's real cancel token; peers install always-false tokens and
    /// the collective cancel check spreads this one's value to every rank.
    cancel: Arc<AtomicBool>,
    phase: Mutex<JobPhase>,
    /// Attempts already consumed re-running this job after mesh deaths,
    /// bounded by [`JobSpec::max_retries`].
    retries: AtomicU32,
    /// Where this job's status transitions and terminal result stream to.
    sink: Arc<ClientSink>,
}

impl RemoteJob {
    fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id,
            phase: *self.phase.lock(),
            graph: self.spec.graph.clone(),
            algorithm: self.spec.algorithm.clone(),
            mem_estimate: self.estimate,
            retries: self.retries.load(Ordering::Relaxed),
            priority: self.spec.priority,
            client_id: self.spec.client_id.clone(),
        }
    }

    fn set_phase(&self, phase: JobPhase) {
        *self.phase.lock() = phase;
        self.sink.send(&DaemonMsg::Status { status: self.status() });
    }
}

struct SchedState {
    queue: JobQueue,
    jobs: BTreeMap<u64, Arc<RemoteJob>>,
    next_id: u64,
    /// Jobs currently handed to workers, and the estimate bytes / per-client
    /// counts they hold against admission.
    running_jobs: usize,
    running_bytes: u64,
    running_per_client: BTreeMap<String, usize>,
    /// First error that killed the current mesh generation; set by the
    /// worker that saw it, cleared by the relaunch.
    mesh_failed: Option<DfoError>,
    shutdown: bool,
    /// The connection that requested shutdown, owed a `ShutdownOk`.
    shutdown_sink: Option<Arc<ClientSink>>,
}

/// Rank-0 daemon state shared between the accept/handler threads, the
/// scheduler loop and the job workers.
struct Shared {
    cfg: EngineConfig,
    catalog: BTreeMap<String, GraphEntry>,
    registry: Arc<Registry>,
    estimator: FootprintEstimator,
    sched: Mutex<SchedState>,
    /// Signaled on submit, cancel, shutdown and worker completion; the
    /// scheduler waits here.
    work: Condvar,
}

impl Shared {
    fn sched_gauges(&self, queued: usize, running: usize) {
        self.registry
            .gauge("dfo_sched_queue_depth", "Jobs waiting for admission", &[])
            .set(queued as f64);
        self.registry
            .gauge("dfo_sched_running_jobs", "Jobs currently admitted and running", &[])
            .set(running as f64);
    }
}

/// The resident per-rank daemon. See the module docs; in short, each rank
/// process of the deployment calls [`Daemon::run`] with its rank and the
/// shared engine config, and rank 0's `control_addr` is what
/// [`crate::DfoClient::connect`] dials.
pub struct Daemon;

impl Daemon {
    /// Runs one rank of the daemon mesh until a client requests shutdown
    /// (clean `Ok`) or the mesh dies past its `cfg.max_restarts` relaunch
    /// budget (the poisoning error). Graphs are discovered under
    /// `<base>/graphs/` — preprocess them first with
    /// [`crate::Service::load_graph`] (or ship the directories); the daemon
    /// never preprocesses.
    pub fn run(cfg: EngineConfig, rank: usize, base: impl Into<PathBuf>) -> Result<()> {
        cfg.validate().map_err(DfoError::Config)?;
        let base = base.into();
        let registry = Registry::new();
        let catalog = open_catalog(&cfg, &base, &registry)?;
        if catalog.is_empty() {
            return Err(DfoError::Config(format!(
                "no preprocessed graphs under {}/graphs",
                base.display()
            )));
        }
        let mesh = ResidentMesh::connect(&cfg, rank)?;
        if rank == 0 {
            run_rank0(cfg, catalog, registry, mesh)
        } else {
            run_peer(&cfg, rank, &catalog, mesh)
        }
    }
}

/// Opens every preprocessed graph under `<base>/graphs/` into the shared
/// registry — attach-only, no preprocessing (the plan must already exist).
fn open_catalog(
    cfg: &EngineConfig,
    base: &Path,
    registry: &Arc<Registry>,
) -> Result<BTreeMap<String, GraphEntry>> {
    let graphs_dir = base.join("graphs");
    let mut catalog = BTreeMap::new();
    let entries = match std::fs::read_dir(&graphs_dir) {
        Ok(e) => e,
        Err(_) => return Ok(catalog), // no graphs directory yet
    };
    for entry in entries {
        let entry = entry.map_err(|e| DfoError::io("listing graphs directory", e))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if validate_name(&name).is_err() {
            continue;
        }
        let cluster = Cluster::create_with_registry(
            cfg.clone(),
            entry.path(),
            registry.clone(),
            &[("graph", name.as_str())],
        )?;
        let plan = Plan::load(&cluster.disks()[0])?;
        catalog.insert(name, GraphEntry { cluster, plan });
    }
    Ok(catalog)
}

/// Runs the SPMD body of one job on this rank over the resident mesh,
/// under the coordinator-assigned job id, and gathers every rank's
/// [`RankResult`] to rank 0 in-band.
fn run_spmd_job(
    mesh: &ResidentMesh,
    entry: &GraphEntry,
    spec: &JobSpec,
    job_id: u64,
    scope: &str,
    token: Arc<AtomicBool>,
) -> Result<Option<Vec<RankResult>>> {
    let nodes = mesh.nodes();
    let rank = mesh.rank();
    mesh.run_job_as(job_id, &entry.cluster, scope, |ctx| {
        ctx.set_cancel_token(token);
        let algo = dfo_algos::find(&spec.algorithm).ok_or_else(|| {
            DfoError::Config(format!("algorithm {:?} is not registered", spec.algorithm))
        })?;
        let output = algo.run(ctx, &spec.params)?;
        let stats = ctx.job_phase_stats().clone();
        let footprint = ctx.scratch().usage_bytes().unwrap_or(0);
        let mine = RankResult { output, stats, footprint };
        let mut outgoing = vec![Vec::new(); nodes];
        outgoing[0] = mine.encode();
        let gathered = ctx.exchange_bytes(outgoing)?;
        if rank != 0 {
            return Ok(None);
        }
        let mut results = Vec::with_capacity(nodes);
        for bytes in &gathered {
            results.push(RankResult::decode(bytes)?);
        }
        Ok(Some(results))
    })
}

/// Settles one job on the healthy path (success or cooperative cancel): a
/// barrier in the job's namespace so no rank deletes scratch another rank
/// still touches, then each rank removes its **own** scratch directory —
/// correct whether the deployment shares a filesystem or not — and retires
/// the job's namespace. An `Err` means the mesh died under the barrier (or
/// local scratch I/O failed, which the caller treats the same way); the
/// scratch directory is then removed best-effort with no barrier, which is
/// race-free because a retry re-runs under a fresh per-attempt scope.
fn settle_job(mesh: &ResidentMesh, entry: &GraphEntry, job_id: u64, scope: &str) -> Result<()> {
    let res = mesh.job_barrier(job_id).and_then(|()| {
        let dir = entry.cluster.disks()[mesh.rank()].root().join(scope);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)
                .map_err(|e| DfoError::io(format!("removing scratch dir {}", dir.display()), e))?;
        }
        Ok(())
    });
    mesh.end_job(job_id);
    if res.is_err() {
        discard_scratch(entry, mesh.rank(), scope);
    }
    res
}

/// Best-effort local scratch removal on the mesh-dead path (no barrier is
/// possible; see [`settle_job`] for why this is race-free).
fn discard_scratch(entry: &GraphEntry, rank: usize, scope: &str) {
    let dir = entry.cluster.disks()[rank].root().join(scope);
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------------
// peer ranks: the follower loop

/// Peer follower: one round per mesh generation, relaunching in place —
/// with the epoch bumped once per mesh death, in lockstep with rank 0 —
/// until the relaunch budget runs out or rank 0 coordinates a shutdown.
fn run_peer(
    cfg: &EngineConfig,
    rank: usize,
    catalog: &BTreeMap<String, GraphEntry>,
    mesh: ResidentMesh,
) -> Result<()> {
    let mut mesh = mesh;
    let mut relaunches: u32 = 0;
    loop {
        match peer_round(catalog, &mesh) {
            Ok(()) => return Ok(()), // coordinated shutdown
            Err(e) => {
                relaunches += 1;
                if relaunches > cfg.max_restarts {
                    return Err(e);
                }
                let epoch = cfg.epoch + relaunches as u64;
                eprintln!(
                    "[dfo-daemon] rank {rank} mesh died ({e}); relaunching under epoch {epoch} \
                     (relaunch {relaunches}/{})",
                    cfg.max_restarts
                );
                drop(mesh); // release the listen port before rebinding
                let mut relaunch_cfg = cfg.clone();
                relaunch_cfg.epoch = epoch;
                mesh = ResidentMesh::connect(&relaunch_cfg, rank)?;
            }
        }
    }
}

/// One peer mesh generation: receive control commands from rank 0 and run
/// a worker thread per job, so jobs overlap on the peer exactly as rank 0
/// overlaps them. Returns `Ok` on a coordinated shutdown; `Err` when the
/// mesh died (every spawned worker is joined either way — the
/// generation's threads never outlive it).
fn peer_round(catalog: &BTreeMap<String, GraphEntry>, mesh: &ResidentMesh) -> Result<()> {
    // the first *job* error this generation, preferred over the follower
    // loop's own (usually derived NetClosed) error as the reported cause
    let first_fail: Mutex<Option<DfoError>> = Mutex::new(None);
    let out: Result<()> = std::thread::scope(|sc| {
        loop {
            let msg = mesh.ctrl_recv(0)?;
            match PeerCmd::decode(&msg) {
                Err(e) => {
                    mesh.poison(); // make rank 0 observe the death too
                    return Err(e);
                }
                Ok(PeerCmd::Shutdown) => return Ok(()),
                Ok(PeerCmd::Run { job_id, scope, spec }) => {
                    let Some(entry) = catalog.get(&spec.graph) else {
                        mesh.poison();
                        return Err(DfoError::Protocol(format!(
                            "coordinator fanned out unknown graph {:?}",
                            spec.graph
                        )));
                    };
                    let fail = &first_fail;
                    sc.spawn(move || {
                        if let Err(e) = peer_job(mesh, entry, job_id, &scope, &spec) {
                            // the mesh is dead; every rank must observe it
                            mesh.poison();
                            let mut f = fail.lock();
                            if f.is_none() {
                                *f = Some(e);
                            }
                        }
                    });
                }
            }
        }
    });
    match out {
        // workers are joined (scope exit); settle the coordinated shutdown
        Ok(()) => mesh.barrier(),
        Err(e) => Err(first_fail.into_inner().unwrap_or(e)),
    }
}

/// One job on a peer rank: run the SPMD body under rank 0's job id and
/// settle. `Err` means the mesh is dead.
fn peer_job(
    mesh: &ResidentMesh,
    entry: &GraphEntry,
    job_id: u64,
    scope: &str,
    spec: &JobSpec,
) -> Result<()> {
    // rank 0's token cancels everyone through the collective cancel
    // agreement; this rank never flips its own
    let token = Arc::new(AtomicBool::new(false));
    match run_spmd_job(mesh, entry, spec, job_id, scope, token) {
        Ok(_) | Err(DfoError::Cancelled(_)) => settle_job(mesh, entry, job_id, scope),
        Err(e) => {
            discard_scratch(entry, mesh.rank(), scope);
            mesh.end_job(job_id);
            Err(e)
        }
    }
}

// ---------------------------------------------------------------------------
// rank 0: client listener, handlers, scheduler, workers

fn run_rank0(
    cfg: EngineConfig,
    catalog: BTreeMap<String, GraphEntry>,
    registry: Arc<Registry>,
    mesh: ResidentMesh,
) -> Result<()> {
    let control_addr = cfg.control_addr.clone().ok_or_else(|| {
        DfoError::Config(
            "daemon rank 0 needs cfg.control_addr (or DFO_CONTROL_ADDR) for the client listener"
                .into(),
        )
    })?;
    // the scrape endpoint lives on rank 0 alongside the control listener
    let _metrics = match &cfg.metrics_addr {
        Some(addr) => Some(MetricsServer::spawn(addr, registry.clone())?),
        None => None,
    };
    let listener = TcpListener::bind(&control_addr)
        .map_err(|e| DfoError::io(format!("binding control listener on {control_addr}"), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| DfoError::io("setting control listener non-blocking", e))?;
    eprintln!(
        "[dfo-daemon] rank 0 serving {} graph(s) on {}",
        catalog.len(),
        listener.local_addr().map(|a| a.to_string()).unwrap_or(control_addr.clone()),
    );

    let shared = Arc::new(Shared {
        cfg,
        catalog,
        registry,
        estimator: FootprintEstimator::new(),
        sched: Mutex::new(SchedState {
            queue: JobQueue::new(CLIENT_QUOTA),
            jobs: BTreeMap::new(),
            next_id: 0,
            running_jobs: 0,
            running_bytes: 0,
            running_per_client: BTreeMap::new(),
            mesh_failed: None,
            shutdown: false,
            shutdown_sink: None,
        }),
        work: Condvar::new(),
    });

    // accept loop: non-blocking poll so it can observe shutdown and release
    // the port even when Daemon::run is hosted in a long-lived process
    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = accept_shared.clone();
                std::thread::spawn(move || handle_client(shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if accept_shared.sched.lock().shutdown {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return,
        }
    });

    let out = executor(&shared, mesh);
    let _ = accept.join();
    out
}

/// How one mesh generation of the rank-0 scheduler ended.
enum GenEnd {
    /// Clean coordinated shutdown: queue drained, nothing running.
    Shutdown,
    /// The mesh died; workers are drained and retryable jobs requeued.
    MeshDead(DfoError),
}

/// The rank-0 executor: runs the concurrent scheduler one mesh generation
/// at a time, relaunching the mesh in place — epoch bumped once per death,
/// in lockstep with the peers — until shutdown or the `cfg.max_restarts`
/// relaunch budget runs out. On the fatal path it fails everything still
/// queued, flags shutdown (so the accept loop releases the port) and
/// returns the poisoning error.
fn executor(shared: &Arc<Shared>, mesh: ResidentMesh) -> Result<()> {
    let mut mesh = mesh;
    let mut relaunches: u32 = 0;
    loop {
        match run_generation(shared, &mesh) {
            GenEnd::Shutdown => {
                // coordinated shutdown: stop the peers, settle the mesh, ack
                let cmd = PeerCmd::Shutdown.encode();
                for peer in 1..mesh.nodes() {
                    mesh.ctrl_send(peer, cmd.clone())?;
                }
                mesh.barrier()?;
                let sink = shared.sched.lock().shutdown_sink.clone();
                if let Some(sink) = sink {
                    sink.send(&DaemonMsg::ShutdownOk);
                }
                return Ok(());
            }
            GenEnd::MeshDead(e) => {
                relaunches += 1;
                if relaunches > shared.cfg.max_restarts {
                    return fatal(shared, e);
                }
                let epoch = shared.cfg.epoch + relaunches as u64;
                eprintln!(
                    "[dfo-daemon] rank 0 mesh died ({e}); relaunching under epoch {epoch} \
                     (relaunch {relaunches}/{})",
                    shared.cfg.max_restarts
                );
                shared
                    .registry
                    .counter("dfo_mesh_relaunches_total", "In-place mesh relaunches", &[])
                    .inc();
                drop(mesh); // release the listen port before rebinding
                let mut relaunch_cfg = shared.cfg.clone();
                relaunch_cfg.epoch = epoch;
                mesh = match ResidentMesh::connect(&relaunch_cfg, 0) {
                    Ok(m) => m,
                    Err(re) => return fatal(shared, re),
                };
                shared
                    .registry
                    .gauge("dfo_mesh_epoch", "Epoch of the current mesh incarnation", &[])
                    .set(epoch as f64);
            }
        }
    }
}

/// The executor's give-up path: fail everything still queued, release the
/// accept loop (and any pending shutdown requester), exit with the cause.
fn fatal(shared: &Arc<Shared>, e: DfoError) -> Result<()> {
    fail_queued(shared, &e);
    let sink = {
        let mut s = shared.sched.lock();
        s.shutdown = true;
        s.shutdown_sink.take()
    };
    if let Some(sink) = sink {
        sink.send(&DaemonMsg::ShutdownOk);
    }
    Err(e)
}

/// One mesh generation of the concurrent scheduler: admit jobs against the
/// live footprint account and hand each to a worker thread, until shutdown
/// (queue drained, nothing running) or the mesh dies (workers drained,
/// retryable jobs requeued by their workers). Worker threads never outlive
/// the generation — the scope joins them before this returns.
fn run_generation(shared: &Arc<Shared>, mesh: &ResidentMesh) -> GenEnd {
    // serializes whole control fan-outs: a control message spans several
    // frames and the demux queue is FIFO per (peer, tag)
    let ctrl = Mutex::new(());
    std::thread::scope(|sc| {
        loop {
            enum Next {
                Job(Arc<RemoteJob>),
                End(GenEnd),
            }
            let next = {
                let mut s = shared.sched.lock();
                loop {
                    // withdraw cancelled queued jobs wherever they sit
                    let cancelled: Vec<u64> = s
                        .jobs
                        .values()
                        .filter(|j| {
                            j.cancel.load(Ordering::Relaxed) && *j.phase.lock() == JobPhase::Queued
                        })
                        .map(|j| j.id)
                        .collect();
                    for id in cancelled {
                        s.queue.remove(id);
                        if let Some(j) = s.jobs.get(&id) {
                            *j.phase.lock() = JobPhase::Cancelled;
                            j.sink.send(&DaemonMsg::JobError {
                                job_id: id,
                                error: DfoError::Cancelled("job cancelled while queued".into()),
                            });
                        }
                    }
                    if s.mesh_failed.is_some() {
                        // stop admitting; drain the workers, then relaunch
                        if s.running_jobs == 0 {
                            let e = s.mesh_failed.take().expect("checked above");
                            break Next::End(GenEnd::MeshDead(e));
                        }
                    } else if s.shutdown && s.queue.is_empty() && s.running_jobs == 0 {
                        break Next::End(GenEnd::Shutdown);
                    } else if s.running_jobs < MAX_OVERLAP {
                        let alone = s.running_jobs == 0;
                        let budget_left = shared.cfg.mem_budget.saturating_sub(s.running_bytes);
                        let st = &mut *s;
                        if let Some(picked) =
                            st.queue.pick(&st.running_per_client, budget_left, alone)
                        {
                            let job =
                                s.jobs.get(&picked.id).expect("picked job is tracked").clone();
                            s.running_jobs += 1;
                            s.running_bytes += job.estimate;
                            *s.running_per_client.entry(job.spec.client_id.clone()).or_insert(0) +=
                                1;
                            shared.sched_gauges(s.queue.len(), s.running_jobs);
                            break Next::Job(job);
                        }
                    }
                    shared.sched_gauges(s.queue.len(), s.running_jobs);
                    shared.work.wait(&mut s);
                }
            };
            match next {
                Next::End(end) => break end,
                Next::Job(job) => {
                    let priority = job.spec.priority.to_string();
                    shared
                        .registry
                        .counter(
                            "dfo_sched_admitted_total",
                            "Jobs admitted by the scheduler, by priority",
                            &[("priority", priority.as_str())],
                        )
                        .inc();
                    let ctrl = &ctrl;
                    sc.spawn(move || worker(shared, mesh, ctrl, job));
                }
            }
        }
    })
}

/// One admitted job, end to end, on a worker thread: run it, settle the
/// footprint account, and — when the mesh died under it — either requeue
/// it (retryable error, attempts left, not cancelled) or fail it to its
/// client with the typed, retryability-preserving error.
fn worker(shared: &Arc<Shared>, mesh: &ResidentMesh, ctrl: &Mutex<()>, job: Arc<RemoteJob>) {
    let res = run_one_job(shared, mesh, ctrl, &job);
    let mut requeued = false;
    let mut terminal: Option<DaemonMsg> = None;
    {
        let mut s = shared.sched.lock();
        s.running_jobs -= 1;
        s.running_bytes = s.running_bytes.saturating_sub(job.estimate);
        if let Some(n) = s.running_per_client.get_mut(&job.spec.client_id) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.running_per_client.remove(&job.spec.client_id);
            }
        }
        if let Err(e) = res {
            // the mesh is dead; poison so every rank (and every overlapping
            // job) observes it instead of hanging
            mesh.poison();
            let attempts = job.retries.load(Ordering::Relaxed);
            let retry = e.is_retryable()
                && attempts < job.spec.max_retries
                && !job.cancel.load(Ordering::Relaxed);
            if retry {
                job.retries.store(attempts + 1, Ordering::Relaxed);
                shared
                    .registry
                    .counter(
                        "dfo_job_retries_total",
                        "Job re-runs after mesh deaths, honoring max_retries",
                        &[
                            ("graph", job.spec.graph.as_str()),
                            ("algorithm", job.spec.algorithm.as_str()),
                        ],
                    )
                    .inc();
                *job.phase.lock() = JobPhase::Queued;
                s.queue.push(job.id, &job.spec.client_id, job.spec.priority, job.estimate);
                requeued = true;
                eprintln!(
                    "[dfo-daemon] job {} died with retryable {e}; requeued (attempt {}/{})",
                    job.id,
                    attempts + 1,
                    job.spec.max_retries
                );
            } else {
                shared
                    .registry
                    .counter(
                        "dfo_jobs_failed_total",
                        "Jobs that errored or were cancelled",
                        &[
                            ("graph", job.spec.graph.as_str()),
                            ("algorithm", job.spec.algorithm.as_str()),
                        ],
                    )
                    .inc();
                *job.phase.lock() = JobPhase::Failed;
                terminal =
                    Some(DaemonMsg::JobError { job_id: job.id, error: wire::clone_error(&e) });
            }
            if s.mesh_failed.is_none() {
                s.mesh_failed = Some(e);
            }
        }
        shared.sched_gauges(s.queue.len(), s.running_jobs);
    }
    // sink writes happen outside the scheduler lock
    if requeued {
        job.sink.send(&DaemonMsg::Status { status: job.status() });
    }
    if let Some(msg) = terminal {
        job.sink.send(&msg);
    }
    shared.work.notify_all();
}

/// Runs one admitted job on rank 0: fan-out (serialized whole-message),
/// SPMD execution under the job's tag namespace, learning, and the
/// terminal client event on the healthy paths. `Err` means the mesh is
/// dead and the job has **no** terminal event yet — the worker decides
/// between requeue and failure.
fn run_one_job(
    shared: &Arc<Shared>,
    mesh: &ResidentMesh,
    ctrl: &Mutex<()>,
    job: &Arc<RemoteJob>,
) -> Result<()> {
    let entry = shared.catalog.get(&job.spec.graph).expect("graph validated at submit");
    // a per-attempt scope: a re-run after a mesh death must not collide
    // with scratch the dead attempt may have left behind
    let scope = format!("job{}a{}", job.id, job.retries.load(Ordering::Relaxed));
    let cmd = PeerCmd::Run { job_id: job.id, scope: scope.clone(), spec: job.spec.clone() };
    let encoded = cmd.encode();
    {
        let _fanout = ctrl.lock();
        for peer in 1..mesh.nodes() {
            mesh.ctrl_send(peer, encoded.clone())?;
        }
    }
    job.set_phase(JobPhase::Running);
    let started = Instant::now();
    let graph = job.spec.graph.as_str();
    let algorithm = job.spec.algorithm.as_str();
    match run_spmd_job(mesh, entry, &job.spec, job.id, &scope, job.cancel.clone()) {
        Ok(results) => {
            settle_job(mesh, entry, job.id, &scope)?;
            let results = results.expect("rank 0 gathers results");
            let mut outputs = Vec::with_capacity(results.len());
            let mut rank_stats = Vec::with_capacity(results.len());
            let mut totals = PhaseStats::default();
            let mut peak = 0u64;
            for r in results {
                totals.merge(&r.stats);
                peak = peak.max(r.footprint);
                outputs.push(r.output);
                rank_stats.push(r.stats);
            }
            if peak > 0 {
                shared.estimator.record(algorithm, graph, peak);
                shared
                    .registry
                    .gauge(
                        "dfo_sched_estimate_error_ratio",
                        "Charged admission estimate over measured peak scratch footprint \
                         (last completed job; >1 = over-estimate)",
                        &[("graph", graph), ("algorithm", algorithm)],
                    )
                    .set(job.estimate as f64 / peak.max(1) as f64);
            }
            shared
                .registry
                .counter(
                    "dfo_jobs_completed_total",
                    "Jobs that ran to completion",
                    &[("graph", graph), ("algorithm", algorithm)],
                )
                .inc();
            let report = JobReport {
                id: job.id,
                graph: job.spec.graph.clone(),
                algorithm: job.spec.algorithm.clone(),
                outputs,
                rank_stats,
                totals,
                cache_window: Vec::new(),
                retries: job.retries.load(Ordering::Relaxed),
                elapsed: started.elapsed(),
            };
            *job.phase.lock() = JobPhase::Done;
            job.sink.send(&DaemonMsg::Report { report });
            Ok(())
        }
        Err(e @ DfoError::Cancelled(_)) => {
            // cooperative cancel: every rank of this job unwound together,
            // the mesh (and every overlapping job) is untouched
            settle_job(mesh, entry, job.id, &scope)?;
            shared
                .registry
                .counter(
                    "dfo_jobs_failed_total",
                    "Jobs that errored or were cancelled",
                    &[("graph", graph), ("algorithm", algorithm)],
                )
                .inc();
            *job.phase.lock() = JobPhase::Cancelled;
            job.sink.send(&DaemonMsg::JobError { job_id: job.id, error: e });
            Ok(())
        }
        Err(e) => {
            discard_scratch(entry, mesh.rank(), &scope);
            mesh.end_job(job.id);
            Err(e)
        }
    }
}

/// Fails every still-queued job after the mesh died for good.
fn fail_queued(shared: &Arc<Shared>, cause: &DfoError) {
    let mut s = shared.sched.lock();
    let queued: Vec<u64> =
        s.jobs.values().filter(|j| *j.phase.lock() == JobPhase::Queued).map(|j| j.id).collect();
    for id in queued {
        s.queue.remove(id);
        if let Some(j) = s.jobs.get(&id) {
            *j.phase.lock() = JobPhase::Failed;
            j.sink.send(&DaemonMsg::JobError {
                job_id: id,
                error: DfoError::NetClosed(format!("daemon mesh died: {cause}")),
            });
        }
    }
}

/// One client connection: handshake, then a request loop. Protocol
/// violations answer with a typed error and close the connection; a bad
/// job *spec* is a per-request [`DaemonMsg::Error`], not a disconnect.
fn handle_client(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let sink = Arc::new(ClientSink { w: Mutex::new(write_half), dead: AtomicBool::new(false) });
    let mut reader = stream;

    // handshake: Hello must come first and the version must match
    let hello_client_id = match wire::recv_msg(&mut reader) {
        Ok(Some(bytes)) => match ClientMsg::decode(&bytes) {
            Ok(ClientMsg::Hello { version, client_id }) if version == PROTO_VERSION => client_id,
            Ok(ClientMsg::Hello { version, .. }) => {
                sink.send(&DaemonMsg::Error {
                    message: format!(
                        "unsupported protocol version {version} (daemon speaks {PROTO_VERSION})"
                    ),
                });
                return;
            }
            _ => {
                sink.send(&DaemonMsg::Error { message: "expected Hello first".into() });
                return;
            }
        },
        _ => return,
    };
    sink.send(&DaemonMsg::HelloOk { version: PROTO_VERSION, nodes: shared.cfg.nodes as u32 });

    loop {
        let bytes = match wire::recv_msg(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) | Err(_) => return, // client left (or spoke garbage)
        };
        let msg = match ClientMsg::decode(&bytes) {
            Ok(m) => m,
            Err(e) => {
                sink.send(&DaemonMsg::Error { message: e.to_string() });
                return;
            }
        };
        match msg {
            ClientMsg::Hello { .. } => {
                sink.send(&DaemonMsg::Error { message: "duplicate Hello".into() });
                return;
            }
            ClientMsg::Submit { mut spec } => {
                if spec.client_id.is_empty() {
                    spec.client_id = hello_client_id.clone();
                }
                match submit(&shared, spec, &sink) {
                    Ok(job_id) => sink.send(&DaemonMsg::Submitted { job_id }),
                    Err(e) => sink.send(&DaemonMsg::Error { message: e.to_string() }),
                }
            }
            ClientMsg::Cancel { job_id } => {
                let s = shared.sched.lock();
                if let Some(j) = s.jobs.get(&job_id) {
                    j.cancel.store(true, Ordering::Relaxed);
                }
                drop(s);
                shared.work.notify_all();
            }
            ClientMsg::ListJobs => {
                let s = shared.sched.lock();
                let jobs = s.jobs.values().map(|j| j.status()).collect();
                drop(s);
                sink.send(&DaemonMsg::Jobs { jobs });
            }
            ClientMsg::Shutdown => {
                {
                    let mut s = shared.sched.lock();
                    s.shutdown = true;
                    s.shutdown_sink = Some(sink.clone());
                }
                shared.work.notify_all();
                // ShutdownOk arrives from the executor once the mesh is down
            }
        }
    }
}

/// Validates and enqueues one spec (the daemon-side analogue of
/// [`crate::Service::submit`]): graph in catalog, algorithm registered,
/// edge payload compatible; estimate from the spec, the learned estimator,
/// or the static hint — in that order.
fn submit(shared: &Arc<Shared>, spec: JobSpec, sink: &Arc<ClientSink>) -> Result<u64> {
    let entry = shared
        .catalog
        .get(&spec.graph)
        .ok_or_else(|| DfoError::Config(format!("graph {:?} is not in the catalog", spec.graph)))?;
    let algo = dfo_algos::find(&spec.algorithm).ok_or_else(|| {
        DfoError::Config(format!(
            "unknown algorithm {:?} (registered: {})",
            spec.algorithm,
            dfo_algos::registry().iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
        ))
    })?;
    check_edge_data(algo, entry.plan.edge_data_bytes)?;
    let estimate = spec
        .mem_estimate
        .or_else(|| shared.estimator.estimate(&spec.algorithm, &spec.graph))
        .unwrap_or_else(|| default_estimate(algo, entry.plan.n_vertices, shared.cfg.nodes));
    let job = {
        let mut s = shared.sched.lock();
        if s.shutdown {
            return Err(DfoError::NetClosed("daemon is shutting down".into()));
        }
        let id = s.next_id;
        s.next_id += 1;
        let job = Arc::new(RemoteJob {
            id,
            spec,
            estimate,
            cancel: Arc::new(AtomicBool::new(false)),
            phase: Mutex::new(JobPhase::Queued),
            retries: AtomicU32::new(0),
            sink: sink.clone(),
        });
        s.queue.push(id, &job.spec.client_id, job.spec.priority, estimate);
        s.jobs.insert(id, job.clone());
        shared.sched_gauges(s.queue.len(), s.running_jobs);
        job
    };
    job.sink.send(&DaemonMsg::Status { status: job.status() });
    shared.work.notify_all();
    Ok(job.id)
}
