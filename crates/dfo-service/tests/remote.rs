//! End-to-end remote service test: a 2-rank daemon mesh as real OS
//! processes, driven by a [`DfoClient`] over localhost TCP.
//!
//! Mirrors the `dfo-core` distributed test harness: the parent re-execs
//! this test binary as the daemon processes (`child_entry` is a no-op
//! under plain `cargo test`, a daemon rank when `DFO_SERVICE_REMOTE_ROLE`
//! is set), preprocesses the shared graph up front, and asserts on exit
//! codes. Covered end to end:
//!
//! * remote submission with **no re-bootstrap**: the daemons preprocess
//!   nothing and handshake the mesh once, every job reuses both;
//! * remote results **bit-identical** to batch [`Cluster::run`] over the
//!   same preprocessed graph;
//! * **priority scheduling**: with the mesh busy, a higher-priority job
//!   submitted later overtakes an earlier lower-priority one;
//! * **cancellation** of a queued job (typed [`DfoError::Cancelled`]
//!   through the client) with the mesh healthy afterwards;
//! * **learned admission**: the second submission of the same
//!   `(algorithm, graph)` is charged a learned estimate, not the static
//!   hint;
//! * the scheduler metrics surface on the daemon's scrape endpoint;
//! * **concurrent jobs**: two jobs observed `Running` simultaneously on
//!   one mesh (pushed status events), overlapping results bit-identical
//!   to the serial batch reference;
//! * **mesh relaunch + honored retries**: a job failure poisons the mesh,
//!   the daemons rebuild it in place under a bumped epoch, a
//!   `max_retries=1` victim completes on the rebuilt mesh with
//!   `report.retries == 1`, and typed retryability-preserving errors
//!   reach stranded waiters;
//! * a **seeded interleave sweep** over submit/cancel/fail orderings:
//!   every waiter resolves and the (possibly relaunched) mesh still
//!   computes bit-identical answers after each round.
//!
//! When `DFO_TEST_METRICS_OUT` is set, scraped metrics bodies are appended
//! to that file so CI can grep scheduler/retry counters after the run.

use dfo_core::Cluster;
use dfo_service::{Daemon, DfoClient, JobSpec};
use dfo_types::{BatchPolicy, DfoError, EngineConfig, JobPhase};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};
use tempfile::TempDir;

const ROLE_ENV: &str = "DFO_SERVICE_REMOTE_ROLE";
const GRAPH: &str = "web";
const PAGERANK_ITERS: u64 = 4;

/// Config shared by the parent (preprocessing, batch reference) and every
/// daemon process — they must agree on the partitioning.
fn remote_cfg(nodes: usize) -> EngineConfig {
    let mut cfg = EngineConfig::for_test(nodes);
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    cfg.connect_timeout_secs = 60;
    cfg
}

fn test_graph() -> dfo_graph::EdgeList<()> {
    dfo_graph::gen::uniform(192, 1400, 5)
}

// ---------------------------------------------------------------------------
// daemon-side entry point

/// No-op under plain `cargo test`; one daemon rank when the role env var is
/// set. The daemon discovers the preprocessed graph under `DFO_BASE`, joins
/// the mesh via `DFO_PEERS`, and (on rank 0) serves clients on
/// `DFO_CONTROL_ADDR` and metrics on `DFO_METRICS_ADDR`.
#[test]
fn child_entry() {
    if std::env::var(ROLE_ENV).is_err() {
        return;
    }
    let rank = EngineConfig::env_rank().expect("DFO_RANK");
    let base = PathBuf::from(std::env::var("DFO_BASE").expect("DFO_BASE"));
    let mut cfg = remote_cfg(2);
    cfg.apply_env_overrides();
    assert!(cfg.peers.is_some(), "daemon needs DFO_PEERS");
    let code = match Daemon::run(cfg, rank, &base) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("daemon rank {rank} failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// parent-side helpers

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

fn spawn_daemon(
    rank: usize,
    base: &Path,
    peers: &str,
    ctrl: Option<&str>,
    extra_env: &[(&str, &str)],
) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
        .env(ROLE_ENV, "daemon")
        .env("DFO_RANK", rank.to_string())
        .env("DFO_PEERS", peers)
        .env("DFO_BASE", base);
    if let Some(ctrl) = ctrl {
        cmd.env("DFO_CONTROL_ADDR", ctrl);
    }
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn daemon process")
}

/// Preprocesses the shared graph under `<td>/graphs/web` and returns the
/// batch-mode pagerank reference computed over the very same chunks.
fn prep_graph(td: &TempDir) -> Vec<dfo_algos::AlgoOutput> {
    let g = test_graph();
    let graph_dir = td.path().join("graphs").join(GRAPH);
    let batch = Cluster::create(remote_cfg(2), &graph_dir).unwrap();
    batch.preprocess(&g).unwrap();
    let algo = dfo_algos::find("pagerank").unwrap();
    let params = pagerank_spec().params;
    batch.run(|ctx| algo.run(ctx, &params)).unwrap()
}

fn assert_outputs_match(report: &dfo_service::JobReport, reference: &[dfo_algos::AlgoOutput]) {
    assert_eq!(report.outputs.len(), reference.len(), "one output slice per rank");
    for (rank, want) in reference.iter().enumerate() {
        assert_eq!(report.outputs[rank].kind, want.kind);
        assert_eq!(
            report.outputs[rank].values, want.values,
            "rank {rank} remote output differs from batch Cluster::run"
        );
    }
}

/// Appends one scraped metrics body to `DFO_TEST_METRICS_OUT` (when set)
/// so CI can grep scheduler/retry counters after the run.
fn save_metrics(body: &str) {
    if let Ok(path) = std::env::var("DFO_TEST_METRICS_OUT") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = f.write_all(body.as_bytes());
        }
    }
}

/// A `fault`-algorithm spec: `mode` 0 fails non-retryably (`Config`),
/// 1 fails retryably (`NetClosed`), anything else sleeps `delay_ms` then
/// succeeds with zeroed output — a deterministic-duration sleeper.
fn fault_spec(mode: u64, delay_ms: u64) -> JobSpec {
    JobSpec::new(GRAPH, "fault").with_param("mode", mode).with_param("delay_ms", delay_ms)
}

fn wait_with_deadline(child: &mut Child, what: &str) -> ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return st;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} hung past the deadline");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The daemon binds its listener after connecting the mesh; retry until it
/// answers or the deadline trips.
fn connect_with_retry(addr: &str, client_id: &str) -> DfoClient {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match DfoClient::connect_as(addr, client_id) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "daemon never came up at {addr}: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Minimal HTTP GET against the daemon's metrics endpoint.
fn scrape_metrics(addr: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect metrics endpoint");
    s.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send scrape request");
    let mut body = String::new();
    s.read_to_string(&mut body).expect("read scrape response");
    body
}

fn pagerank_spec() -> JobSpec {
    JobSpec::new(GRAPH, "pagerank").with_param("iters", PAGERANK_ITERS)
}

// ---------------------------------------------------------------------------
// the actual test

#[test]
fn remote_jobs_over_two_rank_daemon_mesh() {
    let td = TempDir::new().unwrap();
    // preprocess once where the daemons will discover it, and compute the
    // batch-mode reference over the very same preprocessed chunks
    let reference = prep_graph(&td);

    let peers = free_addrs(2).join(",");
    let ctrl = free_addrs(1).remove(0);
    let metrics = free_addrs(1).remove(0);
    let mut daemons = [
        {
            // rank 0 also serves the metrics endpoint
            let mut cmd = Command::new(std::env::current_exe().unwrap());
            cmd.args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
                .env(ROLE_ENV, "daemon")
                .env("DFO_RANK", "0")
                .env("DFO_PEERS", &peers)
                .env("DFO_BASE", td.path())
                .env("DFO_CONTROL_ADDR", &ctrl)
                .env("DFO_METRICS_ADDR", &metrics);
            cmd.spawn().expect("spawn daemon rank 0")
        },
        spawn_daemon(1, td.path(), &peers, None, &[]),
    ];

    let client = connect_with_retry(&ctrl, "itest");
    assert_eq!(client.nodes(), 2);

    // --- job 1: remote result must be bit-identical to the batch run -----
    let first = client.submit(pagerank_spec()).unwrap();
    let first_id = first.id();
    let report = first.wait().unwrap();
    assert_outputs_match(&report, &reference);
    assert!(report.totals.messages_generated > 0, "phase stats travel with the report");

    // --- learned admission: the second submission of the same
    // (algorithm, graph) is charged the learned estimate ------------------
    let second = client.submit(pagerank_spec()).unwrap();
    let second_id = second.id();
    let jobs = client.list_jobs().unwrap();
    let est = |id: u64| jobs.iter().find(|s| s.id == id).map(|s| s.mem_estimate).unwrap();
    assert_ne!(
        est(first_id),
        est(second_id),
        "second submission must be charged the learned estimate, not the static hint"
    );
    assert!(est(second_id) > 0);

    // --- priority: while the mesh is busy, queue low (B) then high (C);
    // C must finish while B has not, and one queued job (D) is cancelled.
    // The executor overlaps jobs against the footprint budget now, so B/C/D
    // each claim the whole budget — admissible only alone, which restores
    // the serial ordering this assertion is about -------------------------
    let full = remote_cfg(2).mem_budget;
    let b = client.submit(pagerank_spec().with_mem_estimate(full)).unwrap();
    let c = client.submit(pagerank_spec().with_mem_estimate(full).with_priority(5)).unwrap();
    let d = client.submit(pagerank_spec().with_mem_estimate(full)).unwrap();
    d.cancel().unwrap();
    match d.wait() {
        Err(DfoError::Cancelled(_)) => {}
        other => panic!("cancelled queued job must resolve Cancelled, got {other:?}"),
    }
    second.wait().unwrap();
    let c_report = c.wait().unwrap();
    assert_eq!(c_report.outputs.len(), 2);
    let b_phase_when_c_done =
        client.list_jobs().unwrap().iter().find(|s| s.id == b.id()).map(|s| s.phase).unwrap();
    assert_ne!(
        b_phase_when_c_done,
        JobPhase::Done,
        "higher-priority job C must complete before lower-priority B"
    );
    b.wait().unwrap();

    // --- scheduler metrics are live on the scrape endpoint ---------------
    let body = scrape_metrics(&metrics);
    assert!(body.contains("dfo_sched_admitted_total"), "missing admitted counter:\n{body}");
    assert!(body.contains("dfo_sched_queue_depth"), "missing queue gauge:\n{body}");
    assert!(body.contains("dfo_sched_estimate_error_ratio"), "missing estimator gauge:\n{body}");
    save_metrics(&body);

    // --- clean shutdown: both daemon ranks exit 0 ------------------------
    client.shutdown().unwrap();
    for (r, d) in daemons.iter_mut().enumerate() {
        let st = wait_with_deadline(d, &format!("daemon rank {r}"));
        assert!(st.success(), "daemon rank {r} exited with {st:?}");
    }
}

#[test]
fn overlapping_jobs_share_the_mesh_and_match_serial() {
    let td = TempDir::new().unwrap();
    let reference = prep_graph(&td);

    let peers = free_addrs(2).join(",");
    let ctrl = free_addrs(1).remove(0);
    let mut daemons = [
        spawn_daemon(0, td.path(), &peers, Some(&ctrl), &[]),
        spawn_daemon(1, td.path(), &peers, None, &[]),
    ];
    let client = connect_with_retry(&ctrl, "overlap");

    // two deterministic-duration sleepers; the pushed status events must
    // show both Running at once — the tag-namespace overlap criterion
    let s1 = client.submit(fault_spec(2, 2500)).unwrap();
    let s2 = client.submit(fault_spec(2, 2500)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let phase = |h: &dfo_service::RemoteJobHandle| h.status().map(|s| s.phase);
        if phase(&s1) == Some(JobPhase::Running) && phase(&s2) == Some(JobPhase::Running) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "jobs never overlapped: s1={:?} s2={:?}",
            s1.status(),
            s2.status()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // engine jobs overlapping with the sleepers (and each other) produce
    // results bit-identical to the serial batch reference
    let handles: Vec<_> = (0..3).map(|_| client.submit(pagerank_spec()).unwrap()).collect();
    for h in handles {
        let report = h.wait().unwrap();
        assert_outputs_match(&report, &reference);
        assert_eq!(report.retries, 0);
    }
    let r1 = s1.wait().unwrap();
    let r2 = s2.wait().unwrap();
    assert_eq!(r1.retries, 0);
    assert_eq!(r2.retries, 0);

    client.shutdown().unwrap();
    for (r, d) in daemons.iter_mut().enumerate() {
        let st = wait_with_deadline(d, &format!("daemon rank {r}"));
        assert!(st.success(), "daemon rank {r} exited with {st:?}");
    }
}

#[test]
fn poisoned_mesh_relaunches_and_honors_max_retries() {
    let td = TempDir::new().unwrap();
    let reference = prep_graph(&td);

    let peers = free_addrs(2).join(",");
    let ctrl = free_addrs(1).remove(0);
    let metrics = free_addrs(1).remove(0);
    // two in-place relaunches budgeted: one per injected mesh death below
    let env: &[(&str, &str)] = &[("DFO_MAX_RESTARTS", "2")];
    let mut daemons = [
        spawn_daemon(
            0,
            td.path(),
            &peers,
            Some(&ctrl),
            &[("DFO_MAX_RESTARTS", "2"), ("DFO_METRICS_ADDR", &metrics)],
        ),
        spawn_daemon(1, td.path(), &peers, None, env),
    ];
    let client = connect_with_retry(&ctrl, "relaunch");

    // the victim: a sleeper with one retry budgeted, running when the mesh
    // dies under it
    let victim = client.submit(fault_spec(2, 2000).with_max_retries(1)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while victim.status().map(|s| s.phase) != Some(JobPhase::Running) {
        assert!(Instant::now() < deadline, "victim never started: {:?}", victim.status());
        std::thread::sleep(Duration::from_millis(25));
    }

    // the culprit poisons the mesh mid-victim; it has no retry budget, so
    // its waiter resolves with the typed retryable error instead of
    // stranding on the dead mesh
    let culprit = client.submit(fault_spec(1, 200)).unwrap();
    match culprit.wait() {
        Err(e @ DfoError::NetClosed(_)) => {
            assert!(e.is_retryable(), "NetClosed must stay retryable through the wire")
        }
        other => panic!("culprit must fail with typed NetClosed, got {other:?}"),
    }

    // the victim was requeued and completed on the relaunched mesh
    let vr = victim.wait().expect("victim must complete on the rebuilt mesh");
    assert_eq!(vr.retries, 1, "one honored retry after the mesh death");

    // the rebuilt mesh computes bit-identical answers
    let report = client.submit(pagerank_spec()).unwrap().wait().unwrap();
    assert_outputs_match(&report, &reference);

    // a non-retryable failure reaches its waiter typed even though it also
    // kills the mesh, and retries are NOT spent on it despite the budget
    let bad = client.submit(fault_spec(0, 0).with_max_retries(3)).unwrap();
    match bad.wait() {
        Err(DfoError::Config(m)) => assert!(m.contains("injected"), "unexpected message: {m}"),
        other => panic!("non-retryable fault must fail with typed Config, got {other:?}"),
    }

    // second relaunch: the mesh still serves correct jobs afterwards
    let report = client.submit(pagerank_spec()).unwrap().wait().unwrap();
    assert_outputs_match(&report, &reference);

    let body = scrape_metrics(&metrics);
    assert!(body.contains("dfo_job_retries_total"), "missing retry counter:\n{body}");
    assert!(body.contains("dfo_mesh_relaunches_total"), "missing relaunch counter:\n{body}");
    save_metrics(&body);

    client.shutdown().unwrap();
    for (r, d) in daemons.iter_mut().enumerate() {
        let st = wait_with_deadline(d, &format!("daemon rank {r}"));
        assert!(st.success(), "daemon rank {r} exited with {st:?}");
    }
}

#[test]
fn seeded_interleave_sweep_over_submit_cancel_fail() {
    let td = TempDir::new().unwrap();
    let reference = prep_graph(&td);

    let peers = free_addrs(2).join(",");
    let ctrl = free_addrs(1).remove(0);
    let env: &[(&str, &str)] = &[("DFO_MAX_RESTARTS", "10")];
    let mut daemons = [
        spawn_daemon(0, td.path(), &peers, Some(&ctrl), env),
        spawn_daemon(1, td.path(), &peers, None, env),
    ];
    let client = connect_with_retry(&ctrl, "sweep");

    for seed in 0..3u64 {
        // a tiny deterministic LCG drives the interleaving: job mix, submit
        // stagger, cancel victims and cancel timing all derive from `seed`
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut roll = |n: u64| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) % n
        };
        let mut handles = Vec::new();
        let mut fault_used = false;
        for _ in 0..4 {
            let spec = match roll(3) {
                0 => pagerank_spec().with_max_retries(2),
                1 => fault_spec(2, 200 + roll(400)).with_max_retries(2),
                _ if !fault_used => {
                    // at most one mesh killer per round bounds relaunches
                    fault_used = true;
                    fault_spec(1, 50 + roll(300))
                }
                _ => pagerank_spec().with_max_retries(2),
            };
            handles.push(client.submit(spec).unwrap());
            if roll(10) < 4 {
                std::thread::sleep(Duration::from_millis(roll(120)));
            }
        }
        for h in &handles {
            if roll(10) < 3 {
                std::thread::sleep(Duration::from_millis(roll(150)));
                let _ = h.cancel();
            }
        }
        // every waiter must resolve — completed, cancelled, or a typed
        // failure — no matter how the orderings interleaved with a mesh
        // death; nothing strands
        for h in handles.drain(..) {
            match h.wait() {
                Ok(r) => assert!(r.retries <= 2, "seed {seed}: retries past the bound"),
                Err(DfoError::Cancelled(_)) | Err(DfoError::NetClosed(_)) => {}
                Err(other) => panic!("seed {seed}: unexpected terminal error {other:?}"),
            }
        }
        // the mesh — relaunched or not — still computes correct answers
        let check = client.submit(pagerank_spec().with_max_retries(3)).unwrap();
        assert_outputs_match(&check.wait().unwrap(), &reference);
    }

    client.shutdown().unwrap();
    for (r, d) in daemons.iter_mut().enumerate() {
        let st = wait_with_deadline(d, &format!("daemon rank {r}"));
        assert!(st.success(), "daemon rank {r} exited with {st:?}");
    }
}
