//! End-to-end remote service test: a 2-rank daemon mesh as real OS
//! processes, driven by a [`DfoClient`] over localhost TCP.
//!
//! Mirrors the `dfo-core` distributed test harness: the parent re-execs
//! this test binary as the daemon processes (`child_entry` is a no-op
//! under plain `cargo test`, a daemon rank when `DFO_SERVICE_REMOTE_ROLE`
//! is set), preprocesses the shared graph up front, and asserts on exit
//! codes. Covered end to end:
//!
//! * remote submission with **no re-bootstrap**: the daemons preprocess
//!   nothing and handshake the mesh once, every job reuses both;
//! * remote results **bit-identical** to batch [`Cluster::run`] over the
//!   same preprocessed graph;
//! * **priority scheduling**: with the mesh busy, a higher-priority job
//!   submitted later overtakes an earlier lower-priority one;
//! * **cancellation** of a queued job (typed [`DfoError::Cancelled`]
//!   through the client) with the mesh healthy afterwards;
//! * **learned admission**: the second submission of the same
//!   `(algorithm, graph)` is charged a learned estimate, not the static
//!   hint;
//! * the scheduler metrics surface on the daemon's scrape endpoint.

use dfo_core::Cluster;
use dfo_service::{Daemon, DfoClient, JobSpec};
use dfo_types::{BatchPolicy, DfoError, EngineConfig, JobPhase};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};
use tempfile::TempDir;

const ROLE_ENV: &str = "DFO_SERVICE_REMOTE_ROLE";
const GRAPH: &str = "web";
const PAGERANK_ITERS: u64 = 4;

/// Config shared by the parent (preprocessing, batch reference) and every
/// daemon process — they must agree on the partitioning.
fn remote_cfg(nodes: usize) -> EngineConfig {
    let mut cfg = EngineConfig::for_test(nodes);
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    cfg.connect_timeout_secs = 60;
    cfg
}

fn test_graph() -> dfo_graph::EdgeList<()> {
    dfo_graph::gen::uniform(192, 1400, 5)
}

// ---------------------------------------------------------------------------
// daemon-side entry point

/// No-op under plain `cargo test`; one daemon rank when the role env var is
/// set. The daemon discovers the preprocessed graph under `DFO_BASE`, joins
/// the mesh via `DFO_PEERS`, and (on rank 0) serves clients on
/// `DFO_CONTROL_ADDR` and metrics on `DFO_METRICS_ADDR`.
#[test]
fn child_entry() {
    if std::env::var(ROLE_ENV).is_err() {
        return;
    }
    let rank = EngineConfig::env_rank().expect("DFO_RANK");
    let base = PathBuf::from(std::env::var("DFO_BASE").expect("DFO_BASE"));
    let mut cfg = remote_cfg(2);
    cfg.apply_env_overrides();
    assert!(cfg.peers.is_some(), "daemon needs DFO_PEERS");
    let code = match Daemon::run(cfg, rank, &base) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("daemon rank {rank} failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// parent-side helpers

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

fn spawn_daemon(rank: usize, base: &Path, peers: &str, ctrl: Option<&str>) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
        .env(ROLE_ENV, "daemon")
        .env("DFO_RANK", rank.to_string())
        .env("DFO_PEERS", peers)
        .env("DFO_BASE", base);
    if let Some(ctrl) = ctrl {
        cmd.env("DFO_CONTROL_ADDR", ctrl);
    }
    cmd.spawn().expect("spawn daemon process")
}

fn wait_with_deadline(child: &mut Child, what: &str) -> ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return st;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} hung past the deadline");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The daemon binds its listener after connecting the mesh; retry until it
/// answers or the deadline trips.
fn connect_with_retry(addr: &str, client_id: &str) -> DfoClient {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match DfoClient::connect_as(addr, client_id) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "daemon never came up at {addr}: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Minimal HTTP GET against the daemon's metrics endpoint.
fn scrape_metrics(addr: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect metrics endpoint");
    s.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send scrape request");
    let mut body = String::new();
    s.read_to_string(&mut body).expect("read scrape response");
    body
}

fn pagerank_spec() -> JobSpec {
    JobSpec::new(GRAPH, "pagerank").with_param("iters", PAGERANK_ITERS)
}

// ---------------------------------------------------------------------------
// the actual test

#[test]
fn remote_jobs_over_two_rank_daemon_mesh() {
    let g = test_graph();
    let td = TempDir::new().unwrap();

    // preprocess once where the daemons will discover it, and compute the
    // batch-mode reference over the very same preprocessed chunks
    let graph_dir = td.path().join("graphs").join(GRAPH);
    let batch = Cluster::create(remote_cfg(2), &graph_dir).unwrap();
    batch.preprocess(&g).unwrap();
    let algo = dfo_algos::find("pagerank").unwrap();
    let params = pagerank_spec().params;
    let reference = batch.run(|ctx| algo.run(ctx, &params)).unwrap();
    drop(batch);

    let peers = free_addrs(2).join(",");
    let ctrl = free_addrs(1).remove(0);
    let metrics = free_addrs(1).remove(0);
    let mut daemons = [
        {
            // rank 0 also serves the metrics endpoint
            let mut cmd = Command::new(std::env::current_exe().unwrap());
            cmd.args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
                .env(ROLE_ENV, "daemon")
                .env("DFO_RANK", "0")
                .env("DFO_PEERS", &peers)
                .env("DFO_BASE", td.path())
                .env("DFO_CONTROL_ADDR", &ctrl)
                .env("DFO_METRICS_ADDR", &metrics);
            cmd.spawn().expect("spawn daemon rank 0")
        },
        spawn_daemon(1, td.path(), &peers, None),
    ];

    let client = connect_with_retry(&ctrl, "itest");
    assert_eq!(client.nodes(), 2);

    // --- job 1: remote result must be bit-identical to the batch run -----
    let first = client.submit(pagerank_spec()).unwrap();
    let first_id = first.id();
    let report = first.wait().unwrap();
    assert_eq!(report.outputs.len(), 2, "one output slice per rank");
    for (rank, want) in reference.iter().enumerate() {
        assert_eq!(report.outputs[rank].kind, want.kind);
        assert_eq!(
            report.outputs[rank].values, want.values,
            "rank {rank} remote output differs from batch Cluster::run"
        );
    }
    assert!(report.totals.messages_generated > 0, "phase stats travel with the report");

    // --- learned admission: the second submission of the same
    // (algorithm, graph) is charged the learned estimate ------------------
    let second = client.submit(pagerank_spec()).unwrap();
    let second_id = second.id();
    let jobs = client.list_jobs().unwrap();
    let est = |id: u64| jobs.iter().find(|s| s.id == id).map(|s| s.mem_estimate).unwrap();
    assert_ne!(
        est(first_id),
        est(second_id),
        "second submission must be charged the learned estimate, not the static hint"
    );
    assert!(est(second_id) > 0);

    // --- priority: while the mesh is busy, queue low (B) then high (C);
    // C must finish while B has not, and one queued job (D) is cancelled --
    let b = client.submit(pagerank_spec()).unwrap();
    let c = client.submit(pagerank_spec().with_priority(5)).unwrap();
    let d = client.submit(pagerank_spec()).unwrap();
    d.cancel().unwrap();
    match d.wait() {
        Err(DfoError::Cancelled(_)) => {}
        other => panic!("cancelled queued job must resolve Cancelled, got {other:?}"),
    }
    second.wait().unwrap();
    let c_report = c.wait().unwrap();
    assert_eq!(c_report.outputs.len(), 2);
    let b_phase_when_c_done =
        client.list_jobs().unwrap().iter().find(|s| s.id == b.id()).map(|s| s.phase).unwrap();
    assert_ne!(
        b_phase_when_c_done,
        JobPhase::Done,
        "higher-priority job C must complete before lower-priority B"
    );
    b.wait().unwrap();

    // --- scheduler metrics are live on the scrape endpoint ---------------
    let body = scrape_metrics(&metrics);
    assert!(body.contains("dfo_sched_admitted_total"), "missing admitted counter:\n{body}");
    assert!(body.contains("dfo_sched_queue_depth"), "missing queue gauge:\n{body}");
    assert!(body.contains("dfo_sched_estimate_error_ratio"), "missing estimator gauge:\n{body}");

    // --- clean shutdown: both daemon ranks exit 0 ------------------------
    client.shutdown().unwrap();
    for (r, d) in daemons.iter_mut().enumerate() {
        let st = wait_with_deadline(d, &format!("daemon rank {r}"));
        assert!(st.success(), "daemon rank {r} exited with {st:?}");
    }
}
