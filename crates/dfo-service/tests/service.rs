//! Service-mode acceptance tests: concurrent jobs bit-identical to batch
//! mode, shared chunk caches, admission control, cooperative cancellation.

use dfo_algos::{bfs, pagerank, read_local};
use dfo_graph::gen::{rmat, GenConfig};
use dfo_service::{JobPhase, JobSpec, Service};
use dfo_types::{BatchPolicy, DfoError, EngineConfig};
use tempfile::TempDir;

fn cfg(nodes: usize) -> EngineConfig {
    let mut c = EngineConfig::for_test(nodes);
    c.batch_policy = BatchPolicy::FixedVertices(64);
    c.chunk_cache_bytes = 4 << 20;
    c.prefetch_depth = 2;
    c
}

/// Two jobs submitted back-to-back run concurrently over one catalog graph
/// and produce results bit-identical to batch-mode `Cluster::run` over the
/// very same preprocessed disks.
#[test]
fn concurrent_jobs_match_batch_mode_bit_for_bit() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(3), td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    // both in flight before either is waited on
    let jp = svc.submit(JobSpec::new("g", "pagerank").with_param("iters", 5)).unwrap();
    let jb = svc.submit(JobSpec::new("g", "bfs").with_param("root", 0)).unwrap();
    let pr_svc = jp.wait().unwrap().assemble::<f64>().unwrap();
    let bfs_svc = jb.wait().unwrap().assemble::<u32>().unwrap();

    // batch mode on the same catalog entry (the migration path)
    let entry = svc.graph("g").unwrap();
    let batch = entry
        .cluster()
        .run(|ctx| {
            let pr_arr = pagerank(ctx, 5)?;
            let pr = read_local(ctx, &pr_arr)?;
            let lv_arr = bfs(ctx, 0)?;
            let lv = read_local(ctx, &lv_arr)?;
            Ok((pr, lv))
        })
        .unwrap();
    let pr_batch: Vec<f64> = batch.iter().flat_map(|(p, _)| p.iter().copied()).collect();
    let bfs_batch: Vec<u32> = batch.iter().flat_map(|(_, l)| l.iter().copied()).collect();

    assert_eq!(pr_svc.len(), g.n_vertices as usize);
    assert_eq!(pr_svc, pr_batch, "service pagerank must be bit-identical to batch mode");
    assert_eq!(bfs_svc, bfs_batch, "service bfs must be bit-identical to batch mode");
}

/// Concurrent jobs over one graph share its chunk caches: each job's own
/// attributed hit counter is positive, and their union exceeds what either
/// saw alone. Per-job counters are counted at the job's lookup sites, so
/// the concurrent partner does not pollute them.
#[test]
fn concurrent_jobs_share_the_chunk_cache() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(2), td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    let a = svc.submit(JobSpec::new("g", "pagerank").with_param("iters", 6)).unwrap();
    let b = svc.submit(JobSpec::new("g", "pagerank").with_param("iters", 6)).unwrap();
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();

    assert!(ra.totals.chunk_cache_hits > 0, "job A should re-hit chunks across iterations");
    assert!(rb.totals.chunk_cache_hits > 0, "job B should re-hit chunks across iterations");
    let combined = ra.totals.chunk_cache_hits + rb.totals.chunk_cache_hits;
    assert!(combined > ra.totals.chunk_cache_hits && combined > rb.totals.chunk_cache_hits);

    // the shared-cache window of a job spanning both runs sees at least its
    // own attributed traffic
    let window_hits: u64 = ra.cache_window.iter().map(|c| c.hits).sum();
    assert!(window_hits >= ra.totals.chunk_cache_hits);
}

/// Admission control: a job whose estimate saturates `mem_budget` runs
/// alone; the next job demonstrably queues, and cancelling the hog frees
/// the budget so the queued job runs to completion.
#[test]
fn over_budget_job_queues_and_cancellation_frees_budget() {
    let g = rmat(GenConfig::new(8, 6, 13));
    let td = TempDir::new().unwrap();
    let config = cfg(2);
    let budget = config.mem_budget;
    let svc = Service::new(config, td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    // hog: saturates the budget and runs long enough to observe (the
    // cancel lands at a Process-call boundary within a few iterations)
    let hog = svc
        .submit(JobSpec::new("g", "pagerank").with_param("iters", 10_000).with_mem_estimate(budget))
        .unwrap();
    // over budget by one byte: must queue, FIFO, no overtaking
    let queued = svc
        .submit(JobSpec::new("g", "pagerank").with_param("iters", 2).with_mem_estimate(1))
        .unwrap();
    assert_eq!(queued.stats().phase, JobPhase::Queued, "second job must wait for budget");

    hog.cancel();
    let report = queued.wait().unwrap();
    assert_eq!(report.outputs.len(), 2, "queued job ran once budget freed");

    let err = hog.wait().unwrap_err();
    assert!(matches!(err, DfoError::Cancelled(_)), "hog must report Cancelled, got {err}");
}

/// Cancelling a job that is still queued withdraws it without running.
#[test]
fn cancelling_a_queued_job_withdraws_it() {
    let g = rmat(GenConfig::new(8, 6, 13));
    let td = TempDir::new().unwrap();
    let config = cfg(2);
    let budget = config.mem_budget;
    let svc = Service::new(config, td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    let hog = svc
        .submit(JobSpec::new("g", "pagerank").with_param("iters", 10_000).with_mem_estimate(budget))
        .unwrap();
    let queued = svc.submit(JobSpec::new("g", "degree").with_mem_estimate(1)).unwrap();
    assert_eq!(queued.stats().phase, JobPhase::Queued);

    queued.cancel();
    let err = queued.wait().unwrap_err();
    assert!(matches!(err, DfoError::Cancelled(_)), "queued job withdraws as Cancelled");

    hog.cancel();
    assert!(matches!(hog.wait().unwrap_err(), DfoError::Cancelled(_)));
}

/// Bad specs fail with typed errors at submit time, before any rank runs:
/// unknown graph, unknown algorithm, and an edge-payload mismatch (SSSP
/// needs f32 weights; the graph was preprocessed unweighted).
#[test]
fn submit_time_validation() {
    let g = rmat(GenConfig::new(8, 6, 13));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(2), td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    let err = svc.submit(JobSpec::new("nope", "pagerank")).unwrap_err();
    assert!(err.to_string().contains("not in the catalog"), "{err}");

    let err = svc.submit(JobSpec::new("g", "pagerank2")).unwrap_err();
    assert!(err.to_string().contains("unknown algorithm"), "{err}");

    let err = svc.submit(JobSpec::new("g", "sssp")).unwrap_err();
    assert!(err.to_string().contains("bytes/edge"), "{err}");
}

/// Catalog lifecycle: duplicate names refused, unload makes the name
/// unresolvable for new jobs, names must be path-safe.
#[test]
fn catalog_lifecycle() {
    let g = rmat(GenConfig::new(8, 6, 13));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(2), td.path()).unwrap();

    svc.load_graph("g", &g).unwrap();
    assert_eq!(svc.graphs(), ["g"]);
    assert!(svc.load_graph("g", &g).unwrap_err().to_string().contains("already loaded"));
    assert!(svc.load_graph("../escape", &g).is_err());

    svc.unload_graph("g").unwrap();
    assert!(svc.graphs().is_empty());
    assert!(svc.submit(JobSpec::new("g", "pagerank")).is_err());
    assert!(svc.unload_graph("g").is_err());
}

/// Guards the per-job cache attribution (counted at each job's own lookup
/// sites): over a window of **sequential** jobs, the per-job hit/miss
/// series in the service registry sum exactly to the shared cache's
/// counter delta across that window — nothing double-counted, nothing
/// dropped.
#[test]
fn job_cache_series_sum_to_shared_window_delta() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(2), td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();
    let entry = svc.graph("g").unwrap();

    let before = entry.cluster().chunk_cache_stats();
    // sequential (each waited before the next submits), so the shared
    // window delta is exactly the union of the jobs' own lookups
    let r1 = svc.submit(JobSpec::new("g", "pagerank").with_param("iters", 4)).unwrap();
    let r1 = r1.wait().unwrap();
    let r2 = svc.submit(JobSpec::new("g", "bfs").with_param("root", 0)).unwrap();
    let r2 = r2.wait().unwrap();
    let after = entry.cluster().chunk_cache_stats();

    let delta_hits: u64 =
        after.iter().zip(&before).map(|(now, then)| now.delta_since(then).hits).sum();
    let delta_misses: u64 =
        after.iter().zip(&before).map(|(now, then)| now.delta_since(then).misses).sum();
    assert!(delta_hits > 0, "iterative pagerank must re-hit warm chunks");

    // report totals agree with the shared window…
    assert_eq!(r1.totals.chunk_cache_hits + r2.totals.chunk_cache_hits, delta_hits);
    assert_eq!(r1.totals.chunk_cache_misses + r2.totals.chunk_cache_misses, delta_misses);

    // …and so do the scrapeable per-job series
    let snap = svc.registry().snapshot();
    let series_sum = |family: &str| -> u64 {
        snap.series(family).iter().filter_map(|s| s.value.as_counter()).sum()
    };
    assert_eq!(series_sum("dfo_job_cache_hits_total"), delta_hits);
    assert_eq!(series_sum("dfo_job_cache_misses_total"), delta_misses);
    assert_eq!(series_sum("dfo_jobs_completed_total"), 2);
}

/// A catalog holds several graphs at once; jobs over different graphs are
/// fully independent (separate disks and caches under one service root).
#[test]
fn multiple_graphs_in_one_catalog() {
    let g1 = rmat(GenConfig::new(8, 6, 13));
    let g2 = rmat(GenConfig::new(8, 6, 99));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(2), td.path()).unwrap();
    svc.load_graph("a", &g1).unwrap();
    svc.load_graph("b", &g2).unwrap();

    let ja = svc.submit(JobSpec::new("a", "degree")).unwrap();
    let jb = svc.submit(JobSpec::new("b", "degree")).unwrap();
    let da = ja.wait().unwrap().assemble::<u64>().unwrap();
    let db = jb.wait().unwrap().assemble::<u64>().unwrap();

    assert_eq!(da.iter().sum::<u64>(), g1.n_edges());
    assert_eq!(db.iter().sum::<u64>(), g2.n_edges());
    assert_ne!(da, db, "different seeds give different degree profiles");
}

/// Bounded retry policy: a retryable failure (here a deterministic
/// injected rank death, surfacing as the mesh-failure error checkpointing
/// exists for) is re-executed up to `max_retries` times, the retry count
/// is visible live on the handle, and the final error is typed retryable
/// for the caller. A first-try success reports zero retries.
#[test]
fn retryable_failures_are_retried_then_surface_typed() {
    use dfo_types::CrashPoint;
    let g = rmat(GenConfig::new(8, 6, 13));
    let td = TempDir::new().unwrap();
    let mut c = cfg(2);
    // every execution of any job dies at Process call 1 on rank 1 — the
    // retry budget must be spent, then the typed error surfaces
    c.crash_schedule = vec![CrashPoint { rank: Some(1), ..CrashPoint::at(1) }];
    let svc = Service::new(c, td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    let h = svc.submit(JobSpec::new("g", "degree").with_max_retries(2)).unwrap();
    let err = h.wait().unwrap_err();
    assert!(err.is_retryable(), "want a typed retryable mesh error, got {err:?}");

    // the retry counter is part of the job's report/status surface; read
    // it via a fresh handle-less probe: submit again and check live stats
    let h2 = svc.submit(JobSpec::new("g", "degree").with_max_retries(1)).unwrap();
    let mut last = h2.stats();
    while last.phase != JobPhase::Failed {
        std::thread::sleep(std::time::Duration::from_millis(5));
        last = h2.stats();
    }
    assert_eq!(last.retries, 1, "one absorbed retry before the bounded budget ran out");
    assert!(h2.wait().unwrap_err().is_retryable());
}

/// Jobs that succeed first try report zero retries, and non-retryable
/// outcomes (cancellation) never consume retry budget.
#[test]
fn successful_and_cancelled_jobs_do_not_retry() {
    let g = rmat(GenConfig::new(8, 6, 13));
    let td = TempDir::new().unwrap();
    let svc = Service::new(cfg(2), td.path()).unwrap();
    svc.load_graph("g", &g).unwrap();

    let ok = svc.submit(JobSpec::new("g", "degree").with_max_retries(3)).unwrap();
    let report = ok.wait().unwrap();
    assert_eq!(report.retries, 0);

    let cancelled = svc.submit(JobSpec::new("g", "pagerank").with_param("iters", 50)).unwrap();
    cancelled.cancel();
    let st = cancelled.stats();
    assert_eq!(st.retries, 0);
    match cancelled.wait() {
        Err(DfoError::Cancelled(_)) => {}
        other => panic!("want Cancelled, got {other:?}"),
    }
}
