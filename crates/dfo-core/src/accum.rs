//! Accumulator contract for UDF return values.
//!
//! "Return values of `work` are summed and returned by `ProcessVertices`"
//! (and likewise for `slot` in `ProcessEdges`). The sum spans every vertex
//! on every node, so the type must know how to merge locally and reduce
//! across the cluster.

use dfo_net::Endpoint;

/// Values that can be summed within a node and all-reduced across nodes.
pub trait Accum: Send + 'static {
    fn zero() -> Self;
    fn merge(self, other: Self) -> Self;
    /// Cluster-wide reduction of per-node partial values.
    fn allreduce(self, net: &Endpoint) -> Self;
}

impl Accum for u64 {
    fn zero() -> Self {
        0
    }
    fn merge(self, other: Self) -> Self {
        self + other
    }
    fn allreduce(self, net: &Endpoint) -> Self {
        net.allreduce_sum_u64(self)
    }
}

impl Accum for f64 {
    fn zero() -> Self {
        0.0
    }
    fn merge(self, other: Self) -> Self {
        self + other
    }
    fn allreduce(self, net: &Endpoint) -> Self {
        net.allreduce_sum_f64(self)
    }
}

impl Accum for () {
    fn zero() -> Self {}
    fn merge(self, _other: Self) -> Self {}
    fn allreduce(self, net: &Endpoint) -> Self {
        // still participate in the collective so nodes stay in lockstep
        let _ = net.allreduce_sum_u64(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_merges() {
        assert_eq!(u64::zero().merge(3).merge(4), 7);
    }

    #[test]
    fn f64_merges() {
        assert!((f64::zero().merge(0.5).merge(0.25) - 0.75).abs() < 1e-12);
    }
}
