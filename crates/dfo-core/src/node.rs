//! Per-node engine state and `ProcessVertices`.
//!
//! A [`NodeCtx`] is what the SPMD closure passed to
//! [`crate::Cluster::run`] receives: the node's rank, its throttled disk,
//! its network endpoint, the replicated preprocessing plan, and the vertex
//! array registry. All engine APIs hang off it.

use crate::accum::Accum;
use crate::array::{ArrayEntry, BatchCtx, VertexArray};
use dfo_net::Endpoint;
use dfo_part::plan::{ChunkInfo, Plan};
use dfo_storage::{ChunkCache, ChunkCacheStats, CommitLog, NodeDisk, VersionedArrayStore};
use dfo_types::{CrashPos, DfoError, EngineConfig, PhaseStats, Pod, Rank, Result, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scratch-relative path of the per-call commit record (one per node).
const COMMITS_REL: &str = "arrays/COMMITS.bin";

/// Telemetry state of one context: the handle itself plus the histograms
/// the hot paths observe, resolved once in [`NodeCtx::set_telemetry`] so
/// per-call instrumentation never takes the registry lock.
pub(crate) struct NodeObs {
    pub(crate) tele: dfo_obs::Telemetry,
    /// `dfo_phase_seconds{phase=…}`, indexed generate/pass/dispatch/process.
    pub(crate) phase_secs: [Arc<dfo_obs::ObsHistogram>; 4],
    /// `dfo_chunk_load_seconds`: full chunk / dispatch-graph loads on a
    /// cache miss (read + decode + index build).
    pub(crate) chunk_load_secs: Arc<dfo_obs::ObsHistogram>,
    /// `dfo_ckpt_commit_seconds`: epoch commits when checkpointing is on.
    pub(crate) ckpt_commit_secs: Arc<dfo_obs::ObsHistogram>,
    /// `dfo_process_calls_total{kind=edges|vertices}`.
    pub(crate) edges_calls: Arc<dfo_obs::ObsCounter>,
    pub(crate) vertices_calls: Arc<dfo_obs::ObsCounter>,
}

pub struct NodeCtx {
    pub(crate) rank: Rank,
    pub(crate) cfg: EngineConfig,
    pub(crate) disk: NodeDisk,
    /// Where this context's *mutable* state lives: vertex arrays (and their
    /// checkpoints) and `ProcessEdges` message spills. Defaults to `disk`;
    /// [`crate::Cluster::run_scoped`] points it at a job-private
    /// subdirectory so concurrent jobs over one graph never collide, while
    /// read-only graph data (plan, chunks, dispatch/filter/pull lists) is
    /// always read from `disk`. Shares `disk`'s throttle and byte counters,
    /// so scoped jobs still contend for the same simulated device.
    pub(crate) scratch: NodeDisk,
    pub(crate) net: Endpoint,
    pub(crate) plan: Plan,
    pub(crate) arrays: HashMap<String, Arc<ArrayEntry>>,
    /// `chunk_map[p][b]`: metadata of the edge chunk from partition `p` to
    /// local batch `b`, if it has edges.
    pub(crate) chunk_map: Vec<Vec<Option<ChunkInfo>>>,
    /// Memory-budgeted cache of decoded edge chunks and dispatch graphs,
    /// shared across `process_edges` calls (and across runs when owned by a
    /// [`crate::Cluster`]). `None` when `chunk_cache_bytes == 0`.
    pub(crate) chunk_cache: Option<Arc<ChunkCache>>,
    pub(crate) call_seq: u64,
    pub(crate) last_stats: PhaseStats,
    /// `Process` calls whose epoch commit completed in this context's
    /// lifetime — the clock the deterministic crash hook
    /// (`cfg.crash_schedule` / `DFO_CRASH_AT`) counts against. Resets per
    /// incarnation; the *persistent* call clock is the commit record's
    /// sequence number.
    pub(crate) calls_committed: AtomicU64,
    /// Per-call commit record spanning every checkpointed array of this
    /// context (`arrays/COMMITS.bin` on the scratch disk). `Some` exactly
    /// when checkpointing block-backed arrays; rewritten atomically after
    /// each `Process` call's per-array commits, so a crash between those
    /// commits is detected at recovery and the torn call discarded whole.
    pub(crate) commit_log: Option<parking_lot::Mutex<CommitLog>>,
    /// Ahead-rank rollbacks this context performed (shared with the owning
    /// [`crate::Cluster`] across supervised attempts, so the count survives
    /// context rebuilds).
    pub(crate) rollbacks: Arc<AtomicU64>,
    /// How an injected crash dies: `false` (in-process simulation) panics
    /// the node thread, `true` (one-rank-per-process deployments) aborts
    /// the whole OS process — indistinguishable from a SIGKILL.
    pub(crate) crash_abort: bool,
    /// Cooperative cancellation token, checked at `Process`-call boundaries.
    /// Must be installed on **all** ranks of a run or none: the check is a
    /// collective (an allreduce agrees whether anyone saw the flag), so a
    /// partial installation would desynchronise the mesh.
    pub(crate) cancel: Option<Arc<AtomicBool>>,
    /// Chunk-cache lookups this `ProcessEdges` call that hit / missed,
    /// counted at the call sites (`load_chunk` / `load_dispatch_graph`)
    /// rather than diffed from the shared cache's cumulative counters — so
    /// the numbers stay attributable to *this* context even when other jobs
    /// hammer the same cache concurrently.
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    /// Sum of every `ProcessEdges` call's [`PhaseStats`] over this
    /// context's lifetime — the per-job totals a service reports.
    pub(crate) job_stats: PhaseStats,
    /// Metrics + tracing context; `None` (contexts built outside a
    /// telemetry-wired [`crate::Cluster`]) costs one branch per
    /// instrumentation point and nothing else.
    pub(crate) obs: Option<NodeObs>,
}

impl NodeCtx {
    /// Builds the context for `rank`, loading the plan replicated by
    /// preprocessing. A fresh chunk cache is allocated from
    /// `cfg.chunk_cache_bytes`; [`NodeCtx::with_chunk_cache`] lets an owner
    /// (the [`crate::Cluster`]) share one across runs instead.
    pub fn new(rank: Rank, cfg: EngineConfig, disk: NodeDisk, net: Endpoint) -> Result<Self> {
        let cache =
            (cfg.chunk_cache_bytes > 0).then(|| Arc::new(ChunkCache::new(cfg.chunk_cache_bytes)));
        Self::with_chunk_cache(rank, cfg, disk, net, cache)
    }

    /// Like [`NodeCtx::new`] with an externally owned chunk cache (or
    /// `None` to disable caching regardless of the config).
    pub fn with_chunk_cache(
        rank: Rank,
        cfg: EngineConfig,
        disk: NodeDisk,
        net: Endpoint,
        chunk_cache: Option<Arc<ChunkCache>>,
    ) -> Result<Self> {
        let scratch = disk.clone();
        Self::with_disks(rank, cfg, disk, scratch, net, chunk_cache)
    }

    /// Like [`NodeCtx::with_chunk_cache`] with a separate *scratch* disk for
    /// this context's mutable state (vertex arrays, checkpoints, message
    /// spills). Graph data is read from `disk`; everything the run writes
    /// goes to `scratch`. [`crate::Cluster::run_scoped`] uses this to give
    /// each concurrent job a private scratch subdirectory over one shared
    /// graph.
    pub fn with_disks(
        rank: Rank,
        cfg: EngineConfig,
        disk: NodeDisk,
        scratch: NodeDisk,
        net: Endpoint,
        chunk_cache: Option<Arc<ChunkCache>>,
    ) -> Result<Self> {
        let plan = Plan::load(&disk)?;
        let mut chunk_map: Vec<Vec<Option<ChunkInfo>>> =
            (0..plan.nodes()).map(|_| vec![None; plan.n_batches(rank)]).collect();
        for c in &plan.node_meta[rank].chunks {
            chunk_map[c.src_partition][c.batch] = Some(*c);
        }
        // the commit record lives beside the arrays it covers; paged mode
        // (the no-batching ablation) has no checkpoints to record
        let commit_log = (cfg.checkpointing && cfg.batching_enabled)
            .then(|| parking_lot::Mutex::new(CommitLog::load_or_new(scratch.clone(), COMMITS_REL)));
        Ok(Self {
            rank,
            cfg,
            disk,
            scratch,
            net,
            plan,
            arrays: HashMap::new(),
            chunk_map,
            chunk_cache,
            call_seq: 0,
            last_stats: PhaseStats::default(),
            calls_committed: AtomicU64::new(0),
            commit_log,
            rollbacks: Arc::new(AtomicU64::new(0)),
            crash_abort: false,
            cancel: None,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            job_stats: PhaseStats::default(),
            obs: None,
        })
    }

    /// Attaches a telemetry context: pre-resolves the histograms the engine
    /// observes (phase durations, chunk loads, checkpoint commits) under the
    /// context's base labels, wires the network endpoint's collective
    /// instrumentation, and — when the context carries a tracer — starts
    /// recording spans for every `Process` call, pipeline phase, collective
    /// and chunk load on this rank.
    pub fn set_telemetry(&mut self, tele: dfo_obs::Telemetry) {
        self.net.set_telemetry(tele.clone());
        let phase = |p: &str| {
            tele.duration_histogram(
                "dfo_phase_seconds",
                "Wall time of one ProcessEdges pipeline phase on one rank",
                &[("phase", p)],
            )
        };
        self.obs = Some(NodeObs {
            phase_secs: [phase("generate"), phase("pass"), phase("dispatch"), phase("process")],
            chunk_load_secs: tele.duration_histogram(
                "dfo_chunk_load_seconds",
                "Full edge-chunk / dispatch-graph loads (read + decode + index)",
                &[],
            ),
            ckpt_commit_secs: tele.duration_histogram(
                "dfo_ckpt_commit_seconds",
                "Checkpoint epoch commits at Process-call boundaries",
                &[],
            ),
            edges_calls: tele.counter(
                "dfo_process_calls_total",
                "Process calls started on this rank",
                &[("kind", "edges")],
            ),
            vertices_calls: tele.counter(
                "dfo_process_calls_total",
                "Process calls started on this rank",
                &[("kind", "vertices")],
            ),
            tele,
        });
    }

    /// The telemetry context this node runs under (disabled default).
    pub fn telemetry(&self) -> dfo_obs::Telemetry {
        self.obs.as_ref().map(|o| o.tele.clone()).unwrap_or_default()
    }

    /// Opens a span if a tracer is attached; one branch otherwise.
    #[inline]
    pub(crate) fn obs_span(&self, name: &'static str, cat: &'static str) -> Option<dfo_obs::Span> {
        self.obs.as_ref().and_then(|o| o.tele.span(name, cat))
    }

    /// Runs a chunk/dispatch-graph load under the chunk-load histogram and
    /// a `storage` span; calls `f` directly when telemetry is off.
    pub(crate) fn timed_chunk_read<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let Some(o) = &self.obs else { return f() };
        let _sp = o.tele.span("chunk_load", "storage");
        let t0 = Instant::now();
        let out = f();
        o.chunk_load_secs.observe_duration(t0.elapsed());
        out
    }

    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    pub fn disk(&self) -> &NodeDisk {
        &self.disk
    }

    /// The disk this context's mutable state (arrays, checkpoints, message
    /// spills) lives on. Identical to [`NodeCtx::disk`] unless the context
    /// was built by [`crate::Cluster::run_scoped`] /
    /// [`NodeCtx::with_disks`].
    pub fn scratch(&self) -> &NodeDisk {
        &self.scratch
    }

    /// Consumes the context and hands back its network endpoint. A context
    /// built over a *job view* of a shared transport (the resident mesh,
    /// [`crate::ResidentMesh`]) does not need this — dropping the view
    /// leaves the underlying transport connected — but owners of a
    /// dedicated endpoint ([`crate::Cluster::run_distributed`]) use it to
    /// reclaim the endpoint when the job's context is done with it.
    pub fn into_net(self) -> Endpoint {
        self.net
    }

    pub fn net(&self) -> &Endpoint {
        &self.net
    }

    /// Installs a cooperative cancellation token. Once any rank's token is
    /// set, the next `Process` call (`process_vertices` / `process_edges`)
    /// on **every** rank fails with [`DfoError::Cancelled`] before touching
    /// array state — ranks agree via an allreduce at the call boundary, so
    /// the surviving on-disk state is the consistent state of the last
    /// completed call on all ranks.
    ///
    /// The token must be installed on all ranks of a run or on none (the
    /// agreement check is itself a collective).
    pub fn set_cancel_token(&mut self, token: Arc<AtomicBool>) {
        self.cancel = Some(token);
    }

    /// The collective cancellation check at a `Process`-call boundary: a
    /// no-op without a token; otherwise every rank contributes whether its
    /// token fired and all ranks abort together if any did.
    pub(crate) fn check_cancelled(&self) -> Result<()> {
        let Some(token) = &self.cancel else { return Ok(()) };
        let fired = token.load(Ordering::Relaxed);
        let anywhere = self.net.allreduce_min_u64(if fired { 0 } else { 1 }) == 0;
        if anywhere {
            return Err(DfoError::Cancelled(format!(
                "rank {}: cancel token observed at Process-call boundary",
                self.rank
            )));
        }
        Ok(())
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Per-phase I/O and traffic of the most recent `ProcessEdges` call
    /// (the Table 2 measurement).
    pub fn last_phase_stats(&self) -> &PhaseStats {
        &self.last_stats
    }

    /// Sum of **every** `ProcessEdges` call's [`PhaseStats`] over this
    /// context's lifetime. A context lives exactly one `Cluster::run`
    /// closure, so for a service job this is the job's total — including
    /// per-job chunk-cache hit/miss counts attributed at the lookup sites
    /// (not diffed from the shared cache's cumulative counters, which
    /// concurrent jobs would pollute).
    pub fn job_phase_stats(&self) -> &PhaseStats {
        &self.job_stats
    }

    /// Cumulative counters of this node's chunk cache; `None` when the
    /// cache is disabled (`chunk_cache_bytes == 0`).
    pub fn chunk_cache_stats(&self) -> Option<ChunkCacheStats> {
        self.chunk_cache.as_ref().map(|c| c.stats())
    }

    /// The paper's `GetVertexArray<T>`: creates the named array (zeroed) or
    /// reopens it — recovering the last committed checkpoint when
    /// checkpointing is on (§3.2).
    pub fn vertex_array<T: Pod>(&mut self, name: &str) -> Result<VertexArray<T>> {
        let elem = std::mem::size_of::<T>();
        assert!(elem > 0, "vertex data must not be zero-sized");
        if let Some(entry) = self.arrays.get(name) {
            if entry.elem_bytes != elem {
                return Err(DfoError::Config(format!(
                    "vertex array {name:?} reopened with element size {elem}, stored {}",
                    entry.elem_bytes
                )));
            }
            return Ok(VertexArray::new(name));
        }
        let entry = if self.cfg.batching_enabled {
            // cap recovery at the commit record's epoch for this array: any
            // newer checkpoint belongs to a call whose record never landed
            let target = self.commit_log.as_ref().map(|l| l.lock().target_epoch(name));
            ArrayEntry::create_blocks(
                &self.scratch,
                name,
                elem,
                &self.plan.batches[self.rank],
                self.cfg.checkpointing,
                self.cfg.checkpoints_kept,
                target,
            )?
        } else {
            // Table 6 ablation: memory-mapped-style access through a bounded
            // page cache (a quarter of the budget per array, mirroring an OS
            // page cache shared by a handful of hot mmapped arrays)
            let pages = (self.cfg.mem_budget as usize / self.cfg.page_size / 4).max(1);
            ArrayEntry::create_paged(
                &self.scratch,
                name,
                elem,
                self.plan.partitions[self.rank],
                self.cfg.page_size,
                pages,
            )?
        };
        self.arrays.insert(name.to_string(), Arc::new(entry));
        Ok(VertexArray::new(name))
    }

    /// Resolves registered array entries by name (panics on typos — a
    /// programming error, like the paper's C++ API would segfault).
    pub(crate) fn entries(&self, names: &[&str]) -> Vec<Arc<ArrayEntry>> {
        names
            .iter()
            .map(|n| {
                self.arrays
                    .get(*n)
                    .unwrap_or_else(|| panic!("vertex array {n:?} was never created on this node"))
                    .clone()
            })
            .collect()
    }

    pub(crate) fn begin_epochs(&self, entries: &[Arc<ArrayEntry>]) {
        if self.cfg.checkpointing {
            for e in entries {
                e.begin_epoch();
            }
        }
    }

    /// Commits one `Process` call's array epochs, then the per-call commit
    /// record asserting they all landed. This is the commit boundary the
    /// deterministic fault-injection hook fires at: a `Pre` crash point
    /// kills the call's `k`-th call before any array commits (the call is
    /// lost whole), a `Mid` point kills it between the first array's commit
    /// and the rest — the torn state only the commit record can detect.
    pub(crate) fn commit_epochs(&self, entries: &[Arc<ArrayEntry>]) -> Result<()> {
        self.crash_if_scheduled(CrashPos::Pre);
        let observing = self.cfg.checkpointing && self.obs.is_some();
        let _sp = if observing { self.obs_span("ckpt_commit", "ckpt") } else { None };
        let t0 = observing.then(Instant::now);
        let mut iter = entries.iter();
        if let Some(first) = iter.next() {
            first.commit()?;
            // even with one array, Mid stays meaningful: the record below
            // has not been written yet, so the call must not survive
            self.crash_if_scheduled(CrashPos::Mid);
            for e in iter {
                e.commit()?;
            }
        }
        if let Some(log) = &self.commit_log {
            let touched: Vec<(&str, u64)> = entries
                .iter()
                .filter(|e| e.checkpointed())
                .map(|e| (e.name.as_str(), e.epoch()))
                .collect();
            log.lock().record_commit(&touched)?;
        }
        if let (Some(o), Some(t0)) = (&self.obs, t0) {
            o.ckpt_commit_secs.observe_duration(t0.elapsed());
        }
        self.calls_committed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn crash_if_scheduled(&self, pos: CrashPos) {
        if self.cfg.crash_schedule.is_empty() {
            return;
        }
        let call = self.calls_committed.load(Ordering::Relaxed);
        for cp in &self.cfg.crash_schedule {
            if cp.pos != pos
                || cp.call != call
                || cp.rank.is_some_and(|r| r != self.rank)
                || cp.epoch.is_some_and(|e| e != self.cfg.epoch)
            {
                continue;
            }
            if self.crash_abort {
                eprintln!(
                    "[dfo] rank {}: DFO_CRASH_AT fired — aborting at Process call {} \
                     ({pos:?}-commit, epoch {})",
                    self.rank, cp.call, self.cfg.epoch
                );
                std::process::abort();
            }
            panic!(
                "injected crash (DFO_CRASH_AT): rank {} dies at Process call {} \
                 ({pos:?}-commit, epoch {})",
                self.rank, cp.call, self.cfg.epoch
            );
        }
    }

    /// Resume plumbing for recovery-style programs (§3.2): opens (or
    /// recovers) the `u64` round-marker array `name`, takes the minimum
    /// committed marker across this rank's vertices, and all-reduces the
    /// minimum across ranks — the last round known to have committed
    /// *everywhere*, i.e. the global resume point. A fresh array yields 0.
    ///
    /// Counts as one `Process` call. Programs write `round + 1` into the
    /// marker inside the **last** `Process` call of each round (listing it
    /// alongside that call's data arrays, so marker and data commit at the
    /// same boundary), and resume their loop at the returned round after a
    /// restart — re-executing at most one lost call per array.
    ///
    /// Before anything else, ranks exchange their commit-record call
    /// sequences and any *ahead* rank — one that committed a `Process` call
    /// a crashed peer did not — rolls that call back one checkpoint, so all
    /// ranks resume from the same global call sequence (the ahead-rank
    /// window). Requires `checkpoints_kept ≥ 2` when a rollback is needed.
    pub fn committed_round(&mut self, name: &str) -> Result<u64> {
        self.align_commit_seq()?;
        let marker = self.vertex_array::<u64>(name)?;
        let min = AtomicU64::new(u64::MAX);
        {
            let h = marker.clone();
            let min = &min;
            self.process_vertices(&[name], None, move |v, c| {
                min.fetch_min(c.get(&h, v), Ordering::Relaxed);
                0u64
            })?;
        }
        let m = min.load(Ordering::Relaxed);
        let local = if m == u64::MAX { 0 } else { m };
        Ok(self.net.allreduce_min_u64(local))
    }

    /// The ahead-rank rollback **collective**: all ranks contribute their
    /// commit-record call sequence; a rank above the cluster minimum rolls
    /// its last recorded call back (record first, then one checkpoint per
    /// touched array), landing every rank on the same sequence. Because
    /// commits precede the collective that ends each `Process` call, no
    /// rank can start call `k + 1` before all finish call `k` — so the gap
    /// is at most one; anything larger is corruption.
    fn align_commit_seq(&mut self) -> Result<()> {
        let Some(log) = &self.commit_log else { return Ok(()) };
        let local = log.lock().call_seq();
        let global = self.net.allreduce_min_u64(local);
        if local == global {
            return Ok(());
        }
        if local != global + 1 {
            return Err(DfoError::Corrupt(format!(
                "rank {}: committed call sequence {local} is {} calls ahead of the cluster \
                 minimum {global} — collectives bound the gap to one",
                self.rank,
                local - global
            )));
        }
        let _sp = self.obs_span("ahead_rank_rollback", "ckpt");
        eprintln!(
            "[dfo] rank {}: ahead of the cluster by one committed call \
             ({local} > {global}); rolling back one checkpoint",
            self.rank
        );
        let restored = self.commit_log.as_ref().unwrap().lock().rollback_last()?;
        for (arr, want_epoch) in &restored {
            let landed = match self.arrays.get(arr) {
                Some(entry) => entry.rollback_one()?,
                None => {
                    // not opened yet this incarnation: recovery with the
                    // (already stepped-back) record epoch as the cap lands
                    // on the same state and deletes the torn manifest
                    let store = VersionedArrayStore::recover_to(
                        self.scratch.clone(),
                        format!("arrays/{arr}"),
                        self.plan.n_batches(self.rank),
                        self.cfg.checkpoints_kept,
                        Some(*want_epoch),
                    )?;
                    store.epoch()
                }
            };
            if landed != *want_epoch {
                return Err(DfoError::Corrupt(format!(
                    "rank {}: rollback of array {arr:?} landed on epoch {landed}, commit \
                     record expected {want_epoch}",
                    self.rank
                )));
            }
        }
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The paper's `ProcessVertices`: runs `work` on every vertex (or every
    /// *active* vertex), batches processed in parallel by the node's worker
    /// threads, each batch's arrays loaded at most once (§4.4
    /// "vertex-parallel jobs").
    ///
    /// `arrays` lists the vertex arrays `work` may access through the
    /// [`BatchCtx`]. Returns the sum of `work`'s return values across the
    /// whole cluster.
    pub fn process_vertices<A: Accum>(
        &mut self,
        arrays: &[&str],
        active: Option<&VertexArray<bool>>,
        work: impl Fn(VertexId, &mut BatchCtx) -> A + Sync,
    ) -> Result<A> {
        self.check_cancelled()?;
        let _call_span = self.obs_span("process_vertices", "call");
        if let Some(o) = &self.obs {
            o.vertices_calls.inc();
        }
        let entries = self.entries(arrays);
        let active_entry = active.map(|a| self.entries(&[a.name()]).remove(0));
        // open one epoch over everything this call may write
        let mut epoch_set: Vec<Arc<ArrayEntry>> = entries.clone();
        if let Some(ae) = &active_entry {
            if !arrays.contains(&ae.name.as_str()) {
                epoch_set.push(ae.clone());
            }
        }
        self.begin_epochs(&epoch_set);

        let b_count = self.plan.n_batches(self.rank);
        let partition_start = self.plan.partitions[self.rank].start;
        let next = AtomicUsize::new(0);
        let result: parking_lot::Mutex<A> = parking_lot::Mutex::new(A::zero());
        let err: parking_lot::Mutex<Option<DfoError>> = parking_lot::Mutex::new(None);

        std::thread::scope(|s| {
            for _ in 0..self.cfg.threads_per_node {
                s.spawn(|| {
                    let mut local = A::zero();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= b_count {
                            break;
                        }
                        match self.run_vertex_batch(
                            b,
                            partition_start,
                            &entries,
                            arrays,
                            active_entry.as_deref(),
                            &work,
                        ) {
                            Ok(a) => local = local.merge(a),
                            Err(e) => {
                                *err.lock() = Some(e);
                                break;
                            }
                        }
                    }
                    let mut r = result.lock();
                    let cur = std::mem::replace(&mut *r, A::zero());
                    *r = cur.merge(local);
                });
            }
        });
        if let Some(e) = err.lock().take() {
            return Err(e);
        }
        self.commit_epochs(&epoch_set)?;
        let local = std::mem::replace(&mut *result.lock(), A::zero());
        Ok(local.allreduce(&self.net))
    }

    /// All-to-all byte exchange: sends `outgoing[j]` to node `j` and returns
    /// what every node sent here (`result[rank] == outgoing[rank]`).
    ///
    /// Uses the same round-robin pairing as `ProcessEdges` (§4.4), with the
    /// sender on its own thread so bounded channels cannot deadlock. Used
    /// for preprocessing by-products such as shipping out-degree counts to
    /// their owning partitions.
    pub fn exchange_bytes(&mut self, outgoing: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        assert_eq!(outgoing.len(), self.cfg.nodes);
        let seq = self.call_seq;
        self.call_seq += 1;
        let rank = self.rank;
        // freeze each payload once; per-chunk frames below are zero-copy
        // slices of the frozen buffer (no per-256-KiB memcpy)
        let mut outgoing = outgoing;
        let own = std::mem::take(&mut outgoing[rank]);
        let outgoing: Vec<bytes::Bytes> = outgoing.into_iter().map(bytes::Bytes::from).collect();
        let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); self.cfg.nodes];
        let err: parking_lot::Mutex<Option<DfoError>> = parking_lot::Mutex::new(None);
        std::thread::scope(|s| {
            s.spawn(|| {
                for j in self.cfg.send_order(rank) {
                    if let Err(e) = self.net.send_stream(j, seq, outgoing[j].clone()) {
                        *err.lock() = Some(e);
                        return;
                    }
                }
            });
            for p in self.cfg.recv_order(rank) {
                match self.net.recv_all(p, seq) {
                    Ok(bytes) => incoming[p] = bytes,
                    Err(e) => {
                        *err.lock() = Some(e);
                        break;
                    }
                }
            }
        });
        let pending = err.lock().take();
        if let Some(e) = pending {
            return Err(e);
        }
        incoming[rank] = own;
        Ok(incoming)
    }

    /// **Collective** metrics gather: every rank snapshots its registry and
    /// ships the encoding to rank 0 over the mesh; rank 0 merges them into
    /// one cluster-wide [`dfo_obs::Snapshot`] (per-rank series stay distinct
    /// through their `rank` label). Returns `Some(merged)` on rank 0,
    /// `None` elsewhere. Like every collective, all ranks must call it at
    /// the same point or none may.
    pub fn gather_metrics(&mut self) -> Result<Option<dfo_obs::Snapshot>> {
        let snap = self.telemetry().registry.snapshot();
        let mut out = vec![Vec::new(); self.cfg.nodes];
        out[0] = snap.encode();
        let incoming = self.exchange_bytes(out)?;
        if self.rank != 0 {
            return Ok(None);
        }
        let mut merged = dfo_obs::Snapshot::default();
        for bytes in incoming.iter().filter(|b| !b.is_empty()) {
            merged.merge_from(&dfo_obs::Snapshot::decode(bytes)?);
        }
        Ok(Some(merged))
    }

    fn run_vertex_batch<A: Accum>(
        &self,
        b: usize,
        partition_start: VertexId,
        entries: &[Arc<ArrayEntry>],
        names: &[&str],
        active_entry: Option<&ArrayEntry>,
        work: &(impl Fn(VertexId, &mut BatchCtx) -> A + Sync),
    ) -> Result<A> {
        let range = self.plan.batches[self.rank][b];
        if range.is_empty() {
            return Ok(A::zero());
        }
        // §4.4: load `active` first and finish early if the batch is idle
        let active_bytes = match active_entry {
            Some(e) if self.cfg.batching_enabled => {
                let bytes = e.read_block(b)?;
                if !bytes.iter().any(|&x| x != 0) {
                    return Ok(A::zero());
                }
                Some(bytes)
            }
            _ => None, // paged mode reads the bitmap through the cache below
        };
        let mut refs: Vec<&ArrayEntry> = entries.iter().map(|e| e.as_ref()).collect();
        // paged mode: read activity through the page cache inside the ctx
        let paged_active = match active_entry {
            Some(e) if !self.cfg.batching_enabled => {
                if !names.contains(&e.name.as_str()) {
                    refs.push(e);
                }
                Some(VertexArray::<bool>::new(&e.name))
            }
            _ => None,
        };
        let preloaded = match (&active_bytes, active_entry) {
            (Some(bytes), Some(e)) if names.contains(&e.name.as_str()) => {
                Some((e.name.as_str(), bytes.clone()))
            }
            _ => None,
        };
        let mut ctx = BatchCtx::load(&refs, range, b, partition_start, preloaded)?;
        let mut acc = A::zero();
        for v in range.iter() {
            let is_active = match (&active_bytes, &paged_active) {
                (Some(bytes), _) => bytes[(v - range.start) as usize] != 0,
                (None, Some(h)) => ctx.get(h, v),
                (None, None) => true,
            };
            if is_active {
                acc = acc.merge(work(v, &mut ctx));
            }
        }
        ctx.write_back(b)?;
        Ok(acc)
    }
}
