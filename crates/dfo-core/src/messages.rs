//! On-disk and on-wire message records.
//!
//! A message is a `(src_local: u32, payload: M)` pair — the source vertex
//! stored local to its partition (the receiving side always knows which
//! partition a stream came from, so 4 bytes suffice regardless of graph
//! size). Message files are flat concatenations of records; network frames
//! carry whole records only.

use bytes::{Bytes, BytesMut};
use dfo_types::codec::read_exact_or_eof;
use dfo_types::{bytes_of, pod_from_bytes, DfoError, Pod, Result};
use std::io::{Read, Write};

/// Bytes per record for message type `M`.
pub const fn record_bytes<M: Pod>() -> usize {
    4 + std::mem::size_of::<M>()
}

/// Serializes one record into `out`.
#[inline]
pub fn push_record<M: Pod>(out: &mut Vec<u8>, src_local: u32, msg: &M) {
    out.extend_from_slice(&src_local.to_le_bytes());
    out.extend_from_slice(bytes_of(msg));
}

/// Writes one record to a stream.
#[inline]
pub fn write_record<W: Write, M: Pod>(w: &mut W, src_local: u32, msg: &M) -> Result<()> {
    w.write_all(&src_local.to_le_bytes())
        .and_then(|_| w.write_all(bytes_of(msg)))
        .map_err(|e| DfoError::io("writing message record", e))
}

/// Parses the record at `buf[off..]`.
#[inline]
pub fn parse_record<M: Pod>(buf: &[u8], off: usize) -> (u32, M) {
    let src = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
    let msg = pod_from_bytes(&buf[off + 4..off + record_bytes::<M>()]);
    (src, msg)
}

/// Streaming reader over a message file.
pub struct RecordReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read, M: Pod> RecordIter<M> for RecordReader<R> {
    fn next_record(&mut self) -> Result<Option<(u32, M)>> {
        let rec = record_bytes::<M>();
        if self.buf.len() != rec {
            self.buf.resize(rec, 0);
        }
        if !read_exact_or_eof(&mut self.inner, &mut self.buf)
            .map_err(|e| DfoError::io("reading message record", e))?
        {
            return Ok(None);
        }
        Ok(Some(parse_record(&self.buf, 0)))
    }
}

impl<R: Read> RecordReader<R> {
    pub fn new(inner: R) -> Self {
        Self { inner, buf: Vec::new() }
    }
}

/// Anything that yields `(src_local, M)` records in order.
pub trait RecordIter<M: Pod> {
    fn next_record(&mut self) -> Result<Option<(u32, M)>>;
}

/// Packs records into bounded frames for the wire. Frame capacity is rounded
/// down to a whole number of records so receivers never see a split record.
pub struct FrameBuilder {
    buf: BytesMut,
    cap: usize,
}

impl FrameBuilder {
    /// `target_bytes` ≈ frame size; `rec` = record size.
    pub fn new(target_bytes: usize, rec: usize) -> Self {
        let cap = (target_bytes / rec).max(1) * rec;
        Self { buf: BytesMut::with_capacity(cap), cap }
    }

    /// Adds a record; returns a full frame when capacity is reached.
    #[inline]
    pub fn push<M: Pod>(&mut self, src_local: u32, msg: &M) -> Option<Bytes> {
        self.buf.extend_from_slice(&src_local.to_le_bytes());
        self.buf.extend_from_slice(bytes_of(msg));
        if self.buf.len() >= self.cap {
            Some(self.buf.split().freeze())
        } else {
            None
        }
    }

    /// Remaining partial frame, if any.
    pub fn finish(mut self) -> Option<Bytes> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.split().freeze())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn record_roundtrip_through_file() {
        let mut buf = Vec::new();
        write_record(&mut buf, 7, &3.5f64).unwrap();
        write_record(&mut buf, 1000, &-1.0f64).unwrap();
        let mut r = RecordReader::new(Cursor::new(buf));
        assert_eq!(RecordIter::<f64>::next_record(&mut r).unwrap(), Some((7, 3.5)));
        assert_eq!(RecordIter::<f64>::next_record(&mut r).unwrap(), Some((1000, -1.0)));
        assert_eq!(RecordIter::<f64>::next_record(&mut r).unwrap(), None::<(u32, f64)>);
    }

    #[test]
    fn frame_builder_aligns_to_records() {
        let rec = record_bytes::<u64>(); // 12
        let mut fb = FrameBuilder::new(30, rec); // cap = 24 = 2 records
        assert!(fb.push(1, &10u64).is_none());
        let frame = fb.push(2, &20u64).expect("second record fills the frame");
        assert_eq!(frame.len(), 2 * rec);
        assert_eq!(parse_record::<u64>(&frame, 0), (1, 10));
        assert_eq!(parse_record::<u64>(&frame, rec), (2, 20));
        assert!(fb.finish().is_none());
    }

    #[test]
    fn frame_builder_flushes_partial() {
        let rec = record_bytes::<u32>();
        let mut fb = FrameBuilder::new(100 * rec, rec);
        fb.push(5, &55u32);
        let tail = fb.finish().unwrap();
        assert_eq!(parse_record::<u32>(&tail, 0), (5, 55));
    }

    #[test]
    fn zero_sized_message() {
        // BFS sends unit messages: record is just the 4-byte source
        let mut buf = Vec::new();
        write_record(&mut buf, 9, &()).unwrap();
        assert_eq!(buf.len(), 4);
        let mut r = RecordReader::new(Cursor::new(buf));
        assert_eq!(RecordIter::<()>::next_record(&mut r).unwrap(), Some((9, ())));
    }
}
