//! The DFOGraph engine: vertex-centric **push** processing over two-level
//! column-oriented partitions, fully out of core (paper §2–§4).
//!
//! The public surface mirrors the paper's three APIs:
//!
//! * [`NodeCtx::vertex_array`] — the paper's `GetVertexArray<T>`: creates or
//!   recovers a named on-disk vertex array.
//! * [`NodeCtx::process_vertices`] — per-vertex computation with selective
//!   scheduling over an optional `active` array.
//! * [`NodeCtx::process_edges`] — the signal/slot push model, executed as
//!   four pipelined phases: *generating*, *inter-node passing* (with message
//!   filtering), *intra-node dispatching* (adaptive push/pull/none) and
//!   *processing* (adaptive CSR/DCSR edge access).
//!
//! Code runs SPMD: [`Cluster::run`] launches one thread per simulated node,
//! each owning its throttled disk and network endpoint; the closure you pass
//! is the per-node program, exactly like an MPI rank.
//!
//! ```no_run
//! use dfo_core::Cluster;
//! use dfo_types::EngineConfig;
//!
//! let cfg = EngineConfig::for_test(2);
//! let graph = dfo_graph::gen::rmat(dfo_graph::gen::GenConfig::new(10, 8, 1));
//! let cluster = Cluster::create(cfg, "/tmp/dfo-demo").unwrap();
//! cluster.preprocess(&graph).unwrap();
//! // in-degree counting: every vertex signals 1 along its out-edges
//! let slot_calls = cluster
//!     .run(|ctx| {
//!         let deg = ctx.vertex_array::<u64>("deg")?;
//!         ctx.process_edges(
//!             &[],
//!             &["deg"],
//!             None,
//!             |_v, _c| Some(1u64),
//!             |msg, _src, dst, _data: &(), c| {
//!                 let d = c.get(&deg, dst);
//!                 c.set(&deg, dst, d + msg);
//!                 1u64
//!             },
//!         )
//!     })
//!     .unwrap();
//! assert!(slot_calls[0] > 0);
//! ```

pub mod accum;
pub mod array;
pub mod cluster;
pub mod edges;
pub mod messages;
pub mod node;
pub mod resident;
pub mod supervisor;

pub use accum::Accum;
pub use array::{BatchCtx, VertexArray};
pub use cluster::Cluster;
pub use node::NodeCtx;
pub use resident::ResidentMesh;
pub use supervisor::{RankSpec, SuperviseReport, Supervisor};
