//! Cluster lifecycle: builds the per-node disks and network, preprocesses
//! graphs, and runs SPMD node programs.

use crate::node::NodeCtx;
use dfo_graph::edge::EdgeList;
use dfo_net::{NetStats, SimCluster, TcpCluster, TcpOpts};
use dfo_part::plan::Plan;
use dfo_part::preprocess::preprocess;
use dfo_storage::{ChunkCache, ChunkCacheStats, NodeDisk};
use dfo_types::{DfoError, EngineConfig, Pod, Rank, RecoveryStats, Result};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .or_else(|| panic.downcast_ref::<DfoError>().map(|e| e.to_string()))
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Classifies a caught node-program panic. The network endpoint panics
/// collective failures with the [`DfoError`] itself as the payload, so a
/// mesh failure comes back out as the typed error (retryable by supervised
/// recovery); anything else is a deterministic bug in the program and maps
/// to the non-retryable [`DfoError::Panic`].
fn panic_to_error(panic: Box<dyn std::any::Any + Send>, rank: Rank) -> DfoError {
    match panic.downcast::<DfoError>() {
        Ok(e) => *e,
        Err(panic) => DfoError::Panic(format!("rank {rank}: {}", panic_message(panic))),
    }
}

/// A simulated DFOGraph cluster rooted at a base directory; node `i`'s disk
/// lives under `<base>/n<i>/`.
pub struct Cluster {
    cfg: EngineConfig,
    base: PathBuf,
    disks: Vec<NodeDisk>,
    /// Per-rank decoded-chunk caches, shared across `run` calls so iterative
    /// jobs keep their warm chunks between runs. Empty when
    /// `chunk_cache_bytes == 0` (nothing is allocated).
    chunk_caches: Vec<Arc<ChunkCache>>,
    last_net: Mutex<Vec<Arc<NetStats>>>,
    /// Checkpoint-restart counters of the most recent supervised run.
    recovery: Mutex<RecoveryStats>,
}

impl Cluster {
    /// Creates (or reopens) a cluster. Disk bandwidth throttles and traffic
    /// recording follow the config.
    pub fn create(cfg: EngineConfig, base: impl Into<PathBuf>) -> Result<Self> {
        cfg.validate().map_err(DfoError::Config)?;
        let base = base.into();
        let disks = (0..cfg.nodes)
            .map(|i| NodeDisk::new(base.join(format!("n{i}")), cfg.disk_bw, cfg.record_traffic))
            .collect::<Result<Vec<_>>>()?;
        let chunk_caches = if cfg.chunk_cache_bytes > 0 {
            (0..cfg.nodes).map(|_| Arc::new(ChunkCache::new(cfg.chunk_cache_bytes))).collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            cfg,
            base,
            disks,
            chunk_caches,
            last_net: Mutex::new(Vec::new()),
            recovery: Mutex::new(RecoveryStats::default()),
        })
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    pub fn base(&self) -> &PathBuf {
        &self.base
    }

    pub fn disks(&self) -> &[NodeDisk] {
        &self.disks
    }

    /// Runs DFOGraph preprocessing for `g` onto the node disks (§2.2, §4).
    /// Any chunks cached from a previous graph are dropped: the cache keys
    /// on `(partition, batch, repr)` and re-preprocessing rewrites those
    /// files in place.
    pub fn preprocess<E: Pod + PartialEq>(&self, g: &EdgeList<E>) -> Result<Plan> {
        for c in &self.chunk_caches {
            c.clear();
        }
        Ok(preprocess(g, &self.cfg, &self.disks)?.plan)
    }

    /// Runs `f` once per node, SPMD-style, each on its own OS thread with
    /// its own [`NodeCtx`]. Returns the per-node results in rank order.
    ///
    /// A panicking node drops its endpoint, which surfaces as
    /// `DfoError::NetClosed` on peers — the failure model the checkpointing
    /// tests exercise.
    pub fn run<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Sync,
    {
        self.run_inner(None, f)
    }

    /// Like [`Cluster::run`], but every rank's *mutable* state — vertex
    /// arrays, checkpoints, `ProcessEdges` message spills — lives under the
    /// private subdirectory `<base>/n<i>/<sub>/` instead of directly in the
    /// node root, while read-only graph data (plan, chunks, dispatch/filter/
    /// pull lists) is still read from the node root. Scoped runs with
    /// distinct `sub` names therefore never collide on files, which is what
    /// lets a service multiplex **concurrent jobs** over one preprocessed
    /// graph; they still share the per-rank chunk caches and the disk
    /// bandwidth throttle (the scoped disk shares the node disk's throttle
    /// and counters). Call [`Cluster::remove_scratch`] when the job's
    /// results have been read out.
    pub fn run_scoped<T, F>(&self, sub: &str, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Sync,
    {
        self.run_inner(Some(sub), f)
    }

    fn run_inner<T, F>(&self, scratch_sub: Option<&str>, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Sync,
    {
        let endpoints = SimCluster::build(self.cfg.nodes, self.cfg.net_bw, self.cfg.record_traffic);
        *self.last_net.lock() = endpoints.iter().map(|e| e.stats_arc()).collect();
        let mut results: Vec<Option<Result<T>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, ep)| {
                    let disk = self.disks[rank].clone();
                    let cfg = self.cfg.clone();
                    let cache = self.chunk_caches.get(rank).cloned();
                    let f = &f;
                    s.spawn(move || -> Result<T> {
                        let scratch = match scratch_sub {
                            Some(sub) => disk.scoped(sub)?,
                            None => disk.clone(),
                        };
                        let mut ctx = NodeCtx::with_disks(rank, cfg, disk, scratch, ep, cache)?;
                        let res =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
                        match res {
                            Ok(Ok(v)) => Ok(v),
                            Ok(Err(e)) => {
                                // a failed node can't serve its peers: abort
                                // the collectives so they error out too
                                ctx.net().poison_collective();
                                Err(e)
                            }
                            Err(panic) => {
                                ctx.net().poison_collective();
                                Err(panic_to_error(panic, rank))
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                results.push(Some(h.join().unwrap_or_else(|panic| {
                    let msg = panic_message(panic);
                    Err(DfoError::NetClosed(format!("node thread panicked: {msg}")))
                })));
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Runs `f` as **one rank of a multi-process cluster**: joins the TCP
    /// mesh described by `cfg.peers` (every rank must run this with the
    /// same config and a disk holding the same preprocessed plan), builds
    /// the rank's [`NodeCtx`] once the full mesh is up, and executes `f`.
    ///
    /// This is the single-rank sibling of [`Cluster::run`]: the same engine
    /// code runs unchanged, only the transport differs. A rank that fails
    /// (error or panic) poisons the mesh so survivors get
    /// [`DfoError::NetClosed`] from their next collective instead of
    /// hanging; a rank whose peer process dies mid-run gets the same.
    pub fn run_distributed<T>(
        &self,
        rank: Rank,
        f: impl FnOnce(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let mut f = Some(f);
        self.attempt_distributed(rank, self.cfg.epoch, &mut |ctx| {
            (f.take().expect("run_distributed attempts exactly once"))(ctx)
        })
    }

    /// Runs `f` as one rank of a multi-process cluster **with
    /// checkpoint-restart**: like [`Cluster::run_distributed`], but a mesh
    /// failure (a peer process died, or the bootstrap handshake failed)
    /// does not abort the job. Instead the rank quiesces its transport
    /// (poisons the mesh so nothing blocks, joins the codec threads, drops
    /// the sockets), bumps the mesh *epoch*, re-bootstraps the TCP mesh —
    /// stale-epoch connections are rejected in the handshake — and
    /// re-executes `f` from scratch, up to `cfg.max_restarts` times.
    ///
    /// Pair it with a [`crate::Supervisor`] in the parent process: the
    /// supervisor relaunches the dead rank under the incremented epoch
    /// (`DFO_EPOCH`) while the survivors loop here in place. `f` must be
    /// written recovery-style (§3.2): open its arrays with
    /// [`NodeCtx::vertex_array`] (which recovers the last committed
    /// checkpoint), agree on the global resume point — e.g. via
    /// [`NodeCtx::committed_round`] — and re-execute deterministically
    /// from there, so the {crash, no-crash} results stay bit-identical and
    /// at most one `Process` call is lost.
    ///
    /// Non-mesh errors stay fatal: I/O, corruption, configuration — and
    /// panics in `f` itself, which come back as the non-retryable
    /// [`DfoError::Panic`] (the endpoint panics *collective* failures with
    /// the typed `NetClosed` payload, so only genuine mesh failures are
    /// retried). An exhausted restart budget surfaces as
    /// [`DfoError::RestartsExhausted`].
    pub fn run_supervised<T>(
        &self,
        rank: Rank,
        mut f: impl FnMut(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let mut epoch = self.cfg.epoch;
        let mut restarts: u32 = 0;
        loop {
            let res = self.attempt_distributed(rank, epoch, &mut f);
            *self.recovery.lock() = RecoveryStats { restarts: restarts as u64, mesh_epoch: epoch };
            match res {
                Ok(v) => return Ok(v),
                Err(e @ (DfoError::NetClosed(_) | DfoError::Handshake(_))) => {
                    if restarts >= self.cfg.max_restarts {
                        return Err(DfoError::RestartsExhausted {
                            attempts: restarts,
                            last: Box::new(e),
                        });
                    }
                    restarts += 1;
                    epoch += 1;
                    eprintln!(
                        "[dfo] rank {rank}: mesh failure ({e}); re-bootstrapping at epoch \
                         {epoch} (recovery {restarts}/{})",
                        self.cfg.max_restarts
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One mesh bootstrap + execution attempt at a given epoch. On exit the
    /// transport is fully quiesced (writer threads joined, sockets closed)
    /// whatever happened, so the caller may immediately re-bootstrap.
    fn attempt_distributed<T>(
        &self,
        rank: Rank,
        epoch: u64,
        f: &mut dyn FnMut(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let peers = self.cfg.peers.clone().ok_or_else(|| {
            DfoError::Config("run_distributed needs cfg.peers (the rank address list)".into())
        })?;
        if rank >= self.cfg.nodes {
            return Err(DfoError::Config(format!(
                "rank {rank} outside cluster of {} nodes",
                self.cfg.nodes
            )));
        }
        let ep = TcpCluster::connect(
            rank,
            &peers,
            self.cfg.net_bw,
            self.cfg.record_traffic,
            TcpOpts { connect_timeout: Duration::from_secs(self.cfg.connect_timeout_secs), epoch },
        )?;
        *self.last_net.lock() = vec![ep.stats_arc()];
        let mut ctx = NodeCtx::with_chunk_cache(
            rank,
            self.cfg.clone(),
            self.disks[rank].clone(),
            ep,
            self.chunk_caches.get(rank).cloned(),
        )?;
        // multi-process deployment: an injected crash must kill the whole
        // OS process (like a SIGKILL), not just unwind one thread
        ctx.crash_abort = true;
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
        match res {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => {
                ctx.net().poison_collective();
                Err(e)
            }
            Err(panic) => {
                ctx.net().poison_collective();
                Err(panic_to_error(panic, rank))
            }
        }
    }

    /// Checkpoint-restart counters of the most recent
    /// [`Cluster::run_supervised`] call on this handle (zeroes if it never
    /// had to recover).
    pub fn recovery_stats(&self) -> RecoveryStats {
        *self.recovery.lock()
    }

    /// Aggregate disk bytes (read + written) across all nodes.
    pub fn total_disk_bytes(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().total_bytes()).sum()
    }

    pub fn total_disk_read(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().read_bytes.get()).sum()
    }

    pub fn total_disk_written(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().write_bytes.get()).sum()
    }

    /// Aggregate bytes sent on the wire during the most recent `run`.
    pub fn total_net_sent(&self) -> u64 {
        self.last_net.lock().iter().map(|s| s.sent_bytes.get()).sum()
    }

    /// Per-node network stats of the most recent `run`.
    pub fn net_stats(&self) -> Vec<Arc<NetStats>> {
        self.last_net.lock().clone()
    }

    /// Per-rank chunk-cache counters; empty when the cache is disabled
    /// (`chunk_cache_bytes == 0` allocates nothing).
    ///
    /// These are **cumulative over the cluster's lifetime** (the caches are
    /// shared across `run` calls on purpose, so iterative jobs keep warm
    /// chunks). To attribute counters to one window, snapshot before and
    /// diff with [`ChunkCacheStats::delta_since`]; per-job attribution under
    /// *concurrent* jobs needs the per-call counters in
    /// [`dfo_types::PhaseStats`] instead, which are counted at each job's
    /// own lookup sites.
    pub fn chunk_cache_stats(&self) -> Vec<ChunkCacheStats> {
        self.chunk_caches.iter().map(|c| c.stats()).collect()
    }

    /// Deletes the per-rank scratch subdirectories a [`Cluster::run_scoped`]
    /// call left behind (`<base>/n<i>/<sub>/`). Missing directories are
    /// fine — cleanup is idempotent.
    pub fn remove_scratch(&self, sub: &str) -> Result<()> {
        for d in &self.disks {
            let dir = d.root().join(sub);
            if dir.exists() {
                std::fs::remove_dir_all(&dir).map_err(|e| {
                    DfoError::io(format!("removing scratch dir {}", dir.display()), e)
                })?;
            }
        }
        Ok(())
    }

    /// Zeroes disk counters (between preprocessing and timed runs).
    pub fn reset_disk_stats(&self) {
        for d in &self.disks {
            d.stats().reset();
        }
    }
}
