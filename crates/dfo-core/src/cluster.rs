//! Cluster lifecycle: builds the per-node disks and network, preprocesses
//! graphs, and runs SPMD node programs.

use crate::node::NodeCtx;
use dfo_graph::edge::EdgeList;
use dfo_net::{NetStats, NetTotals, SimCluster, TcpCluster, TcpOpts};
use dfo_obs::{FlightRecorder, Registry, SpanRecord, Telemetry};
use dfo_part::plan::Plan;
use dfo_part::preprocess::preprocess;
use dfo_storage::{ChunkCache, ChunkCacheStats, NodeDisk};
use dfo_types::{DfoError, EngineConfig, Pod, Rank, RecoveryStats, Result};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .or_else(|| panic.downcast_ref::<DfoError>().map(|e| e.to_string()))
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Classifies a caught node-program panic. The network endpoint panics
/// collective failures with the [`DfoError`] itself as the payload, so a
/// mesh failure comes back out as the typed error (retryable by supervised
/// recovery); anything else is a deterministic bug in the program and maps
/// to the non-retryable [`DfoError::Panic`].
pub(crate) fn panic_to_error(panic: Box<dyn std::any::Any + Send>, rank: Rank) -> DfoError {
    match panic.downcast::<DfoError>() {
        Ok(e) => *e,
        Err(panic) => DfoError::Panic(format!("rank {rank}: {}", panic_message(panic))),
    }
}

/// Reads a supervisor-published epoch file: trimmed decimal text, written
/// atomically (temp + rename) by [`crate::Supervisor`]. Absent, unreadable,
/// or unparsable files all read as "nothing published yet".
fn read_epoch_file(path: &str) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// A simulated DFOGraph cluster rooted at a base directory; node `i`'s disk
/// lives under `<base>/n<i>/`.
pub struct Cluster {
    cfg: EngineConfig,
    base: PathBuf,
    disks: Vec<NodeDisk>,
    /// Per-rank decoded-chunk caches, shared across `run` calls so iterative
    /// jobs keep their warm chunks between runs. Empty when
    /// `chunk_cache_bytes == 0` (nothing is allocated).
    chunk_caches: Vec<Arc<ChunkCache>>,
    last_net: Mutex<Vec<Arc<NetStats>>>,
    /// Checkpoint-restart counters of the most recent supervised run
    /// (`Arc` so the metrics pull source can sample them at scrape time).
    recovery: Arc<Mutex<RecoveryStats>>,
    /// Ahead-rank rollbacks across every run on this cluster, shared into
    /// each [`NodeCtx`] so the count survives per-attempt context rebuilds.
    rollbacks: Arc<AtomicU64>,
    /// Metrics registry every run on this cluster feeds; shareable across
    /// clusters via [`Cluster::create_with_registry`].
    registry: Arc<Registry>,
    /// Extra base labels (e.g. `graph`) on every series this cluster emits.
    labels: Vec<(String, String)>,
    /// Per-rank network totals, folded in at the end of **every** run and
    /// distributed attempt. Endpoints live one run (a supervised restart
    /// builds a fresh one), so these accumulators — not
    /// [`Cluster::net_stats`] — are what survives endpoint churn.
    net_accum: Arc<Mutex<Vec<NetTotals>>>,
}

impl Cluster {
    /// Creates (or reopens) a cluster. Disk bandwidth throttles and traffic
    /// recording follow the config. The cluster gets its own private
    /// metrics registry; use [`Cluster::create_with_registry`] to share one.
    pub fn create(cfg: EngineConfig, base: impl Into<PathBuf>) -> Result<Self> {
        Self::create_with_registry(cfg, base, Registry::new(), &[])
    }

    /// Like [`Cluster::create`] but feeding an externally owned metrics
    /// [`Registry`], with `labels` (e.g. `[("graph", "wiki")]`) attached to
    /// every series — how a service scrapes several resident graphs from
    /// one endpoint. Registers pull sources for the per-rank disk,
    /// chunk-cache and accumulated network counters; run-time telemetry
    /// (phase histograms, collective latencies) lands in the same registry.
    pub fn create_with_registry(
        cfg: EngineConfig,
        base: impl Into<PathBuf>,
        registry: Arc<Registry>,
        labels: &[(&str, &str)],
    ) -> Result<Self> {
        cfg.validate().map_err(DfoError::Config)?;
        let base = base.into();
        let disks = (0..cfg.nodes)
            .map(|i| NodeDisk::new(base.join(format!("n{i}")), cfg.disk_bw, cfg.record_traffic))
            .collect::<Result<Vec<_>>>()?;
        let chunk_caches: Vec<Arc<ChunkCache>> = if cfg.chunk_cache_bytes > 0 {
            (0..cfg.nodes).map(|_| Arc::new(ChunkCache::new(cfg.chunk_cache_bytes))).collect()
        } else {
            Vec::new()
        };
        let net_accum = Arc::new(Mutex::new(vec![NetTotals::default(); cfg.nodes]));
        let this = Self {
            cfg,
            base,
            disks,
            chunk_caches,
            last_net: Mutex::new(Vec::new()),
            recovery: Arc::new(Mutex::new(RecoveryStats::default())),
            rollbacks: Arc::new(AtomicU64::new(0)),
            registry,
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            net_accum,
        };
        this.register_sources();
        Ok(this)
    }

    /// Registers the pull-model sources that expose the cluster's existing
    /// atomic stats surfaces through the registry: sampled only at scrape
    /// time, so the engine's hot paths pay nothing.
    fn register_sources(&self) {
        let disks = self.disks.clone();
        let caches = self.chunk_caches.clone();
        let accum = self.net_accum.clone();
        let recovery = self.recovery.clone();
        let rollbacks = self.rollbacks.clone();
        let base = self.labels.clone();
        self.registry.register_source(Box::new(move |buf| {
            let with_rank = |rank: &str| -> Vec<(String, String)> {
                let mut l = base.clone();
                l.push(("rank".into(), rank.into()));
                l
            };
            for (rank, d) in disks.iter().enumerate() {
                let rank = rank.to_string();
                let owned = with_rank(&rank);
                let l: Vec<(&str, &str)> =
                    owned.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let s = d.stats();
                buf.counter(
                    "dfo_disk_read_bytes_total",
                    "Physical disk bytes read",
                    &l,
                    s.read_bytes.get(),
                );
                buf.counter(
                    "dfo_disk_write_bytes_total",
                    "Physical disk bytes written",
                    &l,
                    s.write_bytes.get(),
                );
                buf.counter(
                    "dfo_disk_read_nanos_total",
                    "Wall nanoseconds inside disk reads (op + throttle)",
                    &l,
                    s.read_nanos.get(),
                );
                buf.counter(
                    "dfo_disk_write_nanos_total",
                    "Wall nanoseconds inside disk writes (op + throttle)",
                    &l,
                    s.write_nanos.get(),
                );
                buf.counter(
                    "dfo_chunk_encode_nanos_total",
                    "Wall nanoseconds LZ4-encoding chunk frames",
                    &l,
                    s.encode_nanos.get(),
                );
                buf.counter(
                    "dfo_chunk_decode_nanos_total",
                    "Wall nanoseconds decoding/checksumming chunk frames",
                    &l,
                    s.decode_nanos.get(),
                );
            }
            for (rank, c) in caches.iter().enumerate() {
                let rank = rank.to_string();
                let owned = with_rank(&rank);
                let l: Vec<(&str, &str)> =
                    owned.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let s = c.stats();
                buf.counter("dfo_chunk_cache_hits_total", "Decoded-chunk cache hits", &l, s.hits);
                buf.counter(
                    "dfo_chunk_cache_misses_total",
                    "Decoded-chunk cache misses",
                    &l,
                    s.misses,
                );
                buf.counter(
                    "dfo_chunk_cache_evicted_bytes_total",
                    "Decoded bytes evicted to stay in budget",
                    &l,
                    s.evicted_bytes,
                );
                buf.gauge(
                    "dfo_chunk_cache_resident_bytes",
                    "Decoded bytes currently resident",
                    &l,
                    s.resident_bytes as f64,
                );
            }
            {
                let l: Vec<(&str, &str)> =
                    base.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let r = *recovery.lock();
                buf.counter(
                    "dfo_restarts_total",
                    "Mesh re-bootstraps of the most recent supervised run",
                    &l,
                    r.restarts,
                );
                buf.counter(
                    "dfo_rollbacks_total",
                    "Ahead-rank one-checkpoint rollbacks across this cluster's runs",
                    &l,
                    rollbacks.load(Ordering::Relaxed),
                );
                buf.gauge(
                    "dfo_mesh_epoch",
                    "Epoch of the most recent successful mesh bootstrap",
                    &l,
                    r.mesh_epoch as f64,
                );
            }
            for (rank, t) in accum.lock().iter().enumerate() {
                let rank = rank.to_string();
                let owned = with_rank(&rank);
                let l: Vec<(&str, &str)> =
                    owned.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                buf.counter(
                    "dfo_net_sent_bytes_total",
                    "Wire bytes sent, accumulated across runs and restarts",
                    &l,
                    t.sent_bytes,
                );
                buf.counter(
                    "dfo_net_recv_bytes_total",
                    "Wire bytes received, accumulated across runs and restarts",
                    &l,
                    t.recv_bytes,
                );
                buf.counter(
                    "dfo_net_sent_frames_total",
                    "Frames sent, accumulated across runs and restarts",
                    &l,
                    t.sent_frames,
                );
            }
        }));
    }

    /// Builds the telemetry context one rank's [`NodeCtx`] runs under.
    pub(crate) fn rank_telemetry(
        &self,
        rank: Rank,
        recorder: Option<&Arc<FlightRecorder>>,
    ) -> Telemetry {
        let mut tele = Telemetry::new(self.registry.clone());
        for (k, v) in &self.labels {
            tele = tele.with_label(k, v);
        }
        tele = tele.with_label("rank", &rank.to_string());
        if let Some(rec) = recorder {
            tele = tele.with_tracer(rec.clone());
        }
        tele
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    pub fn base(&self) -> &PathBuf {
        &self.base
    }

    /// This rank's shared decoded-chunk cache, if caching is on.
    pub(crate) fn chunk_cache(&self, rank: Rank) -> Option<Arc<ChunkCache>> {
        self.chunk_caches.get(rank).cloned()
    }

    /// The shared rollback counter contexts report into.
    pub(crate) fn rollbacks_handle(&self) -> Arc<AtomicU64> {
        self.rollbacks.clone()
    }

    pub fn disks(&self) -> &[NodeDisk] {
        &self.disks
    }

    /// Runs DFOGraph preprocessing for `g` onto the node disks (§2.2, §4).
    /// Any chunks cached from a previous graph are dropped: the cache keys
    /// on `(partition, batch, repr)` and re-preprocessing rewrites those
    /// files in place.
    pub fn preprocess<E: Pod + PartialEq>(&self, g: &EdgeList<E>) -> Result<Plan> {
        for c in &self.chunk_caches {
            c.clear();
        }
        Ok(preprocess(g, &self.cfg, &self.disks)?.plan)
    }

    /// Runs `f` once per node, SPMD-style, each on its own OS thread with
    /// its own [`NodeCtx`]. Returns the per-node results in rank order.
    ///
    /// A panicking node drops its endpoint, which surfaces as
    /// `DfoError::NetClosed` on peers — the failure model the checkpointing
    /// tests exercise.
    pub fn run<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Sync,
    {
        self.run_inner(None, f)
    }

    /// Like [`Cluster::run`], but every rank's *mutable* state — vertex
    /// arrays, checkpoints, `ProcessEdges` message spills — lives under the
    /// private subdirectory `<base>/n<i>/<sub>/` instead of directly in the
    /// node root, while read-only graph data (plan, chunks, dispatch/filter/
    /// pull lists) is still read from the node root. Scoped runs with
    /// distinct `sub` names therefore never collide on files, which is what
    /// lets a service multiplex **concurrent jobs** over one preprocessed
    /// graph; they still share the per-rank chunk caches and the disk
    /// bandwidth throttle (the scoped disk shares the node disk's throttle
    /// and counters). Call [`Cluster::remove_scratch`] when the job's
    /// results have been read out.
    pub fn run_scoped<T, F>(&self, sub: &str, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Sync,
    {
        self.run_inner(Some(sub), f)
    }

    fn run_inner<T, F>(&self, scratch_sub: Option<&str>, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Sync,
    {
        let endpoints = SimCluster::build(self.cfg.nodes, self.cfg.net_bw, self.cfg.record_traffic);
        *self.last_net.lock() = endpoints.iter().map(|e| e.stats_arc()).collect();
        // one flight recorder per rank when tracing; merged into one
        // timeline file after the run
        let recorders: Option<Vec<Arc<FlightRecorder>>> = self.cfg.trace_path.as_ref().map(|_| {
            (0..self.cfg.nodes).map(|_| FlightRecorder::new(self.cfg.trace_capacity)).collect()
        });
        let mut results: Vec<Option<Result<T>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(rank, ep)| {
                    let disk = self.disks[rank].clone();
                    let cfg = self.cfg.clone();
                    let cache = self.chunk_caches.get(rank).cloned();
                    let tele = self.rank_telemetry(rank, recorders.as_ref().map(|r| &r[rank]));
                    let f = &f;
                    s.spawn(move || -> Result<T> {
                        let scratch = match scratch_sub {
                            Some(sub) => disk.scoped(sub)?,
                            None => disk.clone(),
                        };
                        let mut ctx = NodeCtx::with_disks(rank, cfg, disk, scratch, ep, cache)?;
                        ctx.rollbacks = self.rollbacks.clone();
                        ctx.set_telemetry(tele);
                        let res =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
                        match res {
                            Ok(Ok(v)) => Ok(v),
                            Ok(Err(e)) => {
                                // a failed node can't serve its peers: abort
                                // the collectives so they error out too
                                ctx.net().poison_collective();
                                Err(e)
                            }
                            Err(panic) => {
                                ctx.net().poison_collective();
                                Err(panic_to_error(panic, rank))
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                results.push(Some(h.join().unwrap_or_else(|panic| {
                    let msg = panic_message(panic);
                    Err(DfoError::NetClosed(format!("node thread panicked: {msg}")))
                })));
            }
        });
        // satellite telemetry work happens after the run and never fails it
        {
            let stats = self.last_net.lock();
            let mut acc = self.net_accum.lock();
            for (rank, s) in stats.iter().enumerate() {
                acc[rank].add_stats(s);
            }
        }
        if let (Some(path), Some(recs)) = (self.cfg.trace_path.as_deref(), recorders.as_ref()) {
            let ranks: Vec<(usize, Vec<SpanRecord>)> =
                recs.iter().enumerate().map(|(r, fr)| (r, fr.snapshot())).collect();
            if let Err(e) = dfo_obs::write_trace_file(std::path::Path::new(path), &ranks) {
                eprintln!("[dfo] warning: writing trace file {path}: {e}");
            }
        }
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Runs `f` as **one rank of a multi-process cluster**: joins the TCP
    /// mesh described by `cfg.peers` (every rank must run this with the
    /// same config and a disk holding the same preprocessed plan), builds
    /// the rank's [`NodeCtx`] once the full mesh is up, and executes `f`.
    ///
    /// This is the single-rank sibling of [`Cluster::run`]: the same engine
    /// code runs unchanged, only the transport differs. A rank that fails
    /// (error or panic) poisons the mesh so survivors get
    /// [`DfoError::NetClosed`] from their next collective instead of
    /// hanging; a rank whose peer process dies mid-run gets the same.
    pub fn run_distributed<T>(
        &self,
        rank: Rank,
        f: impl FnOnce(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let mut f = Some(f);
        self.attempt_distributed(rank, self.cfg.epoch, None, &mut |ctx| {
            (f.take().expect("run_distributed attempts exactly once"))(ctx)
        })
    }

    /// Runs `f` as one rank of a multi-process cluster **with
    /// checkpoint-restart**: like [`Cluster::run_distributed`], but a mesh
    /// failure (a peer process died, or the bootstrap handshake failed)
    /// does not abort the job. Instead the rank quiesces its transport
    /// (poisons the mesh so nothing blocks, joins the codec threads, drops
    /// the sockets), bumps the mesh *epoch*, re-bootstraps the TCP mesh —
    /// stale-epoch connections are rejected in the handshake — and
    /// re-executes `f` from scratch, up to `cfg.max_restarts` times.
    ///
    /// Pair it with a [`crate::Supervisor`] in the parent process: the
    /// supervisor relaunches the dead rank under the incremented epoch
    /// (`DFO_EPOCH`) while the survivors loop here in place. `f` must be
    /// written recovery-style (§3.2): open its arrays with
    /// [`NodeCtx::vertex_array`] (which recovers the last committed
    /// checkpoint), agree on the global resume point — e.g. via
    /// [`NodeCtx::committed_round`] — and re-execute deterministically
    /// from there, so the {crash, no-crash} results stay bit-identical and
    /// at most one `Process` call is lost.
    ///
    /// Non-mesh errors stay fatal: I/O, corruption, configuration — and
    /// panics in `f` itself, which come back as the non-retryable
    /// [`DfoError::Panic`] (the endpoint panics *collective* failures with
    /// the typed `NetClosed` payload, so only genuine mesh failures are
    /// retried). An exhausted restart budget surfaces as
    /// [`DfoError::RestartsExhausted`].
    pub fn run_supervised<T>(
        &self,
        rank: Rank,
        mut f: impl FnMut(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        // the supervisor-published epoch file, when present, is the single
        // authority: a rank relaunched with a stale DFO_EPOCH (its death
        // overlapped another failure) starts straight at the published one
        let mut epoch = self.cfg.epoch.max(self.published_epoch().unwrap_or(0));
        let mut restarts: u32 = 0;
        let rollback_base = self.rollbacks.load(Ordering::Relaxed);
        let mut recovered_from: Option<Instant> = None;
        loop {
            let res = self.attempt_distributed(rank, epoch, recovered_from.take(), &mut f);
            *self.recovery.lock() = RecoveryStats {
                restarts: restarts as u64,
                mesh_epoch: epoch,
                rollbacks: self.rollbacks.load(Ordering::Relaxed) - rollback_base,
            };
            match res {
                Ok(v) => return Ok(v),
                Err(e @ (DfoError::NetClosed(_) | DfoError::Handshake(_))) => {
                    if restarts >= self.cfg.max_restarts {
                        return Err(DfoError::RestartsExhausted {
                            attempts: restarts,
                            last: Box::new(e),
                        });
                    }
                    restarts += 1;
                    recovered_from = Some(Instant::now());
                    epoch = self.next_epoch(epoch);
                    eprintln!(
                        "[dfo] rank {rank}: mesh failure ({e}); re-bootstrapping at epoch \
                         {epoch} (recovery {restarts}/{})",
                        self.cfg.max_restarts
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The epoch currently published in `cfg.epoch_file`, if any.
    fn published_epoch(&self) -> Option<u64> {
        read_epoch_file(self.cfg.epoch_file.as_deref()?)
    }

    /// The epoch for the next recovery attempt. Without an epoch file each
    /// rank bumps locally (the historical scheme, correct only when
    /// failures never overlap a recovery window). With one, the rank waits
    /// — bounded — for the supervisor to publish an epoch above the failed
    /// attempt's, so every survivor and relaunch converges on the same
    /// number no matter how many ranks died; on timeout it falls back to
    /// the local bump rather than hanging (a failed handshake just costs
    /// another recovery attempt).
    fn next_epoch(&self, current: u64) -> u64 {
        let Some(path) = self.cfg.epoch_file.as_deref() else { return current + 1 };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(e) = read_epoch_file(path) {
                if e > current {
                    return e;
                }
            }
            if Instant::now() >= deadline {
                eprintln!(
                    "[dfo] warning: epoch file {path} did not advance past {current} within \
                     10s; bumping locally to {}",
                    current + 1
                );
                return current + 1;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// One mesh bootstrap + execution attempt at a given epoch. On exit the
    /// transport is fully quiesced (writer threads joined, sockets closed)
    /// whatever happened, so the caller may immediately re-bootstrap.
    fn attempt_distributed<T>(
        &self,
        rank: Rank,
        epoch: u64,
        recovered_from: Option<Instant>,
        f: &mut dyn FnMut(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let peers = self.cfg.peers.clone().ok_or_else(|| {
            DfoError::Config("run_distributed needs cfg.peers (the rank address list)".into())
        })?;
        if rank >= self.cfg.nodes {
            return Err(DfoError::Config(format!(
                "rank {rank} outside cluster of {} nodes",
                self.cfg.nodes
            )));
        }
        let ep = TcpCluster::connect(
            rank,
            &peers,
            self.cfg.net_bw,
            self.cfg.record_traffic,
            TcpOpts { connect_timeout: Duration::from_secs(self.cfg.connect_timeout_secs), epoch },
        )?;
        let stats = ep.stats_arc();
        *self.last_net.lock() = vec![stats.clone()];
        let recorder =
            self.cfg.trace_path.as_ref().map(|_| FlightRecorder::new(self.cfg.trace_capacity));
        // the ctx sees the *current* mesh epoch (it may have advanced past
        // cfg.epoch across recoveries) so `@epoch` crash qualifiers and
        // diagnostics refer to the attempt actually running
        let mut attempt_cfg = self.cfg.clone();
        attempt_cfg.epoch = epoch;
        let mut ctx = NodeCtx::with_chunk_cache(
            rank,
            attempt_cfg,
            self.disks[rank].clone(),
            ep,
            self.chunk_caches.get(rank).cloned(),
        )?;
        ctx.rollbacks = self.rollbacks.clone();
        ctx.set_telemetry(self.rank_telemetry(rank, recorder.as_ref()));
        if let Some(t0) = recovered_from {
            // mesh is up again: failure detection -> rebuilt mesh
            ctx.telemetry()
                .duration_histogram(
                    "dfo_recovery_seconds",
                    "Time from failure detection to a rebuilt mesh (one supervised recovery)",
                    &[],
                )
                .observe_duration(t0.elapsed());
        }
        // multi-process deployment: an injected crash must kill the whole
        // OS process (like a SIGKILL), not just unwind one thread
        ctx.crash_abort = true;
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
        let out = match res {
            Ok(Ok(v)) => {
                // collective: every rank ships its spans to rank 0, which
                // writes the merged timeline. cfg.trace_path is part of the
                // replicated config, so either all ranks enter or none do.
                if let Some(rec) = &recorder {
                    self.flush_distributed_trace(&mut ctx, rec);
                }
                Ok(v)
            }
            Ok(Err(e)) => {
                ctx.net().poison_collective();
                Err(e)
            }
            Err(panic) => {
                ctx.net().poison_collective();
                Err(panic_to_error(panic, rank))
            }
        };
        // fold after the trace gather so its frames are counted too
        self.net_accum.lock()[rank].add_stats(&stats);
        out
    }

    /// Gathers every rank's trace spans to rank 0 over the mesh and writes
    /// the merged timeline. Telemetry never fails the job: every error path
    /// warns on stderr and returns.
    fn flush_distributed_trace(&self, ctx: &mut NodeCtx, recorder: &Arc<FlightRecorder>) {
        let Some(path) = self.cfg.trace_path.as_deref() else { return };
        let mut out = vec![Vec::new(); self.cfg.nodes];
        out[0] = dfo_obs::encode_spans(&recorder.snapshot());
        match ctx.exchange_bytes(out) {
            Ok(incoming) => {
                if ctx.rank() != 0 {
                    return;
                }
                let mut ranks: Vec<(usize, Vec<SpanRecord>)> = Vec::new();
                for (r, bytes) in incoming.into_iter().enumerate() {
                    if bytes.is_empty() {
                        continue;
                    }
                    match dfo_obs::decode_spans(&bytes) {
                        Ok(spans) => ranks.push((r, spans)),
                        Err(e) => {
                            eprintln!("[dfo] warning: rank {r} trace spans undecodable: {e}")
                        }
                    }
                }
                if let Err(e) = dfo_obs::write_trace_file(std::path::Path::new(path), &ranks) {
                    eprintln!("[dfo] warning: writing trace file {path}: {e}");
                }
            }
            Err(e) => eprintln!("[dfo] warning: gathering trace spans: {e}"),
        }
    }

    /// Checkpoint-restart counters of the most recent
    /// [`Cluster::run_supervised`] call on this handle (zeroes if it never
    /// had to recover).
    pub fn recovery_stats(&self) -> RecoveryStats {
        *self.recovery.lock()
    }

    /// Aggregate disk bytes (read + written) across all nodes.
    pub fn total_disk_bytes(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().total_bytes()).sum()
    }

    pub fn total_disk_read(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().read_bytes.get()).sum()
    }

    pub fn total_disk_written(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().write_bytes.get()).sum()
    }

    /// Aggregate bytes sent on the wire during the most recent `run`.
    pub fn total_net_sent(&self) -> u64 {
        self.last_net.lock().iter().map(|s| s.sent_bytes.get()).sum()
    }

    /// Per-node network stats of the **most recent** `run` (or distributed
    /// attempt — one entry, this rank's). Endpoints live one run, so these
    /// zero at every run/restart boundary; use [`Cluster::net_totals`] for
    /// telemetry that survives endpoint churn.
    pub fn net_stats(&self) -> Vec<Arc<NetStats>> {
        self.last_net.lock().clone()
    }

    /// Per-rank network totals accumulated at the end of every run and
    /// every distributed attempt (supervised restarts included). In
    /// distributed mode only this process's own rank entry moves.
    pub fn net_totals(&self) -> Vec<NetTotals> {
        self.net_accum.lock().clone()
    }

    /// The metrics registry every run on this cluster feeds (shared with
    /// the owner when built via [`Cluster::create_with_registry`]).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Per-rank chunk-cache counters; empty when the cache is disabled
    /// (`chunk_cache_bytes == 0` allocates nothing).
    ///
    /// These are **cumulative over the cluster's lifetime** (the caches are
    /// shared across `run` calls on purpose, so iterative jobs keep warm
    /// chunks). To attribute counters to one window, snapshot before and
    /// diff with [`ChunkCacheStats::delta_since`]; per-job attribution under
    /// *concurrent* jobs needs the per-call counters in
    /// [`dfo_types::PhaseStats`] instead, which are counted at each job's
    /// own lookup sites.
    pub fn chunk_cache_stats(&self) -> Vec<ChunkCacheStats> {
        self.chunk_caches.iter().map(|c| c.stats()).collect()
    }

    /// Deletes the per-rank scratch subdirectories a [`Cluster::run_scoped`]
    /// call left behind (`<base>/n<i>/<sub>/`). Missing directories are
    /// fine — cleanup is idempotent.
    pub fn remove_scratch(&self, sub: &str) -> Result<()> {
        for d in &self.disks {
            let dir = d.root().join(sub);
            if dir.exists() {
                std::fs::remove_dir_all(&dir).map_err(|e| {
                    DfoError::io(format!("removing scratch dir {}", dir.display()), e)
                })?;
            }
        }
        Ok(())
    }

    /// Zeroes disk counters (between preprocessing and timed runs).
    pub fn reset_disk_stats(&self) {
        for d in &self.disks {
            d.stats().reset();
        }
    }
}
